//! # IMPACT — PiM-based main-memory timing attacks (reproduction)
//!
//! A full Rust reproduction of *"Revisiting Main Memory-Based Covert and
//! Side Channel Attacks in the Context of Processing-in-Memory"* (DSN
//! 2025): the simulation substrate (DRAM, caches, memory controller,
//! TLBs), the two PiM architectures (PEI and RowClone), the IMPACT covert
//! and side channels, the baseline attacks, the four defenses, and the
//! evaluation harness that regenerates every table and figure.
//!
//! This facade crate re-exports the workspace members under stable module
//! names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `impact-core` | time, addresses, config, stats, RNG |
//! | [`dram`] | `impact-dram` | banks, row buffers, timing, RowClone FPM |
//! | [`cache`] | `impact-cache` | hierarchy, CACTI model, eviction sets |
//! | [`memctrl`] | `impact-memctrl` | controller + MPR/CRP/CTD/ACT defenses |
//! | [`obs`] | `impact-obs` | deterministic-safe telemetry (counters, histograms, spans) |
//! | [`pim`] | `impact-pim` | PEI engine, RowClone interface |
//! | [`sim`] | `impact-sim` | whole-system co-simulation |
//! | [`genomics`] | `impact-genomics` | read-mapping victim |
//! | [`workloads`] | `impact-workloads` | GraphBIG-style kernels, XSBench |
//! | [`attacks`] | `impact-attacks` | IMPACT-PnM/PuM, baselines, side channel |
//! | [`fleet`] | `impact-fleet` | fleet-scale session service over an epoch scheduler |
//!
//! ## Quickstart
//!
//! ```
//! use impact::attacks::channel::message_from_str;
//! use impact::attacks::PnmCovertChannel;
//! use impact::core::config::SystemConfig;
//! use impact::sim::System;
//!
//! let mut sys = System::new(SystemConfig::paper_table2_noiseless());
//! let mut channel = PnmCovertChannel::setup(&mut sys, 16)?;
//! let report = channel.transmit(&mut sys, &message_from_str("1011001110001111"))?;
//! assert_eq!(report.bit_errors, 0);
//! println!("{:.1} Mb/s", report.goodput_mbps(sys.config().clock));
//! # Ok::<(), impact::core::Error>(())
//! ```

pub use impact_attacks as attacks;
pub use impact_cache as cache;
pub use impact_core as core;
pub use impact_dram as dram;
pub use impact_fleet as fleet;
pub use impact_genomics as genomics;
pub use impact_memctrl as memctrl;
pub use impact_obs as obs;
pub use impact_pim as pim;
pub use impact_sim as sim;
pub use impact_workloads as workloads;
