//! Races all five covert channels of the paper's evaluation (§5.2.2) on
//! the same message and system, reproducing the Fig. 9 ordering: the PiM
//! attacks dominate because they need no cache bypassing.
//!
//! ```text
//! cargo run --release --example covert_channel_race
//! ```

use impact::attacks::baseline::{BaselineChannel, BaselinePrimitive};
use impact::attacks::{PnmCovertChannel, PumCovertChannel};
use impact::core::config::SystemConfig;
use impact::core::rng::SimRng;
use impact::core::Error;
use impact::sim::System;

fn main() -> Result<(), Error> {
    let message = SimRng::seed(2024).bits(2048);
    let clock = SystemConfig::paper_table2().clock;
    println!(
        "racing 5 covert channels over a {}-bit message\n",
        message.len()
    );
    println!(
        "{:<22} {:>12} {:>10} {:>12}",
        "attack", "Mb/s", "errors", "error rate"
    );

    let mut results: Vec<(String, f64, u64, f64)> = Vec::new();

    for primitive in [
        BaselinePrimitive::Clflush,
        BaselinePrimitive::Eviction,
        BaselinePrimitive::Dma,
    ] {
        let mut sys = System::new(SystemConfig::paper_table2());
        let mut ch = BaselineChannel::setup(&mut sys, primitive)?;
        let r = ch.transmit(&mut sys, &message)?;
        results.push((
            primitive.name().to_string(),
            r.goodput_mbps(clock),
            r.bit_errors,
            r.error_rate(),
        ));
    }

    let mut sys = System::new(SystemConfig::paper_table2());
    let mut pnm = PnmCovertChannel::setup(&mut sys, 16)?;
    let r = pnm.transmit(&mut sys, &message)?;
    results.push((
        "IMPACT-PnM".into(),
        r.goodput_mbps(clock),
        r.bit_errors,
        r.error_rate(),
    ));

    let mut sys = System::new(SystemConfig::paper_table2());
    let mut pum = PumCovertChannel::setup(&mut sys, 16)?;
    let r = pum.transmit(&mut sys, &message)?;
    results.push((
        "IMPACT-PuM".into(),
        r.goodput_mbps(clock),
        r.bit_errors,
        r.error_rate(),
    ));

    results.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, mbps, errors, rate) in &results {
        println!("{name:<22} {mbps:>12.2} {errors:>10} {rate:>11.2}%");
    }
    println!("\npaper reference: PuM 14.8 Mb/s > PnM 8.2 Mb/s > clflush 2.29 > DMA 0.81");
    Ok(())
}
