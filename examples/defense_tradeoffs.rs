//! Security-vs-performance trade-offs of the four IMPACT defenses (§7):
//! how much each slows down honest workloads, and what it does to the
//! covert channel.
//!
//! ```text
//! cargo run --release --example defense_tradeoffs
//! ```

use impact::attacks::PnmCovertChannel;
use impact::core::config::SystemConfig;
use impact::core::rng::SimRng;
use impact::core::Error;
use impact::memctrl::{ActConfig, Defense, MprPartition};
use impact::sim::System;
use impact::workloads::graph::Graph;
use impact::workloads::{kernels, replay};

fn main() -> Result<(), Error> {
    let clock = SystemConfig::paper_table2().clock;
    let message = SimRng::seed(99).bits(1024);
    let graph = Graph::rmat(256, 1024, 5);
    let (_, trace) = kernels::bfs(&graph, 0);

    // Honest-workload baseline.
    let mut sys = System::new(SystemConfig::paper_table2_noiseless());
    let agent = sys.spawn_agent();
    let base = replay(&mut sys, agent, &trace)?;

    println!(
        "{:<18} {:>14} {:>14} {:>12}",
        "defense", "BFS slowdown", "channel Mb/s", "error rate"
    );

    let defenses: Vec<(&str, Defense)> = vec![
        ("None", Defense::None),
        ("CRP", Defense::Crp),
        ("CTD", Defense::Ctd),
        ("ACT-Aggressive", Defense::Act(ActConfig::aggressive())),
        ("ACT-Mild", Defense::Act(ActConfig::mild())),
        ("ACT-Conservative", Defense::Act(ActConfig::conservative())),
    ];

    for (name, defense) in defenses {
        // Workload cost.
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        sys.set_defense(defense.clone());
        let agent = sys.spawn_agent();
        let defended = replay(&mut sys, agent, &trace)?;
        let slowdown = defended.cycles.as_f64() / base.cycles.as_f64();

        // Attack effect.
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        sys.set_defense(defense);
        let mut ch = PnmCovertChannel::setup(&mut sys, 16)?;
        let r = ch.transmit(&mut sys, &message)?;
        println!(
            "{:<18} {:>13.2}x {:>14.2} {:>11.1}%",
            name,
            slowdown,
            r.goodput_mbps(clock),
            r.error_rate() * 100.0
        );
    }

    // MPR prevents co-location outright.
    let mut sys = System::new(SystemConfig::paper_table2_noiseless());
    let mut partition = MprPartition::new(16);
    partition.assign_round_robin(&[100, 200]); // banks belong to others
    sys.set_defense(Defense::Mpr(partition));
    match PnmCovertChannel::setup(&mut sys, 16) {
        Err(e) => println!("{:<18} {:>13} channel setup fails: {e}", "MPR", "n/a"),
        Ok(_) => println!("{:<18} unexpected: co-location allowed", "MPR"),
    }

    println!("\npaper conclusion (§7): every effective defense costs significant");
    println!("performance; ACT trades security for overhead without closing the channel.");
    Ok(())
}
