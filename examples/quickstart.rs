//! Quickstart: exchange a covert message between two processes through the
//! DRAM row buffer using PiM-enabled instructions (IMPACT-PnM).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use impact::attacks::channel::message_from_str;
use impact::attacks::PnmCovertChannel;
use impact::core::config::SystemConfig;
use impact::core::Error;
use impact::sim::System;

fn main() -> Result<(), Error> {
    // The paper's Table 2 machine, with prefetcher/page-walker noise on.
    let cfg = SystemConfig::paper_table2();
    let clock = cfg.clock;
    let mut sys = System::new(cfg);

    // Co-locate sender and receiver rows in all 16 banks and initialize.
    let mut channel = PnmCovertChannel::setup(&mut sys, 16)?;
    channel.set_trace(true);

    let message = message_from_str("1110010011100100"); // Fig. 8a
    let report = channel.transmit(&mut sys, &message)?;

    println!(
        "IMPACT-PnM covert channel (16 banks, threshold {} cycles)",
        report.threshold
    );
    println!("bank  sent  measured  decoded");
    for o in &report.observations {
        println!(
            "{:>4}  {:>4}  {:>8}  {:>7}",
            o.bank,
            u8::from(o.sent),
            o.measured,
            u8::from(o.decoded)
        );
    }
    println!();
    println!("bits sent      : {}", report.bits_sent);
    println!("bit errors     : {}", report.bit_errors);
    println!("elapsed        : {}", report.elapsed);
    println!("goodput        : {:.2} Mb/s", report.goodput_mbps(clock));
    Ok(())
}
