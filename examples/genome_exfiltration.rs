//! The IMPACT side channel on genomic read mapping (§4.3): a victim maps
//! private sequencing reads on a PiM-enabled system; an attacker sweeping
//! the DRAM banks reconstructs which hash-table entries the victim probed
//! and narrows down the query genome's regions.
//!
//! ```text
//! cargo run --release --example genome_exfiltration
//! ```

use impact::attacks::side_channel::{SideChannelAttack, SideChannelConfig};
use impact::core::config::SystemConfig;
use impact::core::Error;
use impact::genomics::imputation::candidate_buckets;
use impact::genomics::index::BankLayout;
use impact::sim::System;

fn main() -> Result<(), Error> {
    let banks = 1024u32;
    let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(banks);
    let clock = cfg.clock;
    let mut sys = System::new(cfg);

    let sc_cfg = SideChannelConfig::default();
    let table_buckets = sc_cfg.table_buckets;
    let attack = SideChannelAttack::new(sc_cfg);
    let report = attack.run(&mut sys)?;

    println!("victim: minimap2-style read mapper, hash table across {banks} banks");
    println!("attacker: row-buffer probe sweep with PiM-enabled instructions\n");
    println!("victim seeding probes   : {}", report.victim_accesses);
    println!("attacker probes         : {}", report.probes);
    println!("correct detections (TP) : {}", report.score.true_positives);
    println!("false detections  (FP)  : {}", report.score.false_positives);
    println!("missed/aliased    (FN)  : {}", report.score.false_negatives);
    println!(
        "error rate              : {:.2}%",
        report.error_rate() * 100.0
    );
    println!("leaked information      : {:.0} bits", report.leaked_bits);
    println!(
        "leakage throughput      : {:.2} Mb/s (paper: 7.57 Mb/s at 1024 banks)",
        report.throughput_mbps(clock)
    );

    // What one detection buys the attacker: the victim's probe is narrowed
    // to the hash-table entries resident in the detected bank (§6.3).
    let layout = BankLayout::new(banks as usize, table_buckets, 0);
    let example_bank = 42;
    let candidates = candidate_buckets(&layout, example_bank);
    println!(
        "\na detection in bank {example_bank} narrows the probed entry to {} of {} buckets ({:.0} bits)",
        candidates.len(),
        layout.buckets,
        layout.bits_per_identified_access()
    );
    println!(
        "candidate buckets: {:?} ...",
        &candidates[..8.min(candidates.len())]
    );
    Ok(())
}
