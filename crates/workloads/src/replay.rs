//! Trace replay through the simulated memory system.
//!
//! Replays a kernel's [`Trace`] on an [`impact_sim::System`] under the
//! configured defense and reports execution time — the Fig. 12 measurement.
//! The core model is in-order and blocking: execution time is the sum of
//! compute gaps and memory latencies, which makes defense-imposed latency
//! padding directly visible.

use impact_core::error::Result;
use impact_core::time::Cycles;
use impact_memctrl::ControllerBackend;
use impact_sim::{AgentId, Engine};

use crate::trace::{OpKind, Trace};

/// Result of replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Total execution cycles (compute + memory).
    pub cycles: Cycles,
    /// Operations replayed.
    pub ops: u64,
    /// Row-buffer hits observed at DRAM.
    pub row_hits: u64,
    /// Row misses observed at DRAM.
    pub row_misses: u64,
    /// Row conflicts observed at DRAM.
    pub row_conflicts: u64,
}

impl ReplayReport {
    /// Cycles per operation.
    #[must_use]
    pub fn cpo(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.cycles.as_f64() / self.ops as f64
        }
    }
}

/// Replays `trace` as `agent` on `sys`.
///
/// The trace footprint is backed by bank-striped physical memory and the
/// TLB is pre-warmed (the paper warms up before measuring, §5.2.1).
///
/// # Errors
///
/// Propagates allocation and access errors (e.g. MPR partition violations
/// when the workload was not granted the banks it touches).
pub fn replay<B: ControllerBackend>(
    sys: &mut Engine<B>,
    agent: AgentId,
    trace: &Trace,
) -> Result<ReplayReport> {
    let geometry = sys.config().dram_geometry;
    let rotation_bytes = u64::from(geometry.total_banks()) * geometry.row_bytes;
    let rotations = trace.footprint().div_ceil(rotation_bytes).max(1);
    let base = sys.alloc_bank_stripe(agent, rotations)?;
    sys.warm_tlb(
        agent,
        base,
        rotations * rotation_bytes / impact_core::addr::PAGE_SIZE,
    );

    let hits0 = sys.dram_totals();
    let start = sys.now(agent);
    for op in trace.ops() {
        sys.advance(agent, Cycles(u64::from(op.gap)));
        let va = base + op.offset;
        match op.kind {
            OpKind::Load => sys.load(agent, va)?,
            OpKind::Store => sys.store(agent, va)?,
        };
    }
    let stats = sys.dram_totals();
    Ok(ReplayReport {
        cycles: sys.now(agent) - start,
        ops: trace.len() as u64,
        row_hits: stats.hits - hits0.hits,
        row_misses: stats.misses - hits0.misses,
        row_conflicts: stats.conflicts - hits0.conflicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::kernels;
    use impact_core::config::SystemConfig;
    use impact_memctrl::Defense;
    use impact_sim::System;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    #[test]
    fn replay_accounts_time() {
        let g = Graph::uniform_random(64, 256, 1);
        let (_, trace) = kernels::bfs(&g, 0);
        let mut s = sys();
        let a = s.spawn_agent();
        let r = replay(&mut s, a, &trace).unwrap();
        assert_eq!(r.ops, trace.len() as u64);
        assert!(
            r.cycles > Cycles(trace.len() as u64),
            "too fast: {}",
            r.cycles
        );
    }

    #[test]
    fn ctd_slows_replay() {
        let g = Graph::uniform_random(64, 256, 1);
        let (_, trace) = kernels::bfs(&g, 0);

        let mut base_sys = sys();
        let a = base_sys.spawn_agent();
        let base = replay(&mut base_sys, a, &trace).unwrap();

        let mut ctd_sys = sys();
        let b = ctd_sys.spawn_agent();
        ctd_sys.set_defense(Defense::Ctd);
        let ctd = replay(&mut ctd_sys, b, &trace).unwrap();

        assert!(
            ctd.cycles > base.cycles,
            "CTD {} !> baseline {}",
            ctd.cycles,
            base.cycles
        );
    }

    #[test]
    fn xsbench_has_low_locality() {
        let (_, trace) = kernels::xsbench(200, 4096, 32, 2);
        let mut s = sys();
        let a = s.spawn_agent();
        let r = replay(&mut s, a, &trace).unwrap();
        // Random lookups: a meaningful fraction of DRAM traffic misses or
        // conflicts in the row buffer.
        let dram_total = r.row_hits + r.row_misses + r.row_conflicts;
        assert!(dram_total > 0);
        // (Binary-search upper levels and cached table entries produce
        // hits; the random gather still forces a solid miss/conflict tail.)
        assert!(
            r.row_misses + r.row_conflicts > dram_total / 8,
            "unexpectedly row-local: {r:?}"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let g = Graph::rmat(64, 256, 3);
        let (_, trace) = kernels::cc(&g);
        let run = || {
            let mut s = sys();
            let a = s.spawn_agent();
            replay(&mut s, a, &trace).unwrap().cycles
        };
        assert_eq!(run(), run());
    }
}
