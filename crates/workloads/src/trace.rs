//! Memory traces emitted by workload kernels.
//!
//! A trace records the data-structure accesses of a kernel as offsets into
//! a flat virtual footprint, with an estimate of the compute cycles between
//! consecutive accesses. Array regions are laid out by a [`TraceBuilder`]
//! so that different structures (offsets, edges, property arrays, lookup
//! tables) live at disjoint, page-aligned regions — giving the replayed
//! trace realistic cache/row-buffer locality per structure.

use impact_core::addr::PAGE_SIZE;

/// Kind of memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read.
    Load,
    /// Write.
    Store,
}

/// One traced operation: a byte offset into the workload footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte offset within the workload's flat footprint.
    pub offset: u64,
    /// Load or store.
    pub kind: OpKind,
    /// Compute cycles between the previous access and this one.
    pub gap: u16,
}

/// A kernel's memory trace plus its total footprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<MemOp>,
    footprint: u64,
}

impl Trace {
    /// The traced operations.
    #[must_use]
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Footprint in bytes (max offset rounded up to a page).
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Truncates the trace to at most `n` operations (for fast replay
    /// sweeps).
    pub fn truncate(&mut self, n: usize) {
        self.ops.truncate(n);
    }
}

/// Builds traces with named, page-aligned array regions.
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    ops: Vec<MemOp>,
    next_region: u64,
}

impl TraceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Reserves a region of `bytes` bytes, returning its base offset.
    pub fn region(&mut self, bytes: u64) -> u64 {
        let base = self.next_region;
        self.next_region += bytes.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE;
        base
    }

    /// Records a load of `bytes`-sized element `index` in the region at
    /// `base`, with `gap` compute cycles beforehand.
    pub fn load(&mut self, base: u64, index: u64, elem_bytes: u64, gap: u16) {
        self.ops.push(MemOp {
            offset: base + index * elem_bytes,
            kind: OpKind::Load,
            gap,
        });
    }

    /// Records a store, as [`TraceBuilder::load`].
    pub fn store(&mut self, base: u64, index: u64, elem_bytes: u64, gap: u16) {
        self.ops.push(MemOp {
            offset: base + index * elem_bytes,
            kind: OpKind::Store,
            gap,
        });
    }

    /// Finalizes the trace.
    #[must_use]
    pub fn finish(self) -> Trace {
        Trace {
            footprint: self.next_region.max(PAGE_SIZE),
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let mut b = TraceBuilder::new();
        let r1 = b.region(100);
        let r2 = b.region(5000);
        let r3 = b.region(1);
        assert_eq!(r1 % PAGE_SIZE, 0);
        assert_eq!(r2 % PAGE_SIZE, 0);
        assert!(r2 >= r1 + PAGE_SIZE);
        assert!(r3 >= r2 + 5000);
    }

    #[test]
    fn ops_record_offsets() {
        let mut b = TraceBuilder::new();
        let base = b.region(1024);
        b.load(base, 3, 8, 5);
        b.store(base, 0, 8, 1);
        let t = b.finish();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[0].offset, base + 24);
        assert_eq!(t.ops()[0].kind, OpKind::Load);
        assert_eq!(t.ops()[1].kind, OpKind::Store);
    }

    #[test]
    fn footprint_covers_regions() {
        let mut b = TraceBuilder::new();
        b.region(PAGE_SIZE * 3);
        b.region(10);
        let t = b.finish();
        assert_eq!(t.footprint(), PAGE_SIZE * 4);
    }

    #[test]
    fn truncate_limits_ops() {
        let mut b = TraceBuilder::new();
        let base = b.region(4096);
        for i in 0..100 {
            b.load(base, i, 8, 0);
        }
        let mut t = b.finish();
        t.truncate(10);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn empty_trace_has_min_footprint() {
        let t = TraceBuilder::new().finish();
        assert!(t.is_empty());
        assert_eq!(t.footprint(), PAGE_SIZE);
    }
}
