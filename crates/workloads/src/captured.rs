//! Captured backend traces as first-class workloads.
//!
//! Where [`crate::trace::Trace`] is a *synthetic* workload emitted by a
//! kernel, a [`CapturedTrace`] is a *recorded* one: the decoded contents
//! of an on-disk trace file written by `TracingBackend`'s spill mode (see
//! `impact_core::trace::codec`). Loading one turns any previously
//! recorded run — from this machine or another — into a replayable,
//! sweepable workload: replay a prefix into any fresh backend, verify the
//! response digest against the recorded footer, or summarize its request
//! mix per bank and per kind.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use impact_core::engine::{MemoryBackend, ReqKind};
use impact_core::error::{Error, Result};
use impact_core::trace::{
    fold_response, read_trace, replay_events, TraceEvent, TraceHeader, TraceSummary, DIGEST_INIT,
};

/// A fully decoded trace file: header, events, and the recorded run's
/// verifying footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedTrace {
    /// Decoded file header (codec version, config fingerprint and label,
    /// workload seed).
    pub header: TraceHeader,
    /// The event stream, in recording order.
    pub events: Vec<TraceEvent>,
    /// The recorded run's footer: event/response counts, response digest
    /// and final backend statistics.
    pub summary: TraceSummary,
}

/// Outcome of replaying a [`CapturedTrace`] prefix into a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayedPrefix {
    /// Responses the backend produced.
    pub responses: u64,
    /// [`fold_response`] digest over those responses, comparable with the
    /// recorded [`TraceSummary::response_digest`] when the whole trace was
    /// replayed.
    pub response_digest: u64,
    /// Sum of all response latencies, in cycles — the scalar the trace
    /// scenario sweeps report.
    pub total_latency: u64,
}

/// Per-kind and per-bank request mix of a captured trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestMix {
    /// Scalar demand loads.
    pub loads: u64,
    /// Scalar demand stores.
    pub stores: u64,
    /// Memory-side PiM accesses.
    pub pims: u64,
    /// Masked RowClone operations.
    pub rowclones: u64,
    /// Injected row activations (noise actors).
    pub injects: u64,
    /// Batch events (amortized `service_batch` boundaries).
    pub batches: u64,
    /// Largest batch in the trace.
    pub max_batch: u64,
    /// Requests per flat bank (index = bank). Requests whose bank the
    /// probing backend cannot resolve are counted in
    /// [`RequestMix::unmapped`].
    pub per_bank: Vec<u64>,
    /// Requests that mapped to no bank (out-of-range addresses).
    pub unmapped: u64,
}

impl RequestMix {
    /// Total operations counted (requests + injects).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.loads + self.stores + self.pims + self.rowclones + self.injects
    }
}

impl CapturedTrace {
    /// Decodes a whole trace from a reader.
    ///
    /// # Errors
    ///
    /// Propagates codec errors (truncation, version/format mismatches).
    pub fn read_from<R: Read>(r: R) -> Result<CapturedTrace> {
        let (header, events, summary) = read_trace(r)?;
        Ok(CapturedTrace {
            header,
            events,
            summary,
        })
    }

    /// Loads a trace file from disk.
    ///
    /// # Errors
    ///
    /// [`Error::TraceIo`] when the file cannot be opened; codec errors as
    /// for [`CapturedTrace::read_from`].
    pub fn load(path: &Path) -> Result<CapturedTrace> {
        let file = File::open(path)
            .map_err(|e| Error::TraceIo(format!("open {}: {e}", path.display())))?;
        CapturedTrace::read_from(BufReader::new(file))
    }

    /// Replays the first `events` events into `backend`, preserving
    /// request/batch boundaries, and reports the produced responses'
    /// count, digest and total latency. Pass `self.events.len()` to replay
    /// everything.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request, exactly like the original run.
    pub fn replay_prefix<B: MemoryBackend>(
        &self,
        backend: &mut B,
        events: usize,
    ) -> Result<ReplayedPrefix> {
        let mut out = ReplayedPrefix {
            responses: 0,
            response_digest: DIGEST_INIT,
            total_latency: 0,
        };
        let prefix = &self.events[..events.min(self.events.len())];
        replay_events(prefix, backend, |resp| {
            out.responses += 1;
            out.response_digest = fold_response(out.response_digest, &resp);
            out.total_latency += resp.latency.0;
        })?;
        Ok(out)
    }

    /// Summarizes the request mix, resolving banks through `backend`
    /// (typically a fresh backend of the recorded configuration).
    #[must_use]
    pub fn mix<B: MemoryBackend>(&self, backend: &B) -> RequestMix {
        let mut mix = RequestMix {
            per_bank: vec![0; backend.num_banks()],
            ..RequestMix::default()
        };
        let request = |mix: &mut RequestMix, req: &impact_core::engine::MemRequest| {
            match req.kind {
                ReqKind::Load => mix.loads += 1,
                ReqKind::Store => mix.stores += 1,
                ReqKind::Pim => mix.pims += 1,
                ReqKind::RowClone { .. } => mix.rowclones += 1,
            }
            match backend.bank_of(req.addr) {
                Some(bank) if bank < mix.per_bank.len() => mix.per_bank[bank] += 1,
                _ => mix.unmapped += 1,
            }
        };
        for ev in &self.events {
            match ev {
                TraceEvent::Request(req) => request(&mut mix, req),
                TraceEvent::Batch(reqs) => {
                    mix.batches += 1;
                    mix.max_batch = mix.max_batch.max(reqs.len() as u64);
                    for req in reqs {
                        request(&mut mix, req);
                    }
                }
                TraceEvent::Inject { bank, .. } => {
                    mix.injects += 1;
                    match mix.per_bank.get_mut(*bank) {
                        Some(count) => *count += 1,
                        None => mix.unmapped += 1,
                    }
                }
            }
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::addr::PhysAddr;
    use impact_core::config::SystemConfig;
    use impact_core::engine::MemRequest;
    use impact_core::time::Cycles;
    use impact_core::trace::{write_trace, TracingBackend};
    use impact_memctrl::MemoryController;

    fn recorded() -> (CapturedTrace, SystemConfig) {
        let cfg = SystemConfig::paper_table2();
        let mut traced = TracingBackend::new(MemoryController::from_config(&cfg));
        let mc = MemoryController::from_config(&cfg);
        let mut at = Cycles(0);
        let mut reqs = Vec::new();
        for i in 0..24u64 {
            let addr = mc.mapping().compose((i % 5) as usize, (i / 3) % 4, 0);
            reqs.push(MemRequest::load(addr, at, 0));
            at += Cycles(500);
        }
        for r in &reqs[..16] {
            traced.service(r).unwrap();
        }
        traced.service_batch(&reqs[16..]).unwrap();
        traced.inject_row_activation(2, 9, at, 7);
        let header = TraceHeader::for_config(&cfg, "paper_table2", 1);
        let bytes = write_trace(Vec::new(), &header, traced.log(), &traced.summary()).unwrap();
        (CapturedTrace::read_from(&bytes[..]).unwrap(), cfg)
    }

    #[test]
    fn full_replay_matches_recorded_footer() {
        let (captured, cfg) = recorded();
        let mut fresh = MemoryController::from_config(&cfg);
        let replayed = captured
            .replay_prefix(&mut fresh, captured.events.len())
            .unwrap();
        assert_eq!(replayed.responses, captured.summary.responses);
        assert_eq!(replayed.response_digest, captured.summary.response_digest);
        assert!(replayed.total_latency > 0);
        assert_eq!(fresh.backend_stats(), captured.summary.stats);
    }

    #[test]
    fn prefix_replay_is_monotonic() {
        let (captured, cfg) = recorded();
        let mut last = 0;
        for upto in [0, 5, captured.events.len()] {
            let mut fresh = MemoryController::from_config(&cfg);
            let replayed = captured.replay_prefix(&mut fresh, upto).unwrap();
            assert!(replayed.responses >= last);
            last = replayed.responses;
        }
        assert_eq!(last, captured.summary.responses);
    }

    #[test]
    fn mix_counts_kinds_and_banks() {
        let (captured, cfg) = recorded();
        let probe = MemoryController::from_config(&cfg);
        let mix = captured.mix(&probe);
        assert_eq!(mix.loads, 24);
        assert_eq!(mix.injects, 1);
        assert_eq!(mix.batches, 1);
        assert_eq!(mix.max_batch, 8);
        assert_eq!(mix.total_ops(), 25);
        assert_eq!(mix.per_bank.len(), 16);
        assert_eq!(mix.per_bank.iter().sum::<u64>(), 25);
        assert_eq!(mix.unmapped, 0);
        // Banks 0..5 carry the loads (i % 5); the rest stay idle.
        assert!(mix.per_bank[..5].iter().all(|&c| c > 0));
        assert!(mix.per_bank[5..].iter().all(|&c| c == 0));
    }

    #[test]
    fn load_surfaces_missing_files_as_trace_io() {
        let err = CapturedTrace::load(Path::new("/nonexistent/trace.bin"));
        assert!(matches!(err, Err(Error::TraceIo(_))));
    }

    #[test]
    fn out_of_range_requests_count_as_unmapped() {
        let cfg = SystemConfig::paper_table2();
        let captured = CapturedTrace {
            header: TraceHeader::for_config(&cfg, "paper_table2", 0),
            events: vec![TraceEvent::Request(MemRequest::load(
                PhysAddr(u64::MAX),
                Cycles(0),
                0,
            ))],
            summary: TraceSummary::default(),
        };
        let probe = MemoryController::from_config(&cfg);
        let mix = captured.mix(&probe);
        assert_eq!(mix.unmapped, 1);
        assert_eq!(mix.loads, 1);
    }
}
