//! Compressed-sparse-row graphs and generators.

use impact_core::rng::SimRng;

/// An undirected graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    edges: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` vertices. Each undirected
    /// edge is stored in both directions; self-loops and duplicates are
    /// removed.
    #[must_use]
    pub fn from_edges(n: usize, edge_list: &[(u32, u32)]) -> Graph {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edge_list {
            let (u, v) = (u as usize, v as usize);
            if u == v || u >= n || v >= n {
                continue;
            }
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            edges.extend_from_slice(list);
            offsets.push(edges.len());
        }
        Graph { offsets, edges }
    }

    /// Uniform random graph with `n` vertices and about `m` undirected
    /// edges (Erdős–Rényi style).
    #[must_use]
    pub fn uniform_random(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = SimRng::seed(seed);
        let list: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
            .collect();
        Graph::from_edges(n, &list)
    }

    /// RMAT-style skewed random graph (power-law-ish degree distribution),
    /// the GraphBIG-style input shape.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    #[must_use]
    pub fn rmat(n: usize, m: usize, seed: u64) -> Graph {
        assert!(
            n.is_power_of_two(),
            "RMAT needs a power-of-two vertex count"
        );
        let bits = n.trailing_zeros();
        let mut rng = SimRng::seed(seed);
        // Standard RMAT quadrant probabilities (a, b, c, d).
        let (a, b, c) = (0.57, 0.19, 0.19);
        let mut list = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..bits {
                let r = rng.unit();
                let (ub, vb) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (0, 1)
                } else if r < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | ub;
                v = (v << 1) | vb;
            }
            list.push((u, v));
        }
        Graph::from_edges(n, &list)
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edge entries (2× undirected edges).
    #[must_use]
    pub fn num_edge_entries(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.edges[self.offsets[v]..self.offsets[v + 1]]
    }

    /// CSR offset of `v`'s adjacency list (for trace address synthesis).
    #[must_use]
    pub fn edge_offset(&self, v: usize) -> usize {
        self.offsets[v]
    }

    /// Degree of `v`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetrizes_and_dedups() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 3)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[1]);
    }

    #[test]
    fn uniform_graph_shape() {
        let g = Graph::uniform_random(100, 400, 7);
        assert_eq!(g.num_vertices(), 100);
        assert!(
            g.num_edge_entries() > 600,
            "entries = {}",
            g.num_edge_entries()
        );
        // Symmetry: u in N(v) <=> v in N(u).
        for v in 0..100 {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u as usize).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn rmat_is_skewed() {
        let g = Graph::rmat(256, 2048, 3);
        let max_deg = (0..256).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edge_entries() / 256;
        assert!(
            max_deg > avg * 3,
            "max degree {max_deg} not skewed vs avg {avg}"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rmat_rejects_non_pow2() {
        let _ = Graph::rmat(100, 10, 1);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            Graph::uniform_random(50, 100, 9),
            Graph::uniform_random(50, 100, 9)
        );
        assert_eq!(Graph::rmat(64, 128, 9), Graph::rmat(64, 128, 9));
    }
}
