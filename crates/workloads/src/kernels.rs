//! The Fig. 12 workload kernels: BC, BFS, CC, TC (GraphBIG-style) and
//! XSBench.
//!
//! Every kernel computes its real algorithmic result *and* emits the memory
//! trace of its data-structure accesses. Array element sizes follow the
//! usual layouts (8-byte offsets/labels/scores, 4-byte edge ids).

use std::collections::VecDeque;

use impact_core::rng::SimRng;

use crate::graph::Graph;
use crate::trace::{Trace, TraceBuilder};

const OFF_BYTES: u64 = 8;
const EDGE_BYTES: u64 = 4;
const PROP_BYTES: u64 = 8;

struct GraphRegions {
    offsets: u64,
    edges: u64,
    prop_a: u64,
    prop_b: u64,
}

fn graph_regions(b: &mut TraceBuilder, g: &Graph) -> GraphRegions {
    let n = g.num_vertices() as u64;
    let m = g.num_edge_entries() as u64;
    GraphRegions {
        offsets: b.region((n + 1) * OFF_BYTES),
        edges: b.region(m.max(1) * EDGE_BYTES),
        prop_a: b.region(n.max(1) * PROP_BYTES),
        prop_b: b.region(n.max(1) * PROP_BYTES),
    }
}

/// Breadth-first search from `src`: returns per-vertex levels and the
/// memory trace.
#[must_use]
pub fn bfs(g: &Graph, src: usize) -> (Vec<Option<u32>>, Trace) {
    let n = g.num_vertices();
    let mut levels: Vec<Option<u32>> = vec![None; n];
    let mut b = TraceBuilder::new();
    let r = graph_regions(&mut b, g);
    let mut queue = VecDeque::new();
    if src < n {
        levels[src] = Some(0);
        queue.push_back(src);
    }
    while let Some(u) = queue.pop_front() {
        // Read the CSR offset pair, then stream the adjacency list.
        b.load(r.offsets, u as u64, OFF_BYTES, 2);
        let base = g.edge_offset(u) as u64;
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            b.load(r.edges, base + i as u64, EDGE_BYTES, 1);
            // Check the level of v (random access).
            b.load(r.prop_a, u64::from(v), PROP_BYTES, 2);
            let v = v as usize;
            if levels[v].is_none() {
                levels[v] = Some(levels[u].expect("u visited") + 1);
                b.store(r.prop_a, v as u64, PROP_BYTES, 1);
                queue.push_back(v);
            }
        }
    }
    (levels, b.finish())
}

/// Connected components by label propagation: returns per-vertex component
/// labels (minimum vertex id in the component) and the trace.
#[must_use]
pub fn cc(g: &Graph) -> (Vec<u32>, Trace) {
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut b = TraceBuilder::new();
    let r = graph_regions(&mut b, g);
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            b.load(r.offsets, u as u64, OFF_BYTES, 2);
            b.load(r.prop_a, u as u64, PROP_BYTES, 1);
            let base = g.edge_offset(u) as u64;
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                b.load(r.edges, base + i as u64, EDGE_BYTES, 1);
                b.load(r.prop_a, u64::from(v), PROP_BYTES, 1);
                let lv = labels[v as usize];
                if lv < labels[u] {
                    labels[u] = lv;
                    b.store(r.prop_a, u as u64, PROP_BYTES, 1);
                    changed = true;
                }
            }
        }
    }
    (labels, b.finish())
}

/// Triangle counting over sorted adjacency lists: returns the triangle
/// count and the trace.
#[must_use]
pub fn tc(g: &Graph) -> (u64, Trace) {
    let n = g.num_vertices();
    let mut triangles = 0u64;
    let mut b = TraceBuilder::new();
    let r = graph_regions(&mut b, g);
    for u in 0..n {
        b.load(r.offsets, u as u64, OFF_BYTES, 2);
        let nu = g.neighbors(u);
        let ubase = g.edge_offset(u) as u64;
        for (iu, &v) in nu.iter().enumerate() {
            if (v as usize) <= u {
                continue;
            }
            b.load(r.edges, ubase + iu as u64, EDGE_BYTES, 1);
            let nv = g.neighbors(v as usize);
            let vbase = g.edge_offset(v as usize) as u64;
            // Sorted-list intersection, counting w > v.
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                b.load(r.edges, ubase + i as u64, EDGE_BYTES, 1);
                b.load(r.edges, vbase + j as u64, EDGE_BYTES, 1);
                let (a, c) = (nu[i], nv[j]);
                if a == c {
                    if a > v {
                        triangles += 1;
                    }
                    i += 1;
                    j += 1;
                } else if a < c {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    (triangles, b.finish())
}

/// Betweenness centrality (Brandes) from the given source vertices:
/// returns per-vertex centrality and the trace.
#[must_use]
pub fn bc(g: &Graph, sources: &[usize]) -> (Vec<f64>, Trace) {
    let n = g.num_vertices();
    let mut centrality = vec![0.0f64; n];
    let mut b = TraceBuilder::new();
    let r = graph_regions(&mut b, g);
    for &s in sources {
        if s >= n {
            continue;
        }
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut stack = Vec::new();
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            stack.push(u);
            b.load(r.offsets, u as u64, OFF_BYTES, 2);
            let base = g.edge_offset(u) as u64;
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                b.load(r.edges, base + i as u64, EDGE_BYTES, 1);
                b.load(r.prop_a, u64::from(v), PROP_BYTES, 1);
                let v = v as usize;
                if dist[v] < 0 {
                    dist[v] = dist[u] + 1;
                    b.store(r.prop_a, v as u64, PROP_BYTES, 1);
                    queue.push_back(v);
                }
                if dist[v] == dist[u] + 1 {
                    sigma[v] += sigma[u];
                    b.store(r.prop_b, v as u64, PROP_BYTES, 1);
                    preds[v].push(u as u32);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            b.load(r.prop_b, w as u64, PROP_BYTES, 2);
            for &u in &preds[w] {
                let u = u as usize;
                b.load(r.prop_b, u as u64, PROP_BYTES, 1);
                delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
                b.store(r.prop_b, u as u64, PROP_BYTES, 1);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    (centrality, b.finish())
}

/// XSBench-style macroscopic cross-section lookups: binary search on a
/// unionized energy grid followed by random nuclide-table reads. Returns a
/// checksum (so the work cannot be optimized away) and the trace.
#[must_use]
pub fn xsbench(lookups: usize, grid_points: usize, nuclides: usize, seed: u64) -> (u64, Trace) {
    let grid_points = grid_points.max(2);
    let nuclides = nuclides.max(1);
    let mut rng = SimRng::seed(seed);
    let mut b = TraceBuilder::new();
    let energy_grid = b.region(grid_points as u64 * PROP_BYTES);
    let xs_table = b.region((grid_points * nuclides) as u64 * PROP_BYTES);
    let mut checksum = 0u64;
    for _ in 0..lookups {
        let target = rng.below(grid_points as u64);
        // Binary search over the energy grid.
        let (mut lo, mut hi) = (0u64, grid_points as u64 - 1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            b.load(energy_grid, mid, PROP_BYTES, 3);
            if mid < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        checksum = checksum.wrapping_add(lo);
        // Gather the cross sections of a handful of random nuclides at the
        // found grid point — scattered, low-locality reads.
        for _ in 0..5 {
            let nuc = rng.below(nuclides as u64);
            let idx = lo * nuclides as u64 + nuc;
            b.load(xs_table, idx, PROP_BYTES, 4);
            checksum = checksum.wrapping_add(idx);
        }
    }
    (checksum, b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path_graph(5);
        let (levels, trace) = bfs(&g, 0);
        assert_eq!(levels, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert!(!trace.is_empty());
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let (levels, _) = bfs(&g, 0);
        assert_eq!(levels[2], None);
        assert_eq!(levels[3], None);
    }

    #[test]
    fn cc_finds_components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (labels, _) = cc(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_ne!(labels[5], labels[3]);
    }

    #[test]
    fn tc_counts_triangles() {
        // A 4-clique has 4 triangles.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let (t, _) = tc(&g);
        assert_eq!(t, 4);
        // A path has none.
        let (t2, _) = tc(&path_graph(5));
        assert_eq!(t2, 0);
    }

    #[test]
    fn bc_path_center_is_highest() {
        let g = path_graph(5);
        let sources: Vec<usize> = (0..5).collect();
        let (c, _) = bc(&g, &sources);
        // The middle vertex lies on the most shortest paths.
        let max_idx = (0..5).max_by(|&a, &b| c[a].total_cmp(&c[b])).unwrap();
        assert_eq!(max_idx, 2, "centrality = {c:?}");
    }

    #[test]
    fn xsbench_deterministic_checksum() {
        let (c1, t1) = xsbench(100, 1000, 16, 5);
        let (c2, t2) = xsbench(100, 1000, 16, 5);
        assert_eq!(c1, c2);
        assert_eq!(t1.len(), t2.len());
        // ~log2(1000) ≈ 10 grid loads + 5 table loads per lookup.
        let per_lookup = t1.len() / 100;
        assert!((10..=20).contains(&per_lookup), "per lookup = {per_lookup}");
    }

    #[test]
    fn traces_have_disjoint_structure_regions() {
        let g = Graph::uniform_random(128, 512, 2);
        let (_, trace) = bfs(&g, 0);
        assert!(trace.footprint() > 0);
        assert!(trace.ops().iter().all(|o| o.offset < trace.footprint()));
    }

    #[test]
    fn kernels_on_rmat_run() {
        let g = Graph::rmat(128, 512, 4);
        let (levels, t1) = bfs(&g, 0);
        let (labels, t2) = cc(&g);
        let (tri, t3) = tc(&g);
        let (cent, t4) = bc(&g, &[0, 1]);
        assert_eq!(levels.len(), 128);
        assert_eq!(labels.len(), 128);
        assert_eq!(cent.len(), 128);
        let _ = tri;
        for t in [t1, t2, t3, t4] {
            assert!(!t.is_empty());
        }
    }
}

#[cfg(test)]
mod reference_tests {
    //! Kernels checked against independent reference implementations on
    //! randomized inputs.

    use super::*;

    /// Union-find reference for connected components.
    fn uf_components(g: &Graph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for u in 0..n {
            for &v in g.neighbors(u) {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v as usize));
                if ru != rv {
                    parent[ru.max(rv)] = ru.min(rv);
                }
            }
        }
        (0..n).map(|v| find(&mut parent, v) as u32).collect()
    }

    /// Brute-force O(n^3) triangle count.
    fn brute_triangles(g: &Graph) -> u64 {
        let n = g.num_vertices();
        let mut count = 0u64;
        for a in 0..n {
            for &b in g.neighbors(a) {
                let b = b as usize;
                if b <= a {
                    continue;
                }
                for &c in g.neighbors(b) {
                    let c = c as usize;
                    if c <= b {
                        continue;
                    }
                    if g.neighbors(a).binary_search(&(c as u32)).is_ok() {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Reference BFS distances via a plain queue (independent coding).
    fn ref_bfs(g: &Graph, src: usize) -> Vec<Option<u32>> {
        let n = g.num_vertices();
        let mut dist = vec![None; n];
        let mut frontier = vec![src];
        dist[src] = Some(0);
        let mut level = 0;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in g.neighbors(u) {
                    let v = v as usize;
                    if dist[v].is_none() {
                        dist[v] = Some(level);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    #[test]
    fn cc_matches_union_find_on_random_graphs() {
        for seed in 0..8 {
            let g = Graph::uniform_random(80, 90, seed);
            let (labels, _) = cc(&g);
            let reference = uf_components(&g);
            // Same partition: labels agree iff reference roots agree.
            for u in 0..80 {
                for v in (u + 1)..80 {
                    assert_eq!(
                        labels[u] == labels[v],
                        reference[u] == reference[v],
                        "seed {seed}: partition mismatch at ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn tc_matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g = Graph::uniform_random(40, 120, seed);
            let (fast, _) = tc(&g);
            assert_eq!(fast, brute_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn bfs_matches_reference_on_random_graphs() {
        for seed in 0..8 {
            let g = Graph::uniform_random(60, 100, seed);
            let (levels, _) = bfs(&g, 0);
            assert_eq!(levels, ref_bfs(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn bc_nonnegative_and_zero_on_leaves_of_star() {
        // In a star graph all shortest paths pass through the center.
        let edges: Vec<(u32, u32)> = (1..10).map(|i| (0, i)).collect();
        let g = Graph::from_edges(10, &edges);
        let sources: Vec<usize> = (0..10).collect();
        let (c, _) = bc(&g, &sources);
        assert!(c[0] > 0.0, "center centrality {}", c[0]);
        for (leaf, &score) in c.iter().enumerate().skip(1) {
            assert_eq!(score, 0.0, "leaf {leaf} has centrality");
        }
    }
}
