//! Workloads for the defense-overhead evaluation (Fig. 12 of the paper).
//!
//! The paper evaluates its defenses on four GraphBIG kernels — Betweenness
//! Centrality (BC), Breadth-First Search (BFS), Connected Components (CC),
//! Triangle Counting (TC) — plus XSBench (XS), a Monte Carlo neutron
//! transport proxy dominated by random table lookups.
//!
//! Each kernel here is a *real* implementation (it computes the right
//! answer, which the tests check) that simultaneously emits a memory trace
//! ([`trace::Trace`]) of its data-structure accesses. The trace is replayed
//! through the simulated memory system ([`replay()`]) under each defense to
//! measure normalized execution time.
//!
//! # Example
//!
//! ```
//! use impact_workloads::graph::Graph;
//! use impact_workloads::kernels;
//!
//! let g = Graph::uniform_random(64, 256, 1);
//! let (levels, trace) = kernels::bfs(&g, 0);
//! assert_eq!(levels[0], Some(0));
//! assert!(!trace.ops().is_empty());
//! ```

pub mod captured;
pub mod graph;
pub mod kernels;
pub mod replay;
pub mod trace;

pub use captured::{CapturedTrace, ReplayedPrefix, RequestMix};
pub use graph::Graph;
pub use replay::replay;
pub use replay::ReplayReport;
pub use trace::{MemOp, OpKind, Trace};
