//! Fixture-based tests for the analyzer: one good + one bad snippet per
//! rule R1–R5 and R7 (exact diagnostics asserted), plus a
//! `BackendStats`-style layer-2 fixture with a counter deliberately
//! missing from `merge`.
//!
//! The fixture files live under `tests/fixtures/` — a directory the
//! workspace walker deliberately skips, because these files exist to
//! *contain* violations.

use std::path::Path;

use impact_analyze::manifest::Manifest;
use impact_analyze::{classify, invariants, rules, Diagnostic};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Runs layer 1 over a fixture as if it lived at `rel_path` in the
/// workspace, so the fixture inherits that path's real classification.
fn check_at(rel_path: &str, name: &str) -> Vec<Diagnostic> {
    rules::check_source(&classify(rel_path), &fixture(name))
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn r1_good_is_clean() {
    let d = check_at("crates/sim/src/fixture.rs", "r1_unordered_iter_good.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r1_bad_flags_construction_iteration_and_for_loop() {
    let d = check_at("crates/sim/src/fixture.rs", "r1_unordered_iter_bad.rs");
    assert_eq!(lines_of(&d, "unordered-iter"), vec![10, 17, 21], "{d:?}");
    assert_eq!(d.len(), 3);
    assert!(d[0].message.contains("default randomized hasher"));
    assert!(d[1].message.contains("`per_bank`"));
}

#[test]
fn r1_is_scoped_to_deterministic_crates() {
    // The same violations in crates/bench are not R1 findings.
    let d = check_at("crates/bench/src/fixture.rs", "r1_unordered_iter_bad.rs");
    assert!(lines_of(&d, "unordered-iter").is_empty(), "{d:?}");
}

#[test]
fn r2_good_is_clean() {
    let d = check_at("crates/sim/src/fixture.rs", "r2_wall_clock_good.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r2_bad_flags_every_host_read() {
    let d = check_at("crates/sim/src/fixture.rs", "r2_wall_clock_bad.rs");
    // The `use` naming SystemTime, Instant::now, SystemTime::now, env::var.
    assert_eq!(lines_of(&d, "wall-clock"), vec![2, 5, 6, 7], "{d:?}");
    assert_eq!(d.len(), 4);
}

#[test]
fn r2_is_exempt_in_bench_and_tests() {
    let bench = check_at("crates/bench/src/fixture.rs", "r2_wall_clock_bad.rs");
    assert!(bench.is_empty(), "{bench:?}");
    let test = check_at("tests/fixture.rs", "r2_wall_clock_bad.rs");
    assert!(test.is_empty(), "{test:?}");
}

#[test]
fn r3_good_is_clean() {
    let d = check_at("crates/sim/src/fixture.rs", "r3_concurrency_good.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r3_bad_flags_threads_and_shared_state() {
    let d = check_at("crates/sim/src/fixture.rs", "r3_concurrency_bad.rs");
    // AtomicUsize + Mutex imports, Mutex::new, AtomicUsize::new,
    // thread::spawn.
    assert_eq!(lines_of(&d, "concurrency"), vec![3, 4, 8, 9, 10], "{d:?}");
    assert_eq!(d.len(), 5);
    assert!(d.iter().any(|d| d.message.contains("thread::spawn")));
}

#[test]
fn r3_is_exempt_at_the_sanctioned_sites() {
    for site in impact_analyze::SANCTIONED_CONCURRENCY {
        let d = rules::check_source(&classify(site), &fixture("r3_concurrency_bad.rs"));
        assert!(
            lines_of(&d, "concurrency").is_empty(),
            "{site} should be sanctioned: {d:?}"
        );
    }
}

#[test]
fn r4_good_is_clean() {
    let d = check_at("crates/dram/src/fixture.rs", "r4_lossy_cast_good.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r4_bad_flags_each_narrowing_cast() {
    let d = check_at("crates/dram/src/fixture.rs", "r4_lossy_cast_bad.rs");
    assert_eq!(lines_of(&d, "lossy-cast"), vec![3, 7, 11], "{d:?}");
    assert_eq!(d.len(), 3);
}

#[test]
fn r4_is_scoped_to_dram_and_memctrl() {
    let d = check_at("crates/sim/src/fixture.rs", "r4_lossy_cast_bad.rs");
    assert!(lines_of(&d, "lossy-cast").is_empty(), "{d:?}");
    let d = check_at("crates/memctrl/src/fixture.rs", "r4_lossy_cast_bad.rs");
    assert_eq!(lines_of(&d, "lossy-cast").len(), 3, "{d:?}");
}

#[test]
fn r5_good_is_clean() {
    let d = check_at("crates/sim/src/fixture.rs", "r5_unsafe_good.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r5_bad_flags_unsafe_even_in_tests() {
    let d = check_at("crates/sim/src/fixture.rs", "r5_unsafe_bad.rs");
    assert_eq!(lines_of(&d, "unsafe-code"), vec![3, 11], "{d:?}");
    assert_eq!(d.len(), 2);
    // Unlike R2/R3, a test-only path does not exempt R5.
    let d = check_at("tests/fixture.rs", "r5_unsafe_bad.rs");
    assert_eq!(lines_of(&d, "unsafe-code"), vec![3, 11], "{d:?}");
}

#[test]
fn r7_good_is_clean_everywhere() {
    for path in [
        "crates/analyze/src/fixture.rs",
        "crates/memctrl/src/sharded.rs",
        "crates/sim/src/fixture.rs",
    ] {
        let d = check_at(path, "r7_metrics_good.rs");
        assert!(d.is_empty(), "{path}: {d:?}");
    }
}

#[test]
fn r7_bad_flags_clocks_where_r2_is_exempt() {
    // A clock-exempt crate escapes R2; R7 still demands the obs sinks for
    // the `SystemTime` import and both clock reads.
    let d = check_at("crates/analyze/src/fixture.rs", "r7_metrics_bad.rs");
    assert_eq!(lines_of(&d, "metrics-placement"), vec![6, 13, 14], "{d:?}");
    assert!(lines_of(&d, "wall-clock").is_empty(), "{d:?}");
}

#[test]
fn r7_bad_flags_atomics_where_r3_is_sanctioned() {
    // The sharded pool escapes R3; R7 flags the `AtomicU64` import and
    // field (the clock reads there belong to R2, not R7 — no overlap).
    let d = check_at("crates/memctrl/src/sharded.rs", "r7_metrics_bad.rs");
    assert_eq!(lines_of(&d, "metrics-placement"), vec![5, 9], "{d:?}");
    assert_eq!(lines_of(&d, "wall-clock"), vec![6, 13, 14], "{d:?}");
    assert!(lines_of(&d, "concurrency").is_empty(), "{d:?}");
}

#[test]
fn r7_is_silent_in_the_sinks_themselves() {
    for path in ["crates/obs/src/lib.rs", "crates/bench/src/fixture.rs"] {
        let d = check_at(path, "r7_metrics_bad.rs");
        assert!(
            lines_of(&d, "metrics-placement").is_empty(),
            "{path}: {d:?}"
        );
    }
}

/// A codec snippet that carries every counter of the fixture struct, so
/// the only uncovered consumer is `merge`.
const FIXTURE_CODEC: &str = "
    fn finish(stats: &BackendStats) {
        let BackendStats { accesses, blocked, row_hammer_alerts } = *stats;
        for c in [accesses, blocked, row_hammer_alerts] { emit(c); }
    }
    fn read_footer() -> BackendStats {
        BackendStats { accesses: r(), blocked: r(), row_hammer_alerts: r() }
    }
";

#[test]
fn stats_fixture_reports_exactly_the_missing_merge_field() {
    let engine = fixture("stats_missing_merge.rs");
    let d = invariants::check_backend_stats(&engine, FIXTURE_CODEC, &Manifest::default());
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "stats-coverage");
    assert_eq!(d[0].line, 7, "anchors to the field declaration");
    assert!(
        d[0].message
            .contains("`row_hammer_alerts` is not folded in BackendStats::merge"),
        "{}",
        d[0].message
    );
}

#[test]
fn diagnostics_render_as_file_line_rule_message() {
    let d = check_at("crates/dram/src/fixture.rs", "r4_lossy_cast_bad.rs");
    let rendered = d[0].to_string();
    assert!(
        rendered.starts_with("crates/dram/src/fixture.rs:3: lossy-cast: "),
        "{rendered}"
    );
}
