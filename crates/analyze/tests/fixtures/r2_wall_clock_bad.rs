//! R2 violations: wall-clock and environment reads in deterministic code.
use std::time::{Instant, SystemTime};

fn seed_from_host() -> u64 {
    let t = Instant::now();
    let _ = SystemTime::now();
    let threads = std::env::var("THREADS").unwrap_or_default();
    t.elapsed().as_nanos() as u64 + threads.len() as u64
}
