//! R1 clean: Fx-hashed maps used for lookup only, Vec iteration, and a
//! justified iteration site.
use std::collections::HashMap;

use impact_core::hash::FxBuildHasher;

struct Tlb {
    index: HashMap<u64, usize, FxBuildHasher>,
    slots: Vec<u64>,
}

impl Tlb {
    fn lookup(&self, vpn: u64) -> Option<usize> {
        self.index.get(&vpn).copied()
    }

    fn sweep(&self) -> u64 {
        // Vec iteration is ordered; not a finding.
        self.slots.iter().sum()
    }

    fn sorted_keys(&self) -> Vec<u64> {
        // analyze::allow(unordered-iter): keys are sorted before use, so
        // map order cannot leak into results
        let mut keys: Vec<u64> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}
