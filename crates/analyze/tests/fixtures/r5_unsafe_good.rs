//! R5 clean: safe Rust only (the word `unsafe` in strings or comments is
//! not a finding — this comment itself must not trip the tokenizer).
fn safe_split(v: &mut [u64]) -> (&mut [u64], &mut [u64]) {
    let mid = v.len() / 2;
    let msg = "unsafe is only a string here";
    let _ = msg;
    v.split_at_mut(mid)
}
