//! R7-clean: telemetry routed through the obs registry. No wall-clock
//! reads, no ad-hoc atomics — the sinks own both, and a span timer covers
//! the timing need.
fn time_a_phase(work: impl FnOnce()) {
    let _span = impact_obs::registry().worker_busy_ns.span();
    impact_obs::registry().sharded_parallel_batches.incr();
    work();
}
