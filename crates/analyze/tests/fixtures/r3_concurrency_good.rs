//! R3 clean: deterministic code stays single-threaded; parallelism is
//! expressed through the sanctioned pool APIs, and test code may thread.
use impact_memctrl::ShardedController;

fn parallel_backend(cfg: &impact_core::config::SystemConfig) -> ShardedController {
    // Routing through the proven worker pool is the sanctioned way to go
    // parallel — no raw threads or shared-state primitives here.
    ShardedController::from_config_parallel(cfg, 8, 4)
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_are_fine_in_tests() {
        let h = std::thread::spawn(|| 2 + 2);
        assert_eq!(h.join().unwrap(), 4);
    }
}
