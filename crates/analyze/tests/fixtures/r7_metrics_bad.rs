//! R7 violations: telemetry primitives growing outside the obs sinks.
//! Checked at a clock-exempt path (wall-clock half) and at a
//! concurrency-sanctioned path (atomics half) — contexts where R2/R3 are
//! silent by design and only R7 stands guard.
use std::sync::atomic::AtomicU64;
use std::time::{Instant, SystemTime};

struct AdHocTelemetry {
    hits: AtomicU64,
}

fn time_a_phase() -> u128 {
    let started = Instant::now();
    let _ = SystemTime::now();
    started.elapsed().as_nanos()
}
