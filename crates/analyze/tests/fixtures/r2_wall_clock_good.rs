//! R2 clean: simulated time comes from the deterministic clock; host time
//! only appears inside test code.
use impact_core::time::{Clock, Cycles};

fn simulated_latency(clock: &Clock, cycles: Cycles) -> f64 {
    clock.cycles_to_ns(cycles)
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
