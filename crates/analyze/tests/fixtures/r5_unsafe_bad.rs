//! R5 violation: `unsafe` is forbidden workspace-wide, tests included.
fn read_first(v: &[u64]) -> u64 {
    unsafe { *v.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn even_in_tests() {
        let x = [1u64];
        let _ = unsafe { *x.as_ptr() };
    }
}
