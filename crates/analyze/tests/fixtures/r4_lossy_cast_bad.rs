//! R4 violations: narrowing casts of address-carrying values.
fn truncate_addr(addr: u64) -> u32 {
    addr as u32
}

fn truncate_row(row: u64, banks: u64) -> u16 {
    (row * banks) as u16
}

fn truncate_bank(flat_bank: usize) -> u8 {
    flat_bank as u8
}
