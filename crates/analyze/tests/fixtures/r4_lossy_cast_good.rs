//! R4 clean: widening casts, non-address narrowing, checked conversion,
//! and a justified bounded cast.
fn widen(bank: u32) -> u64 {
    u64::from(bank)
}

fn widen_as(bank: u32) -> u64 {
    bank as u64
}

fn narrow_non_address(retries: u64) -> u32 {
    (retries % 7) as u32
}

fn checked(addr: u64) -> u32 {
    u32::try_from(addr % 8192).expect("column bounded by row size")
}

fn justified(addr: u64, row_bytes: u64) -> u32 {
    // analyze::allow(lossy-cast): column < row_bytes, far below 2^32
    (addr % row_bytes) as u32
}
