//! R3 violations: ad-hoc threading and shared-state primitives outside
//! the sanctioned concurrency sites.
use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;
use std::thread;

fn fan_out(work: Vec<u64>) -> u64 {
    let total = Mutex::new(0u64);
    let counter = AtomicUsize::new(0);
    let handle = thread::spawn(move || work.into_iter().sum::<u64>());
    let _ = counter;
    *total.lock().unwrap() + handle.join().unwrap()
}
