//! Layer-2 fixture: a `BackendStats`-style struct whose new counter
//! (`row_hammer_alerts`) was wired into `PartialEq` and the codec-style
//! functions but forgotten in `merge` — the exact drift class PR 5 hit.
pub struct BackendStats {
    pub accesses: u64,
    pub blocked: u64,
    pub row_hammer_alerts: u64,
}

impl BackendStats {
    pub fn merge(&mut self, other: &BackendStats) {
        self.accesses += other.accesses;
        self.blocked += other.blocked;
    }
}

impl PartialEq for BackendStats {
    fn eq(&self, other: &BackendStats) -> bool {
        self.accesses == other.accesses
            && self.blocked == other.blocked
            && self.row_hammer_alerts == other.row_hammer_alerts
    }
}

impl core::ops::AddAssign for BackendStats {
    fn add_assign(&mut self, rhs: BackendStats) {
        self.merge(&rhs);
    }
}
