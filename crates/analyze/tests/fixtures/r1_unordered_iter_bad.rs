//! R1 violations: default-hashed construction, unordered iteration, and a
//! for-loop over a hash map.
use std::collections::HashMap;

struct Stats {
    per_bank: HashMap<usize, u64>,
}

fn build() -> HashMap<usize, u64> {
    let mut seen = HashMap::new();
    seen.insert(1, 2);
    seen
}

impl Stats {
    fn total(&self) -> u64 {
        self.per_bank.values().sum()
    }

    fn dump(&self) {
        for (bank, count) in &self.per_bank {
            println!("{bank}: {count}");
        }
    }
}
