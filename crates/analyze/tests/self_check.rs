//! Self-check: the analyzer runs clean on the real workspace, and each of
//! the three seeded-violation demos from the acceptance criteria produces
//! a `file:line` diagnostic when injected into *real* workspace sources.

use std::path::{Path, PathBuf};

use impact_analyze::manifest::Manifest;
use impact_analyze::{analyze_workspace, classify, invariants, rules};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze has a workspace two levels up")
        .to_path_buf()
}

fn read(rel: &str) -> String {
    let root = workspace_root();
    std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

#[test]
fn real_workspace_is_clean() {
    let diags = analyze_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "workspace has findings:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Seeding demo (a): a `HashMap` iteration added to a real `crates/sim`
/// source file is caught by R1 under that file's real classification.
#[test]
fn seeded_hashmap_iteration_in_sim_is_caught() {
    let rel = "crates/sim/src/tlb.rs";
    let clean = read(rel);
    assert!(rules::check_source(&classify(rel), &clean).is_empty());

    let seeded = format!(
        "{clean}\
         fn dump(map: &std::collections::HashMap<u64, u64>) -> u64 {{\n\
         \x20   map.values().sum()\n\
         }}\n"
    );
    let diags = rules::check_source(&classify(rel), &seeded);
    let hit = diags
        .iter()
        .find(|d| d.rule == "unordered-iter")
        .unwrap_or_else(|| panic!("no unordered-iter finding: {diags:?}"));
    // Anchored to the injected `.values()` line, one past the clean EOF.
    assert_eq!(hit.line as usize, clean.lines().count() + 2, "{hit}");
    assert!(hit.to_string().starts_with("crates/sim/src/tlb.rs:"));
}

/// Seeding demo (b): a new `BackendStats` field appended to the real
/// `engine.rs` but absent from `merge` (and everything downstream) is
/// caught by the layer-2 coverage check against the real codec.
#[test]
fn seeded_backend_stats_field_is_caught() {
    let engine = read("crates/core/src/engine.rs");
    let codec = read("crates/core/src/trace/codec.rs");
    let manifest = Manifest::parse(&read("analyze.toml")).expect("analyze.toml");
    assert!(invariants::check_backend_stats(&engine, &codec, &manifest).is_empty());

    let seeded = engine.replacen(
        "pub struct BackendStats {",
        "pub struct BackendStats {\n    pub seeded_counter: u64,",
        1,
    );
    assert_ne!(seeded, engine, "anchor struct not found");
    let diags = invariants::check_backend_stats(&seeded, &codec, &manifest);
    assert!(
        diags.iter().any(|d| d.rule == "stats-coverage"
            && d.message.contains("`seeded_counter`")
            && d.message.contains("merge")),
        "{diags:?}"
    );
    for d in &diags {
        assert!(
            d.to_string().starts_with("crates/core/src/engine.rs:"),
            "{d}"
        );
    }
}

/// Seeding demo (c): `thread::spawn` outside the sanctioned sites is
/// caught by R3, again under the file's real classification.
#[test]
fn seeded_thread_spawn_outside_sanctioned_sites_is_caught() {
    let rel = "crates/dram/src/mapping.rs";
    let clean = read(rel);
    assert!(rules::check_source(&classify(rel), &clean).is_empty());

    let seeded = format!("{clean}fn sneak() {{ std::thread::spawn(|| ()); }}\n");
    let diags = rules::check_source(&classify(rel), &seeded);
    let hit = diags
        .iter()
        .find(|d| d.rule == "concurrency")
        .unwrap_or_else(|| panic!("no concurrency finding: {diags:?}"));
    assert_eq!(hit.line as usize, clean.lines().count() + 1, "{hit}");
}

/// The seeded diagnostics above are what gate CI: any diagnostic makes
/// the binary exit non-zero. Exercise that end-to-end against a temp
/// workspace so the exit-code contract itself is under test.
#[test]
fn binary_exits_nonzero_on_a_seeded_workspace() {
    let bin = env!("CARGO_BIN_EXE_impact-analyze");
    let dir = std::env::temp_dir().join("impact-analyze-selfcheck");
    let src = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src).expect("temp workspace");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/sim\"]\n",
    )
    .unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "pub fn leak(m: &std::collections::HashMap<u64, u64>) -> u64 {\n\
         \x20   m.values().sum()\n\
         }\n",
    )
    .unwrap();

    let out = std::process::Command::new(bin)
        .args(["--root", dir.to_str().unwrap()])
        .output()
        .expect("run impact-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("crates/sim/src/lib.rs:2: unordered-iter:"),
        "stdout:\n{stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
