//! `impact-analyze`: offline determinism & concurrency static analysis
//! for the IMPACT workspace.
//!
//! The entire value of this reproduction rests on one invariant: every
//! backend, thread count, and trace replay is *bit-identical*. The runtime
//! equivalence suites prove that after the fact; this crate encodes the
//! invariants as a static-analysis pass that fails CI before a divergence
//! can reach them. Two layers:
//!
//! * **Layer 1** ([`rules`]) — token-level lints over every workspace
//!   source file: unordered hash-map iteration in deterministic crates
//!   (R1), wall-clock/environment reads (R2), ad-hoc concurrency outside
//!   the sanctioned worker pools (R3), lossy address casts in the
//!   dram/memctrl hot paths (R4), `unsafe` anywhere (R5), and
//!   copy-on-write unshare sites (`Arc::make_mut` & co.) outside the
//!   audited inventory (R6). Sites are justified with
//!   `// analyze::allow(<rule>): <reason>` comments.
//! * **Layer 2** ([`invariants`]) — cross-file field-set coverage:
//!   `BackendStats` ↔ merge/`AddAssign`/`PartialEq`/trace footer,
//!   `TraceEvent` ↔ codec encode/decode arms, configuration fields ↔
//!   `SystemConfig::fingerprint`, and `Engine` state fields ↔
//!   `Engine::snapshot`/`restore`, with intentional exclusions recorded
//!   in the [`manifest`] (`analyze.toml`).
//!
//! Diagnostics are `file:line: rule: message` lines; the binary exits
//! non-zero when any are produced, which is what gates CI.

pub mod invariants;
pub mod lexer;
pub mod manifest;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use manifest::Manifest;

/// One finding, formatted `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule identifier (see [`rules::RULES`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How one file is classified before the rules run.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path used in diagnostics.
    pub rel_path: String,
    /// R1 applies: part of a deterministic crate (simulation state or
    /// results flow through this code).
    pub deterministic: bool,
    /// R2 skipped: `crates/bench` (the only crate allowed to look at the
    /// host clock) or test-only code.
    pub clock_exempt: bool,
    /// R3 skipped: one of the two sanctioned concurrency sites.
    pub concurrency_sanctioned: bool,
    /// Whole file is test/bench/example code (R2/R3/R4 exempt).
    pub test_file: bool,
    /// R4 applies: dram/memctrl production source.
    pub addr_cast_checked: bool,
}

/// Crates whose state or output feeds simulated results; R1 applies here.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "dram",
    "memctrl",
    "sim",
    "pim",
    "attacks",
    "cache",
    "workloads",
    "genomics",
    "fleet",
];

/// The only files allowed to create threads or shared-state primitives.
/// `crates/obs` is the telemetry sink: its atomics (and `Instant` reads)
/// are the sanctioned home for counters and span timers, policed by R7
/// everywhere else.
pub const SANCTIONED_CONCURRENCY: &[&str] = &[
    "crates/memctrl/src/sharded.rs",
    "crates/bench/src/runner.rs",
    "crates/obs/src/lib.rs",
    "crates/fleet/src/scheduler.rs",
];

/// Classifies a workspace-relative path (always `/`-separated).
#[must_use]
pub fn classify(rel_path: &str) -> FileContext {
    let is_under = |dir: &str| rel_path.starts_with(&format!("{dir}/"));
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next());
    // `crates/<name>/{tests,benches,examples}` and the workspace-level
    // `tests/` and `examples/` dirs are test context end to end.
    let test_file = is_under("tests")
        || is_under("examples")
        || crate_name.is_some_and(|c| {
            is_under(&format!("crates/{c}/tests"))
                || is_under(&format!("crates/{c}/benches"))
                || is_under(&format!("crates/{c}/examples"))
        });
    let in_det_crate_src = crate_name
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c) && is_under(&format!("crates/{c}/src")))
        || is_under("src"); // the facade crate re-exports deterministic API
    FileContext {
        rel_path: rel_path.to_string(),
        deterministic: in_det_crate_src,
        clock_exempt: crate_name == Some("bench")
            || crate_name == Some("analyze")
            || crate_name == Some("obs")
            || test_file,
        concurrency_sanctioned: SANCTIONED_CONCURRENCY.contains(&rel_path),
        test_file,
        addr_cast_checked: !test_file
            && (is_under("crates/dram/src") || is_under("crates/memctrl/src")),
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// diagnostic order. Fixture trees (`tests/fixtures`) are skipped — they
/// exist to *contain* violations.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// The source roots scanned within a workspace: the facade plus every
/// member crate, excluding `third_party/` (vendored shims) and `target/`.
fn scan_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src"), root.join("tests"), root.join("examples")];
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut members: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for m in members {
            for sub in ["src", "tests", "benches", "examples"] {
                roots.push(m.join(sub));
            }
        }
    }
    roots
}

/// Runs both analysis layers over the workspace at `root`.
///
/// # Errors
///
/// Returns a message when a required file (layer-2 anchors) or the
/// manifest cannot be read/parsed. Individual unreadable source files are
/// reported as diagnostics instead of aborting the run.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let manifest = match fs::read_to_string(root.join("analyze.toml")) {
        Ok(text) => Manifest::parse(&text)?,
        Err(_) => Manifest::default(),
    };

    let mut diags = Vec::new();
    let mut files = Vec::new();
    for scan_root in scan_roots(root) {
        collect_rs(&scan_root, &mut files);
    }
    files.sort();
    files.dedup();

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(src) => {
                let ctx = classify(&rel);
                diags.extend(rules::check_source(&ctx, &src));
            }
            Err(e) => diags.push(Diagnostic {
                file: rel,
                line: 1,
                rule: "io".to_string(),
                message: format!("unreadable source file: {e}"),
            }),
        }
    }

    // Layer 2 anchors: these files define the cross-file invariants. A
    // missing anchor is itself a finding (exit 1), not an IO error —
    // renaming engine.rs must not silently disable the coverage checks.
    let mut read = |rel: &str| -> Option<String> {
        match fs::read_to_string(root.join(rel)) {
            Ok(src) => Some(src),
            Err(_) => {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: 1,
                    rule: "anchor-missing".to_string(),
                    message: "layer-2 anchor file not found; cross-file invariant \
                              checks cannot run against it"
                        .to_string(),
                });
                None
            }
        }
    };
    let engine = read(invariants::ENGINE_RS);
    let codec = read(invariants::CODEC_RS);
    let config = read(invariants::CONFIG_RS);
    let sim_engine = read(invariants::SIM_ENGINE_RS);
    let trace_mod = read("crates/core/src/trace/mod.rs");
    if let (Some(engine), Some(codec)) = (&engine, &codec) {
        diags.extend(invariants::check_backend_stats(engine, codec, &manifest));
    }
    if let (Some(trace_mod), Some(codec)) = (&trace_mod, &codec) {
        diags.extend(invariants::check_trace_events(trace_mod, codec));
    }
    if let Some(config) = &config {
        diags.extend(invariants::check_fingerprint(config, &manifest));
    }
    if let Some(sim_engine) = &sim_engine {
        diags.extend(invariants::check_engine_snapshot(sim_engine, &manifest));
    }

    diags.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    diags.dedup();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let sim = classify("crates/sim/src/engine.rs");
        assert!(sim.deterministic && !sim.clock_exempt && !sim.test_file);
        assert!(!sim.addr_cast_checked);

        let dram = classify("crates/dram/src/mapping.rs");
        assert!(dram.deterministic && dram.addr_cast_checked);

        let bench = classify("crates/bench/src/trace_tools.rs");
        assert!(!bench.deterministic && bench.clock_exempt);
        assert!(!bench.concurrency_sanctioned);

        let runner = classify("crates/bench/src/runner.rs");
        assert!(runner.concurrency_sanctioned);
        let sharded = classify("crates/memctrl/src/sharded.rs");
        assert!(sharded.concurrency_sanctioned);

        // The fleet epoch scheduler: deterministic (its output is the
        // population report) AND concurrency-sanctioned, like sharded.
        let fleet_sched = classify("crates/fleet/src/scheduler.rs");
        assert!(fleet_sched.deterministic && fleet_sched.concurrency_sanctioned);
        assert!(!fleet_sched.clock_exempt);
        let fleet_lib = classify("crates/fleet/src/lib.rs");
        assert!(fleet_lib.deterministic && !fleet_lib.concurrency_sanctioned);

        // The obs sink: clock-exempt, sanctioned atomics, but NOT part of
        // the deterministic state machine — telemetry never feeds results.
        let obs = classify("crates/obs/src/lib.rs");
        assert!(obs.clock_exempt && obs.concurrency_sanctioned);
        assert!(!obs.deterministic && !obs.test_file);

        let ws_test = classify("tests/determinism.rs");
        assert!(ws_test.test_file && ws_test.clock_exempt && !ws_test.deterministic);

        let crate_test = classify("crates/dram/tests/foo.rs");
        assert!(crate_test.test_file && !crate_test.addr_cast_checked);

        let facade = classify("src/lib.rs");
        assert!(facade.deterministic);
    }

    #[test]
    fn diagnostic_display_is_grep_friendly() {
        let d = Diagnostic {
            file: "crates/sim/src/x.rs".to_string(),
            line: 7,
            rule: "unordered-iter".to_string(),
            message: "m".to_string(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/x.rs:7: unordered-iter: m");
    }
}
