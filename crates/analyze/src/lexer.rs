//! A lightweight Rust tokenizer: just enough fidelity for line-accurate
//! pattern rules — string/char/lifetime/comment handling, nested block
//! comments, raw strings and raw identifiers — without a full parser.
//!
//! The build environment is offline, so `syn`/`proc-macro2` are not
//! available; the analysis layers above only need identifier/punctuation
//! streams with reliable line numbers, which this provides.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// Integer-ish literal (digits plus alphanumeric suffix characters).
    Number,
    /// String or byte-string literal (contents dropped).
    Str,
    /// Character literal (contents dropped).
    Char,
    /// Lifetime such as `'a` (quote dropped, name kept).
    Lifetime,
    /// Any single punctuation character.
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text: the identifier/number/lifetime spelling, or the single
    /// punctuation character. Empty for string/char literals.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// A captured `//` comment with its 1-indexed line.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-indexed line the comment sits on.
    pub line: u32,
    /// Comment text after the leading `//` (untrimmed).
    pub text: String,
}

/// Output of [`lex`]: the token stream plus every line comment (the rule
/// engine needs comments to find `analyze::allow` annotations).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `//` comments in source order.
    pub comments: Vec<LineComment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails: unterminated literals are consumed to end
/// of input, which is good enough for lint-style analysis (rustc itself
/// rejects such files long before CI runs the analyzer).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Consumes a double-quoted string body starting at the opening `"`
    // (index `i`), honoring backslash escapes; returns the index one past
    // the closing quote and the number of newlines crossed.
    let scan_string = |chars: &[char], mut i: usize, line: &mut u32| -> usize {
        debug_assert_eq!(chars[i], '"');
        i += 1;
        while i < chars.len() {
            match chars[i] {
                '\\' => i += 2,
                '"' => return i + 1,
                c => {
                    if c == '\n' {
                        *line += 1;
                    }
                    i += 1;
                }
            }
        }
        i
    };

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let mut j = i + 2;
                let mut text = String::new();
                while j < chars.len() && chars[j] != '\n' {
                    text.push(chars[j]);
                    j += 1;
                }
                out.comments.push(LineComment {
                    line: start_line,
                    text,
                });
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    match (chars[j], chars.get(j + 1)) {
                        ('/', Some('*')) => {
                            depth += 1;
                            j += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            j += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
            }
            '"' => {
                i = scan_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1).copied();
                if let Some(n) = next {
                    if is_ident_start(n) && chars.get(i + 2).copied() != Some('\'') {
                        let mut j = i + 1;
                        let mut text = String::new();
                        while j < chars.len() && is_ident_continue(chars[j]) {
                            text.push(chars[j]);
                            j += 1;
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Lifetime,
                            text,
                            line: start_line,
                        });
                        i = j;
                        continue;
                    }
                }
                // Char literal: consume escape or single char, then the
                // closing quote.
                let mut j = i + 1;
                if chars.get(j) == Some(&'\\') {
                    j += 2;
                } else {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                let mut text = String::new();
                while j < chars.len() && is_ident_continue(chars[j]) {
                    text.push(chars[j]);
                    j += 1;
                }
                // String prefixes: r"", r#""#, b"", br#""#, c"", cr#""#,
                // and raw identifiers r#name.
                let prefix = matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr");
                if prefix && chars.get(j) == Some(&'"') {
                    i = scan_string(&chars, j, &mut line);
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                    continue;
                }
                if prefix && chars.get(j) == Some(&'#') {
                    let mut hashes = 0usize;
                    let mut k = j;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') {
                        // Raw string: scan for `"` followed by `hashes` #s.
                        let mut m = k + 1;
                        'raw: while m < chars.len() {
                            if chars[m] == '\n' {
                                line += 1;
                            } else if chars[m] == '"' {
                                let mut h = 0usize;
                                while chars.get(m + 1 + h) == Some(&'#') {
                                    h += 1;
                                }
                                if h >= hashes {
                                    m += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            m += 1;
                        }
                        i = m;
                        out.tokens.push(Token {
                            kind: TokKind::Str,
                            text: String::new(),
                            line: start_line,
                        });
                        continue;
                    }
                    if text == "r"
                        && hashes == 1
                        && chars.get(k).copied().is_some_and(is_ident_start)
                    {
                        // Raw identifier r#name: emit `name`.
                        let mut m = k;
                        let mut name = String::new();
                        while m < chars.len() && is_ident_continue(chars[m]) {
                            name.push(chars[m]);
                            m += 1;
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Ident,
                            text: name,
                            line: start_line,
                        });
                        i = m;
                        continue;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Digits plus alphanumeric suffix chars (0xff, 1_000u64).
                // Dots are NOT consumed: `0..10` stays three tokens and
                // `1.5` lexes as Number '.' Number — fine for lint rules.
                let mut j = i;
                let mut text = String::new();
                while j < chars.len() && is_ident_continue(chars[j]) {
                    text.push(chars[j]);
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    text,
                    line: start_line,
                });
                i = j;
            }
            c => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Computes, for every token, whether it sits inside test-only code: an
/// item annotated `#[cfg(test)]` / `#[test]` (attributes containing a
/// bare `test` ident, except under `not(...)`), including the whole body
/// of a `#[cfg(test)] mod`.
#[must_use]
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = scan_attr(tokens, i + 1);
            if is_test {
                // Skip any further attributes, then mark the whole item.
                let mut j = attr_end;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let (next_end, _) = scan_attr(tokens, j + 1);
                    j = next_end;
                }
                let item_end = scan_item(tokens, j);
                for t in in_test.iter_mut().take(item_end).skip(i) {
                    *t = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Scans one `[...]` attribute starting at the `[` token index; returns
/// (index one past the closing `]`, whether the attribute marks test-only
/// code).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (j + 1, saw_test && !saw_not);
            }
        } else if t.is_ident("test") {
            saw_test = true;
        } else if t.is_ident("not") {
            saw_not = true;
        }
        j += 1;
    }
    (tokens.len(), false)
}

/// Finds the end of the item starting at `start`: the first `;` at brace
/// depth zero, or the matching `}` of the first `{` encountered.
fn scan_item(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "Mutex inside a string";
            // Mutex inside a comment
            /* Mutex /* nested */ still comment */
            let b = r#"raw Mutex"#;
            let c = 'M';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Mutex".to_string()), "{ids:?}");
        assert_eq!(ids, ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nlet c = 2;\n";
        let lexed = lex(src);
        let c = lexed.tokens.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 6);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1; // trailing\n// analyze::allow(unsafe-code): because\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].text.contains("analyze::allow"));
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn prod2() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let at = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(!regions[at("prod")]);
        assert!(regions[at("t")]);
        assert!(!regions[at("prod2")]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn prod() { body(); }";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let at = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("body"))
            .unwrap();
        assert!(!regions[at]);
    }

    #[test]
    fn test_attribute_covers_following_fn_only() {
        let src = "#[test]\nfn a_test() { x(); }\nfn prod() { y(); }";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let at = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(regions[at("x")]);
        assert!(!regions[at("y")]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let ids = idents("let r#type = 1;");
        assert_eq!(ids, ["let", "type"]);
    }
}
