//! Layer 2: cross-file invariant checks.
//!
//! These checks parse struct/enum/impl bodies out of the token stream and
//! verify *field-set coverage* — the drift class runtime tests catch late:
//!
//! * every `BackendStats` field must be folded by `merge`, covered by
//!   `AddAssign` (directly or by delegating to `merge`), compared by the
//!   manual `PartialEq`, and carried by the trace-footer codec
//!   (`TraceWriter::finish` + `TraceReader::read_footer`) — or listed in
//!   `analyze.toml` with a reason;
//! * every `TraceEvent` variant must have both an encode arm
//!   (`write_event`) and a decode arm (`next_event`);
//! * every configuration field in `config.rs` must feed
//!   `SystemConfig::fingerprint` — or be manifest-excluded;
//! * every `Engine` state field must be captured by `Engine::snapshot`
//!   and rewound by `Engine::restore` — or be manifest-excluded — so a
//!   future field cannot silently escape forking.

use crate::lexer::{lex, TokKind, Token};
use crate::manifest::Manifest;
use crate::Diagnostic;

/// Source files the invariant checks anchor to, relative to the root.
pub const ENGINE_RS: &str = "crates/core/src/engine.rs";
/// Trace codec path (encode/decode arms + footer counters).
pub const CODEC_RS: &str = "crates/core/src/trace/codec.rs";
/// Configuration path (fingerprint coverage).
pub const CONFIG_RS: &str = "crates/core/src/config.rs";
/// The whole-system engine (snapshot/restore field coverage).
pub const SIM_ENGINE_RS: &str = "crates/sim/src/engine.rs";

/// One named field with the line it is declared on.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field (or variant) identifier.
    pub name: String,
    /// 1-indexed declaration line.
    pub line: u32,
}

/// Returns the fields of `struct name { .. }`, or `None` when the struct
/// is absent (tuple/unit structs have no named fields and return `None`).
#[must_use]
pub fn struct_fields(tokens: &[Token], name: &str) -> Option<Vec<Field>> {
    let open = item_open_brace(tokens, "struct", name)?;
    let body = brace_range(tokens, open)?;
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut expect_field = true;
    let mut i = body.start;
    while i < body.end {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(',') {
                expect_field = true;
            } else if t.is_punct('#') {
                // Skip a field attribute.
                if let Some(next) = tokens.get(i + 1) {
                    if next.is_punct('[') {
                        let mut d = 0i32;
                        let mut j = i + 1;
                        while j < body.end {
                            if tokens[j].is_punct('[') {
                                d += 1;
                            } else if tokens[j].is_punct(']') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                        i = j;
                    }
                }
            } else if expect_field
                && t.kind == TokKind::Ident
                && t.text != "pub"
                && t.text != "crate"
                && tokens.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && !tokens.get(i + 2).is_some_and(|x| x.is_punct(':'))
            {
                fields.push(Field {
                    name: t.text.clone(),
                    line: t.line,
                });
                expect_field = false;
            }
        }
        i += 1;
    }
    Some(fields)
}

/// Returns the variants of `enum name { .. }`.
#[must_use]
pub fn enum_variants(tokens: &[Token], name: &str) -> Option<Vec<Field>> {
    let open = item_open_brace(tokens, "enum", name)?;
    let body = brace_range(tokens, open)?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect = true;
    for t in &tokens[body.start..body.end] {
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(',') {
                expect = true;
            } else if expect && t.kind == TokKind::Ident {
                variants.push(Field {
                    name: t.text.clone(),
                    line: t.line,
                });
                expect = false;
            }
        }
    }
    Some(variants)
}

/// Token index range (exclusive of the braces themselves).
#[derive(Debug, Clone, Copy)]
pub struct Range {
    /// First token index inside the braces.
    pub start: usize,
    /// One past the last token index inside the braces.
    pub end: usize,
}

/// Finds `"{kw} {name}"` and returns the index of the `{` opening its body.
fn item_open_brace(tokens: &[Token], kw: &str, name: &str) -> Option<usize> {
    for i in 0..tokens.len() {
        if tokens[i].is_ident(kw) && tokens.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            // Skip generics / where clauses up to the opening brace.
            for (j, t) in tokens.iter().enumerate().skip(i + 2) {
                if t.is_punct('{') {
                    return Some(j);
                }
                if t.is_punct(';') {
                    break; // unit struct / tuple struct decl
                }
            }
        }
    }
    None
}

/// Returns the token range enclosed by the brace at `open`.
fn brace_range(tokens: &[Token], open: usize) -> Option<Range> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(Range {
                    start: open + 1,
                    end: j,
                });
            }
        }
    }
    None
}

/// Body token range of the first `fn name` in the file.
#[must_use]
pub fn fn_body(tokens: &[Token], name: &str) -> Option<Range> {
    for i in 0..tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            for (j, t) in tokens.iter().enumerate().skip(i + 2) {
                if t.is_punct('{') {
                    return brace_range(tokens, j);
                }
                if t.is_punct(';') {
                    break; // trait method signature without a body
                }
            }
        }
    }
    None
}

/// Union of the body ranges of every `impl .. Trait .. for Type { .. }`.
#[must_use]
pub fn impl_bodies(tokens: &[Token], trait_name: &str, type_name: &str) -> Vec<Range> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            // Header runs to the opening brace; require the trait name, a
            // `for`, and the type name to all appear in it.
            let mut saw_trait = false;
            let mut saw_for = false;
            let mut saw_type = false;
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                if tokens[j].is_ident(trait_name) {
                    saw_trait = true;
                } else if tokens[j].is_ident("for") {
                    saw_for = true;
                } else if saw_for && tokens[j].is_ident(type_name) {
                    saw_type = true;
                }
                j += 1;
            }
            if j < tokens.len() && saw_trait && saw_for && saw_type {
                if let Some(r) = brace_range(tokens, j) {
                    out.push(r);
                    i = r.end;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// How a field occurs inside a token range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Identifier not present at all.
    Absent,
    /// Present, but every occurrence is a discarded `name: _` binding.
    Discarded,
    /// At least one occurrence actually uses the value.
    Used,
}

/// Classifies how `name` is used within `range`.
#[must_use]
pub fn coverage(tokens: &[Token], range: Range, name: &str) -> Coverage {
    let mut seen = false;
    for i in range.start..range.end.min(tokens.len()) {
        if !tokens[i].is_ident(name) {
            continue;
        }
        seen = true;
        let discarded = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("_"));
        if !discarded {
            return Coverage::Used;
        }
    }
    if seen {
        Coverage::Discarded
    } else {
        Coverage::Absent
    }
}

fn used_in_any(tokens: &[Token], ranges: &[Range], name: &str) -> bool {
    ranges
        .iter()
        .any(|&r| coverage(tokens, r, name) == Coverage::Used)
}

/// True when `type_name`'s `#[derive(...)]` list names `trait_name` — a
/// derived impl compares (or clones, hashes, ...) every field by
/// construction, so per-field coverage holds without a manual impl.
#[must_use]
pub fn derives(tokens: &[Token], type_name: &str, trait_name: &str) -> bool {
    for i in 0..tokens.len() {
        if tokens[i].is_ident("struct") && tokens.get(i + 1).is_some_and(|t| t.is_ident(type_name))
        {
            // The attribute block sits between the previous item's end
            // (`;` or `}`, or file start) and the `struct` keyword.
            let start = tokens[..i]
                .iter()
                .rposition(|t| t.is_punct(';') || t.is_punct('}'))
                .map_or(0, |p| p + 1);
            let mut saw_derive = false;
            for t in &tokens[start..i] {
                if t.is_ident("derive") {
                    saw_derive = true;
                } else if saw_derive && t.is_ident(trait_name) {
                    return true;
                }
            }
            return false;
        }
    }
    false
}

/// Every struct defined with named fields in a file, in source order.
#[must_use]
pub fn all_structs(tokens: &[Token]) -> Vec<(String, Vec<Field>)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("struct") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    if let Some(fields) = struct_fields(tokens, &name_tok.text) {
                        out.push((name_tok.text.clone(), fields));
                    }
                }
            }
        }
    }
    out
}

/// Checks `BackendStats` coverage across `engine.rs` and the codec.
#[must_use]
pub fn check_backend_stats(
    engine_src: &str,
    codec_src: &str,
    manifest: &Manifest,
) -> Vec<Diagnostic> {
    let engine = lex(engine_src).tokens;
    let codec = lex(codec_src).tokens;
    let mut diags = Vec::new();

    let Some(fields) = struct_fields(&engine, "BackendStats") else {
        return vec![Diagnostic {
            file: ENGINE_RS.to_string(),
            line: 1,
            rule: "stats-coverage".to_string(),
            message: "struct BackendStats not found".to_string(),
        }];
    };

    let merge = fn_body(&engine, "merge");
    let eq_derived = derives(&engine, "BackendStats", "PartialEq");
    let eq_bodies = impl_bodies(&engine, "PartialEq", "BackendStats");
    let add_bodies = impl_bodies(&engine, "AddAssign", "BackendStats");
    let finish = fn_body(&codec, "finish");
    let footer = fn_body(&codec, "read_footer");

    // AddAssign may cover every field at once by delegating to `merge`.
    let add_delegates = add_bodies
        .iter()
        .any(|&r| coverage(&engine, r, "merge") == Coverage::Used);

    let mut diag = |line: u32, file: &str, msg: String| {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: "stats-coverage".to_string(),
            message: msg,
        });
    };

    for f in &fields {
        let n = &f.name;
        if !merge.is_some_and(|r| coverage(&engine, r, n) == Coverage::Used)
            && !manifest.excludes("backend_stats.merge_exclude", n)
        {
            diag(
                f.line,
                ENGINE_RS,
                format!(
                    "BackendStats field `{n}` is not folded in BackendStats::merge \
                     (or listed in analyze.toml [backend_stats] merge_exclude)"
                ),
            );
        }
        if !add_delegates
            && !used_in_any(&engine, &add_bodies, n)
            && !manifest.excludes("backend_stats.merge_exclude", n)
        {
            diag(
                f.line,
                ENGINE_RS,
                format!("BackendStats field `{n}` is not covered by AddAssign"),
            );
        }
        if !eq_derived
            && !used_in_any(&engine, &eq_bodies, n)
            && !manifest.excludes("backend_stats.partialeq_exclude", n)
        {
            diag(
                f.line,
                ENGINE_RS,
                format!(
                    "BackendStats field `{n}` is not compared by PartialEq — derive it, \
                     compare the field in the manual impl, or list it in analyze.toml \
                     [backend_stats] partialeq_exclude"
                ),
            );
        }
        let in_codec = finish.is_some_and(|r| coverage(&codec, r, n) == Coverage::Used)
            && footer.is_some_and(|r| coverage(&codec, r, n) == Coverage::Used);
        if !in_codec && !manifest.excludes("backend_stats.codec_exclude", n) {
            diag(
                f.line,
                ENGINE_RS,
                format!(
                    "BackendStats field `{n}` is not carried by the trace-footer codec \
                     (TraceWriter::finish + TraceReader::read_footer), nor listed in \
                     analyze.toml [backend_stats] codec_exclude"
                ),
            );
        }
    }
    diags
}

/// Checks that every `TraceEvent` variant has encode and decode arms.
#[must_use]
pub fn check_trace_events(trace_mod_src: &str, codec_src: &str) -> Vec<Diagnostic> {
    let trace_mod = lex(trace_mod_src).tokens;
    let codec = lex(codec_src).tokens;
    let mut diags = Vec::new();

    let Some(variants) = enum_variants(&trace_mod, "TraceEvent") else {
        return vec![Diagnostic {
            file: CODEC_RS.to_string(),
            line: 1,
            rule: "trace-coverage".to_string(),
            message: "enum TraceEvent not found".to_string(),
        }];
    };
    let encode = fn_body(&codec, "write_event");
    let decode = fn_body(&codec, "next_event");
    for v in &variants {
        let n = &v.name;
        if !encode.is_some_and(|r| coverage(&codec, r, n) == Coverage::Used) {
            diags.push(Diagnostic {
                file: CODEC_RS.to_string(),
                line: v.line,
                rule: "trace-coverage".to_string(),
                message: format!("TraceEvent::{n} has no encode arm in TraceWriter::write_event"),
            });
        }
        if !decode.is_some_and(|r| coverage(&codec, r, n) == Coverage::Used) {
            diags.push(Diagnostic {
                file: CODEC_RS.to_string(),
                line: v.line,
                rule: "trace-coverage".to_string(),
                message: format!("TraceEvent::{n} has no decode arm in TraceReader::next_event"),
            });
        }
    }
    diags
}

/// Checks that every configuration field feeds `fingerprint()`.
#[must_use]
pub fn check_fingerprint(config_src: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    let config = lex(config_src).tokens;
    let mut diags = Vec::new();
    let Some(body) = fn_body(&config, "fingerprint") else {
        return vec![Diagnostic {
            file: CONFIG_RS.to_string(),
            line: 1,
            rule: "fingerprint-coverage".to_string(),
            message: "fn fingerprint not found".to_string(),
        }];
    };
    for (struct_name, fields) in all_structs(&config) {
        for f in fields {
            let key = format!("{struct_name}.{}", f.name);
            if coverage(&config, body, &f.name) != Coverage::Used
                && !manifest.excludes("fingerprint.exclude", &key)
            {
                diags.push(Diagnostic {
                    file: CONFIG_RS.to_string(),
                    line: f.line,
                    rule: "fingerprint-coverage".to_string(),
                    message: format!(
                        "configuration field `{key}` does not feed SystemConfig::fingerprint \
                         (or analyze.toml [fingerprint] exclude); trace replays could not \
                         detect a config mismatch in it"
                    ),
                });
            }
        }
    }
    diags
}

/// Checks that every `Engine` state field is captured by
/// `Engine::snapshot` and rewound by `Engine::restore`. A field that
/// appears in neither would silently escape forking: a fork would share
/// (or reset) it while from-scratch runs rebuild it, and the divergence
/// only surfaces once that state affects an output — exactly the drift
/// class the fork-equivalence proptests catch late and this check
/// catches at CI time. Intentionally unsnapshotted fields are listed in
/// `analyze.toml [engine_snapshot] exclude` with a reason.
#[must_use]
pub fn check_engine_snapshot(sim_engine_src: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    let engine = lex(sim_engine_src).tokens;
    let mut diags = Vec::new();
    let Some(fields) = struct_fields(&engine, "Engine") else {
        return vec![Diagnostic {
            file: SIM_ENGINE_RS.to_string(),
            line: 1,
            rule: "snapshot-coverage".to_string(),
            message: "struct Engine not found".to_string(),
        }];
    };
    let snapshot = fn_body(&engine, "snapshot");
    let restore = fn_body(&engine, "restore");
    for f in &fields {
        let n = &f.name;
        if manifest.excludes("engine_snapshot.exclude", n) {
            continue;
        }
        if !snapshot.is_some_and(|r| coverage(&engine, r, n) == Coverage::Used) {
            diags.push(Diagnostic {
                file: SIM_ENGINE_RS.to_string(),
                line: f.line,
                rule: "snapshot-coverage".to_string(),
                message: format!(
                    "Engine field `{n}` is not captured by Engine::snapshot (or listed in \
                     analyze.toml [engine_snapshot] exclude); forks would silently drop it"
                ),
            });
        }
        if !restore.is_some_and(|r| coverage(&engine, r, n) == Coverage::Used) {
            diags.push(Diagnostic {
                file: SIM_ENGINE_RS.to_string(),
                line: f.line,
                rule: "snapshot-coverage".to_string(),
                message: format!(
                    "Engine field `{n}` is not rewound by Engine::restore (or listed in \
                     analyze.toml [engine_snapshot] exclude); restore would leave it stale"
                ),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: &str = "
        pub struct BackendStats {
            pub accesses: u64,
            pub padded: u64,
            pub extra: u64,
        }
        impl BackendStats {
            pub fn merge(&mut self, other: &BackendStats) {
                self.accesses += other.accesses;
                self.padded += other.padded;
            }
        }
        impl PartialEq for BackendStats {
            fn eq(&self, other: &BackendStats) -> bool {
                let BackendStats { accesses, padded, extra: _ } = *self;
                accesses == other.accesses && padded == other.padded
            }
        }
        impl core::ops::AddAssign for BackendStats {
            fn add_assign(&mut self, rhs: BackendStats) { self.merge(&rhs); }
        }
    ";

    const CODEC: &str = "
        fn finish(stats: &BackendStats) {
            let BackendStats { accesses, padded, extra: _ } = *stats;
            emit(accesses); emit(padded);
        }
        fn read_footer() -> BackendStats {
            BackendStats { accesses: r(), padded: r(), ..BackendStats::default() }
        }
    ";

    #[test]
    fn uncovered_field_is_reported_per_consumer() {
        let d = check_backend_stats(STATS, CODEC, &Manifest::default());
        // `extra` is missing from merge, discarded in PartialEq, and
        // absent from the codec; AddAssign delegates to merge so it does
        // not complain separately.
        let msgs: Vec<_> = d.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(d.len(), 3, "{msgs:?}");
        assert!(msgs.iter().all(|m| m.contains("`extra`")));
        assert!(msgs.iter().any(|m| m.contains("merge")));
        assert!(msgs.iter().any(|m| m.contains("PartialEq")));
        assert!(msgs.iter().any(|m| m.contains("codec")));
        // Diagnostics anchor to the field's declaration line.
        assert!(d.iter().all(|d| d.line == 5));
    }

    #[test]
    fn derived_partialeq_covers_every_field() {
        // A `#[derive(PartialEq)]` compares all fields by construction,
        // so only merge and codec coverage can still be missing.
        let stats = "
            #[derive(Debug, Clone, Default, PartialEq)]
            pub struct BackendStats {
                pub accesses: u64,
                pub extra: u64,
            }
            impl BackendStats {
                pub fn merge(&mut self, other: &BackendStats) {
                    self.accesses += other.accesses;
                }
            }
            impl core::ops::AddAssign for BackendStats {
                fn add_assign(&mut self, rhs: BackendStats) { self.merge(&rhs); }
            }
        ";
        let codec = "
            fn finish(stats: &BackendStats) { emit(stats.accesses); }
            fn read_footer() -> BackendStats {
                BackendStats { accesses: r(), ..BackendStats::default() }
            }
        ";
        let d = check_backend_stats(stats, codec, &Manifest::default());
        let msgs: Vec<_> = d.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(d.len(), 2, "{msgs:?}");
        assert!(msgs.iter().all(|m| m.contains("`extra`")));
        assert!(!msgs.iter().any(|m| m.contains("PartialEq")), "{msgs:?}");
    }

    #[test]
    fn derive_detection_does_not_leak_from_the_previous_item() {
        let src = "
            #[derive(PartialEq)]
            struct Other { a: u64 }
            struct BackendStats { b: u64 }
        ";
        let tokens = lex(src).tokens;
        assert!(derives(&tokens, "Other", "PartialEq"));
        assert!(!derives(&tokens, "BackendStats", "PartialEq"));
    }

    #[test]
    fn manifest_exclusions_silence_the_report() {
        let m = Manifest::parse(
            "[backend_stats]\nmerge_exclude = [\"extra\"]\n\
             partialeq_exclude = [\"extra\"]\ncodec_exclude = [\"extra\"]\n",
        )
        .unwrap();
        assert!(check_backend_stats(STATS, CODEC, &m).is_empty());
    }

    #[test]
    fn trace_variant_without_decode_arm_is_reported() {
        let trace_mod = "pub enum TraceEvent { Request(MemRequest), Inject { bank: usize } }";
        let codec = "
            fn write_event(ev: &TraceEvent) {
                match ev { TraceEvent::Request(r) => e(r), TraceEvent::Inject { bank } => i(bank) }
            }
            fn next_event() -> TraceEvent {
                TraceEvent::Request(read())
            }
        ";
        let d = check_trace_events(trace_mod, codec);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Inject"));
        assert!(d[0].message.contains("decode"));
    }

    #[test]
    fn fingerprint_misses_unreferenced_fields() {
        let config = "
            pub struct SystemConfig { pub cores: u32, pub phantom_knob: u64 }
            impl SystemConfig {
                pub fn fingerprint(&self) -> u64 { fold(self.cores) }
            }
        ";
        let d = check_fingerprint(config, &Manifest::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SystemConfig.phantom_knob"));
        let m =
            Manifest::parse("[fingerprint]\nexclude = [\"SystemConfig.phantom_knob\"]\n").unwrap();
        assert!(check_fingerprint(config, &m).is_empty());
    }

    #[test]
    fn engine_snapshot_misses_uncovered_fields() {
        let engine = "
            pub struct Engine<B: MemoryBackend> { backend: B, tlbs: Vec<Tlb>, scratch: u64 }
            impl<B: MemoryBackend + Snapshot> Snapshot for Engine<B> {
                fn snapshot(&self) -> EngineSnapshot<B::Snap> {
                    EngineSnapshot { backend: self.backend.snapshot(), tlbs: self.tlbs.clone() }
                }
                fn restore(&mut self, snap: &EngineSnapshot<B::Snap>) {
                    self.backend.restore(&snap.backend);
                    self.tlbs.clone_from(&snap.tlbs);
                }
            }
        ";
        let d = check_engine_snapshot(engine, &Manifest::default());
        // `scratch` is missing from both snapshot and restore.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.message.contains("`scratch`")));
        assert!(d.iter().any(|d| d.message.contains("snapshot")));
        assert!(d.iter().any(|d| d.message.contains("restore")));
        let m = Manifest::parse("[engine_snapshot]\nexclude = [\"scratch\"]\n").unwrap();
        assert!(check_engine_snapshot(engine, &m).is_empty());
    }

    #[test]
    fn struct_fields_skip_generic_type_arguments() {
        let toks =
            lex("struct S { index: HashMap<u64, usize, FxBuildHasher>, hand: usize }").tokens;
        let f = struct_fields(&toks, "S").unwrap();
        let names: Vec<_> = f.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["index", "hand"]);
    }

    #[test]
    fn enum_variants_skip_payload_fields() {
        let toks = lex(
            "pub enum TraceEvent { Request(MemRequest), Batch(Vec<MemRequest>), \
             Inject { bank: usize, row: u64 } }",
        )
        .tokens;
        let v = enum_variants(&toks, "TraceEvent").unwrap();
        let names: Vec<_> = v.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["Request", "Batch", "Inject"]);
    }
}
