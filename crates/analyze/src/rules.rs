//! Layer 1: per-file determinism & concurrency lint rules R1–R7.
//!
//! Every rule is a token-pattern check over the [`crate::lexer`] stream;
//! a site can be justified with a
//! `// analyze::allow(<rule>): <reason>` comment on the same or the
//! preceding line. The reason is mandatory — an allow comment without one
//! is itself a diagnostic.

use std::collections::BTreeMap;

use crate::lexer::{lex, test_regions, LineComment, TokKind, Token};
use crate::{Diagnostic, FileContext};

/// Rule identifiers, as spelled inside `analyze::allow(...)`.
pub const RULES: &[&str] = &[
    "unordered-iter",
    "wall-clock",
    "concurrency",
    "lossy-cast",
    "unsafe-code",
    "cow-aliasing",
    "metrics-placement",
    "allow-syntax",
    "stats-coverage",
    "trace-coverage",
    "fingerprint-coverage",
    "snapshot-coverage",
];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark a value as address-carrying for R4.
/// `slot` (a bank-view storage index), `lane` (a RowClone lane's
/// `(bank, row)` tuple) and `shard` (a bank-derived shard index) joined
/// with the bucketed batch paths: all three are remapped bank
/// coordinates, so narrowing them silently corrupts routing exactly like
/// narrowing a raw bank index.
const ADDR_FRAGMENTS: &[&str] = &[
    "addr", "row", "col", "bank", "vpn", "page", "phys", "virt", "slot", "lane", "shard",
];

/// One parsed `analyze::allow` annotation.
#[derive(Debug)]
struct Allow {
    rule: String,
    has_reason: bool,
    used: bool,
}

/// Parses every `analyze::allow(rule): reason` comment, keyed by line.
fn parse_allows(comments: &[LineComment]) -> BTreeMap<u32, Vec<Allow>> {
    let mut out: BTreeMap<u32, Vec<Allow>> = BTreeMap::new();
    for c in comments {
        let t = c.text.trim();
        let Some(rest) = t.strip_prefix("analyze::allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.entry(c.line).or_default().push(Allow {
                rule: String::new(),
                has_reason: false,
                used: false,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.entry(c.line).or_default().push(Allow {
            rule,
            has_reason,
            used: false,
        });
    }
    out
}

/// The rule engine for one file.
struct Checker<'a> {
    ctx: &'a FileContext,
    tokens: &'a [Token],
    in_test: Vec<bool>,
    allows: BTreeMap<u32, Vec<Allow>>,
    /// Code line covered by each allow comment → allow-comment lines.
    /// An allow covers its own line (trailing comment) and the line of
    /// the first token after it (comment block above the site).
    coverage: BTreeMap<u32, Vec<u32>>,
    diags: Vec<Diagnostic>,
}

/// Maps each allow-comment line to the code line it covers: its own line
/// plus the line of the first token that follows it (so a multi-line
/// comment block still covers the site beneath it).
fn allow_coverage(allows: &BTreeMap<u32, Vec<Allow>>, tokens: &[Token]) -> BTreeMap<u32, Vec<u32>> {
    let mut coverage: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &line in allows.keys() {
        coverage.entry(line).or_default().push(line);
        if let Some(next) = tokens.iter().map(|t| t.line).find(|&l| l > line) {
            coverage.entry(next).or_default().push(line);
        }
    }
    coverage
}

impl Checker<'_> {
    /// Emits `rule` at `line` unless an allow comment with a reason covers
    /// that code line.
    fn emit(&mut self, rule: &str, line: u32, message: String) {
        let comment_lines = self.coverage.get(&line).cloned().unwrap_or_default();
        for l in comment_lines {
            if let Some(list) = self.allows.get_mut(&l) {
                if let Some(a) = list.iter_mut().find(|a| a.rule == rule && a.has_reason) {
                    a.used = true;
                    return;
                }
            }
        }
        self.diags.push(Diagnostic {
            file: self.ctx.rel_path.clone(),
            line,
            rule: rule.to_string(),
            message,
        });
    }

    /// Malformed allow comments are diagnostics in their own right: a
    /// justification-free escape hatch defeats the audit trail.
    fn check_allow_syntax(&mut self) {
        let mut bad = Vec::new();
        for (&line, list) in &self.allows {
            for a in list {
                if !RULES.contains(&a.rule.as_str()) {
                    bad.push((
                        line,
                        format!(
                            "analyze::allow names unknown rule `{}` (known: {})",
                            a.rule,
                            RULES.join(", ")
                        ),
                    ));
                } else if !a.has_reason {
                    bad.push((
                        line,
                        format!(
                            "analyze::allow({}) is missing its `: <reason>` justification",
                            a.rule
                        ),
                    ));
                }
            }
        }
        for (line, message) in bad {
            self.diags.push(Diagnostic {
                file: self.ctx.rel_path.clone(),
                line,
                rule: "allow-syntax".to_string(),
                message,
            });
        }
    }

    /// R1 pass 1: names bound to `HashMap`/`HashSet` values in this file —
    /// `name: HashMap<..>` field/param declarations and
    /// `let name = .. HashMap..` bindings.
    fn hash_names(&self) -> Vec<String> {
        let t = self.tokens;
        let mut names = Vec::new();
        for i in 0..t.len() {
            if !(t[i].is_ident("HashMap") || t[i].is_ident("HashSet")) {
                continue;
            }
            // Walk back over leading `path::` segments to the start of the
            // type path, then look for `name :` immediately before it.
            let mut k = i;
            while k >= 3
                && t[k - 1].is_punct(':')
                && t[k - 2].is_punct(':')
                && t[k - 3].kind == TokKind::Ident
            {
                k -= 3;
            }
            // Skip reference sigils and lifetimes so `name: &mut HashMap`
            // and `name: &'a HashMap` still bind the name.
            while k >= 1
                && (t[k - 1].is_punct('&')
                    || t[k - 1].is_ident("mut")
                    || t[k - 1].kind == TokKind::Lifetime)
            {
                k -= 1;
            }
            if k >= 2
                && t[k - 1].is_punct(':')
                && !t[k - 2].is_punct(':')
                && t[k - 2].kind == TokKind::Ident
            {
                names.push(t[k - 2].text.clone());
            }
        }
        // `let [mut] name = ... HashMap/HashSet ... ;`
        let mut i = 0usize;
        while i < t.len() {
            if t[i].is_ident("let") {
                let mut j = i + 1;
                if t.get(j).is_some_and(|x| x.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name_tok) = t.get(j) {
                    if name_tok.kind == TokKind::Ident {
                        let name = name_tok.text.clone();
                        let mut k = j + 1;
                        while k < t.len() && !t[k].is_punct(';') && k < j + 200 {
                            if t[k].is_ident("HashMap") || t[k].is_ident("HashSet") {
                                names.push(name);
                                break;
                            }
                            k += 1;
                        }
                    }
                }
            }
            i += 1;
        }
        names.sort();
        names.dedup();
        names
    }

    /// R1: unordered iteration / default-hashed construction in
    /// deterministic crates (test modules included — order leaks make
    /// tests flaky too).
    fn rule_unordered_iter(&mut self) {
        if !self.ctx.deterministic {
            return;
        }
        let names = self.hash_names();
        let t = self.tokens;
        let mut flagged = Vec::new();
        for i in 0..t.len() {
            // Default-hasher construction: HashMap::new / with_capacity
            // (with an optional `::<..>` turbofish in between).
            if t[i].is_ident("HashMap") || t[i].is_ident("HashSet") {
                let mut j = i + 1;
                if t.get(j).is_some_and(|x| x.is_punct(':'))
                    && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                {
                    j += 2;
                    if t.get(j).is_some_and(|x| x.is_punct('<')) {
                        let mut depth = 0i32;
                        while j < t.len() {
                            if t[j].is_punct('<') {
                                depth += 1;
                            } else if t[j].is_punct('>') {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                        if t.get(j).is_some_and(|x| x.is_punct(':'))
                            && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                        {
                            j += 2;
                        }
                    }
                    if t.get(j)
                        .is_some_and(|x| x.is_ident("new") || x.is_ident("with_capacity"))
                    {
                        flagged.push((
                            t[i].line,
                            format!(
                                "{}::{} uses the default randomized hasher in a deterministic \
                                 crate; use FxBuildHasher (impact_core::hash) or an ordered \
                                 structure",
                                t[i].text, t[j].text
                            ),
                        ));
                    }
                }
            }
            // `recv.iter()` style iteration over a known hash collection.
            if t[i].is_punct('.')
                && t.get(i + 2).is_some_and(|x| x.is_punct('('))
                && t.get(i + 1).is_some_and(|x| {
                    x.kind == TokKind::Ident && ITER_METHODS.contains(&x.text.as_str())
                })
                && i >= 1
                && t[i - 1].kind == TokKind::Ident
                && names.contains(&t[i - 1].text)
            {
                flagged.push((
                    t[i + 1].line,
                    format!(
                        "iteration (`.{}`) over hash-ordered collection `{}`; hash-map order \
                         must never reach deterministic state or output",
                        t[i + 1].text,
                        t[i - 1].text
                    ),
                ));
            }
            // `for x in [&][mut] [self.]name {`.
            if t[i].is_ident("in") {
                let mut j = i + 1;
                while t
                    .get(j)
                    .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
                {
                    j += 1;
                }
                if t.get(j).is_some_and(|x| x.is_ident("self"))
                    && t.get(j + 1).is_some_and(|x| x.is_punct('.'))
                {
                    j += 2;
                }
                if t.get(j)
                    .is_some_and(|x| x.kind == TokKind::Ident && names.contains(&x.text))
                    && t.get(j + 1).is_some_and(|x| x.is_punct('{'))
                {
                    flagged.push((
                        t[j].line,
                        format!(
                            "for-loop over hash-ordered collection `{}`; hash-map order must \
                             never reach deterministic state or output",
                            t[j].text
                        ),
                    ));
                }
            }
        }
        for (line, msg) in flagged {
            self.emit("unordered-iter", line, msg);
        }
    }

    /// R2: wall-clock / environment reads outside `crates/bench` and tests.
    fn rule_wall_clock(&mut self) {
        if self.ctx.clock_exempt {
            return;
        }
        let t = self.tokens;
        let mut flagged = Vec::new();
        for i in 0..t.len() {
            if self.in_test[i] {
                continue;
            }
            if t[i].is_ident("SystemTime") {
                flagged.push((t[i].line, "SystemTime read".to_string()));
            }
            if t[i].is_ident("Instant")
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| x.is_ident("now"))
            {
                flagged.push((t[i].line, "Instant::now read".to_string()));
            }
            if t[i].is_ident("env")
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| {
                    x.is_ident("var") || x.is_ident("var_os") || x.is_ident("vars")
                })
            {
                flagged.push((t[i].line, "process environment read".to_string()));
            }
        }
        for (line, what) in flagged {
            self.emit(
                "wall-clock",
                line,
                format!(
                    "{what} in deterministic code: simulated results must not depend on host \
                     time or environment (confine to crates/bench or tests)"
                ),
            );
        }
    }

    /// R3: ad-hoc concurrency outside the sanctioned sites
    /// (`memctrl::sharded` worker pool, `bench::runner`, the `obs` sinks).
    fn rule_concurrency(&mut self) {
        if self.ctx.concurrency_sanctioned {
            return;
        }
        let t = self.tokens;
        let mut flagged = Vec::new();
        for i in 0..t.len() {
            if self.in_test[i] {
                continue;
            }
            let tok = &t[i];
            if tok.kind != TokKind::Ident {
                continue;
            }
            let what = if tok.text == "thread"
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| {
                    x.is_ident("spawn") || x.is_ident("scope") || x.is_ident("Builder")
                }) {
                Some(format!("thread::{}", t[i + 3].text))
            } else if matches!(tok.text.as_str(), "Mutex" | "RwLock" | "Condvar" | "mpsc")
                || (tok.text.starts_with("Atomic") && tok.text.len() > "Atomic".len())
            {
                Some(tok.text.clone())
            } else {
                None
            };
            if let Some(what) = what {
                flagged.push((tok.line, what));
            }
        }
        for (line, what) in flagged {
            self.emit(
                "concurrency",
                line,
                format!(
                    "`{what}` outside the sanctioned concurrency sites (memctrl::sharded worker \
                     pool, bench::runner, fleet::scheduler, the obs sinks); route new \
                     parallelism through the proven pools and telemetry through impact_obs"
                ),
            );
        }
    }

    /// R4: narrowing `as` casts of address-carrying values in the
    /// dram/memctrl hot paths.
    fn rule_lossy_cast(&mut self) {
        if !self.ctx.addr_cast_checked {
            return;
        }
        let t = self.tokens;
        let mut flagged = Vec::new();
        for i in 0..t.len() {
            if self.in_test[i] || !t[i].is_ident("as") {
                continue;
            }
            let Some(target) = t.get(i + 1) else { continue };
            if !(target.kind == TokKind::Ident && NARROW_TARGETS.contains(&target.text.as_str())) {
                continue;
            }
            // Scan the cast source expression backwards to the statement
            // boundary, collecting identifiers.
            let mut depth = 0i32;
            let mut j = i;
            let mut culprit: Option<String> = None;
            let mut steps = 0;
            while j > 0 && steps < 40 {
                j -= 1;
                steps += 1;
                let tok = &t[j];
                if tok.is_punct(')') || tok.is_punct(']') {
                    depth += 1;
                } else if tok.is_punct('(') || tok.is_punct('[') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0
                    && (tok.is_punct(';')
                        || tok.is_punct('{')
                        || tok.is_punct('}')
                        || tok.is_punct(',')
                        || tok.is_punct('=')
                        || tok.is_ident("let")
                        || tok.is_ident("return"))
                {
                    break;
                } else if tok.kind == TokKind::Ident {
                    let lower = tok.text.to_ascii_lowercase();
                    if ADDR_FRAGMENTS.iter().any(|f| lower.contains(f)) {
                        culprit = Some(tok.text.clone());
                    }
                }
            }
            if let Some(culprit) = culprit {
                flagged.push((
                    t[i].line,
                    format!(
                        "narrowing `as {}` cast of address-carrying value (`{culprit}`) in a \
                         dram/memctrl hot path; use a checked conversion or justify the bound",
                        target.text
                    ),
                ));
            }
        }
        for (line, msg) in flagged {
            self.emit("lossy-cast", line, msg);
        }
    }

    /// R6: copy-on-write alias-breaking operations in deterministic
    /// production code. `Arc::make_mut` (and `get_mut`/`try_unwrap`) is
    /// the only way simulation state behind a shared `Arc` may be
    /// written — a snapshot or fork may hold the other reference, so
    /// every unshare site is part of the fork-equivalence contract and
    /// must say *which* state it unshares. Conversely, mutating shared
    /// state any other way (interior mutability, re-wrapping) would leak
    /// writes into live forks; keeping the audited inventory exhaustive
    /// is what makes `Engine::fork` reviewable.
    fn rule_cow_aliasing(&mut self) {
        if !self.ctx.deterministic {
            return;
        }
        let t = self.tokens;
        let mut flagged = Vec::new();
        for i in 0..t.len() {
            if self.in_test[i] {
                continue;
            }
            if !(t[i].is_ident("Arc") || t[i].is_ident("Rc")) {
                continue;
            }
            if t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| {
                    x.is_ident("make_mut") || x.is_ident("get_mut") || x.is_ident("try_unwrap")
                })
            {
                flagged.push((t[i].line, format!("{}::{}", t[i].text, t[i + 3].text)));
            }
        }
        for (line, what) in flagged {
            self.emit(
                "cow-aliasing",
                line,
                format!(
                    "`{what}` unshares copy-on-write state that a snapshot or fork may \
                     alias; the site is part of the fork-equivalence contract — justify \
                     which state it unshares and why the write cannot leak to a fork"
                ),
            );
        }
    }

    /// R7: metrics placement — the obs sinks are the only unconditionally
    /// sanctioned wall-clock/atomics site outside `crates/bench`. R2 and
    /// R3 police *deterministic* code; this rule covers the exempt
    /// remainder so the exemptions cannot widen silently: a clock-exempt
    /// crate (e.g. `analyze`) still may not read wall clocks, and a
    /// concurrency-sanctioned file (the sharded worker pool) still may
    /// not grow its own atomics. Counters and span timers belong in
    /// `impact_obs`, where `Instant::now` and `Atomic*` live behind the
    /// determinism contract documented there.
    fn rule_metrics_placement(&mut self) {
        let path = self.ctx.rel_path.as_str();
        if path.starts_with("crates/bench/") || path.starts_with("crates/obs/") {
            return;
        }
        let t = self.tokens;
        let mut flagged = Vec::new();
        for i in 0..t.len() {
            if self.in_test[i] {
                continue;
            }
            if self.ctx.clock_exempt {
                if t[i].is_ident("SystemTime") {
                    flagged.push((t[i].line, "`SystemTime` read".to_string()));
                }
                if t[i].is_ident("Instant")
                    && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && t.get(i + 3).is_some_and(|x| x.is_ident("now"))
                {
                    flagged.push((t[i].line, "`Instant::now` read".to_string()));
                }
            }
            if self.ctx.concurrency_sanctioned
                && t[i].kind == TokKind::Ident
                && t[i].text.starts_with("Atomic")
                && t[i].text.len() > "Atomic".len()
            {
                flagged.push((t[i].line, format!("`{}` state", t[i].text)));
            }
        }
        for (line, what) in flagged {
            self.emit(
                "metrics-placement",
                line,
                format!(
                    "{what} outside the obs sinks: wall clocks and atomics are sanctioned \
                     only in crates/obs (and crates/bench measurement code) — record \
                     telemetry through the impact_obs registry instead"
                ),
            );
        }
    }

    /// R5: `unsafe` anywhere in the workspace, tests included.
    fn rule_unsafe(&mut self) {
        let t = self.tokens;
        let mut flagged = Vec::new();
        for tok in t {
            if tok.is_ident("unsafe") {
                flagged.push(tok.line);
            }
        }
        for line in flagged {
            self.emit(
                "unsafe-code",
                line,
                "`unsafe` is forbidden workspace-wide: every proof in the equivalence suite \
                 assumes safe-Rust aliasing guarantees"
                    .to_string(),
            );
        }
    }
}

/// Runs every layer-1 rule over one file's source text.
#[must_use]
pub fn check_source(ctx: &FileContext, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mut in_test = test_regions(&lexed.tokens);
    if ctx.test_file {
        in_test.fill(true);
    }
    let allows = parse_allows(&lexed.comments);
    let coverage = allow_coverage(&allows, &lexed.tokens);
    let mut checker = Checker {
        ctx,
        tokens: &lexed.tokens,
        in_test,
        allows,
        coverage,
        diags: Vec::new(),
    };
    checker.rule_unordered_iter();
    checker.rule_wall_clock();
    checker.rule_concurrency();
    checker.rule_lossy_cast();
    checker.rule_unsafe();
    checker.rule_cow_aliasing();
    checker.rule_metrics_placement();
    checker.check_allow_syntax();
    checker.diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_ctx() -> FileContext {
        FileContext {
            rel_path: "crates/sim/src/x.rs".to_string(),
            deterministic: true,
            clock_exempt: false,
            concurrency_sanctioned: false,
            test_file: false,
            addr_cast_checked: false,
        }
    }

    #[test]
    fn allow_comment_on_preceding_line_suppresses() {
        let src = "// analyze::allow(unsafe-code): ffi shim audited in PR 9\nunsafe { x() }\n";
        assert!(check_source(&det_ctx(), src).is_empty());
    }

    #[test]
    fn multi_line_allow_comment_covers_the_next_code_line() {
        let src = "// analyze::allow(unsafe-code): the justification is long\n\
                   // and wraps onto a second comment line\n\
                   unsafe { x() }\n";
        assert!(check_source(&det_ctx(), src).is_empty());
    }

    #[test]
    fn trailing_allow_comment_covers_its_own_line() {
        let src = "unsafe { x() } // analyze::allow(unsafe-code): audited\n";
        assert!(check_source(&det_ctx(), src).is_empty());
    }

    #[test]
    fn allow_comment_does_not_leak_past_the_next_code_line() {
        let src = "// analyze::allow(unsafe-code): covers only the next line\n\
                   fn ok() {}\n\
                   unsafe { x() }\n";
        let d = check_source(&det_ctx(), src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn allow_comment_without_reason_is_flagged() {
        let src = "// analyze::allow(unsafe-code)\nunsafe { x() }\n";
        let d = check_source(&det_ctx(), src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "allow-syntax"));
        assert!(d.iter().any(|d| d.rule == "unsafe-code"));
    }

    #[test]
    fn allow_comment_with_unknown_rule_is_flagged() {
        let src = "// analyze::allow(made-up-rule): whatever\nlet x = 1;\n";
        let d = check_source(&det_ctx(), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "allow-syntax");
    }

    #[test]
    fn iteration_needs_a_declared_hash_receiver() {
        // `.iter()` on a Vec must not be flagged.
        let src = "fn f() { let v = vec![1]; for x in v.iter() {} }";
        assert!(check_source(&det_ctx(), src).is_empty());
    }

    #[test]
    fn field_declared_maps_are_tracked() {
        let src = "struct S { index: HashMap<u64, usize, FxBuildHasher> }\n\
                   impl S { fn f(&self) { for k in self.index.keys() {} } }";
        let d = check_source(&det_ctx(), src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unordered-iter");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn fx_hashed_lookup_only_maps_are_clean() {
        let src = "struct S { index: HashMap<u64, usize, FxBuildHasher> }\n\
                   impl S { fn f(&self) -> Option<&usize> { self.index.get(&1) } }";
        assert!(check_source(&det_ctx(), src).is_empty());
    }

    #[test]
    fn wall_clock_in_cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let _ = Instant::now(); } }";
        assert!(check_source(&det_ctx(), src).is_empty());
    }

    #[test]
    fn lossy_cast_requires_addr_identifier() {
        let ctx = FileContext {
            addr_cast_checked: true,
            ..det_ctx()
        };
        let clean = "fn f(n: u64) -> u32 { (n % 7) as u32 }";
        assert!(check_source(&ctx, clean).is_empty());
        let dirty = "fn f(addr: u64) -> u32 { (addr % 7) as u32 }";
        let d = check_source(&ctx, dirty);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lossy-cast");
    }

    /// The bucketed-batch coordinate vocabulary (bank-view slots, RowClone
    /// lanes, shard indices) counts as address-carrying: the scatter paths
    /// narrow indices to `u32`, and an unjustified narrowing there is a
    /// routing bug.
    #[test]
    fn lossy_cast_covers_bucketing_coordinates() {
        let ctx = FileContext {
            addr_cast_checked: true,
            ..det_ctx()
        };
        for dirty in [
            "fn f(slot: usize) -> u32 { slot as u32 }",
            "fn f(lane_idx: usize) -> u16 { lane_idx as u16 }",
            "fn f(shard: usize) -> u32 { shard as u32 }",
        ] {
            let d = check_source(&ctx, dirty);
            assert_eq!(d.len(), 1, "{dirty}: {d:?}");
            assert_eq!(d[0].rule, "lossy-cast");
        }
        let allowed = "fn f(slot: usize) -> u32 {\n\
                       // analyze::allow(lossy-cast): slot bounded by banks\n\
                       slot as u32\n\
                       }";
        assert!(check_source(&ctx, allowed).is_empty());
    }

    #[test]
    fn cow_aliasing_flags_unjustified_make_mut() {
        let src = "fn f(s: &mut S) { Arc::make_mut(&mut s.cols)[0] = 1; }";
        let d = check_source(&det_ctx(), src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "cow-aliasing");
        let allowed = "fn f(s: &mut S) {\n\
                       // analyze::allow(cow-aliasing): unshares the bank columns only\n\
                       Arc::make_mut(&mut s.cols)[0] = 1;\n\
                       }";
        assert!(check_source(&det_ctx(), allowed).is_empty());
    }

    #[test]
    fn cow_aliasing_skips_tests_and_nondeterministic_crates() {
        let in_test = "#[cfg(test)]\nmod t { fn f(s: &mut S) { Arc::make_mut(&mut s.x); } }";
        assert!(check_source(&det_ctx(), in_test).is_empty());
        let bench_ctx = FileContext {
            deterministic: false,
            ..det_ctx()
        };
        let src = "fn f(s: &mut S) { Arc::make_mut(&mut s.x); }";
        assert!(check_source(&bench_ctx, src).is_empty());
    }

    #[test]
    fn cow_aliasing_covers_other_unshare_ops() {
        for src in [
            "fn f(a: &mut Arc<T>) { Arc::get_mut(a); }",
            "fn f(a: Arc<T>) { Arc::try_unwrap(a); }",
            "fn f(a: &mut Rc<T>) { Rc::make_mut(a); }",
        ] {
            let d = check_source(&det_ctx(), src);
            assert_eq!(d.len(), 1, "{src}: {d:?}");
            assert_eq!(d[0].rule, "cow-aliasing");
        }
        // Plain Arc construction and cloning are not unshare sites.
        let clean = "fn f() { let a = Arc::new(1); let b = Arc::clone(&a); }";
        assert!(check_source(&det_ctx(), clean).is_empty());
    }

    #[test]
    fn widening_addr_casts_are_fine() {
        let ctx = FileContext {
            addr_cast_checked: true,
            ..det_ctx()
        };
        let src = "fn f(bank: u32) -> u64 { bank as u64 }";
        assert!(check_source(&ctx, src).is_empty());
    }

    #[test]
    fn metrics_placement_flags_clocks_in_clock_exempt_crates() {
        // A clock-exempt crate escapes R2, but R7 still demands the obs
        // sinks for wall-clock reads.
        let ctx = FileContext {
            rel_path: "crates/analyze/src/x.rs".to_string(),
            clock_exempt: true,
            ..det_ctx()
        };
        let src = "fn f() { let t = Instant::now(); let _ = SystemTime::now(); }";
        let d = check_source(&ctx, src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "metrics-placement"));
    }

    #[test]
    fn metrics_placement_flags_atomics_in_sanctioned_files() {
        // The sharded pool is concurrency-sanctioned (R3 is silent), but
        // growing new atomic state there must route through impact_obs.
        let ctx = FileContext {
            rel_path: "crates/memctrl/src/sharded.rs".to_string(),
            concurrency_sanctioned: true,
            ..det_ctx()
        };
        let src = "struct S { hits: AtomicU64 }";
        let d = check_source(&ctx, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "metrics-placement");
        let allowed = "// analyze::allow(metrics-placement): pool shutdown latch, not telemetry\n\
                       struct S { stop: AtomicBool }";
        assert!(check_source(&ctx, allowed).is_empty());
    }

    #[test]
    fn metrics_placement_exempts_the_sinks_themselves() {
        let src = "fn f() { let t = Instant::now(); let c = AtomicU64::new(0); }";
        for rel_path in ["crates/obs/src/lib.rs", "crates/bench/src/runner.rs"] {
            let ctx = FileContext {
                rel_path: rel_path.to_string(),
                deterministic: false,
                clock_exempt: true,
                concurrency_sanctioned: true,
                ..det_ctx()
            };
            let d = check_source(&ctx, src);
            assert!(
                d.iter().all(|d| d.rule != "metrics-placement"),
                "{rel_path}: {d:?}"
            );
        }
    }

    #[test]
    fn metrics_placement_is_silent_where_r2_and_r3_already_police() {
        // In deterministic, non-exempt code R2/R3 own these patterns; R7
        // must not double-flag (fixture counts depend on this).
        let src = "fn f() { let t = Instant::now(); let c = AtomicU64::new(0); }";
        let d = check_source(&det_ctx(), src);
        assert!(d.iter().all(|d| d.rule != "metrics-placement"), "{d:?}");
        assert!(d.iter().any(|d| d.rule == "wall-clock"));
        assert!(d.iter().any(|d| d.rule == "concurrency"));
    }
}
