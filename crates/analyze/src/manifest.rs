//! The `analyze.toml` exclusion manifest.
//!
//! Layer-2 invariant checks require every struct field to be covered by
//! its consumers (merge / equality / codec / fingerprint) *or* listed
//! here with the section that excuses it. The file is parsed with a tiny
//! built-in reader for the subset of TOML it uses — `[section]` headers
//! and single-line `key = ["a", "b"]` string arrays — because the build
//! environment is offline and the analyzer must stay dependency-free.

use std::collections::BTreeMap;

/// Parsed exclusion lists, keyed `"section.key"` → values.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    entries: BTreeMap<String, Vec<String>>,
}

impl Manifest {
    /// Parses manifest text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut entries: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("analyze.toml:{}: unterminated section", idx + 1));
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "analyze.toml:{}: expected `key = [..]`, got `{line}`",
                    idx + 1
                ));
            };
            let key = key.trim();
            let value = value.trim();
            let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) else {
                return Err(format!(
                    "analyze.toml:{}: value must be a single-line string array",
                    idx + 1
                ));
            };
            let mut items = Vec::new();
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let Some(s) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"')) else {
                    return Err(format!(
                        "analyze.toml:{}: array items must be double-quoted strings",
                        idx + 1
                    ));
                };
                items.push(s.to_string());
            }
            let full = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            entries.insert(full, items);
        }
        Ok(Manifest { entries })
    }

    /// True when `section.key` lists `value`.
    #[must_use]
    pub fn excludes(&self, section_key: &str, value: &str) -> bool {
        self.entries
            .get(section_key)
            .is_some_and(|v| v.iter().any(|x| x == value))
    }
}

/// Drops a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let m = Manifest::parse(
            "# comment\n[backend_stats]\ncodec_exclude = [\"a\", \"b\"] # trailing\n\n\
             [fingerprint]\nexclude = []\n",
        )
        .unwrap();
        assert!(m.excludes("backend_stats.codec_exclude", "a"));
        assert!(m.excludes("backend_stats.codec_exclude", "b"));
        assert!(!m.excludes("backend_stats.codec_exclude", "c"));
        assert!(!m.excludes("fingerprint.exclude", "a"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Manifest::parse("[unterminated\n").is_err());
        assert!(Manifest::parse("key value\n").is_err());
        assert!(Manifest::parse("key = \"not-an-array\"\n").is_err());
        assert!(Manifest::parse("key = [unquoted]\n").is_err());
    }

    #[test]
    fn empty_manifest_excludes_nothing() {
        let m = Manifest::default();
        assert!(!m.excludes("backend_stats.codec_exclude", "x"));
    }
}
