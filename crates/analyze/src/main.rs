//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! impact-analyze [--root DIR] [--fix-allowlist]
//! ```
//!
//! Prints `file:line: rule: message` diagnostics and exits 1 when any are
//! found (0 when clean, 2 on usage or I/O errors). `--fix-allowlist` is a
//! dry-run helper: instead of failing, it prints the
//! `// analyze::allow(...)` comment each finding would need, for a human
//! to paste (and justify!) at the flagged site.

use std::path::PathBuf;
use std::process::ExitCode;

use impact_analyze::analyze_workspace;

fn usage() -> ExitCode {
    eprintln!("usage: impact-analyze [--root DIR] [--fix-allowlist]");
    ExitCode::from(2)
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// a `[workspace]` — so the tool runs correctly from any subdirectory.
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_allowlist = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--fix-allowlist" => fix_allowlist = true,
            "--help" | "-h" => {
                println!(
                    "impact-analyze: determinism & concurrency static analysis\n\n\
                     usage: impact-analyze [--root DIR] [--fix-allowlist]\n\n\
                     Exits 0 when the workspace is clean, 1 when diagnostics were\n\
                     found, 2 on usage/I/O errors. --fix-allowlist prints the\n\
                     allow-comment each finding would need instead of failing."
                );
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("impact-analyze: no workspace Cargo.toml found above the cwd");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match analyze_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("impact-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_allowlist {
        for d in &diags {
            println!(
                "{}:{}: add: // analyze::allow({}): TODO justify — {}",
                d.file, d.line, d.rule, d.message
            );
        }
        eprintln!(
            "impact-analyze: {} finding(s); allow-comments above are a dry run — \
             justify each before pasting",
            diags.len()
        );
        return ExitCode::SUCCESS;
    }

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("impact-analyze: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("impact-analyze: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
