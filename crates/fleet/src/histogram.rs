//! Deterministic population histograms.
//!
//! Same bucketing scheme as the `impact-obs` telemetry histograms —
//! power-of-two buckets by bit length, bucket 0 for zeros, an explicit
//! overflow count for samples past the top bucket — but built from plain
//! `u64` fields. Telemetry histograms are best-effort observability and
//! excluded from the determinism contract; these histograms ARE the
//! fleet's aggregate result, so they live in deterministic code, fold
//! into the population digest, and render into the canonical JSON that
//! CI byte-compares across worker counts.

use impact_core::hash::fnv1a_u64;

/// Number of power-of-two buckets, matching `impact_obs::BUCKETS` so
/// fleet aggregates and telemetry histograms bucket identically.
pub const BUCKETS: usize = 48;

/// A deterministic histogram over `u64` samples: bucket `i` counts
/// samples of bit length `i` (bucket 0 counts zeros); samples of bit
/// length ≥ [`BUCKETS`] land in the explicit `overflow` count, never in
/// the top bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopHistogram {
    /// Total samples recorded, bucketed and overflowed alike.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Samples whose bit length exceeded the bucket range.
    pub overflow: u64,
    buckets: [u64; BUCKETS],
}

impl Default for PopHistogram {
    fn default() -> PopHistogram {
        PopHistogram {
            count: 0,
            sum: 0,
            overflow: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Lower bound of bucket `i`: 0 for the zero bucket, else `2^(i-1)`.
#[must_use]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl PopHistogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bits = (64 - value.leading_zeros()) as usize;
        if bits < BUCKETS {
            self.buckets[bits] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, ascending.
    #[must_use]
    pub fn occupied(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower_bound(i), n))
            .collect()
    }

    /// Canonical JSON object, byte-stable for identical contents and
    /// rendered exactly like the obs histogram schema:
    /// `{"count": N, "sum": N, "overflow": N, "buckets": [[lb, n], ...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\": {}, \"sum\": {}, \"overflow\": {}, \"buckets\": [",
            self.count, self.sum, self.overflow
        );
        for (j, (bound, n)) in self.occupied().into_iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{bound}, {n}]"));
        }
        out.push_str("]}");
        out
    }

    /// Folds the histogram's full state into an FNV-1a accumulator.
    #[must_use]
    pub fn fold_digest(&self, mut digest: u64) -> u64 {
        digest = fnv1a_u64(digest, self.count);
        digest = fnv1a_u64(digest, self.sum);
        digest = fnv1a_u64(digest, self.overflow);
        for &n in &self.buckets {
            digest = fnv1a_u64(digest, n);
        }
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_bit_length_with_explicit_overflow() {
        let mut h = PopHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(bucket_lower_bound(BUCKETS - 1)); // top bucket
        h.record(u64::MAX); // past the range: overflow, not top
        assert_eq!(h.count, 6);
        assert_eq!(h.overflow, 1);
        assert_eq!(
            h.occupied(),
            vec![(0, 1), (1, 1), (2, 2), (bucket_lower_bound(BUCKETS - 1), 1)]
        );
    }

    #[test]
    fn json_is_canonical() {
        let mut h = PopHistogram::default();
        h.record(5);
        h.record(u64::MAX);
        assert_eq!(
            h.to_json(),
            format!(
                "{{\"count\": 2, \"sum\": {}, \"overflow\": 1, \"buckets\": [[4, 1]]}}",
                5u64.saturating_add(u64::MAX)
            )
        );
    }

    #[test]
    fn digest_covers_every_field() {
        let mut a = PopHistogram::default();
        let mut b = PopHistogram::default();
        a.record(7);
        b.record(7);
        assert_eq!(a.fold_digest(1), b.fold_digest(1));
        b.record(u64::MAX);
        assert_ne!(a.fold_digest(1), b.fold_digest(1));
    }
}
