//! The fleet epoch scheduler — this crate's sanctioned concurrency site
//! (`SANCTIONED_CONCURRENCY` in `impact-analyze`; R3 everywhere else).
//!
//! Determinism contract: one epoch advances every session by the same
//! step budget, and the advanced sessions are returned in exactly the
//! order they were submitted — never completion order. Sessions are
//! moved by value through channels (the same ownership discipline as the
//! `memctrl::sharded` worker pool), so no session state is ever shared
//! between threads; each result is a pure function of (session state,
//! budget), making the scheduler's output invariant in the worker count.
//!
//! Worker panics are transactional at the epoch boundary: every
//! session's advance runs under `catch_unwind`, outcomes are collected
//! for the whole epoch, and the first panic payload (by submission
//! order) is re-thrown — never a generic channel-closed panic that would
//! mask what actually went wrong (the failure mode the sharded pool's
//! reap path exists for).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;

use crate::session::Session;

/// Advances every session by `budget` work units on `workers` threads
/// and returns them in submission order.
///
/// # Panics
///
/// Re-throws the first panicking session's payload (by submission
/// order), after the epoch's other sessions completed.
pub(crate) fn run_epoch(sessions: Vec<Session>, workers: usize, budget: u32) -> Vec<Session> {
    let n = sessions.len();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return sessions
            .into_iter()
            .map(|mut sess| {
                sess.advance(budget);
                sess
            })
            .collect();
    }

    type Outcome = (usize, thread::Result<Session>);
    let mut slots: Vec<Option<Session>> = (0..n).map(|_| None).collect();
    let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
    thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<Outcome>();
        let mut job_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<(usize, Session)>();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok((idx, mut sess)) = job_rx.recv() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        sess.advance(budget);
                        sess
                    }));
                    if done_tx.send((idx, outcome)).is_err() {
                        return;
                    }
                }
            });
            job_txs.push(job_tx);
        }
        drop(done_tx);
        // Round-robin dispatch in submission order. The assignment is
        // deterministic but irrelevant: results re-seat by index.
        for (idx, sess) in sessions.into_iter().enumerate() {
            job_txs[idx % workers]
                .send((idx, sess))
                .expect("fleet worker alive: its panics surface via the outcome channel");
        }
        drop(job_txs);
        for (idx, outcome) in done_rx {
            match outcome {
                Ok(sess) => slots[idx] = Some(sess),
                Err(payload) => panics.push((idx, payload)),
            }
        }
    });
    panics.sort_by_key(|&(idx, _)| idx);
    if let Some((_, payload)) = panics.into_iter().next() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every submitted session returned"))
        .collect()
}
