//! Fleet sessions: the unit of work the epoch scheduler multiplexes.
//!
//! Two kinds exist. **Synthetic** sessions are seeded attacker/victim
//! pairs — a prime+probe covert channel over DRAM row-buffer timing,
//! drawn from a configuration distribution (defense, probe-bank count,
//! co-tenant noise, transmission length) that is a pure function of the
//! fleet seed and the session id. **Trace** sessions replay a recorded
//! [`CapturedTrace`] prefix through a fresh controller via the trace
//! codec's event dispatcher.
//!
//! Both are built by forking a warmed parent ([`Engine::fork`] /
//! controller fork), so per-session setup is O(metadata), and both step
//! in fixed budgets so the scheduler can interleave thousands of them.
//! A session's result depends only on (parent state, spec); it never
//! observes which worker ran it or when.

use std::sync::Arc;

use impact_core::addr::VirtAddr;
use impact_core::config::SystemConfig;
use impact_core::hash::fnv1a_u64;
use impact_core::rng::SimRng;
use impact_core::snapshot::Snapshot;
use impact_core::time::{Clock, Cycles};
use impact_core::trace::{fold_response, replay_events, DIGEST_INIT};
use impact_memctrl::{ActConfig, Defense, MemoryController};
use impact_sim::{AgentId, System};
use impact_workloads::CapturedTrace;

/// Banks the synthetic warm parent prepares; per-session probe sets use
/// a prefix of them. Must not exceed the base config's total banks.
pub const MAX_PROBE_BANKS: usize = 16;

/// Domain-separation salt for the spec-drawing RNG stream.
const SPEC_SALT: u64 = 0x0F1E_E75E_5510;

/// The defense a synthetic session installs after forking its engine.
/// MPR is excluded: bank partitioning reshapes the address map per
/// tenant, which is a population-level experiment of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefensePick {
    /// Baseline, no defense.
    Baseline,
    /// Closed-row policy.
    Crp,
    /// Constant-time DRAM.
    Ctd,
    /// Adaptive constant-time DRAM, mild preset.
    ActMild,
    /// Adaptive constant-time DRAM, aggressive preset.
    ActAggressive,
}

impl DefensePick {
    fn draw(rng: &mut SimRng) -> DefensePick {
        match rng.below(100) {
            0..=29 => DefensePick::Baseline,
            30..=49 => DefensePick::Crp,
            50..=69 => DefensePick::Ctd,
            70..=84 => DefensePick::ActMild,
            _ => DefensePick::ActAggressive,
        }
    }

    /// The controller defense to install, if any.
    #[must_use]
    pub fn to_defense(self) -> Option<Defense> {
        match self {
            DefensePick::Baseline => None,
            DefensePick::Crp => Some(Defense::Crp),
            DefensePick::Ctd => Some(Defense::Ctd),
            DefensePick::ActMild => Some(Defense::Act(ActConfig::mild())),
            DefensePick::ActAggressive => Some(Defense::Act(ActConfig::aggressive())),
        }
    }

    /// Short display name, matching the paper's figure legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DefensePick::Baseline => "None",
            DefensePick::Crp => "CRP",
            DefensePick::Ctd => "CTD",
            DefensePick::ActMild => "ACT-Mild",
            DefensePick::ActAggressive => "ACT-Aggressive",
        }
    }
}

/// Everything needed to build one synthetic session — a pure function of
/// `(fleet_seed, id)`, so the population is identical however admission
/// calls are batched or reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Defense installed on the session's forked engine.
    pub defense: DefensePick,
    /// Probe set size: the covert channel's symbol alphabet (a power of
    /// two ≤ [`MAX_PROBE_BANKS`]).
    pub probe_banks: usize,
    /// Per-step probability of one co-tenant access, in basis points.
    pub noise_bp: u64,
    /// Secret symbols the victim transmits before the session finishes.
    pub steps: u32,
    /// Per-session RNG stream (secrets and noise placement).
    pub seed: u64,
}

impl SyntheticSpec {
    /// Draws the spec for session `id` of a fleet seeded with
    /// `fleet_seed`, transmitting between `min_steps` and `max_steps`
    /// symbols.
    #[must_use]
    pub fn draw(fleet_seed: u64, id: u32, min_steps: u32, max_steps: u32) -> SyntheticSpec {
        let mut rng = SimRng::seed(fleet_seed ^ SPEC_SALT).derive(u64::from(id));
        let defense = DefensePick::draw(&mut rng);
        let probe_banks = [4, 8, 16][rng.below(3) as usize];
        let noise_bp = [0, 500, 2000, 5000][rng.below(4) as usize];
        let span = u64::from(max_steps.saturating_sub(min_steps).max(1));
        // analyze::allow(lossy-cast): bounded by max_steps, a u32.
        let steps = min_steps + rng.below(span) as u32;
        let seed = rng.next_u64();
        SyntheticSpec {
            defense,
            probe_banks,
            noise_bp,
            steps,
            seed,
        }
    }
}

/// Shared, fork-invariant facts about the synthetic warm parent: agent
/// handles, per-bank row addresses, and the calibrated probe threshold.
/// Forks inherit the warmed engine state these describe, so one
/// `WarmSlots` serves every synthetic session.
#[derive(Debug)]
pub(crate) struct WarmSlots {
    attacker: AgentId,
    victim: AgentId,
    tenant: AgentId,
    attacker_rows: Vec<VirtAddr>,
    victim_rows: Vec<VirtAddr>,
    tenant_rows: Vec<VirtAddr>,
    /// Probe latency above this reads as a row conflict (someone else
    /// touched the bank since the attacker's last probe).
    threshold: Cycles,
    /// Undefended probe latency with the attacker's row open.
    nominal_probe: Cycles,
    /// Undefended victim access latency.
    nominal_victim: Cycles,
}

/// Builds the synthetic warm parent: spawns the attacker, victim and
/// co-tenant, allocates and TLB-warms one row per agent in each of the
/// first [`MAX_PROBE_BANKS`] banks, primes the attacker's rows open, and
/// calibrates the hit/conflict classification threshold. Fork the
/// returned engine once per session.
///
/// # Panics
///
/// Panics if `cfg` has fewer than [`MAX_PROBE_BANKS`] banks or row
/// allocation fails (the warm set is three rows per bank, far inside
/// any configuration's capacity).
pub(crate) fn warm_parent(cfg: &SystemConfig) -> (System, Arc<WarmSlots>) {
    assert!(
        cfg.dram_geometry.total_banks() as usize >= MAX_PROBE_BANKS,
        "fleet base config must have at least {MAX_PROBE_BANKS} banks"
    );
    let mut eng = System::new(cfg.clone());
    let attacker = eng.spawn_agent();
    let victim = eng.spawn_agent();
    let tenant = eng.spawn_agent();
    let rows = |eng: &mut System, agent: AgentId| -> Vec<VirtAddr> {
        (0..MAX_PROBE_BANKS)
            .map(|bank| {
                let va = eng
                    .alloc_row_in_bank(agent, bank)
                    .expect("three rows per bank fit any config");
                eng.warm_tlb(agent, va, 2);
                va
            })
            .collect()
    };
    let attacker_rows = rows(&mut eng, attacker);
    let victim_rows = rows(&mut eng, victim);
    let tenant_rows = rows(&mut eng, tenant);

    // Prime: open the attacker's row in every probe bank, so the first
    // session step starts from the steady prime+probe state.
    for &va in &attacker_rows {
        eng.pim_op_direct(attacker, va)
            .expect("warmed probe cannot fail");
    }
    // Calibrate on bank 0: with the attacker's row open a probe is fast
    // (hit); after the victim touches the bank it is slow (conflict).
    let hit = eng
        .pim_op_direct(attacker, attacker_rows[0])
        .expect("warmed probe cannot fail")
        .latency;
    let nominal_victim = eng
        .pim_op_direct(victim, victim_rows[0])
        .expect("warmed access cannot fail")
        .latency;
    let conflict = eng
        .pim_op_direct(attacker, attacker_rows[0])
        .expect("warmed probe cannot fail")
        .latency;
    assert!(
        hit < conflict,
        "row-buffer channel requires hit latency ({hit:?}) below conflict latency ({conflict:?})"
    );
    let threshold = Cycles((hit.0 + conflict.0) / 2);
    let slots = WarmSlots {
        attacker,
        victim,
        tenant,
        attacker_rows,
        victim_rows,
        tenant_rows,
        threshold,
        nominal_probe: hit,
        nominal_victim,
    };
    (eng, Arc::new(slots))
}

/// One synthetic prime+probe session over a forked engine.
pub(crate) struct SyntheticSession {
    eng: System,
    warm: Arc<WarmSlots>,
    spec: SyntheticSpec,
    rng: SimRng,
    step: u32,
    hits: u64,
    errors: u64,
    probes: u64,
    elapsed: Cycles,
    digest: u64,
}

impl SyntheticSession {
    pub(crate) fn new(parent: &System, warm: Arc<WarmSlots>, spec: SyntheticSpec) -> Self {
        let mut eng = parent.fork();
        if let Some(defense) = spec.defense.to_defense() {
            eng.set_defense(defense);
        }
        let rng = SimRng::seed(spec.seed);
        SyntheticSession {
            eng,
            warm,
            spec,
            rng,
            step: 0,
            hits: 0,
            errors: 0,
            probes: 0,
            elapsed: Cycles(0),
            digest: DIGEST_INIT,
        }
    }

    fn finished(&self) -> bool {
        self.step >= self.spec.steps
    }

    /// One transmission round: the victim opens its row in the secret
    /// bank, the co-tenant may touch a random bank, the attacker probes
    /// its whole set and decodes the secret as the unique conflicting
    /// bank.
    fn step_once(&mut self) {
        let warm = &self.warm;
        // analyze::allow(lossy-cast): bounded by MAX_PROBE_BANKS.
        let secret = self.rng.below(self.spec.probe_banks as u64) as usize;
        let v = self
            .eng
            .pim_op_direct(warm.victim, warm.victim_rows[secret])
            .expect("warmed victim access cannot fail");
        let mut step_cycles = v.latency;
        if self.spec.noise_bp > 0 && self.rng.below(10_000) < self.spec.noise_bp {
            // analyze::allow(lossy-cast): bounded by MAX_PROBE_BANKS.
            let bank = self.rng.below(MAX_PROBE_BANKS as u64) as usize;
            let n = self
                .eng
                .pim_op_direct(warm.tenant, warm.tenant_rows[bank])
                .expect("warmed co-tenant access cannot fail");
            step_cycles += n.latency;
        }
        let mut detected_mask = 0u64;
        for bank in 0..self.spec.probe_banks {
            let p = self
                .eng
                .pim_op_direct(warm.attacker, warm.attacker_rows[bank])
                .expect("warmed probe cannot fail");
            step_cycles += p.latency;
            self.probes += 1;
            if p.latency > warm.threshold {
                detected_mask |= 1 << bank;
            }
        }
        let decoded = detected_mask == 1 << secret;
        if decoded {
            self.hits += 1;
        } else {
            self.errors += 1;
        }
        self.elapsed += step_cycles;
        self.digest = fnv1a_u64(self.digest, secret as u64);
        self.digest = fnv1a_u64(self.digest, detected_mask);
        self.digest = fnv1a_u64(self.digest, step_cycles.0);
        self.step += 1;
    }

    fn report(&self, id: u32) -> SessionReport {
        let steps = u64::from(self.spec.steps);
        let symbol_bits = u64::from(self.spec.probe_banks.trailing_zeros());
        let bits = self.hits * symbol_bits;
        let nominal_step =
            self.warm.nominal_victim.0 + self.spec.probe_banks as u64 * self.warm.nominal_probe.0;
        SessionReport {
            id,
            kind: "synthetic",
            defense: self.spec.defense.name(),
            steps,
            hits: self.hits,
            errors: self.errors,
            elapsed: self.elapsed,
            capacity_kbps: kbps(self.eng.config().clock, bits, self.elapsed),
            error_rate_bp: 10_000 * self.errors / steps.max(1),
            slowdown_bp: 10_000 * self.elapsed.0 / (steps * nominal_step).max(1),
            digest: self.digest,
        }
    }
}

/// One trace-replay session: a recorded event-log prefix dispatched into
/// a forked controller, `budget` events per epoch.
pub(crate) struct TraceSession {
    backend: MemoryController,
    trace: Arc<CapturedTrace>,
    clock: Clock,
    prefix: usize,
    cursor: usize,
    responses: u64,
    latency: Cycles,
    min_latency: Cycles,
    digest: u64,
}

impl TraceSession {
    pub(crate) fn new(
        parent: &MemoryController,
        trace: Arc<CapturedTrace>,
        clock: Clock,
        prefix: usize,
    ) -> Self {
        let prefix = prefix.min(trace.events.len());
        TraceSession {
            backend: parent.fork(),
            trace,
            clock,
            prefix,
            cursor: 0,
            responses: 0,
            latency: Cycles(0),
            min_latency: Cycles(u64::MAX),
            digest: DIGEST_INIT,
        }
    }

    fn finished(&self) -> bool {
        self.cursor >= self.prefix
    }

    fn advance(&mut self, budget: u32) {
        let end = self.prefix.min(self.cursor + budget as usize);
        let events = &self.trace.events[self.cursor..end];
        let (digest, responses, latency, min_latency) = (
            &mut self.digest,
            &mut self.responses,
            &mut self.latency,
            &mut self.min_latency,
        );
        replay_events(events, &mut self.backend, |resp| {
            *digest = fold_response(*digest, &resp);
            *responses += 1;
            *latency += resp.latency;
            *min_latency = (*min_latency).min(resp.latency);
        })
        .expect("recorded trace replays on a fresh controller");
        self.cursor = end;
    }

    fn report(&self, id: u32) -> SessionReport {
        // A serviced cache line is 64 bytes; capacity is the replayed
        // prefix's data rate over its simulated service time. The
        // slowdown baseline is the fastest response observed — the
        // prefix's unimpeded access cost.
        let bits = self.responses * 512;
        let slowdown_bp = if self.responses == 0 {
            10_000
        } else {
            10_000 * self.latency.0 / (self.responses * self.min_latency.0).max(1)
        };
        SessionReport {
            id,
            kind: "trace",
            defense: "-",
            steps: self.prefix as u64,
            hits: self.responses,
            errors: 0,
            elapsed: self.latency,
            capacity_kbps: kbps(self.clock, bits, self.latency),
            error_rate_bp: 0,
            slowdown_bp,
            digest: self.digest,
        }
    }
}

/// Converts a bit count over simulated cycles into integer kb/s.
fn kbps(clock: Clock, bits: u64, elapsed: Cycles) -> u64 {
    if elapsed.0 == 0 {
        return 0;
    }
    // analyze::allow(lossy-cast): non-negative and far below 2^63.
    (clock.throughput_mbps(bits, elapsed) * 1000.0) as u64
}

enum Work {
    // Both boxed: each carries a whole forked engine/controller, and
    // sessions move between scheduler channels every epoch — keep the
    // moved value pointer-sized.
    Synthetic(Box<SyntheticSession>),
    Trace(Box<TraceSession>),
}

/// One fleet session: a stable id plus its work, advanced in epoch-sized
/// budgets by the scheduler.
pub(crate) struct Session {
    pub(crate) id: u32,
    work: Work,
}

impl Session {
    pub(crate) fn synthetic(id: u32, session: SyntheticSession) -> Session {
        Session {
            id,
            work: Work::Synthetic(Box::new(session)),
        }
    }

    pub(crate) fn trace(id: u32, session: TraceSession) -> Session {
        Session {
            id,
            work: Work::Trace(Box::new(session)),
        }
    }

    /// The session-kind label streamed in fleet events.
    pub(crate) fn kind(&self) -> &'static str {
        match &self.work {
            Work::Synthetic(_) => "synthetic",
            Work::Trace(_) => "trace",
        }
    }

    pub(crate) fn finished(&self) -> bool {
        match &self.work {
            Work::Synthetic(s) => s.finished(),
            Work::Trace(t) => t.finished(),
        }
    }

    /// Advances up to `budget` work units (transmission steps or trace
    /// events); stops early when the session finishes.
    pub(crate) fn advance(&mut self, budget: u32) {
        match &mut self.work {
            Work::Synthetic(s) => {
                for _ in 0..budget {
                    if s.finished() {
                        break;
                    }
                    s.step_once();
                }
            }
            Work::Trace(t) => t.advance(budget),
        }
    }

    /// Work units completed so far.
    pub(crate) fn units_done(&self) -> u64 {
        match &self.work {
            Work::Synthetic(s) => u64::from(s.step),
            Work::Trace(t) => t.cursor as u64,
        }
    }

    pub(crate) fn report(&self) -> SessionReport {
        match &self.work {
            Work::Synthetic(s) => s.report(self.id),
            Work::Trace(t) => t.report(self.id),
        }
    }
}

/// The deterministic result of one finished session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Stable session id (admission order is irrelevant; merge order is
    /// always ascending id).
    pub id: u32,
    /// `"synthetic"` or `"trace"`.
    pub kind: &'static str,
    /// Installed defense name (`"-"` for trace sessions).
    pub defense: &'static str,
    /// Work units: transmission steps, or trace events replayed.
    pub steps: u64,
    /// Correctly decoded symbols (synthetic) or serviced responses
    /// (trace).
    pub hits: u64,
    /// Misdecoded symbols (synthetic; 0 for trace).
    pub errors: u64,
    /// Simulated cycles attributed to the session's accesses.
    pub elapsed: Cycles,
    /// Channel (or service) throughput in kb/s of simulated time.
    pub capacity_kbps: u64,
    /// Symbol error rate in basis points.
    pub error_rate_bp: u64,
    /// Latency inflation over the undefended baseline, basis points.
    pub slowdown_bp: u64,
    /// Per-session behavioral digest (probe outcomes or response folds).
    pub digest: u64,
}

impl SessionReport {
    /// Folds every field into an FNV-1a accumulator.
    #[must_use]
    pub fn fold_digest(&self, mut d: u64) -> u64 {
        d = fnv1a_u64(d, u64::from(self.id));
        d = fnv1a_u64(d, u64::from(self.kind == "trace"));
        d = impact_core::hash::fnv1a_bytes(d, self.defense.as_bytes());
        for v in [
            self.steps,
            self.hits,
            self.errors,
            self.elapsed.0,
            self.capacity_kbps,
            self.error_rate_bp,
            self.slowdown_bp,
            self.digest,
        ] {
            d = fnv1a_u64(d, v);
        }
        d
    }
}
