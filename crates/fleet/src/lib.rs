//! Fleet-scale session service: multiplexes thousands of independent,
//! deterministic engine sessions over an epoch scheduler.
//!
//! The paper's harness evaluates one attacker/victim pair at a time; the
//! fleet turns that into population-level distributions. A
//! [`FleetService`] owns a population of sessions — synthetic
//! attacker/victim pairs drawn from a seeded configuration distribution
//! (defense, probe-bank count, co-tenant noise), or recorded-trace
//! prefixes replayed through the PR 4 codec — and drives them to
//! completion in epochs: each epoch every unfinished session advances by
//! a fixed step budget on a shared worker pool, and results merge back
//! in **stable session-id order, never completion order**.
//!
//! # Determinism contract
//!
//! The aggregate output ([`PopulationReport`], its canonical JSON and
//! its FNV-1a digest) is bit-identical
//!
//! * at any worker count (sessions are independent; the scheduler
//!   re-seats results by submission index),
//! * across runs of the same seed (every random draw flows from
//!   [`SimRng`] streams keyed by the fleet seed and session id), and
//! * under any admission order ([`FleetService::run`] normalizes to
//!   ascending session id before building or driving anything).
//!
//! Per-session setup is O(metadata): one warm parent per profile is
//! built and calibrated, then every session forks it
//! ([`impact_core::snapshot::Snapshot::fork`]). All fleet telemetry
//! routes through `impact-obs` (`fleet.*` metrics) and is excluded from
//! the determinism contract; the scheduler's threads live in
//! `scheduler.rs`, this crate's sanctioned concurrency site.
//!
//! ```
//! use impact_fleet::{FleetConfig, FleetService};
//!
//! let mut fleet = FleetService::new(FleetConfig::quick(7));
//! fleet.admit_synthetic(8);
//! let report = fleet.run(&mut |_event| {});
//! assert_eq!(report.finished(), 8);
//! ```

mod histogram;
mod scheduler;
mod session;

pub use histogram::{bucket_lower_bound, PopHistogram, BUCKETS};
pub use session::{DefensePick, SessionReport, SyntheticSpec, MAX_PROBE_BANKS};

use std::sync::Arc;

use impact_core::config::SystemConfig;
use impact_core::hash::{fnv1a_u64, FNV_OFFSET};
use impact_core::rng::SimRng;
use impact_memctrl::MemoryController;
use impact_sim::System;
use impact_workloads::CapturedTrace;

use session::{warm_parent, Session, SyntheticSession, TraceSession, WarmSlots};

/// Fleet-wide configuration. `workers` tunes wall-clock only; it never
/// appears in the report and cannot influence its bytes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Root seed: specs, secrets and noise all derive from it.
    pub seed: u64,
    /// Scheduler threads (1 = inline, no threads spawned).
    pub workers: usize,
    /// Work units (transmission steps / trace events) per session per
    /// epoch. Batching only — per-session results are budget-invariant.
    pub epoch_budget: u32,
    /// Minimum symbols a synthetic session transmits.
    pub min_steps: u32,
    /// Maximum symbols a synthetic session transmits (exclusive).
    pub max_steps: u32,
    /// System configuration synthetic sessions run under.
    pub base: SystemConfig,
}

impl FleetConfig {
    /// Full-depth defaults: ambient-noise-free base system, 24–72
    /// symbols per session.
    #[must_use]
    pub fn new(seed: u64) -> FleetConfig {
        FleetConfig {
            seed,
            workers: 1,
            epoch_budget: 16,
            min_steps: 24,
            max_steps: 72,
            base: SystemConfig::paper_table2_noiseless(),
        }
    }

    /// Smoke-test depth: 8–24 symbols per session, smaller epochs. Same
    /// population shape, cheaper sessions.
    #[must_use]
    pub fn quick(seed: u64) -> FleetConfig {
        FleetConfig {
            epoch_budget: 8,
            min_steps: 8,
            max_steps: 24,
            ..FleetConfig::new(seed)
        }
    }

    /// Returns the config with `workers` scheduler threads.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> FleetConfig {
        self.workers = workers;
        self
    }
}

/// Incremental progress events, streamed in deterministic order: all
/// `SessionStarted` in ascending id, then per epoch any `SessionFinished`
/// (ascending id within the epoch) followed by one `EpochComplete`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// A session was built (parent forked) and entered the run queue.
    SessionStarted {
        /// Stable session id.
        id: u32,
        /// `"synthetic"` or `"trace"`.
        kind: &'static str,
    },
    /// One scheduler epoch finished merging.
    EpochComplete {
        /// 1-based epoch number.
        epoch: u64,
        /// Sessions still unfinished after this epoch.
        active: usize,
        /// Sessions finished so far, in total.
        finished: usize,
    },
    /// A session completed all of its work.
    SessionFinished {
        /// Stable session id.
        id: u32,
        /// Work units the session performed in total.
        steps: u64,
    },
}

/// An admitted-but-not-yet-built session.
enum Pending {
    Synthetic {
        id: u32,
        spec: SyntheticSpec,
    },
    Trace {
        id: u32,
        trace: Arc<CapturedTrace>,
        // Boxed: SystemConfig dwarfs the Synthetic variant otherwise.
        sys: Box<SystemConfig>,
        prefix: usize,
    },
}

impl Pending {
    fn id(&self) -> u32 {
        match self {
            Pending::Synthetic { id, .. } | Pending::Trace { id, .. } => *id,
        }
    }
}

/// The session service: admit a population, then [`FleetService::run`]
/// it to completion. See the crate docs for the determinism contract.
pub struct FleetService {
    cfg: FleetConfig,
    pending: Vec<Pending>,
    next_id: u32,
}

impl FleetService {
    /// An empty fleet under `cfg`.
    #[must_use]
    pub fn new(cfg: FleetConfig) -> FleetService {
        FleetService {
            cfg,
            pending: Vec::new(),
            next_id: 0,
        }
    }

    fn take_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Admits `n` synthetic attacker/victim sessions. Each spec is a
    /// pure function of (fleet seed, session id), so admitting 1000 in
    /// one call or over many calls yields the same population.
    pub fn admit_synthetic(&mut self, n: usize) {
        for _ in 0..n {
            let id = self.take_id();
            let spec =
                SyntheticSpec::draw(self.cfg.seed, id, self.cfg.min_steps, self.cfg.max_steps);
            self.pending.push(Pending::Synthetic { id, spec });
        }
    }

    /// Admits `n` trace-replay sessions over a shared recorded trace:
    /// session `i` of the batch replays the first `(i+1)/n` of the
    /// event log under `sys` (the recording's resolved configuration —
    /// resolve the header label with `config_for_label` or equivalent).
    pub fn admit_trace(&mut self, trace: &Arc<CapturedTrace>, sys: &SystemConfig, n: usize) {
        let events = trace.events.len();
        for i in 0..n {
            let id = self.take_id();
            let prefix = (events * (i + 1)) / n.max(1);
            self.pending.push(Pending::Trace {
                id,
                trace: Arc::clone(trace),
                sys: Box::new(sys.clone()),
                prefix: prefix.max(1),
            });
        }
    }

    /// Deterministically shuffles the admission queue — a test hook
    /// proving [`FleetService::run`] is admission-order invariant.
    pub fn permute_admission(&mut self, seed: u64) {
        SimRng::seed(seed).shuffle(&mut self.pending);
    }

    /// Sessions admitted so far.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.pending.len()
    }

    /// Builds every admitted session (warm-once, fork-per-session) and
    /// drives the population to completion, streaming [`FleetEvent`]s.
    ///
    /// # Panics
    ///
    /// Re-throws the first panicking session's payload; panics if a
    /// trace session's events fail to replay (a corrupt recording).
    pub fn run(mut self, on_event: &mut dyn FnMut(&FleetEvent)) -> PopulationReport {
        let obs = impact_obs::registry();
        self.pending.sort_unstable_by_key(Pending::id);

        // Warm parents are built lazily, one per profile: a single
        // calibrated engine for every synthetic session, one pristine
        // controller per (trace, config) batch.
        let mut synth_parent: Option<(System, Arc<WarmSlots>)> = None;
        let mut trace_parent: Option<(Arc<CapturedTrace>, u64, MemoryController)> = None;
        let mut synthetic = 0u64;
        let mut traced = 0u64;
        let mut active: Vec<Session> = Vec::with_capacity(self.pending.len());
        for pending in self.pending.drain(..) {
            let id = pending.id();
            let sess = match pending {
                Pending::Synthetic { spec, .. } => {
                    let (parent, warm) =
                        synth_parent.get_or_insert_with(|| warm_parent(&self.cfg.base));
                    synthetic += 1;
                    Session::synthetic(id, SyntheticSession::new(parent, Arc::clone(warm), spec))
                }
                Pending::Trace {
                    trace, sys, prefix, ..
                } => {
                    let fp = sys.fingerprint();
                    let fresh = match &trace_parent {
                        Some((t, pfp, _)) => !Arc::ptr_eq(t, &trace) || *pfp != fp,
                        None => true,
                    };
                    if fresh {
                        trace_parent =
                            Some((Arc::clone(&trace), fp, MemoryController::from_config(&sys)));
                    }
                    let (_, _, parent) = trace_parent.as_ref().expect("just seeded");
                    traced += 1;
                    Session::trace(id, TraceSession::new(parent, trace, sys.clock, prefix))
                }
            };
            obs.fleet_sessions_started.incr();
            on_event(&FleetEvent::SessionStarted {
                id,
                kind: sess.kind(),
            });
            active.push(sess);
        }

        // analyze::allow(lossy-cast): worker counts are tiny.
        obs.fleet_workers.set(self.cfg.workers as u64);
        let mut epoch = 0u64;
        let mut finished: Vec<SessionReport> = Vec::new();
        while !active.is_empty() {
            let advanced = {
                let _span = obs.fleet_epoch_wall_ns.span();
                scheduler::run_epoch(active, self.cfg.workers, self.cfg.epoch_budget)
            };
            epoch += 1;
            obs.fleet_epochs.incr();
            active = Vec::with_capacity(advanced.len());
            for sess in advanced {
                if sess.finished() {
                    obs.fleet_sessions_finished.incr();
                    on_event(&FleetEvent::SessionFinished {
                        id: sess.id,
                        steps: sess.units_done(),
                    });
                    finished.push(sess.report());
                } else {
                    active.push(sess);
                }
            }
            on_event(&FleetEvent::EpochComplete {
                epoch,
                active: active.len(),
                finished: finished.len(),
            });
        }
        finished.sort_unstable_by_key(|r| r.id);

        PopulationReport::aggregate(
            self.cfg.seed,
            self.cfg.epoch_budget,
            synthetic,
            traced,
            epoch,
            finished,
        )
    }
}

/// The deterministic aggregate of one fleet run: per-session reports in
/// id order, population histograms, and an FNV-1a digest over all of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationReport {
    /// Fleet seed the population derives from.
    pub seed: u64,
    /// Epoch step budget the run used.
    pub epoch_budget: u32,
    /// Synthetic sessions driven to completion.
    pub synthetic: u64,
    /// Trace sessions driven to completion.
    pub traced: u64,
    /// Scheduler epochs the run took.
    pub epochs: u64,
    /// Per-session results, ascending id.
    pub reports: Vec<SessionReport>,
    /// Channel-capacity distribution (kb/s of simulated time).
    pub capacity_kbps: PopHistogram,
    /// Symbol-error-rate distribution (basis points).
    pub error_rate_bp: PopHistogram,
    /// Slowdown-over-baseline distribution (basis points).
    pub slowdown_bp: PopHistogram,
    /// FNV-1a digest over every field above, the population fingerprint
    /// CI byte-compares across worker counts.
    pub digest: u64,
}

impl PopulationReport {
    fn aggregate(
        seed: u64,
        epoch_budget: u32,
        synthetic: u64,
        traced: u64,
        epochs: u64,
        reports: Vec<SessionReport>,
    ) -> PopulationReport {
        let mut capacity_kbps = PopHistogram::default();
        let mut error_rate_bp = PopHistogram::default();
        let mut slowdown_bp = PopHistogram::default();
        let mut digest = FNV_OFFSET;
        for v in [seed, u64::from(epoch_budget), synthetic, traced, epochs] {
            digest = fnv1a_u64(digest, v);
        }
        for r in &reports {
            capacity_kbps.record(r.capacity_kbps);
            error_rate_bp.record(r.error_rate_bp);
            slowdown_bp.record(r.slowdown_bp);
            digest = r.fold_digest(digest);
        }
        digest = capacity_kbps.fold_digest(digest);
        digest = error_rate_bp.fold_digest(digest);
        digest = slowdown_bp.fold_digest(digest);
        PopulationReport {
            seed,
            epoch_budget,
            synthetic,
            traced,
            epochs,
            reports,
            capacity_kbps,
            error_rate_bp,
            slowdown_bp,
            digest,
        }
    }

    /// Sessions driven to completion.
    #[must_use]
    pub fn finished(&self) -> usize {
        self.reports.len()
    }

    /// Canonical JSON: keys in fixed (alphabetical) order, no
    /// wall-clock, no worker count — byte-identical for identical
    /// populations, whatever machine or parallelism produced them.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"capacity_kbps\": {},\n",
            self.capacity_kbps.to_json()
        ));
        out.push_str(&format!("  \"digest\": \"{:#018x}\",\n", self.digest));
        out.push_str(&format!(
            "  \"error_rate_bp\": {},\n",
            self.error_rate_bp.to_json()
        ));
        out.push_str(&format!(
            "  \"fleet\": {{\"epoch_budget\": {}, \"epochs\": {}, \"seed\": {}, \"sessions_synthetic\": {}, \"sessions_trace\": {}}},\n",
            self.epoch_budget, self.epochs, self.seed, self.synthetic, self.traced
        ));
        out.push_str(&format!(
            "  \"slowdown_bp\": {}\n",
            self.slowdown_bp.to_json()
        ));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::addr::PhysAddr;
    use impact_core::engine::{MemRequest, ReqKind};
    use impact_core::time::Cycles;
    use impact_core::trace::{TraceEvent, TraceHeader, TraceSummary};

    fn quick_cfg(workers: usize) -> FleetConfig {
        let mut cfg = FleetConfig::quick(0xF1EE7);
        cfg.workers = workers;
        cfg.epoch_budget = 4;
        cfg.min_steps = 4;
        cfg.max_steps = 10;
        cfg
    }

    fn tiny_trace() -> Arc<CapturedTrace> {
        let sys = SystemConfig::paper_table2_noiseless();
        let capacity = sys.dram_geometry.capacity_bytes();
        let mut rng = SimRng::seed(0xACE);
        let events: Vec<TraceEvent> = (0..40)
            .map(|i| {
                TraceEvent::Request(MemRequest {
                    addr: PhysAddr(rng.below(capacity)),
                    kind: ReqKind::Load,
                    at: Cycles(i * 10),
                    actor: 0,
                })
            })
            .collect();
        Arc::new(CapturedTrace {
            header: TraceHeader {
                version: 1,
                fingerprint: sys.fingerprint(),
                seed: 0xACE,
                label: "paper_table2_noiseless".to_string(),
            },
            summary: TraceSummary {
                events: events.len() as u64,
                ..TraceSummary::default()
            },
            events,
        })
    }

    fn run_fleet(workers: usize, shuffle: Option<u64>) -> (PopulationReport, Vec<FleetEvent>) {
        let mut fleet = FleetService::new(quick_cfg(workers));
        fleet.admit_synthetic(10);
        let trace = tiny_trace();
        fleet.admit_trace(&trace, &SystemConfig::paper_table2_noiseless(), 4);
        if let Some(seed) = shuffle {
            fleet.permute_admission(seed);
        }
        let mut events = Vec::new();
        let report = fleet.run(&mut |ev| events.push(ev.clone()));
        (report, events)
    }

    #[test]
    fn population_is_worker_and_admission_invariant() {
        let (base, base_events) = run_fleet(1, None);
        for (workers, shuffle) in [(2, None), (4, None), (4, Some(99))] {
            let (other, other_events) = run_fleet(workers, shuffle);
            assert_eq!(base, other, "workers={workers} shuffle={shuffle:?}");
            assert_eq!(base.to_json(), other.to_json());
            assert_eq!(base_events, other_events);
        }
    }

    #[test]
    fn events_stream_in_stable_order() {
        let (report, events) = run_fleet(3, Some(5));
        let started: Vec<u32> = events
            .iter()
            .filter_map(|ev| match ev {
                FleetEvent::SessionStarted { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(started, (0..14).collect::<Vec<u32>>());
        let finished: Vec<u32> = events
            .iter()
            .filter_map(|ev| match ev {
                FleetEvent::SessionFinished { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(finished.len(), 14);
        assert_eq!(report.finished(), 14);
        match events.last() {
            Some(FleetEvent::EpochComplete {
                active: 0,
                finished: 14,
                ..
            }) => {}
            other => panic!("run must end on a final EpochComplete, got {other:?}"),
        }
    }

    #[test]
    fn specs_are_a_pure_function_of_seed_and_id() {
        let a = SyntheticSpec::draw(7, 3, 8, 24);
        let b = SyntheticSpec::draw(7, 3, 8, 24);
        assert_eq!(a, b);
        assert_ne!(a, SyntheticSpec::draw(7, 4, 8, 24));
        assert_ne!(a, SyntheticSpec::draw(8, 3, 8, 24));
        assert!((8..24).contains(&a.steps));
    }

    #[test]
    fn defended_sessions_leak_less_than_baseline() {
        // Population-level sanity: CTD closes the channel (every probe
        // reads as a conflict), the baseline leaks.
        let mut fleet = FleetService::new(quick_cfg(2));
        fleet.admit_synthetic(24);
        let report = fleet.run(&mut |_| {});
        let baseline_hits: u64 = report
            .reports
            .iter()
            .filter(|r| r.defense == "None")
            .map(|r| r.hits)
            .sum();
        let ctd_hits: u64 = report
            .reports
            .iter()
            .filter(|r| r.defense == "CTD")
            .map(|r| r.hits)
            .sum();
        assert!(baseline_hits > 0, "undefended sessions must decode symbols");
        assert_eq!(ctd_hits, 0, "constant-time DRAM must close the channel");
    }

    #[test]
    fn different_seeds_produce_different_populations() {
        let mut a = FleetService::new(quick_cfg(1));
        a.admit_synthetic(6);
        let mut b = FleetService::new(FleetConfig {
            seed: 0xDEAD,
            ..quick_cfg(1)
        });
        b.admit_synthetic(6);
        let ra = a.run(&mut |_| {});
        let rb = b.run(&mut |_| {});
        assert_ne!(ra.digest, rb.digest);
    }
}
