//! Set-associative cache with pluggable replacement.
//!
//! The tag/metadata array lives behind an `Arc` so snapshots and forks
//! of a warmed cache are O(1): clones share the array, and the first
//! access on either side copies it (`Arc::make_mut`).

use std::sync::Arc;

use impact_core::addr::PhysAddr;
use impact_core::config::{CacheLevelConfig, ReplacementKind};
use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;

/// Maximum re-reference prediction value for 2-bit SRRIP.
const RRPV_MAX: u8 = 3;
/// Insertion RRPV for SRRIP ("long re-reference interval").
const RRPV_INSERT: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct LineMeta {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (higher = more recent).
    stamp: u64,
    /// SRRIP re-reference prediction value.
    rrpv: u8,
}

impl LineMeta {
    fn empty() -> LineMeta {
        LineMeta {
            tag: 0,
            valid: false,
            dirty: false,
            stamp: 0,
            rrpv: RRPV_MAX,
        }
    }
}

/// A line evicted from a cache (victim of a fill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned physical address of the victim.
    pub addr: PhysAddr,
    /// Whether the victim was dirty (needs a write-back to memory).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Victim evicted to make room on a miss-fill, if any.
    pub evicted: Option<EvictedLine>,
}

/// A set-associative cache level.
///
/// Addresses are physical; the cache operates on line-aligned addresses.
///
/// # Example
///
/// ```
/// use impact_cache::SetAssocCache;
/// use impact_core::config::{CacheLevelConfig, ReplacementKind};
/// use impact_core::addr::PhysAddr;
///
/// let cfg = CacheLevelConfig {
///     size_bytes: 4096,
///     ways: 4,
///     line_bytes: 64,
///     latency_cycles: 4,
///     replacement: ReplacementKind::Lru,
/// };
/// let mut c = SetAssocCache::new(cfg);
/// assert!(!c.access(PhysAddr(0), false).hit);
/// assert!(c.access(PhysAddr(0), false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheLevelConfig,
    sets: u64,
    lines: Arc<Vec<LineMeta>>,
    tick: u64,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets.
    #[must_use]
    pub fn new(cfg: CacheLevelConfig) -> SetAssocCache {
        let sets = cfg.sets();
        let lines = vec![LineMeta::empty(); (sets * u64::from(cfg.ways)) as usize];
        SetAssocCache {
            cfg,
            sets,
            lines: Arc::new(lines),
            tick: 0,
        }
    }

    /// The line array for mutation: copies it first if a snapshot or
    /// fork still shares the storage.
    #[inline]
    fn lines_mut(&mut self) -> &mut Vec<LineMeta> {
        // analyze::allow(cow-aliasing): sole unshare point for the line
        // array; every mutation funnels through here, so a shared fork
        // gets its own copy before the first write
        Arc::make_mut(&mut self.lines)
    }

    /// Configuration of this level.
    #[must_use]
    pub fn config(&self) -> &CacheLevelConfig {
        &self.cfg
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.sets
    }

    /// Access latency of this level.
    #[must_use]
    pub fn latency(&self) -> Cycles {
        Cycles(self.cfg.latency_cycles)
    }

    /// Set index for an address.
    #[must_use]
    pub fn set_index(&self, addr: PhysAddr) -> u64 {
        (addr.0 / u64::from(self.cfg.line_bytes)) % self.sets
    }

    fn tag_of(&self, addr: PhysAddr) -> u64 {
        (addr.0 / u64::from(self.cfg.line_bytes)) / self.sets
    }

    fn addr_of(&self, set: u64, tag: u64) -> PhysAddr {
        PhysAddr((tag * self.sets + set) * u64::from(self.cfg.line_bytes))
    }

    fn set_slice_mut(&mut self, set: u64) -> &mut [LineMeta] {
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        &mut self.lines_mut()[base..base + ways]
    }

    fn set_slice(&self, set: u64) -> &[LineMeta] {
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        &self.lines[base..base + ways]
    }

    /// True if the line is currently cached (no state change).
    #[must_use]
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        self.set_slice(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Accesses a line, filling it on a miss; returns hit/miss and any
    /// victim evicted by the fill.
    pub fn access(&mut self, addr: PhysAddr, write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let repl = self.cfg.replacement;

        // Hit path.
        if let Some(line) = self
            .set_slice_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.stamp = tick;
            line.rrpv = 0; // SRRIP: promote on hit.
            line.dirty |= write;
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }

        // Miss: choose a victim.
        let victim_idx = self.choose_victim(set, repl);
        let sets = self.sets;
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        let victim = self.lines[base + victim_idx];
        let evicted = if victim.valid {
            Some(EvictedLine {
                addr: PhysAddr((victim.tag * sets + set) * u64::from(self.cfg.line_bytes)),
                dirty: victim.dirty,
            })
        } else {
            None
        };
        self.lines_mut()[base + victim_idx] = LineMeta {
            tag,
            valid: true,
            dirty: write,
            stamp: tick,
            rrpv: RRPV_INSERT,
        };
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Fills a line without counting as a demand access (prefetch fill).
    pub fn fill(&mut self, addr: PhysAddr) -> Option<EvictedLine> {
        let r = self.access(addr, false);
        r.evicted
    }

    /// Invalidates (flushes) a line if present, returning it.
    ///
    /// Models `clflush`: the line is removed from this level; the caller is
    /// responsible for charging any write-back latency if the line was
    /// dirty.
    pub fn flush(&mut self, addr: PhysAddr) -> Option<EvictedLine> {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let sets = self.sets;
        let line_bytes = u64::from(self.cfg.line_bytes);
        let line = self
            .set_slice_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)?;
        let evicted = EvictedLine {
            addr: PhysAddr((line.tag * sets + set) * line_bytes),
            dirty: line.dirty,
        };
        *line = LineMeta::empty();
        Some(evicted)
    }

    /// Addresses currently resident in the set containing `addr`
    /// (test/diagnostic aid).
    #[must_use]
    pub fn resident_in_set(&self, addr: PhysAddr) -> Vec<PhysAddr> {
        let set = self.set_index(addr);
        self.set_slice(set)
            .iter()
            .filter(|l| l.valid)
            .map(|l| self.addr_of(set, l.tag))
            .collect()
    }

    /// Clears all lines.
    pub fn reset(&mut self) {
        for l in self.lines_mut() {
            *l = LineMeta::empty();
        }
        self.tick = 0;
    }

    fn choose_victim(&mut self, set: u64, repl: ReplacementKind) -> usize {
        // Prefer an invalid way.
        if let Some(idx) = self.set_slice(set).iter().position(|l| !l.valid) {
            return idx;
        }
        match repl {
            ReplacementKind::Lru => self
                .set_slice(set)
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("non-empty set"),
            ReplacementKind::Srrip => {
                // Find a line with RRPV == MAX, aging all lines until one
                // appears.
                loop {
                    if let Some(idx) = self.set_slice(set).iter().position(|l| l.rrpv >= RRPV_MAX) {
                        return idx;
                    }
                    for l in self.set_slice_mut(set) {
                        l.rrpv = (l.rrpv + 1).min(RRPV_MAX);
                    }
                }
            }
        }
    }
}

impl Snapshot for SetAssocCache {
    /// The cache is its own snapshot: clones share the line array `Arc`.
    type Snap = SetAssocCache;

    fn snapshot(&self) -> SetAssocCache {
        self.clone()
    }

    fn restore(&mut self, snap: &SetAssocCache) {
        self.lines = Arc::clone(&snap.lines);
        self.tick = snap.tick;
    }

    fn fork(&self) -> SetAssocCache {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ways: u32, repl: ReplacementKind) -> CacheLevelConfig {
        CacheLevelConfig {
            size_bytes: u64::from(ways) * 64 * 4, // 4 sets
            ways,
            line_bytes: 64,
            latency_cycles: 10,
            replacement: repl,
        }
    }

    /// Returns `n` distinct line addresses all mapping to the same set as
    /// `base`.
    fn congruent(cache: &SetAssocCache, base: PhysAddr, n: usize) -> Vec<PhysAddr> {
        let stride = cache.num_sets() * 64;
        (1..=n as u64)
            .map(|i| PhysAddr(base.0 + i * stride))
            .collect()
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(cfg(4, ReplacementKind::Lru));
        let a = PhysAddr(0x1000);
        assert!(!c.access(a, false).hit);
        assert!(c.access(a, false).hit);
        assert!(c.probe(a));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SetAssocCache::new(cfg(2, ReplacementKind::Lru));
        let a = PhysAddr(0);
        let others = congruent(&c, a, 2);
        c.access(a, false);
        c.access(others[0], false);
        // Touch `a` so others[0] is LRU.
        c.access(a, false);
        let r = c.access(others[1], false);
        assert_eq!(
            r.evicted,
            Some(EvictedLine {
                addr: others[0],
                dirty: false
            })
        );
        assert!(c.probe(a));
        assert!(!c.probe(others[0]));
    }

    #[test]
    fn srrip_scan_resistance() {
        // A hot line re-referenced between scans should survive a one-pass
        // scan of the set under SRRIP.
        let mut c = SetAssocCache::new(cfg(4, ReplacementKind::Srrip));
        let hot = PhysAddr(0);
        c.access(hot, false);
        c.access(hot, false); // rrpv -> 0
        let scan = congruent(&c, hot, 6);
        for &s in &scan {
            c.access(s, false);
        }
        assert!(c.probe(hot), "hot line evicted by scan under SRRIP");
    }

    #[test]
    fn flush_removes_line() {
        let mut c = SetAssocCache::new(cfg(4, ReplacementKind::Lru));
        let a = PhysAddr(0x40);
        c.access(a, true);
        let flushed = c.flush(a).expect("line was resident");
        assert!(flushed.dirty);
        assert!(!c.probe(a));
        assert_eq!(c.flush(a), None);
    }

    #[test]
    fn dirty_writeback_on_eviction() {
        let mut c = SetAssocCache::new(cfg(2, ReplacementKind::Lru));
        let a = PhysAddr(0);
        let others = congruent(&c, a, 2);
        c.access(a, true); // dirty
        c.access(others[0], false);
        let r = c.access(others[1], false);
        let ev = r.evicted.expect("must evict");
        assert_eq!(ev.addr, a);
        assert!(ev.dirty);
    }

    #[test]
    fn set_index_partitions_addresses() {
        let c = SetAssocCache::new(cfg(4, ReplacementKind::Lru));
        // 4 sets: consecutive lines land in consecutive sets.
        assert_eq!(c.set_index(PhysAddr(0)), 0);
        assert_eq!(c.set_index(PhysAddr(64)), 1);
        assert_eq!(c.set_index(PhysAddr(64 * 4)), 0);
    }

    #[test]
    fn resident_in_set_reports_contents() {
        let mut c = SetAssocCache::new(cfg(2, ReplacementKind::Lru));
        let a = PhysAddr(0);
        c.access(a, false);
        let others = congruent(&c, a, 1);
        c.access(others[0], false);
        let mut resident = c.resident_in_set(a);
        resident.sort();
        assert_eq!(resident, vec![a, others[0]]);
    }

    #[test]
    fn reset_clears() {
        let mut c = SetAssocCache::new(cfg(2, ReplacementKind::Lru));
        c.access(PhysAddr(0), false);
        c.reset();
        assert!(!c.probe(PhysAddr(0)));
    }

    #[test]
    fn fill_behaves_like_clean_access() {
        let mut c = SetAssocCache::new(cfg(2, ReplacementKind::Lru));
        let a = PhysAddr(0x80);
        assert_eq!(c.fill(a), None);
        assert!(c.probe(a));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(CacheLevelConfig {
            size_bytes: 4 * 64 * 4, // 4 sets x 4 ways
            ways: 4,
            line_bytes: 64,
            latency_cycles: 1,
            replacement: ReplacementKind::Lru,
        })
    }

    proptest! {
        /// Occupancy invariant: a set never holds more lines than ways,
        /// and the most recently accessed line is always resident.
        #[test]
        fn capacity_and_mru_residency(addrs in prop::collection::vec(0u64..4096, 1..200)) {
            let mut c = small_cache();
            for a in addrs {
                let a = PhysAddr(a).line_aligned();
                c.access(a, false);
                prop_assert!(c.probe(a), "MRU line {a} evicted");
                prop_assert!(c.resident_in_set(a).len() <= 4);
            }
        }

        /// Flush is precise: it removes exactly the requested line.
        #[test]
        fn flush_is_precise(addrs in prop::collection::vec(0u64..2048, 2..50)) {
            let mut c = small_cache();
            let lines: Vec<PhysAddr> =
                addrs.iter().map(|&a| PhysAddr(a).line_aligned()).collect();
            for &a in &lines {
                c.access(a, false);
            }
            let victim = lines[0];
            let resident_before: Vec<PhysAddr> = lines
                .iter()
                .copied()
                .filter(|&l| l != victim && c.probe(l))
                .collect();
            c.flush(victim);
            prop_assert!(!c.probe(victim));
            for l in resident_before {
                prop_assert!(c.probe(l), "flush evicted bystander {l}");
            }
        }

        /// Under LRU, filling a set with `ways` fresh lines evicts
        /// everything older, deterministically.
        #[test]
        fn lru_eviction_is_deterministic(base in 0u64..256) {
            let mut c = small_cache();
            let base = PhysAddr(base * 64);
            let stride = c.num_sets() * 64;
            c.access(base, false);
            for i in 1..=4u64 {
                c.access(PhysAddr(base.0 + i * stride), false);
            }
            prop_assert!(!c.probe(base), "LRU kept the oldest line");
        }
    }
}
