//! Hardware prefetchers, used as noise sources (§5.2.3).
//!
//! Table 2 lists an IP-stride prefetcher at L1 and a streamer at L2. In the
//! simulator their purpose is to generate extra DRAM row activations that
//! perturb the row-buffer state observed by attackers; both are modelled
//! behaviourally.

use impact_core::addr::{PhysAddr, LINE_SIZE};

/// A prefetch the hardware would like to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Line-aligned target address.
    pub addr: PhysAddr,
}

/// Common interface for prefetchers: observe a demand access (with its
/// originating stream/instruction id) and optionally emit prefetches.
pub trait Prefetcher: Send {
    /// Observes a demand access from instruction/stream `ip` to `addr`
    /// (`miss` = it missed the cache this prefetcher sits next to) and
    /// returns prefetch requests to issue.
    fn observe(&mut self, ip: u64, addr: PhysAddr, miss: bool) -> Vec<PrefetchRequest>;

    /// Clears learned state.
    fn reset(&mut self);
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    ip: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// IP-stride prefetcher (Fu et al., MICRO'92): learns a per-instruction
/// stride and prefetches `addr + stride` once confident.
///
/// # Example
///
/// ```
/// use impact_cache::{IpStridePrefetcher, Prefetcher};
/// use impact_core::addr::PhysAddr;
///
/// let mut p = IpStridePrefetcher::new(16);
/// assert!(p.observe(1, PhysAddr(0), true).is_empty());
/// assert!(p.observe(1, PhysAddr(64), true).is_empty());   // stride learned
/// let reqs = p.observe(1, PhysAddr(128), true);            // confident
/// assert_eq!(reqs[0].addr, PhysAddr(192));
/// ```
#[derive(Debug, Clone)]
pub struct IpStridePrefetcher {
    table: Vec<StrideEntry>,
}

impl IpStridePrefetcher {
    /// Creates a prefetcher with `entries` table slots.
    #[must_use]
    pub fn new(entries: usize) -> IpStridePrefetcher {
        IpStridePrefetcher {
            table: vec![StrideEntry::default(); entries.max(1)],
        }
    }
}

impl Prefetcher for IpStridePrefetcher {
    fn observe(&mut self, ip: u64, addr: PhysAddr, _miss: bool) -> Vec<PrefetchRequest> {
        let idx = (ip as usize) % self.table.len();
        let e = &mut self.table[idx];
        let addr = addr.line_aligned().0;
        if !e.valid || e.ip != ip {
            *e = StrideEntry {
                ip,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return Vec::new();
        }
        let stride = addr as i64 - e.last_addr as i64;
        if stride == 0 {
            return Vec::new();
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= 1 {
            let next = addr as i64 + stride;
            if next >= 0 {
                return vec![PrefetchRequest {
                    addr: PhysAddr(next as u64),
                }];
            }
        }
        Vec::new()
    }

    fn reset(&mut self) {
        for e in &mut self.table {
            *e = StrideEntry::default();
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    zone: u64,
    last_line: u64,
    direction: i64,
    hits: u8,
    valid: bool,
}

/// Streamer prefetcher (Chen & Baer style): detects two misses with a
/// consistent direction inside a 4 KiB zone and prefetches a run of
/// subsequent lines.
#[derive(Debug, Clone)]
pub struct StreamerPrefetcher {
    streams: Vec<StreamEntry>,
    degree: u32,
}

/// Zone size tracked by the streamer.
const ZONE_BYTES: u64 = 4096;

impl StreamerPrefetcher {
    /// Creates a streamer with `streams` tracked zones issuing `degree`
    /// prefetches when triggered.
    #[must_use]
    pub fn new(streams: usize, degree: u32) -> StreamerPrefetcher {
        StreamerPrefetcher {
            streams: vec![StreamEntry::default(); streams.max(1)],
            degree: degree.max(1),
        }
    }
}

impl Prefetcher for StreamerPrefetcher {
    fn observe(&mut self, _ip: u64, addr: PhysAddr, miss: bool) -> Vec<PrefetchRequest> {
        if !miss {
            return Vec::new();
        }
        let line = addr.line_aligned().0 / LINE_SIZE;
        let zone = addr.0 / ZONE_BYTES;
        let idx = (zone as usize) % self.streams.len();
        let e = &mut self.streams[idx];
        if !e.valid || e.zone != zone {
            *e = StreamEntry {
                zone,
                last_line: line,
                direction: 0,
                hits: 0,
                valid: true,
            };
            return Vec::new();
        }
        let dir = (line as i64 - e.last_line as i64).signum();
        if dir == 0 {
            return Vec::new();
        }
        if dir == e.direction {
            e.hits = e.hits.saturating_add(1);
        } else {
            e.direction = dir;
            e.hits = 0;
        }
        e.last_line = line;
        if e.hits >= 1 {
            let mut reqs = Vec::new();
            for i in 1..=i64::from(self.degree) {
                let next = line as i64 + dir * i;
                if next >= 0 {
                    reqs.push(PrefetchRequest {
                        addr: PhysAddr(next as u64 * LINE_SIZE),
                    });
                }
            }
            return reqs;
        }
        Vec::new()
    }

    fn reset(&mut self) {
        for e in &mut self.streams {
            *e = StreamEntry::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_stride_learns_and_prefetches() {
        let mut p = IpStridePrefetcher::new(8);
        assert!(p.observe(7, PhysAddr(0), true).is_empty());
        assert!(p.observe(7, PhysAddr(128), true).is_empty());
        let r = p.observe(7, PhysAddr(256), true);
        assert_eq!(
            r,
            vec![PrefetchRequest {
                addr: PhysAddr(384)
            }]
        );
    }

    #[test]
    fn ip_stride_resets_on_new_ip() {
        let mut p = IpStridePrefetcher::new(1); // forced aliasing
        p.observe(1, PhysAddr(0), true);
        p.observe(1, PhysAddr(64), true);
        // Different ip aliases to the same slot and resets it.
        assert!(p.observe(2, PhysAddr(0), true).is_empty());
        assert!(p.observe(2, PhysAddr(64), true).is_empty());
    }

    #[test]
    fn ip_stride_irregular_pattern_quiet() {
        let mut p = IpStridePrefetcher::new(8);
        p.observe(1, PhysAddr(0), true);
        p.observe(1, PhysAddr(64), true);
        // Stride changes: confidence resets, no prefetch.
        assert!(p.observe(1, PhysAddr(1024), true).is_empty());
    }

    #[test]
    fn streamer_triggers_on_directional_misses() {
        let mut p = StreamerPrefetcher::new(4, 2);
        let zone = 0x10_000;
        assert!(p.observe(0, PhysAddr(zone), true).is_empty());
        assert!(p.observe(0, PhysAddr(zone + 64), true).is_empty());
        let r = p.observe(0, PhysAddr(zone + 128), true);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].addr, PhysAddr(zone + 192));
        assert_eq!(r[1].addr, PhysAddr(zone + 256));
    }

    #[test]
    fn streamer_ignores_hits() {
        let mut p = StreamerPrefetcher::new(4, 2);
        for i in 0..8u64 {
            assert!(p.observe(0, PhysAddr(i * 64), false).is_empty());
        }
    }

    #[test]
    fn streamer_backward_direction() {
        let mut p = StreamerPrefetcher::new(4, 1);
        let top = 0x20_000u64;
        p.observe(0, PhysAddr(top + 512), true);
        p.observe(0, PhysAddr(top + 448), true);
        let r = p.observe(0, PhysAddr(top + 384), true);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].addr, PhysAddr(top + 320));
    }

    #[test]
    fn reset_clears_state() {
        let mut p = IpStridePrefetcher::new(4);
        p.observe(1, PhysAddr(0), true);
        p.observe(1, PhysAddr(64), true);
        p.reset();
        assert!(p.observe(1, PhysAddr(128), true).is_empty());
        let mut s = StreamerPrefetcher::new(4, 2);
        s.observe(0, PhysAddr(0), true);
        s.observe(0, PhysAddr(64), true);
        s.reset();
        assert!(s.observe(0, PhysAddr(128), true).is_empty());
    }
}
