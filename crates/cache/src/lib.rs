//! Cache-hierarchy simulator for the IMPACT reproduction.
//!
//! Provides the processor-centric side of the story: the deep cache
//! hierarchy that main-memory timing attacks must bypass (§3.2–§3.3 of the
//! paper). Contains:
//!
//! * [`SetAssocCache`] — a set-associative cache with LRU and SRRIP
//!   replacement (Table 2 uses LRU in L1 and SRRIP in L2/L3);
//! * [`CacheHierarchy`] — the three-level hierarchy with `clflush` support;
//! * [`cacti`] — a CACTI-6.0-style latency model `lat(size, ways)` used for
//!   the LLC sweeps of Figs. 2, 3 and 9;
//! * [`EvictionSet`] — congruent-address eviction sets, the cache-bypassing
//!   primitive of the DRAMA-eviction baseline;
//! * prefetchers ([`IpStridePrefetcher`], [`StreamerPrefetcher`]) — the
//!   noise sources of §5.2.3.
//!
//! # Example
//!
//! ```
//! use impact_cache::{CacheHierarchy, HitLevel};
//! use impact_core::config::SystemConfig;
//! use impact_core::addr::PhysAddr;
//!
//! let mut h = CacheHierarchy::from_config(&SystemConfig::paper_table2());
//! let a = PhysAddr(0x4000);
//! let first = h.load(a);
//! assert_eq!(first.level, HitLevel::Memory); // cold miss
//! let second = h.load(a);
//! assert_eq!(second.level, HitLevel::L1);    // now cached
//! ```

pub mod cacti;
pub mod eviction;
pub mod hierarchy;
pub mod prefetch;
pub mod set_assoc;

pub use eviction::EvictionSet;
pub use hierarchy::{CacheHierarchy, HierarchyOutcome, HitLevel};
pub use prefetch::{IpStridePrefetcher, PrefetchRequest, Prefetcher, StreamerPrefetcher};
pub use set_assoc::{AccessResult, EvictedLine, SetAssocCache};
