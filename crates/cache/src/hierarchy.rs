//! Three-level inclusive cache hierarchy.

use impact_core::addr::PhysAddr;
use impact_core::config::SystemConfig;
use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;

use crate::cacti;
use crate::set_assoc::SetAssocCache;

/// Where a load was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the L2 cache.
    L2,
    /// Served by the last-level cache.
    L3,
    /// Missed everywhere; must go to main memory.
    Memory,
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Where the line was found.
    pub level: HitLevel,
    /// Accumulated lookup latency across the traversed levels. Does **not**
    /// include main-memory latency — that is the memory controller's job.
    pub latency: Cycles,
    /// Number of dirty lines evicted to memory by fills on this access.
    pub writebacks: u32,
}

/// The Table 2 cache hierarchy: 32 KiB L1D (LRU), 2 MiB L2 (SRRIP) and a
/// configurable LLC (SRRIP), maintained inclusive.
///
/// Inclusivity matters for the eviction-set baseline: evicting a line from
/// the LLC back-invalidates it from L1/L2, so LLC eviction suffices to push
/// the next access to DRAM.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a system configuration, using the
    /// configured per-level latencies.
    #[must_use]
    pub fn from_config(cfg: &SystemConfig) -> CacheHierarchy {
        CacheHierarchy {
            l1: SetAssocCache::new(cfg.l1d),
            l2: SetAssocCache::new(cfg.l2),
            l3: SetAssocCache::new(cfg.l3),
        }
    }

    /// Builds the hierarchy with the LLC latency derived from the CACTI
    /// model instead of the configured constant — used by the Fig. 2/3/9
    /// LLC sweeps where size/associativity vary.
    #[must_use]
    pub fn from_config_with_cacti_llc(cfg: &SystemConfig) -> CacheHierarchy {
        let mut l3cfg = cfg.l3;
        l3cfg.latency_cycles = cacti::llc_latency(l3cfg.size_bytes, l3cfg.ways).0;
        CacheHierarchy {
            l1: SetAssocCache::new(cfg.l1d),
            l2: SetAssocCache::new(cfg.l2),
            l3: SetAssocCache::new(l3cfg),
        }
    }

    /// The last-level cache (for eviction-set construction).
    #[must_use]
    pub fn llc(&self) -> &SetAssocCache {
        &self.l3
    }

    /// Latency of an LLC lookup.
    #[must_use]
    pub fn llc_latency(&self) -> Cycles {
        self.l3.latency()
    }

    /// Performs a load, filling caches on the way back.
    pub fn load(&mut self, addr: PhysAddr) -> HierarchyOutcome {
        self.access(addr, false)
    }

    /// Performs a store (write-allocate).
    pub fn store(&mut self, addr: PhysAddr) -> HierarchyOutcome {
        self.access(addr, true)
    }

    fn access(&mut self, addr: PhysAddr, write: bool) -> HierarchyOutcome {
        let addr = addr.line_aligned();
        let mut latency = self.l1.latency();
        if self.l1.access(addr, write).hit {
            return HierarchyOutcome {
                level: HitLevel::L1,
                latency,
                writebacks: 0,
            };
        }
        latency += self.l2.latency();
        if self.l2.access(addr, write).hit {
            return HierarchyOutcome {
                level: HitLevel::L2,
                latency,
                writebacks: 0,
            };
        }
        latency += self.l3.latency();
        let l3res = self.l3.access(addr, write);
        let mut writebacks = 0;
        if let Some(victim) = l3res.evicted {
            // Maintain inclusion: back-invalidate the victim everywhere.
            if victim.dirty {
                writebacks += 1;
            }
            if let Some(v) = self.l2.flush(victim.addr) {
                if v.dirty {
                    writebacks += 1;
                }
            }
            self.l1.flush(victim.addr);
        }
        let level = if l3res.hit {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };
        HierarchyOutcome {
            level,
            latency,
            writebacks,
        }
    }

    /// Executes `clflush`: probes the LLC and invalidates the line from
    /// every level. Returns the flush latency (one LLC lookup — §5.2.2:
    /// "clflush only probes the LLC") and whether a dirty copy must be
    /// written back to memory.
    pub fn clflush(&mut self, addr: PhysAddr) -> (Cycles, bool) {
        let addr = addr.line_aligned();
        let mut dirty = false;
        if let Some(v) = self.l1.flush(addr) {
            dirty |= v.dirty;
        }
        if let Some(v) = self.l2.flush(addr) {
            dirty |= v.dirty;
        }
        if let Some(v) = self.l3.flush(addr) {
            dirty |= v.dirty;
        }
        (self.l3.latency(), dirty)
    }

    /// True if the line is resident at any level.
    #[must_use]
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let addr = addr.line_aligned();
        self.l1.probe(addr) || self.l2.probe(addr) || self.l3.probe(addr)
    }

    /// True if the line is resident in the LLC.
    #[must_use]
    pub fn probe_llc(&self, addr: PhysAddr) -> bool {
        self.l3.probe(addr.line_aligned())
    }

    /// Clears all levels.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
    }
}

impl Snapshot for CacheHierarchy {
    /// The hierarchy is its own snapshot: each level shares its line
    /// array copy-on-write.
    type Snap = CacheHierarchy;

    fn snapshot(&self) -> CacheHierarchy {
        self.clone()
    }

    fn restore(&mut self, snap: &CacheHierarchy) {
        self.l1.restore(&snap.l1);
        self.l2.restore(&snap.l2);
        self.l3.restore(&snap.l3);
    }

    fn fork(&self) -> CacheHierarchy {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::from_config(&SystemConfig::paper_table2())
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut h = hierarchy();
        let a = PhysAddr(0x10_000);
        let first = h.load(a);
        assert_eq!(first.level, HitLevel::Memory);
        // Lookup latency = 4 + 16 + 50 = 70 for Table 2.
        assert_eq!(first.latency, Cycles(70));
        let second = h.load(a);
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(second.latency, Cycles(4));
    }

    #[test]
    fn clflush_pushes_next_access_to_memory() {
        let mut h = hierarchy();
        let a = PhysAddr(0x2000);
        h.load(a);
        assert!(h.probe(a));
        let (lat, dirty) = h.clflush(a);
        assert_eq!(lat, Cycles(50));
        assert!(!dirty);
        assert!(!h.probe(a));
        assert_eq!(h.load(a).level, HitLevel::Memory);
    }

    #[test]
    fn clflush_reports_dirty() {
        let mut h = hierarchy();
        let a = PhysAddr(0x3000);
        h.store(a);
        let (_, dirty) = h.clflush(a);
        assert!(dirty);
    }

    #[test]
    fn inclusion_back_invalidates() {
        // Fill one LLC set to capacity + 1 with lines also resident in L1;
        // the LLC victim must leave L1 too.
        let cfg = SystemConfig::paper_table2();
        let mut h = CacheHierarchy::from_config(&cfg);
        let sets = cfg.l3.sets();
        let stride = sets * 64;
        let base = PhysAddr(0);
        let lines: Vec<PhysAddr> = (0..=u64::from(cfg.l3.ways))
            .map(|i| PhysAddr(base.0 + i * stride))
            .collect();
        for &l in &lines {
            h.load(l);
        }
        let resident = lines.iter().filter(|&&l| h.probe(l)).count();
        // At least one line must have been evicted from everywhere
        // (inclusion: an LLC victim cannot linger in L1/L2).
        assert!(resident <= cfg.l3.ways as usize);
        let victims: Vec<_> = lines.iter().filter(|&&l| !h.probe(l)).collect();
        for v in victims {
            assert_eq!(h.load(*v).level, HitLevel::Memory);
        }
    }

    #[test]
    fn l2_and_l3_hits() {
        let mut h = hierarchy();
        let a = PhysAddr(0x4000);
        h.load(a); // memory
                   // Evict from L1 only: fill L1's set (8 ways, 64 sets -> stride 4096).
        for i in 1..=8u64 {
            h.load(PhysAddr(a.0 + i * 64 * 64));
        }
        let again = h.load(a);
        assert!(
            again.level == HitLevel::L2 || again.level == HitLevel::L3,
            "expected L2/L3 hit, got {:?}",
            again.level
        );
    }

    #[test]
    fn cacti_llc_latency_used_in_sweeps() {
        let cfg = SystemConfig::paper_table2().with_llc_size(128 << 20);
        let h = CacheHierarchy::from_config_with_cacti_llc(&cfg);
        assert_eq!(h.llc_latency(), cacti::llc_latency(128 << 20, 16));
        assert!(h.llc_latency() > Cycles(300));
    }

    #[test]
    fn reset_clears_hierarchy() {
        let mut h = hierarchy();
        let a = PhysAddr(0x5000);
        h.load(a);
        h.reset();
        assert!(!h.probe(a));
        assert_eq!(h.load(a).level, HitLevel::Memory);
    }
}
