//! Eviction sets: the cache-bypassing primitive of the DRAMA-eviction
//! baseline (§3.2, §5.2.2).
//!
//! An eviction set for a target line is a collection of `ways` congruent
//! addresses (same LLC set). Accessing all of them displaces the target —
//! deterministically under LRU, probabilistically under SRRIP and in the
//! presence of prefetchers, which is why the paper classifies eviction sets
//! as lacking ISA guarantees (Table 1).

use impact_core::addr::PhysAddr;
use impact_core::time::Cycles;

use crate::hierarchy::{CacheHierarchy, HitLevel};

/// A set of addresses congruent with a target in the LLC.
#[derive(Debug, Clone)]
pub struct EvictionSet {
    target: PhysAddr,
    members: Vec<PhysAddr>,
}

/// Result of one eviction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionAttempt {
    /// Whether the target left the LLC.
    pub evicted: bool,
    /// Total lookup latency spent traversing the hierarchy.
    pub lookup_latency: Cycles,
    /// Number of set members that missed everywhere and required a memory
    /// access (the caller charges DRAM latency for each).
    pub memory_fetches: u32,
}

impl EvictionSet {
    /// Builds a minimal eviction set for `target`: `ways` addresses that
    /// map to the same LLC set, none equal to the target.
    ///
    /// Addresses are synthesized by striding whole LLC "ways images"
    /// (`sets * line` bytes apart), offset to avoid colliding with the
    /// target's tag.
    #[must_use]
    pub fn build(hierarchy: &CacheHierarchy, target: PhysAddr) -> EvictionSet {
        let llc = hierarchy.llc();
        let ways = llc.config().ways;
        let stride = llc.num_sets() * u64::from(llc.config().line_bytes);
        let base = target.line_aligned();
        let members = (1..=u64::from(ways))
            .map(|i| PhysAddr(base.0 + i * stride))
            .collect();
        EvictionSet {
            target: base,
            members,
        }
    }

    /// The target line.
    #[must_use]
    pub fn target(&self) -> PhysAddr {
        self.target
    }

    /// The member addresses.
    #[must_use]
    pub fn members(&self) -> &[PhysAddr] {
        &self.members
    }

    /// Accesses every member once and reports whether the target was
    /// displaced from the LLC, along with the latency bookkeeping.
    pub fn run_once(&self, hierarchy: &mut CacheHierarchy) -> EvictionAttempt {
        let mut lookup_latency = Cycles::ZERO;
        let mut memory_fetches = 0;
        for &m in &self.members {
            let out = hierarchy.load(m);
            lookup_latency += out.latency;
            if out.level == HitLevel::Memory {
                memory_fetches += 1;
            }
        }
        EvictionAttempt {
            evicted: !hierarchy.probe_llc(self.target),
            lookup_latency,
            memory_fetches,
        }
    }

    /// Runs eviction attempts until the target leaves the LLC or
    /// `max_rounds` is reached. Returns the attempt count and the combined
    /// bookkeeping; `evicted` reflects the final state.
    pub fn run_until_evicted(
        &self,
        hierarchy: &mut CacheHierarchy,
        max_rounds: u32,
    ) -> (u32, EvictionAttempt) {
        let mut total = EvictionAttempt {
            evicted: false,
            lookup_latency: Cycles::ZERO,
            memory_fetches: 0,
        };
        for round in 1..=max_rounds {
            let a = self.run_once(hierarchy);
            total.lookup_latency += a.lookup_latency;
            total.memory_fetches += a.memory_fetches;
            total.evicted = a.evicted;
            if a.evicted {
                return (round, total);
            }
        }
        (max_rounds, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::SystemConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::from_config(&SystemConfig::paper_table2())
    }

    #[test]
    fn members_are_congruent_and_distinct() {
        let h = hierarchy();
        let target = PhysAddr(0x12345 & !63);
        let set = EvictionSet::build(&h, PhysAddr(0x12345));
        let llc = h.llc();
        let target_set = llc.set_index(target);
        assert_eq!(set.members().len(), llc.config().ways as usize);
        for &m in set.members() {
            assert_eq!(llc.set_index(m), target_set);
            assert_ne!(m, target);
        }
        let mut sorted = set.members().to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), set.members().len());
    }

    #[test]
    fn eviction_eventually_succeeds() {
        let mut h = hierarchy();
        let target = PhysAddr(0x40000);
        h.load(target);
        assert!(h.probe_llc(target));
        let set = EvictionSet::build(&h, target);
        let (rounds, attempt) = set.run_until_evicted(&mut h, 16);
        assert!(attempt.evicted, "target survived {rounds} rounds");
        assert!(!h.probe_llc(target));
        assert!(attempt.lookup_latency > Cycles::ZERO);
        assert!(attempt.memory_fetches > 0);
    }

    #[test]
    fn srrip_may_need_multiple_rounds() {
        // A freshly promoted target (two touches -> RRPV 0) resists a
        // single SRRIP scan more than a stale one; regardless, eviction
        // must succeed within a small number of rounds.
        let mut h = hierarchy();
        let target = PhysAddr(0x80000);
        h.load(target);
        h.load(target);
        let set = EvictionSet::build(&h, target);
        let (rounds, attempt) = set.run_until_evicted(&mut h, 16);
        assert!(attempt.evicted);
        assert!(rounds >= 1);
    }

    #[test]
    fn cyclic_eviction_thrashes_replacement() {
        // A cyclic working set of ways+1 lines thrashes both LRU and SRRIP:
        // most rounds turn into memory fetches. This is exactly why the
        // paper notes that "the actual eviction latency in a real system
        // can be much higher" than the analytic N-accesses model (§3.3.1),
        // and why DRAMA-Eviction is the slowest attack in Fig. 9. The
        // analytic Fig. 2/3 axis uses `cacti::eviction_latency` instead.
        let mut h = hierarchy();
        let target = PhysAddr(0xc0000);
        let set = EvictionSet::build(&h, target);
        h.load(target);
        let _first = set.run_once(&mut h);
        // Re-fetch target (as the covert-channel receiver does each bit).
        h.load(target);
        let steady = set.run_once(&mut h);
        let ways = h.llc().config().ways;
        assert!(
            steady.memory_fetches >= ways / 2,
            "expected thrashing, fetches = {}",
            steady.memory_fetches
        );
        // And the eviction still succeeds despite the cost.
        assert!(steady.evicted || !h.probe_llc(target));
    }
}
