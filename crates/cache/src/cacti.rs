//! CACTI-6.0-style LLC latency model.
//!
//! The paper computes cache access latency for increasing LLC sizes with
//! CACTI 6.0 (§3.3.2) and uses it for the eviction-latency axis of Figs. 2
//! and 3. We reproduce the *trend* with an analytic model calibrated so
//! that:
//!
//! * at 16 ways, eviction latency grows from ~0.8 K cycles at 4 MB to
//!   ~6.5-7 K cycles at 128 MB (Fig. 2 right axis), and
//! * at 16 MB, eviction latency grows to ~23 K cycles at 128 ways
//!   (Fig. 3 right axis),
//!
//! where an eviction in steady state costs `ways × llc_latency + one memory
//! access` (see [`crate::eviction`]).

use impact_core::time::Cycles;

/// Bytes per mebibyte.
const MIB: f64 = 1024.0 * 1024.0;

/// LLC access latency in CPU cycles as a function of capacity and
/// associativity.
///
/// The size term models wire/array delay growth; the ways term models tag
/// match and mux widening. Calibrated to the paper's Fig. 2/3 axes (see
/// module docs).
///
/// # Example
///
/// ```
/// use impact_cache::cacti::llc_latency;
///
/// let small = llc_latency(4 << 20, 16);
/// let large = llc_latency(128 << 20, 16);
/// assert!(large > small * 5);
/// ```
#[must_use]
pub fn llc_latency(size_bytes: u64, ways: u32) -> Cycles {
    let mb = size_bytes as f64 / MIB;
    let base = 20.0 + 3.0 * mb;
    let ways_mult = 0.8 + 0.2 * (f64::from(ways) / 16.0).powf(1.07);
    Cycles((base * ways_mult).round().max(1.0) as u64)
}

/// Steady-state latency of evicting one target line with a `ways`-sized
/// eviction set: `ways` LLC accesses (mostly hits) plus one memory fetch
/// for the set member displaced by the target's refetch.
///
/// `memory_latency` is the average DRAM access latency including the
/// controller front end.
#[must_use]
pub fn eviction_latency(size_bytes: u64, ways: u32, memory_latency: Cycles) -> Cycles {
    llc_latency(size_bytes, ways) * u64::from(ways) + memory_latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_size() {
        let sizes = [1u64, 2, 4, 8, 16, 32, 64, 128];
        let mut prev = Cycles::ZERO;
        for s in sizes {
            let l = llc_latency(s << 20, 16);
            assert!(l > prev, "latency must grow with size");
            prev = l;
        }
    }

    #[test]
    fn monotone_in_ways() {
        let mut prev = Cycles::ZERO;
        for w in [2u32, 4, 8, 16, 32, 64, 128] {
            let l = llc_latency(16 << 20, w);
            assert!(l > prev, "latency must grow with ways");
            prev = l;
        }
    }

    #[test]
    fn fig2_eviction_band() {
        // Fig. 2 right axis: eviction latency at 16 ways spans roughly
        // 0.5-1.5K cycles at 4 MB up to 6-8K cycles at 128 MB.
        let mem = Cycles(160);
        let lo = eviction_latency(4 << 20, 16, mem);
        let hi = eviction_latency(128 << 20, 16, mem);
        assert!((500..=1500).contains(&lo.0), "4MB eviction = {lo}");
        assert!((5500..=8000).contains(&hi.0), "128MB eviction = {hi}");
    }

    #[test]
    fn fig3_eviction_band() {
        // Fig. 3 right axis: ~20-25K cycles at 128 ways, 16 MB.
        let mem = Cycles(160);
        let hi = eviction_latency(16 << 20, 128, mem);
        assert!((18_000..=26_000).contains(&hi.0), "128-way eviction = {hi}");
        let lo = eviction_latency(16 << 20, 2, mem);
        assert!(lo.0 < 600, "2-way eviction = {lo}");
    }

    #[test]
    fn paper_table2_llc_reasonable() {
        // The 8 MB Table 2 LLC should be in the tens of cycles.
        let l = llc_latency(8 << 20, 16);
        assert!((30..=70).contains(&l.0), "8MB latency = {l}");
    }
}
