//! `impact-obs`: deterministic-safe telemetry for the IMPACT workspace.
//!
//! The reproduction's core invariant is that every backend, thread count
//! and trace replay is *bit-identical* — which rules out keeping runtime
//! telemetry (wall-clock timings, scheduling decisions, pool utilization)
//! anywhere inside the replicated state machine. This crate is where such
//! signals live instead: a process-global registry of typed [`Counter`]s,
//! [`Gauge`]s and fixed-bucket [`Histogram`]s, plus [`SpanGuard`] timers,
//! all interior-mutable (relaxed atomics) and all **invisible to
//! deterministic state**:
//!
//! * nothing here is read back by simulation code — values flow one way,
//!   from instrumentation sites into [`snapshot`];
//! * engine snapshots and forks never capture registry state (it is
//!   global, not a field of any snapshotted struct);
//! * the host clock is only consulted by [`Histogram::span`], and only
//!   while [`enabled`] — with telemetry disabled (the default) no
//!   instrumented code path reads time at all.
//!
//! This file is one of the sanctioned concurrency sites and the only
//! place outside `crates/bench` allowed to call `Instant::now` — both
//! enforced by `impact-analyze` (rule R7 `metrics-placement`).
//! Instrumented crates interact with it exclusively through function
//! calls (`impact_obs::registry().engine_forks.incr()`), so no atomics or
//! clock tokens appear in deterministic source files.
//!
//! [`snapshot`] freezes the registry into a [`MetricsSnapshot`] whose
//! [`MetricsSnapshot::to_json`] encoding is canonical (names sorted,
//! fixed formatting) — the format `fig_all --metrics`, `trace_replay
//! replay --metrics` and `bench_scaling` write.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Global switch for wall-clock collection. Value recording (counters,
/// gauges, histogram samples) is always on — a relaxed atomic add either
/// way — but [`Histogram::span`] only consults the host clock while this
/// is set, so a disabled process performs no time reads whatsoever.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span timing on or off (process-wide). Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span timing is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (`const`, so registries can be `static`).
    #[must_use]
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A last-write-wins instantaneous value (e.g. configured pool size).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// Bucket count of every [`Histogram`]: power-of-two bounds, bucket `i`
/// covering `[2^(i-1), 2^i)` (bucket 0 holds zeros, the last bucket ends
/// at `2^47` — comfortably above any latency in nanoseconds or batch size
/// this workspace produces). Larger samples are *not* folded into the top
/// bucket: they land in the histogram's explicit overflow count, so a
/// distribution that escaped the range is observable instead of
/// silently reported as a plausible-looking top-bucket value.
pub const BUCKETS: usize = 48;

/// The bucket a value lands in — its bit length — or `None` when the
/// value exceeds the bucketed range and must be counted as overflow.
fn bucket_index(v: u64) -> Option<usize> {
    let bits = (64 - v.leading_zeros()) as usize;
    (bits < BUCKETS).then_some(bits)
}

/// Inclusive lower bound of bucket `i`.
#[must_use]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A fixed-bucket size/latency distribution: power-of-two buckets plus an
/// exact count and sum (so means are exact even though quantiles are
/// bucket-resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Samples whose bit length exceeds the bucketed range — counted
    /// here, never folded into the top bucket.
    overflow: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram (`const`, so registries can be `static`).
    #[must_use]
    pub const fn new() -> Histogram {
        Histogram {
            // An inline-const element repeats a non-Copy zero in a const
            // array expression.
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    /// Records one sample. Values beyond the bucketed range still count
    /// toward `count` and `sum` but are tallied as overflow.
    pub fn record(&self, v: u64) {
        match bucket_index(v) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Starts a wall-clock span whose elapsed nanoseconds are recorded
    /// into this histogram when the guard drops. While telemetry is
    /// disabled ([`set_enabled`]) the guard is inert and **no clock read
    /// happens at all** — this is the only `Instant::now` call site the
    /// workspace sanctions outside `crates/bench`.
    pub fn span(&self) -> SpanGuard<'_> {
        SpanGuard {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }

    /// Freezes the current distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Live timer returned by [`Histogram::span`]; records on drop.
#[must_use = "a span records its duration when dropped — bind it for the region's lifetime"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

/// The workspace's metric registry: every telemetry sink, named here once
/// so [`snapshot`] and the JSON schema stay in lock-step with the
/// instrumentation sites.
#[derive(Debug, Default)]
pub struct Registry {
    /// `ctrl.batch.size` — requests per `service_batch` call.
    pub ctrl_batch_size: Histogram,
    /// `ctrl.segments.serial` — scalar segments below the bucketing
    /// threshold (or failing pre-validation), served request-by-request.
    pub ctrl_serial_segments: Counter,
    /// `ctrl.segments.sparse` — scalar segments served by the in-order
    /// located loop (mostly-singleton bank buckets).
    pub ctrl_sparse_segments: Counter,
    /// `ctrl.segments.dense` — scalar segments served by the bucketed
    /// per-bank loops with cursor state in registers.
    pub ctrl_dense_segments: Counter,
    /// `ctrl.cow.unshares` — copy-on-write write-backs that found their
    /// slab still shared with a snapshot and had to clone it.
    pub cow_unshares: Counter,
    /// `sharded.batches.parallel` — batches the sharded controller
    /// dispatched to its worker pool.
    pub sharded_parallel_batches: Counter,
    /// `sharded.batches.fallback` — batches serviced sequentially despite
    /// an active pool (RowClones present, below threshold, or validation
    /// fallback).
    pub sharded_fallback_batches: Counter,
    /// `sharded.bucket.size` — per-shard request-bucket sizes of
    /// pool-dispatched batches.
    pub sharded_bucket_size: Histogram,
    /// `sharded.worker.busy_ns` — wall-clock time a pool worker spent
    /// servicing one shard bucket (span; empty unless [`enabled`]).
    pub worker_busy_ns: Histogram,
    /// `sharded.pool.workers` — configured worker count of the most
    /// recently spawned pool.
    pub pool_workers: Gauge,
    /// `engine.forks` — copy-on-write engine forks.
    pub engine_forks: Counter,
    /// `engine.snapshots` — full engine snapshots taken.
    pub engine_snapshots: Counter,
    /// `sweep.experiment.wall_ns` — wall-clock per experiment job in
    /// `SweepRunner::run_all` (span; empty unless [`enabled`]).
    pub experiment_wall_ns: Histogram,
    /// `fleet.sessions.started` — sessions admitted by the fleet service.
    pub fleet_sessions_started: Counter,
    /// `fleet.sessions.finished` — sessions the fleet drove to completion.
    pub fleet_sessions_finished: Counter,
    /// `fleet.epochs` — epoch-scheduler rounds completed.
    pub fleet_epochs: Counter,
    /// `fleet.workers` — configured worker count of the latest fleet run.
    pub fleet_workers: Gauge,
    /// `fleet.epoch.wall_ns` — wall-clock per scheduler epoch (span;
    /// empty unless [`enabled`]).
    pub fleet_epoch_wall_ns: Histogram,
}

impl Registry {
    const fn new() -> Registry {
        Registry {
            ctrl_batch_size: Histogram::new(),
            ctrl_serial_segments: Counter::new(),
            ctrl_sparse_segments: Counter::new(),
            ctrl_dense_segments: Counter::new(),
            cow_unshares: Counter::new(),
            sharded_parallel_batches: Counter::new(),
            sharded_fallback_batches: Counter::new(),
            sharded_bucket_size: Histogram::new(),
            worker_busy_ns: Histogram::new(),
            pool_workers: Gauge::new(),
            engine_forks: Counter::new(),
            engine_snapshots: Counter::new(),
            experiment_wall_ns: Histogram::new(),
            fleet_sessions_started: Counter::new(),
            fleet_sessions_finished: Counter::new(),
            fleet_epochs: Counter::new(),
            fleet_workers: Gauge::new(),
            fleet_epoch_wall_ns: Histogram::new(),
        }
    }

    /// `(name, metric)` view of every counter, in name order.
    fn counters(&self) -> [(&'static str, &Counter); 11] {
        [
            ("ctrl.cow.unshares", &self.cow_unshares),
            ("ctrl.segments.dense", &self.ctrl_dense_segments),
            ("ctrl.segments.serial", &self.ctrl_serial_segments),
            ("ctrl.segments.sparse", &self.ctrl_sparse_segments),
            ("engine.forks", &self.engine_forks),
            ("engine.snapshots", &self.engine_snapshots),
            ("fleet.epochs", &self.fleet_epochs),
            ("fleet.sessions.finished", &self.fleet_sessions_finished),
            ("fleet.sessions.started", &self.fleet_sessions_started),
            ("sharded.batches.fallback", &self.sharded_fallback_batches),
            ("sharded.batches.parallel", &self.sharded_parallel_batches),
        ]
    }

    fn gauges(&self) -> [(&'static str, &Gauge); 2] {
        [
            ("fleet.workers", &self.fleet_workers),
            ("sharded.pool.workers", &self.pool_workers),
        ]
    }

    fn histograms(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("ctrl.batch.size", &self.ctrl_batch_size),
            ("fleet.epoch.wall_ns", &self.fleet_epoch_wall_ns),
            ("sharded.bucket.size", &self.sharded_bucket_size),
            ("sharded.worker.busy_ns", &self.worker_busy_ns),
            ("sweep.experiment.wall_ns", &self.experiment_wall_ns),
        ]
    }
}

/// The process-global registry all instrumentation sites write to.
#[must_use]
pub fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry::new();
    &REGISTRY
}

/// Zeroes every metric (and leaves [`enabled`] untouched). Benchmarks use
/// this to scope measurements to one grid point.
pub fn reset() {
    let r = registry();
    for (_, c) in r.counters() {
        c.reset();
    }
    for (_, g) in r.gauges() {
        g.reset();
    }
    for (_, h) in r.histograms() {
        h.reset();
    }
}

/// Freezes the global registry into a [`MetricsSnapshot`].
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    let counters = r
        .counters()
        .iter()
        .map(|&(name, c)| (name, c.get()))
        .collect();
    let gauges = r.gauges().iter().map(|&(n, g)| (n, g.get())).collect();
    let histograms = r
        .histograms()
        .iter()
        .map(|&(n, h)| (n, h.snapshot()))
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Frozen distribution of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded (bucketed and overflowed alike).
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Samples whose bit length exceeded the bucketed range. Nonzero
    /// overflow means bucket-resolution readers ([`quantile`]) may hit
    /// the [`OVERFLOW_SENTINEL`] instead of a lower bound.
    ///
    /// [`quantile`]: HistogramSnapshot::quantile
    pub overflow: u64,
    /// `(bucket lower bound, samples)` for every non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

/// Returned by [`HistogramSnapshot::quantile`] when the requested rank
/// falls among overflowed samples: there is no meaningful bucket lower
/// bound to report, and a saturated "top bucket" value would be a
/// plausible-looking lie.
pub const OVERFLOW_SENTINEL: u64 = u64::MAX;

impl HistogramSnapshot {
    /// Mean sample (0 when empty) — exact, from count and sum.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile: the lower bound of the bucket in which
    /// the `q`-quantile sample falls (0 when empty). `q` is clamped to
    /// `[0, 1]`. When the rank lands among overflowed samples — beyond
    /// every bucket — there is no bucket to report and the result is
    /// [`OVERFLOW_SENTINEL`], never a plausible-looking top-bucket bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        if self.overflow > 0 {
            return OVERFLOW_SENTINEL;
        }
        self.buckets.last().map_or(0, |&(bound, _)| bound)
    }
}

/// A frozen, name-sorted view of the registry. Produced by [`snapshot`];
/// serialized with [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)`, sorted by name.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, distribution)`, sorted by name.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Canonical JSON encoding: keys sorted (construction order is
    /// already sorted), two-space indentation, no trailing whitespace —
    /// two runs recording the same events serialize byte-identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_scalar_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        push_scalar_map(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str(&format!(
                "\": {{\"count\": {}, \"sum\": {}, \"overflow\": {}, \"buckets\": [",
                h.count, h.sum, h.overflow
            ));
            for (j, (bound, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{bound}, {n}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_scalar_map(out: &mut String, entries: &[(&'static str, u64)]) {
    for (i, (name, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {v}"));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1), Some(1));
        assert_eq!(bucket_index(2), Some(2));
        assert_eq!(bucket_index(3), Some(2));
        assert_eq!(bucket_index(4), Some(3));
        for i in 1..BUCKETS {
            // The lower bound of bucket i lands in bucket i.
            assert_eq!(bucket_index(bucket_lower_bound(i)), Some(i));
        }

        let h = Histogram::new();
        for v in [0, 1, 2, 3, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 906);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (512, 1)]);
    }

    #[test]
    fn overflow_is_counted_not_folded() {
        // Boundary: the largest bucketed value is 2^47 - 1 (bit length
        // 47 = BUCKETS - 1); one more bit overflows.
        let top = bucket_lower_bound(BUCKETS - 1);
        assert_eq!(bucket_index(top), Some(BUCKETS - 1));
        assert_eq!(bucket_index(2 * top - 1), Some(BUCKETS - 1));
        assert_eq!(bucket_index(2 * top), None);
        assert_eq!(bucket_index(u64::MAX), None);

        let h = Histogram::new();
        h.record(top);
        h.record(2 * top - 1);
        h.record(2 * top);
        h.record(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.count, 4, "overflowed samples still count");
        assert_eq!(s.overflow, 2);
        assert_eq!(
            s.buckets,
            vec![(top, 2)],
            "overflow never lands in the top bucket"
        );

        // Quantiles inside the bucketed range still resolve; ranks that
        // fall among the overflow report the sentinel, not a bound.
        assert_eq!(s.quantile(0.25), top);
        assert_eq!(s.quantile(0.5), top);
        assert_eq!(s.quantile(0.75), OVERFLOW_SENTINEL);
        assert_eq!(s.quantile(1.0), OVERFLOW_SENTINEL);

        h.reset();
        let s = h.snapshot();
        assert_eq!((s.count, s.overflow), (0, 0), "reset clears overflow");
    }

    #[test]
    fn quantiles_are_bucket_resolution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 8, "p50 in the [8,16) bucket");
        assert_eq!(s.quantile(0.99), 512, "p99 in the [512,1024) bucket");
        assert_eq!(s.quantile(0.0), 8);
        assert_eq!(s.quantile(1.0), 512);
        assert!((s.mean() - 109.0).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::default_empty().quantile(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> HistogramSnapshot {
            HistogramSnapshot {
                count: 0,
                sum: 0,
                overflow: 0,
                buckets: Vec::new(),
            }
        }
    }

    #[test]
    fn spans_are_inert_unless_enabled() {
        let h = Histogram::new();
        {
            let _off = h.span();
        }
        assert_eq!(h.snapshot().count, 0, "disabled span must not record");

        set_enabled(true);
        {
            let _on = h.span();
        }
        set_enabled(false);
        assert_eq!(h.snapshot().count, 1, "enabled span records once");
    }

    #[test]
    fn snapshot_json_is_canonical() {
        let snap = MetricsSnapshot {
            counters: vec![("a.one", 1), ("b.two", 2)],
            gauges: vec![("g", 3)],
            histograms: vec![(
                "h",
                HistogramSnapshot {
                    count: 2,
                    sum: 12,
                    overflow: 1,
                    buckets: vec![(4, 2)],
                },
            )],
        };
        let json = snap.to_json();
        assert_eq!(
            json,
            "{\n  \"counters\": {\n    \"a.one\": 1,\n    \"b.two\": 2\n  },\n  \
             \"gauges\": {\n    \"g\": 3\n  },\n  \
             \"histograms\": {\n    \"h\": {\"count\": 2, \"sum\": 12, \"overflow\": 1, \"buckets\": [[4, 2]]}\n  }\n}\n"
        );
        // Identical snapshots serialize byte-identically.
        assert_eq!(json, snap.clone().to_json());
        // The empty snapshot is still well-formed JSON.
        let empty = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        assert_eq!(
            empty.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
    }

    #[test]
    fn global_registry_snapshot_is_sorted_and_complete() {
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counter names must be sorted");
        assert!(names.contains(&"sharded.batches.parallel"));
        assert!(names.contains(&"engine.forks"));
        assert!(names.contains(&"fleet.sessions.finished"));
        assert_eq!(snap.gauges.len(), 2);
        assert_eq!(snap.histograms.len(), 5);
    }
}
