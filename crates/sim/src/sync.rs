//! Co-simulation synchronization primitives.
//!
//! The paper's sender and receiver synchronize with a semaphore (§4.1) and
//! barriers (§4.2). In co-simulation, synchronization transfers *time*: a
//! waiting agent's clock jumps forward to the poster's clock, exactly as a
//! blocked thread resumes when signalled.

use std::collections::VecDeque;

use impact_core::time::Cycles;

use impact_core::engine::MemoryBackend;

use crate::engine::{AgentId, Engine};

/// A counting semaphore between co-simulated agents.
///
/// `post` records the poster's clock; `wait` consumes the earliest post and
/// advances the waiter to at least that time. Both charge a fixed
/// user-space synchronization overhead.
#[derive(Debug, Clone)]
pub struct CoSemaphore {
    posts: VecDeque<Cycles>,
    overhead: Cycles,
}

impl CoSemaphore {
    /// Creates a semaphore with the given per-operation overhead.
    #[must_use]
    pub fn new(overhead: Cycles) -> CoSemaphore {
        CoSemaphore {
            posts: VecDeque::new(),
            overhead,
        }
    }

    /// Semaphore value (pending posts).
    #[must_use]
    pub fn value(&self) -> usize {
        self.posts.len()
    }

    /// Posts (increments) the semaphore from `agent`.
    pub fn post<B: MemoryBackend>(&mut self, sys: &mut Engine<B>, agent: AgentId) {
        sys.advance(agent, self.overhead);
        self.posts.push_back(sys.now(agent));
    }

    /// Waits on (decrements) the semaphore from `agent`.
    ///
    /// # Panics
    ///
    /// Panics if no post is pending: in deterministic co-simulation the
    /// driver must schedule the poster before the waiter, so an empty wait
    /// is a harness bug (a real thread would deadlock here).
    pub fn wait<B: MemoryBackend>(&mut self, sys: &mut Engine<B>, agent: AgentId) {
        let t = self
            .posts
            .pop_front()
            .expect("co-simulation deadlock: wait() with no pending post");
        let now = sys.now(agent);
        sys.set_now(agent, now.max(t));
        sys.advance(agent, self.overhead);
    }
}

/// A barrier between co-simulated agents: all clocks advance to the
/// maximum, plus the synchronization overhead.
#[derive(Debug, Clone, Copy)]
pub struct CoBarrier {
    overhead: Cycles,
}

impl CoBarrier {
    /// Creates a barrier with the given overhead.
    #[must_use]
    pub fn new(overhead: Cycles) -> CoBarrier {
        CoBarrier { overhead }
    }

    /// Synchronizes all `agents` at the barrier.
    pub fn sync<B: MemoryBackend>(&self, sys: &mut Engine<B>, agents: &[AgentId]) {
        let latest = agents
            .iter()
            .map(|&a| sys.now(a))
            .max()
            .unwrap_or(Cycles::ZERO);
        for &a in agents {
            sys.set_now(a, latest);
            sys.advance(a, self.overhead);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use impact_core::config::SystemConfig;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    #[test]
    fn semaphore_transfers_time_forward() {
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        let mut sem = CoSemaphore::new(Cycles(10));
        s.advance(a, Cycles(1000));
        sem.post(&mut s, a);
        sem.wait(&mut s, b);
        // b waited for a's post at t=1010, plus its own overhead.
        assert_eq!(s.now(b), Cycles(1020));
    }

    #[test]
    fn semaphore_does_not_rewind() {
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        let mut sem = CoSemaphore::new(Cycles(0));
        sem.post(&mut s, a); // post at ~0
        s.advance(b, Cycles(5000));
        sem.wait(&mut s, b);
        assert_eq!(s.now(b), Cycles(5000));
    }

    #[test]
    fn semaphore_counts_posts() {
        let mut s = sys();
        let a = s.spawn_agent();
        let mut sem = CoSemaphore::new(Cycles(0));
        sem.post(&mut s, a);
        sem.post(&mut s, a);
        assert_eq!(sem.value(), 2);
        sem.wait(&mut s, a);
        assert_eq!(sem.value(), 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn empty_wait_panics() {
        let mut s = sys();
        let a = s.spawn_agent();
        let mut sem = CoSemaphore::new(Cycles(0));
        sem.wait(&mut s, a);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        s.advance(a, Cycles(300));
        s.advance(b, Cycles(700));
        CoBarrier::new(Cycles(5)).sync(&mut s, &[a, b]);
        assert_eq!(s.now(a), Cycles(705));
        assert_eq!(s.now(b), Cycles(705));
    }
}
