//! Noise injection: prefetchers and page-table walkers (§5.2.3).
//!
//! The paper simulates hardware prefetchers and page-table walkers to
//! induce noise and measures attack throughput only over successfully
//! leaked bits. The injector perturbs DRAM row-buffer state by activating
//! unrelated rows with configurable probabilities.

use impact_core::config::NoiseConfig;
use impact_core::engine::MemoryBackend;
use impact_core::rng::SimRng;
use impact_core::time::Cycles;

/// Actor id used for noise-generated accesses.
pub const NOISE_ACTOR: u32 = u32::MAX - 1;

/// Stochastic row-activation noise source.
#[derive(Debug, Clone)]
pub struct NoiseInjector {
    cfg: NoiseConfig,
    rng: SimRng,
    events: u64,
}

impl NoiseInjector {
    /// Creates an injector with the given configuration.
    #[must_use]
    pub fn new(cfg: NoiseConfig) -> NoiseInjector {
        NoiseInjector {
            rng: SimRng::seed(cfg.seed),
            cfg,
            events: 0,
        }
    }

    /// Possibly injects noise accesses after a demand operation at `now`.
    ///
    /// With probability `prefetcher_rate` a random row in a random bank is
    /// activated (stream prefetch trained on an unrelated application);
    /// with probability `ptw_rate` a page-table-walk access does the same.
    /// Injected accesses never fail: they target bank-local rows directly
    /// through the backend's activation hook, bypassing mapping and
    /// defenses.
    pub fn perturb<B: MemoryBackend>(&mut self, mem: &mut B, now: Cycles) {
        let total_rate = self.cfg.prefetcher_rate + self.cfg.ptw_rate;
        if total_rate <= 0.0 {
            return;
        }
        if self.rng.chance(self.cfg.prefetcher_rate) {
            self.activate_random_row(mem, now);
        }
        if self.rng.chance(self.cfg.ptw_rate) {
            self.activate_random_row(mem, now);
        }
    }

    fn activate_random_row<B: MemoryBackend>(&mut self, mem: &mut B, now: Cycles) {
        let banks = mem.num_banks() as u64;
        let rows = mem.rows_per_bank();
        let bank = self.rng.below(banks) as usize;
        let row = self.rng.below(rows);
        mem.inject_row_activation(bank, row, now, NOISE_ACTOR);
        self.events += 1;
    }

    /// Number of noise accesses injected so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The configured rates.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::SystemConfig;
    use impact_memctrl::MemoryController;

    #[test]
    fn zero_rate_injects_nothing() {
        let cfg = SystemConfig::paper_table2();
        let mut mc = MemoryController::from_config(&cfg);
        let mut n = NoiseInjector::new(NoiseConfig::none());
        for i in 0..1000 {
            n.perturb(&mut mc, Cycles(i));
        }
        assert_eq!(n.events(), 0);
        assert_eq!(mc.dram().total_stats().total_accesses(), 0);
    }

    #[test]
    fn noise_rate_roughly_matches() {
        let cfg = SystemConfig::paper_table2();
        let mut mc = MemoryController::from_config(&cfg);
        let noise_cfg = NoiseConfig {
            prefetcher_rate: 0.1,
            ptw_rate: 0.0,
            seed: 1,
        };
        let mut n = NoiseInjector::new(noise_cfg);
        for i in 0..10_000 {
            n.perturb(&mut mc, Cycles(i));
        }
        let e = n.events();
        assert!((700..=1300).contains(&e), "events = {e}");
    }

    #[test]
    fn noise_is_deterministic() {
        let cfg = SystemConfig::paper_table2();
        let run = || {
            let mut mc = MemoryController::from_config(&cfg);
            let mut n = NoiseInjector::new(NoiseConfig::paper_default());
            for i in 0..5000 {
                n.perturb(&mut mc, Cycles(i));
            }
            (n.events(), mc.dram().total_stats().activations)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noise_touches_dram_state() {
        let cfg = SystemConfig::paper_table2();
        let mut mc = MemoryController::from_config(&cfg);
        let mut n = NoiseInjector::new(NoiseConfig {
            prefetcher_rate: 1.0,
            ptw_rate: 0.0,
            seed: 2,
        });
        n.perturb(&mut mc, Cycles(0));
        assert_eq!(n.events(), 1);
        assert_eq!(mc.dram().total_stats().activations, 1);
    }
}
