//! Per-process page tables and bank-aware physical frame allocation
//! ("memory massaging").
//!
//! The attacks require co-locating sender and receiver data in the same
//! DRAM banks; the paper does this with memory-massaging techniques
//! (§4.1, citing DRAMA/RAMBleed-style primitives). Here massaging is a
//! first-class allocator service:
//!
//! * [`FrameAllocator::alloc_row_in_bank`] — a whole DRAM row in a chosen
//!   bank (the PnM covert channel's unit of allocation);
//! * [`FrameAllocator::alloc_bank_stripe`] — a physically contiguous range
//!   spanning every bank once per "rotation" (the PuM source/destination
//!   range layout).

use std::sync::Arc;

use impact_core::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use impact_core::config::DramGeometry;
use impact_core::error::{Error, Result};

/// Second-level page-table fan-out: 512 slots per leaf, mirroring a real
/// radix page table's 9 bits per level.
const PT_LEAF_BITS: u64 = 9;
const PT_LEAF_LEN: usize = 1 << PT_LEAF_BITS;

/// A per-process virtual→physical page table.
///
/// Stored as a flat two-level radix array (a root vector of 512-entry
/// leaves) instead of a `HashMap`: `translate` sits on the critical path
/// of *every* simulated memory operation, and the radix walk is two
/// bounds-checked array reads with no hashing. Leaves hold `pfn + 1`, with
/// `0` marking an unmapped slot, so a leaf is a dense `u64` array.
///
/// The radix sits behind an `Arc` so cloning a page table — the unit of
/// work in an engine snapshot or fork — shares the mapping until either
/// side maps a new page. `translate` reads through the `Arc` unchanged;
/// only `map_page` pays the copy, and only while the radix is shared.
// analyze::allow(cow-aliasing): snapshot/fork sharing; every mutation goes
// through Arc::make_mut.
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    leaves: Arc<Vec<Option<Box<[u64; PT_LEAF_LEN]>>>>,
    mapped: usize,
    next_vpn: u64,
}

impl PageTable {
    /// Creates an empty page table.
    #[must_use]
    pub fn new() -> PageTable {
        PageTable {
            leaves: Arc::new(Vec::new()),
            mapped: 0,
            next_vpn: 0x100, // skip the null region
        }
    }

    /// Maps `vpn` to `pfn`, replacing any prior mapping.
    pub fn map_page(&mut self, vpn: u64, pfn: u64) {
        let hi = (vpn >> PT_LEAF_BITS) as usize;
        let lo = (vpn & (PT_LEAF_LEN as u64 - 1)) as usize;
        // analyze::allow(cow-aliasing): map_page is the only writer of
        // the radix leaves; a fork sharing them gets its own copy before
        // any new mapping lands
        let leaves = Arc::make_mut(&mut self.leaves);
        if hi >= leaves.len() {
            leaves.resize_with(hi + 1, || None);
        }
        let leaf = leaves[hi].get_or_insert_with(|| Box::new([0; PT_LEAF_LEN]));
        if leaf[lo] == 0 {
            self.mapped += 1;
        }
        leaf[lo] = pfn + 1;
    }

    /// Translates a virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnmappedVirtualAddress`] if the page is not mapped.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr> {
        let vpn = va.page_number();
        let hi = (vpn >> PT_LEAF_BITS) as usize;
        let lo = (vpn & (PT_LEAF_LEN as u64 - 1)) as usize;
        let slot = match self.leaves.get(hi) {
            Some(Some(leaf)) => leaf[lo],
            _ => 0,
        };
        if slot == 0 {
            return Err(Error::UnmappedVirtualAddress { addr: va.0 });
        }
        Ok(PhysAddr((slot - 1) * PAGE_SIZE + va.page_offset()))
    }

    /// Reserves `pages` consecutive virtual pages, returning the base VA.
    pub fn reserve_vspace(&mut self, pages: u64) -> VirtAddr {
        let base = self.next_vpn;
        self.next_vpn += pages;
        VirtAddr(base * PAGE_SIZE)
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }
}

/// Bank-aware physical frame allocator over a row-interleaved device.
///
/// The physical address of (bank, row) is `(row * banks + bank) * row_bytes`
/// (see [`impact_dram::RowInterleaved`]). Per-bank allocations hand out rows
/// from the bottom of each bank; stripe allocations hand out whole
/// rotations (one row in every bank) from the top half, so the two never
/// collide.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    geometry: DramGeometry,
    next_row_in_bank: Vec<u64>,
    next_stripe_row: u64,
}

impl FrameAllocator {
    /// Creates an allocator for the device geometry.
    #[must_use]
    pub fn new(geometry: DramGeometry) -> FrameAllocator {
        let banks = geometry.total_banks() as usize;
        FrameAllocator {
            geometry,
            next_row_in_bank: vec![0; banks],
            next_stripe_row: geometry.rows_per_bank / 2,
        }
    }

    /// Pages per DRAM row.
    #[must_use]
    pub fn pages_per_row(&self) -> u64 {
        (self.geometry.row_bytes / PAGE_SIZE).max(1)
    }

    /// Allocates one fresh row in `bank`, returning its physical base.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MassagingFailed`] when the bank's private region is
    /// exhausted.
    pub fn alloc_row_in_bank(&mut self, bank: usize) -> Result<PhysAddr> {
        let banks = u64::from(self.geometry.total_banks());
        if bank as u64 >= banks {
            return Err(Error::MassagingFailed(format!(
                "bank {bank} out of range ({banks} banks)"
            )));
        }
        let row = self.next_row_in_bank[bank];
        if row >= self.geometry.rows_per_bank / 2 {
            return Err(Error::MassagingFailed(format!(
                "bank {bank} private region exhausted"
            )));
        }
        self.next_row_in_bank[bank] = row + 1;
        Ok(PhysAddr(
            (row * banks + bank as u64) * self.geometry.row_bytes,
        ))
    }

    /// Allocates `rotations` physically contiguous rotations (each rotation
    /// is one row in every bank, in flat-bank order), returning the base
    /// physical address. This is the layout IMPACT-PuM uses for its
    /// source/destination ranges: chunk `i` of a rotation lands in bank `i`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MassagingFailed`] when the stripe region is
    /// exhausted.
    pub fn alloc_bank_stripe(&mut self, rotations: u64) -> Result<PhysAddr> {
        let base_row = self.next_stripe_row;
        if base_row + rotations > self.geometry.rows_per_bank {
            return Err(Error::MassagingFailed("stripe region exhausted".into()));
        }
        self.next_stripe_row += rotations;
        let banks = u64::from(self.geometry.total_banks());
        Ok(PhysAddr(base_row * banks * self.geometry.row_bytes))
    }

    /// Geometry served by this allocator.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_dram::{AddressMapping, RowInterleaved};

    fn geo() -> DramGeometry {
        DramGeometry::paper_table2()
    }

    #[test]
    fn page_table_translate() {
        let mut pt = PageTable::new();
        pt.map_page(5, 42);
        let pa = pt.translate(VirtAddr(5 * PAGE_SIZE + 123)).unwrap();
        assert_eq!(pa, PhysAddr(42 * PAGE_SIZE + 123));
        assert!(pt.translate(VirtAddr(0)).is_err());
    }

    #[test]
    fn page_table_radix_edge_cases() {
        let mut pt = PageTable::new();
        // Remapping a page replaces, not double-counts.
        pt.map_page(5, 42);
        pt.map_page(5, 43);
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(
            pt.translate(VirtAddr(5 * PAGE_SIZE)).unwrap(),
            PhysAddr(43 * PAGE_SIZE)
        );
        // Physical frame 0 is a valid mapping target.
        pt.map_page(10_000, 0);
        assert_eq!(pt.mapped_pages(), 2);
        assert_eq!(
            pt.translate(VirtAddr(10_000 * PAGE_SIZE)).unwrap(),
            PhysAddr(0)
        );
        // Neighbors within the same leaf stay unmapped.
        assert!(pt.translate(VirtAddr(10_001 * PAGE_SIZE)).is_err());
        // VPNs far past every allocated leaf fail without allocating.
        assert!(pt.translate(VirtAddr(0xdead_b000)).is_err());
    }

    #[test]
    fn reserve_vspace_is_disjoint() {
        let mut pt = PageTable::new();
        let a = pt.reserve_vspace(4);
        let b = pt.reserve_vspace(4);
        assert_eq!(b.0 - a.0, 4 * PAGE_SIZE);
    }

    #[test]
    fn rows_land_in_requested_bank() {
        let mut fa = FrameAllocator::new(geo());
        let mapping = RowInterleaved::new(geo());
        for bank in 0..16usize {
            for _ in 0..4 {
                let pa = fa.alloc_row_in_bank(bank).unwrap();
                assert_eq!(mapping.flat_bank(pa), bank);
                assert_eq!(pa.0 % geo().row_bytes, 0);
            }
        }
    }

    #[test]
    fn rows_in_same_bank_are_distinct() {
        let mut fa = FrameAllocator::new(geo());
        let mapping = RowInterleaved::new(geo());
        let a = fa.alloc_row_in_bank(3).unwrap();
        let b = fa.alloc_row_in_bank(3).unwrap();
        assert_ne!(mapping.map(a).row, mapping.map(b).row);
    }

    #[test]
    fn stripe_spans_every_bank_in_order() {
        let mut fa = FrameAllocator::new(geo());
        let mapping = RowInterleaved::new(geo());
        let base = fa.alloc_bank_stripe(2).unwrap();
        for i in 0..32u64 {
            let pa = PhysAddr(base.0 + i * geo().row_bytes);
            assert_eq!(mapping.flat_bank(pa), (i % 16) as usize);
        }
    }

    #[test]
    fn stripe_and_bank_regions_disjoint() {
        let mut fa = FrameAllocator::new(geo());
        let mapping = RowInterleaved::new(geo());
        let stripe = fa.alloc_bank_stripe(1).unwrap();
        let row = fa.alloc_row_in_bank(0).unwrap();
        assert_ne!(mapping.map(stripe).row, mapping.map(row).row);
    }

    #[test]
    fn exhaustion_errors() {
        let mut small = geo();
        small.rows_per_bank = 4;
        let mut fa = FrameAllocator::new(small);
        fa.alloc_row_in_bank(0).unwrap();
        fa.alloc_row_in_bank(0).unwrap();
        assert!(matches!(
            fa.alloc_row_in_bank(0),
            Err(Error::MassagingFailed(_))
        ));
        fa.alloc_bank_stripe(2).unwrap();
        assert!(matches!(
            fa.alloc_bank_stripe(1),
            Err(Error::MassagingFailed(_))
        ));
    }

    #[test]
    fn pages_per_row_for_paper_geometry() {
        let fa = FrameAllocator::new(geo());
        assert_eq!(fa.pages_per_row(), 2); // 8 KiB rows, 4 KiB pages
    }
}
