//! Whole-system cycle-accounting simulator for the IMPACT reproduction.
//!
//! Plays the role of the paper's modified Sniper setup (§5.2.1): it stitches
//! together the cache hierarchy, TLBs, memory controller, PEI engine and
//! RowClone engine, emulates `rdtscp`/`cpuid` timing measurement, injects
//! prefetcher/page-table-walker noise, and co-simulates multiple agents
//! (sender/receiver/victim/attacker threads), each with its own clock,
//! over shared DRAM state.
//!
//! # Architecture
//!
//! The core is the generic [`engine::Engine`]`<B: MemoryBackend>`: clocks,
//! TLBs, page tables, caches and noise over a pluggable memory engine that
//! serves [`impact_core::engine::MemRequest`]s. [`system::System`] is the
//! type alias instantiating it with the default
//! [`impact_memctrl::MemoryController`] backend — the paper's Table 2
//! machine.
//!
//! # Co-simulation model
//!
//! Each [`AgentId`] owns a logical clock. Every operation an agent performs
//! advances only that agent's clock; DRAM/cache state is shared. Agents
//! synchronize through [`sync::CoSemaphore`] and [`sync::CoBarrier`], which
//! transfer clock values the way real semaphores transfer control. A
//! covert channel's elapsed time is the maximum agent clock at the end —
//! identical accounting to wall-clock measurement inside a simulator.
//!
//! # Example
//!
//! ```
//! use impact_core::config::SystemConfig;
//! use impact_sim::System;
//!
//! let mut sys = System::new(SystemConfig::paper_table2_noiseless());
//! let agent = sys.spawn_agent();
//! let row = sys.alloc_row_in_bank(agent, 3)?;
//! let first = sys.load(agent, row)?;      // cold: memory access
//! let second = sys.load(agent, row)?;     // L1 hit
//! assert!(second.latency < first.latency);
//! # Ok::<(), impact_core::Error>(())
//! ```

pub mod engine;
pub mod memory;
pub mod noise;
pub mod sync;
pub mod system;
pub mod tlb;

pub use engine::{
    AgentId, Engine, EngineSnapshot, LoadInfo, PimInfo, ProbeSample, RowCloneInfo, SimParams,
};
pub use memory::{FrameAllocator, PageTable};
pub use noise::NoiseInjector;
pub use sync::{CoBarrier, CoSemaphore};
pub use system::{BackendKind, DynBackend, DynSystem, ShardedSystem, System, TracedSystem};
pub use tlb::Tlb;
