//! Two-level TLB with page-table-walk accounting (Table 2 MMU row).
//!
//! Each level uses CLOCK (second-chance) replacement over an O(1) index
//! map. The previous implementation kept a true-LRU `Vec` and paid a
//! linear `position` scan plus a `remove`/`push` memmove on *every*
//! lookup — the dominant cost of `system/pim_op_direct` once the memory
//! controller's batched path landed. CLOCK keeps the recency signal (a
//! touched entry survives the next sweep) while a hit does two O(1)
//! operations: an index probe and a reference-bit store.

use std::collections::HashMap;

use impact_core::config::TlbConfig;
use impact_core::hash::FxBuildHasher;
use impact_core::time::Cycles;

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbLookup {
    /// Translation latency (L1 hit, L2 hit, or full walk).
    pub latency: Cycles,
    /// Whether a page-table walk was required.
    pub walked: bool,
}

/// One TLB level: CLOCK replacement over virtual page numbers.
///
/// `slots`/`referenced` are the clock ring; `index` maps a VPN to its
/// slot. All operations are deterministic — eviction order is a pure
/// function of the access sequence — so the simulator's reproducibility
/// contract is unaffected by the policy change.
#[derive(Debug, Clone)]
struct TlbLevel {
    slots: Vec<u64>,
    referenced: Vec<bool>,
    index: HashMap<u64, usize, FxBuildHasher>,
    hand: usize,
    capacity: usize,
}

impl TlbLevel {
    fn new(capacity: u32) -> TlbLevel {
        let capacity = capacity.max(1) as usize;
        TlbLevel {
            slots: Vec::with_capacity(capacity),
            referenced: Vec::with_capacity(capacity),
            index: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            hand: 0,
            capacity,
        }
    }

    /// Returns true on hit; grants the entry a second chance.
    fn lookup(&mut self, vpn: u64) -> bool {
        if let Some(&slot) = self.index.get(&vpn) {
            self.referenced[slot] = true;
            true
        } else {
            false
        }
    }

    fn insert(&mut self, vpn: u64) {
        if let Some(&slot) = self.index.get(&vpn) {
            self.referenced[slot] = true;
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(vpn, self.slots.len());
            self.slots.push(vpn);
            self.referenced.push(true);
            return;
        }
        // CLOCK sweep: clear reference bits until an unreferenced victim
        // comes under the hand. Terminates within two revolutions.
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            if self.referenced[slot] {
                self.referenced[slot] = false;
            } else {
                self.index.remove(&self.slots[slot]);
                self.index.insert(vpn, slot);
                self.slots[slot] = vpn;
                self.referenced[slot] = true;
                return;
            }
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.referenced.clear();
        self.index.clear();
        self.hand = 0;
    }
}

/// The two-level data TLB: a 64-entry L1 and a 1536-entry L2 (CLOCK
/// replacement) with a 120-cycle page-table walk on a full miss.
///
/// # Example
///
/// ```
/// use impact_core::config::TlbConfig;
/// use impact_sim::Tlb;
///
/// let mut tlb = Tlb::new(TlbConfig::paper_table2());
/// let miss = tlb.translate(42);
/// assert!(miss.walked);
/// let hit = tlb.translate(42);
/// assert!(!hit.walked);
/// assert!(hit.latency < miss.latency);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    l1: TlbLevel,
    l2: TlbLevel,
    walks: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Tlb {
        Tlb {
            l1: TlbLevel::new(cfg.l1_entries),
            l2: TlbLevel::new(cfg.l2_entries),
            cfg,
            walks: 0,
        }
    }

    /// Translates a virtual page number, updating TLB state.
    pub fn translate(&mut self, vpn: u64) -> TlbLookup {
        let l1_lat = Cycles(self.cfg.l1_latency_cycles);
        if self.l1.lookup(vpn) {
            return TlbLookup {
                latency: l1_lat,
                walked: false,
            };
        }
        let l2_lat = l1_lat + Cycles(self.cfg.l2_latency_cycles);
        if self.l2.lookup(vpn) {
            self.l1.insert(vpn);
            return TlbLookup {
                latency: l2_lat,
                walked: false,
            };
        }
        self.walks += 1;
        self.l1.insert(vpn);
        self.l2.insert(vpn);
        TlbLookup {
            latency: l2_lat + Cycles(self.cfg.walk_latency_cycles),
            walked: true,
        }
    }

    /// Number of page-table walks performed.
    #[must_use]
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Pre-populates both levels with `vpn` (used by the warm-up phase the
    /// paper performs before launching attacks, §5.2.1).
    pub fn warm(&mut self, vpn: u64) {
        self.l1.insert(vpn);
        self.l2.insert(vpn);
    }

    /// Clears all translations.
    pub fn reset(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.walks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::paper_table2())
    }

    #[test]
    fn miss_walk_then_hits() {
        let mut t = tlb();
        let m = t.translate(7);
        assert!(m.walked);
        assert_eq!(m.latency, Cycles(1 + 12 + 120));
        let h1 = t.translate(7);
        assert_eq!(h1.latency, Cycles(1));
        assert_eq!(t.walk_count(), 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut t = tlb();
        t.translate(0);
        // Evict vpn 0 from the 64-entry L1 with 64 fresh translations.
        for vpn in 1..=64 {
            t.translate(vpn);
        }
        let l2_hit = t.translate(0);
        assert!(!l2_hit.walked);
        assert_eq!(l2_hit.latency, Cycles(13));
    }

    #[test]
    fn warm_prevents_walks() {
        let mut t = tlb();
        t.warm(9);
        let h = t.translate(9);
        assert!(!h.walked);
        assert_eq!(t.walk_count(), 0);
    }

    #[test]
    fn capacity_bounded() {
        let mut t = tlb();
        for vpn in 0..5000 {
            t.translate(vpn);
        }
        // Far-past entries must have been evicted from both levels.
        let again = t.translate(0);
        assert!(again.walked);
    }

    #[test]
    fn reset_clears() {
        let mut t = tlb();
        t.translate(3);
        t.reset();
        assert!(t.translate(3).walked);
        assert_eq!(t.walk_count(), 1);
    }

    #[test]
    fn second_chance_protects_touched_entries() {
        // A tiny 4-entry L1 makes the clock hand's behavior visible.
        let cfg = TlbConfig {
            l1_entries: 4,
            l2_entries: 8,
            ..TlbConfig::paper_table2()
        };
        let mut t = Tlb::new(cfg);
        for vpn in 0..4 {
            t.translate(vpn); // fill L1; all entries referenced
        }
        // Inserting vpn 4 sweeps every reference bit, then evicts slot 0
        // (vpn 0) on the second revolution.
        t.translate(4);
        // Touch vpn 2: its reference bit protects it from the next sweep.
        assert_eq!(t.translate(2).latency, Cycles(1));
        // Inserting vpn 5 evicts vpn 1 (unreferenced) — not vpn 2.
        t.translate(5);
        assert_eq!(t.translate(2).latency, Cycles(1), "touched entry evicted");
        assert_eq!(t.translate(1).latency, Cycles(13), "L2 catches the victim");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use impact_core::config::TlbConfig;
    use proptest::prelude::*;

    proptest! {
        /// Translating the same page twice in a row never walks the second
        /// time, for any interleaving prefix.
        #[test]
        fn immediate_retranslation_hits(vpns in prop::collection::vec(0u64..5000, 1..100)) {
            let mut t = Tlb::new(TlbConfig::paper_table2());
            for vpn in vpns {
                t.translate(vpn);
                let again = t.translate(vpn);
                prop_assert!(!again.walked, "vpn {vpn} walked twice in a row");
            }
        }

        /// Walk count only ever increases and is bounded by translations.
        #[test]
        fn walk_count_bounded(vpns in prop::collection::vec(0u64..100, 1..200)) {
            let mut t = Tlb::new(TlbConfig::paper_table2());
            let n = vpns.len() as u64;
            let mut last = 0;
            for vpn in vpns {
                t.translate(vpn);
                prop_assert!(t.walk_count() >= last);
                last = t.walk_count();
            }
            prop_assert!(t.walk_count() <= n);
        }
    }
}
