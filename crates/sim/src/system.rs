//! The default simulated system: the generic [`Engine`] over the paper's
//! memory controller.

use impact_core::config::SystemConfig;
use impact_memctrl::{Defense, MemoryController};

use crate::engine::Engine;
// Source compatibility: these types predate the engine split and were
// exported from this module.
pub use crate::engine::{AgentId, LoadInfo, PimInfo, RowCloneInfo, SimParams};

/// The simulated PiM-enabled system (the paper's Table 2 machine): the
/// generic simulation [`Engine`] instantiated with the default
/// [`MemoryController`] backend.
pub type System = Engine<MemoryController>;

impl System {
    /// Builds the system with default harness parameters and the LLC
    /// latency taken from the CACTI model (so LLC sweeps time correctly).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> System {
        System::with_params(cfg, SimParams::default())
    }

    /// Builds the system with explicit harness parameters.
    #[must_use]
    pub fn with_params(cfg: SystemConfig, params: SimParams) -> System {
        let mc = MemoryController::from_config(&cfg);
        Engine::with_backend(cfg, params, mc)
    }

    /// The memory controller (defense control, stats).
    #[must_use]
    pub fn memctrl(&self) -> &MemoryController {
        self.backend()
    }

    /// Mutable memory-controller access.
    pub fn memctrl_mut(&mut self) -> &mut MemoryController {
        self.backend_mut()
    }

    /// Installs a memory-controller defense.
    pub fn set_defense(&mut self, defense: Defense) {
        self.backend_mut().set_defense(defense);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cache::HitLevel;
    use impact_core::addr::VirtAddr;
    use impact_core::time::Cycles;
    use impact_dram::RowBufferKind;
    use impact_pim::pei::ExecSite;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    #[test]
    fn load_cold_then_warm() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        let cold = s.load(a, va).unwrap();
        assert_eq!(cold.level, HitLevel::Memory);
        assert_eq!(cold.kind, Some(RowBufferKind::Miss));
        let warm = s.load(a, va).unwrap();
        assert_eq!(warm.level, HitLevel::L1);
        assert!(warm.latency < cold.latency);
    }

    #[test]
    fn load_direct_sees_row_buffer() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 2).unwrap();
        s.warm_tlb(a, va, 2);
        let first = s.load_direct(a, va).unwrap();
        let second = s.load_direct(a, va + 64).unwrap();
        assert_eq!(first.kind, Some(RowBufferKind::Miss));
        assert_eq!(second.kind, Some(RowBufferKind::Hit));
    }

    #[test]
    fn load_direct_batch_matches_row_buffer_behaviour() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 4).unwrap();
        s.warm_tlb(a, va, 2);
        let before = s.now(a);
        let infos = s.load_direct_batch(a, &[va, va + 64, va + 128]).unwrap();
        assert_eq!(infos.len(), 3);
        // First access opens the row; the rest of the burst hits it.
        assert_eq!(infos[0].kind, Some(RowBufferKind::Miss));
        assert_eq!(infos[1].kind, Some(RowBufferKind::Hit));
        assert_eq!(infos[2].kind, Some(RowBufferKind::Hit));
        assert!(s.now(a) > before, "burst must advance the clock");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        // Noisy config: an empty burst must not draw from the noise RNG
        // or touch bank state either.
        let mut s = System::new(SystemConfig::paper_table2());
        let a = s.spawn_agent();
        let before = s.now(a);
        assert!(s.load_direct_batch(a, &[]).unwrap().is_empty());
        assert_eq!(s.now(a), before);
        assert_eq!(s.memctrl().dram().total_stats().total_accesses(), 0);
        assert_eq!(s.memctrl().dram().total_stats().activations, 0);
    }

    #[test]
    fn pim_op_bypasses_caches() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, va, 2);
        // Different cache line each op: stays memory-side.
        let o1 = s.pim_op(a, va).unwrap();
        let o2 = s.pim_op(a, va + 64).unwrap();
        assert_eq!(o1.site, ExecSite::MemorySide);
        assert_eq!(o2.site, ExecSite::MemorySide);
        assert_eq!(o2.kind, Some(RowBufferKind::Hit));
        // The conflict signal: another row in the same bank.
        let vb = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, vb, 2);
        let o3 = s.pim_op(a, vb).unwrap();
        assert_eq!(o3.kind, Some(RowBufferKind::Conflict));
        assert_eq!(o3.latency - o2.latency, Cycles(74));
    }

    #[test]
    fn pim_op_hot_line_goes_host_side() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, va, 2);
        s.pim_op(a, va).unwrap();
        s.pim_op(a, va).unwrap();
        let o = s.pim_op(a, va).unwrap();
        assert_eq!(o.site, ExecSite::Host);
        // The first host-side execution fills the caches; the next one is a
        // cache hit and is much faster than any memory-side PEI.
        let o2 = s.pim_op(a, va).unwrap();
        assert_eq!(o2.site, ExecSite::Host);
        assert!(
            o2.latency < Cycles(20),
            "hot host-side latency {}",
            o2.latency
        );
    }

    #[test]
    fn rowclone_roundtrip() {
        let mut s = sys();
        let a = s.spawn_agent();
        let src = s.alloc_bank_stripe(a, 1).unwrap();
        let dst = s.alloc_bank_stripe(a, 1).unwrap();
        s.warm_tlb(a, src, 32);
        s.warm_tlb(a, dst, 32);
        let out = s.rowclone(a, src, dst, 0xFFFF).unwrap();
        assert_eq!(out.per_bank.len(), 16);
    }

    #[test]
    fn clflush_forces_memory() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.load(a, va).unwrap();
        s.clflush(a, va).unwrap();
        let reload = s.load(a, va).unwrap();
        assert_eq!(reload.level, HitLevel::Memory);
    }

    #[test]
    fn clflush_dirty_pays_writeback() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.store(a, va).unwrap();
        let dirty_cost = s.clflush(a, va).unwrap();
        s.load(a, va).unwrap();
        let clean_cost = s.clflush(a, va).unwrap();
        assert!(dirty_cost > clean_cost);
    }

    #[test]
    fn rdtscp_measures_op_latency() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.warm_tlb(a, va, 2);
        s.load_direct(a, va).unwrap(); // open the row
        let t0 = s.rdtscp(a);
        let info = s.load_direct(a, va + 64).unwrap();
        let t1 = s.rdtscp(a);
        assert_eq!(t1 - t0, info.latency.0 + s.params().timer_overhead.0);
    }

    #[test]
    fn agents_have_independent_clocks() {
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        s.advance(a, Cycles(100));
        assert_eq!(s.now(a), Cycles(100));
        assert_eq!(s.now(b), Cycles(0));
        assert_eq!(s.elapsed(), Cycles(100));
    }

    #[test]
    fn unmapped_access_errors() {
        let mut s = sys();
        let a = s.spawn_agent();
        assert!(s.load(a, VirtAddr(0xdead_b000)).is_err());
    }

    #[test]
    fn shared_bank_interference_between_agents() {
        // The covert-channel core: agent B's activation is visible to
        // agent A as a conflict.
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        let va_a = s.alloc_row_in_bank(a, 5).unwrap();
        let va_b = s.alloc_row_in_bank(b, 5).unwrap();
        s.warm_tlb(a, va_a, 2);
        s.warm_tlb(b, va_b, 2);
        // A opens its row; re-access hits.
        s.pim_op(a, va_a).unwrap();
        let hit = s.pim_op(a, va_a + 64).unwrap();
        assert_eq!(hit.kind, Some(RowBufferKind::Hit));
        // B interferes *after* A's activity in wall-clock order — the same
        // ordering the attack enforces with its semaphore.
        s.set_now(b, s.now(a));
        s.pim_op(b, va_b).unwrap();
        // A probes after B is done.
        s.set_now(a, s.now(b));
        let conflict = s.pim_op(a, va_a + 128).unwrap();
        assert_eq!(conflict.kind, Some(RowBufferKind::Conflict));
        assert_eq!(conflict.latency - hit.latency, Cycles(74));
    }

    #[test]
    fn defense_visible_through_system() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.warm_tlb(a, va, 2);
        s.set_defense(Defense::Ctd);
        let first = s.load_direct(a, va).unwrap();
        let second = s.load_direct(a, va + 64).unwrap();
        // Hit and miss pad to identical worst-case latency.
        assert_eq!(first.latency, second.latency);
    }

    #[test]
    fn debug_formats_via_backend_hooks() {
        let mut s = sys();
        s.set_defense(Defense::Ctd);
        let d = format!("{s:?}");
        assert!(d.contains("CTD"), "debug output: {d}");
        assert!(d.contains("16"), "debug output: {d}");
    }
}
