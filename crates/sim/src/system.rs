//! The simulated system: cores, caches, TLBs, memory controller, PiM.

use impact_cache::{CacheHierarchy, HitLevel, IpStridePrefetcher, Prefetcher, StreamerPrefetcher};
use impact_core::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use impact_core::config::SystemConfig;
use impact_core::error::Result;
use impact_core::time::Cycles;
use impact_dram::RowBufferKind;
use impact_memctrl::MemoryController as Mc;
use impact_memctrl::{Defense, MemoryController};
use impact_pim::pei::{ExecSite, PeiEngine};
use impact_pim::rowclone::RowCloneEngine;

use crate::memory::{FrameAllocator, PageTable};
use crate::noise::NoiseInjector;
use crate::tlb::Tlb;

/// Identifier of a co-simulated agent (thread/process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentId(pub u32);

/// Simulation-harness timing parameters that are not part of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Cost of a serialized `cpuid; rdtscp` measurement pair.
    pub timer_overhead: Cycles,
    /// Cost of a `memory_fence` (Listing 1/2 use one per batch).
    pub fence_overhead: Cycles,
    /// Cost of one user-space semaphore operation.
    pub sync_overhead: Cycles,
    /// Software-stack overhead of one DMA-engine transfer (§5.2.2: context
    /// switches and OS instructions make the DMA attack ~10× slower than
    /// IMPACT-PnM).
    pub dma_overhead: Cycles,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            timer_overhead: Cycles(8),
            fence_overhead: Cycles(20),
            sync_overhead: Cycles(45),
            dma_overhead: Cycles(1800),
        }
    }
}

/// Result of a cached load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// End-to-end latency observed by the agent.
    pub latency: Cycles,
    /// Cache level that served the access.
    pub level: HitLevel,
    /// Row-buffer classification if the access reached DRAM.
    pub kind: Option<RowBufferKind>,
}

/// Result of a PiM-enabled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimInfo {
    /// End-to-end latency observed by the agent.
    pub latency: Cycles,
    /// Where the PMU executed the PEI.
    pub site: ExecSite,
    /// Row-buffer classification for memory-side execution.
    pub kind: Option<RowBufferKind>,
}

/// Result of a masked RowClone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowCloneInfo {
    /// End-to-end latency of the masked operation.
    pub latency: Cycles,
    /// Per-bank classifications and latencies.
    pub per_bank: Vec<(usize, RowBufferKind, Cycles)>,
}

/// The simulated PiM-enabled system (the paper's Table 2 machine).
///
/// See the crate-level docs for the co-simulation model.
pub struct System {
    cfg: SystemConfig,
    params: SimParams,
    caches: CacheHierarchy,
    mc: MemoryController,
    pei: PeiEngine,
    rc: RowCloneEngine,
    noise: NoiseInjector,
    ip_prefetcher: IpStridePrefetcher,
    streamer: StreamerPrefetcher,
    prefetchers_enabled: bool,
    clocks: Vec<Cycles>,
    tlbs: Vec<Tlb>,
    page_tables: Vec<PageTable>,
    alloc: FrameAllocator,
}

impl core::fmt::Debug for System {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("System")
            .field("agents", &self.clocks.len())
            .field("banks", &self.mc.dram().num_banks())
            .field("defense", &self.mc.defense().name())
            .finish()
    }
}

impl System {
    /// Builds the system with default harness parameters and the LLC
    /// latency taken from the CACTI model (so LLC sweeps time correctly).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> System {
        System::with_params(cfg, SimParams::default())
    }

    /// Builds the system with explicit harness parameters.
    #[must_use]
    pub fn with_params(cfg: SystemConfig, params: SimParams) -> System {
        System {
            caches: CacheHierarchy::from_config_with_cacti_llc(&cfg),
            mc: Mc::from_config(&cfg),
            pei: PeiEngine::new(cfg.pim),
            rc: RowCloneEngine::new(cfg.dram_geometry.row_bytes),
            noise: NoiseInjector::new(cfg.noise),
            ip_prefetcher: IpStridePrefetcher::new(64),
            streamer: StreamerPrefetcher::new(16, 2),
            prefetchers_enabled: cfg.noise.prefetcher_rate > 0.0 || cfg.noise.ptw_rate > 0.0,
            clocks: Vec::new(),
            tlbs: Vec::new(),
            page_tables: Vec::new(),
            alloc: FrameAllocator::new(cfg.dram_geometry),
            cfg,
            params,
        }
    }

    /// Creates a new agent (thread/process) with its own clock, TLB and
    /// page table.
    pub fn spawn_agent(&mut self) -> AgentId {
        let id = AgentId(self.clocks.len() as u32);
        self.clocks.push(Cycles::ZERO);
        self.tlbs.push(Tlb::new(self.cfg.tlb));
        self.page_tables.push(PageTable::new());
        id
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Harness parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The memory controller (defense control, stats).
    #[must_use]
    pub fn memctrl(&self) -> &MemoryController {
        &self.mc
    }

    /// Mutable memory-controller access.
    pub fn memctrl_mut(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// Installs a memory-controller defense.
    pub fn set_defense(&mut self, defense: Defense) {
        self.mc.set_defense(defense);
    }

    /// Enables or disables the behavioural prefetchers (noise ablation).
    pub fn set_prefetchers_enabled(&mut self, enabled: bool) {
        self.prefetchers_enabled = enabled;
    }

    /// Current clock of `agent`.
    #[must_use]
    pub fn now(&self, agent: AgentId) -> Cycles {
        self.clocks[agent.0 as usize]
    }

    /// Sets the clock (used by synchronization primitives).
    pub fn set_now(&mut self, agent: AgentId, t: Cycles) {
        self.clocks[agent.0 as usize] = t;
    }

    /// Advances the agent's clock by `d` (compute time).
    pub fn advance(&mut self, agent: AgentId, d: Cycles) {
        self.clocks[agent.0 as usize] += d;
    }

    /// Maximum clock across all agents (total elapsed time).
    #[must_use]
    pub fn elapsed(&self) -> Cycles {
        self.clocks.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// Emulated serialized timestamp read (`cpuid; rdtscp`).
    pub fn rdtscp(&mut self, agent: AgentId) -> u64 {
        self.advance(agent, self.params.timer_overhead);
        self.now(agent).0
    }

    /// Emulated memory fence.
    pub fn fence(&mut self, agent: AgentId) {
        self.advance(agent, self.params.fence_overhead);
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocates one DRAM row in `bank` for `agent` and maps it, returning
    /// the virtual base address of the row.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::MassagingFailed`] when the bank is
    /// exhausted.
    pub fn alloc_row_in_bank(&mut self, agent: AgentId, bank: usize) -> Result<VirtAddr> {
        let pa = self.alloc.alloc_row_in_bank(bank)?;
        let pages = self.alloc.pages_per_row();
        Ok(self.map_region(agent, pa, pages))
    }

    /// Allocates `rotations` physically contiguous bank rotations (each
    /// rotation = one row in every bank, ascending flat-bank order) and
    /// maps them, returning the virtual base. This is the allocation the
    /// IMPACT-PuM sender/receiver use for RowClone ranges.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::MassagingFailed`] when the stripe
    /// region is exhausted.
    pub fn alloc_bank_stripe(&mut self, agent: AgentId, rotations: u64) -> Result<VirtAddr> {
        let pa = self.alloc.alloc_bank_stripe(rotations)?;
        let banks = u64::from(self.cfg.dram_geometry.total_banks());
        let bytes = rotations * banks * self.cfg.dram_geometry.row_bytes;
        let pages = bytes / PAGE_SIZE;
        Ok(self.map_region(agent, pa, pages))
    }

    fn map_region(&mut self, agent: AgentId, pa: PhysAddr, pages: u64) -> VirtAddr {
        let pt = &mut self.page_tables[agent.0 as usize];
        let va = pt.reserve_vspace(pages);
        for p in 0..pages {
            pt.map_page(va.page_number() + p, pa.frame_number() + p);
        }
        va
    }

    /// Translates a virtual address for `agent`, charging TLB latency.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::UnmappedVirtualAddress`] for unmapped
    /// pages.
    pub fn translate(&mut self, agent: AgentId, va: VirtAddr) -> Result<(PhysAddr, Cycles)> {
        let pa = self.page_tables[agent.0 as usize].translate(va)?;
        let look = self.tlbs[agent.0 as usize].translate(va.page_number());
        Ok((pa, look.latency))
    }

    /// Pre-faults and warms the TLB for `pages` pages starting at `va`
    /// (the warm-up the paper performs before attacks, §5.2.1).
    pub fn warm_tlb(&mut self, agent: AgentId, va: VirtAddr, pages: u64) {
        for p in 0..pages {
            self.tlbs[agent.0 as usize].warm(va.page_number() + p);
        }
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Cached load through the full hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates translation and memory-controller errors. On a
    /// partition-violation (MPR) the clock has already advanced past the
    /// lookup; state is otherwise untouched.
    pub fn load(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        self.cached_access(agent, va, false)
    }

    /// Cached store (write-allocate).
    ///
    /// # Errors
    ///
    /// As for [`System::load`].
    pub fn store(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        self.cached_access(agent, va, true)
    }

    fn cached_access(&mut self, agent: AgentId, va: VirtAddr, write: bool) -> Result<LoadInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let h = if write {
            self.caches.store(pa)
        } else {
            self.caches.load(pa)
        };
        let mut latency = tlb_lat + h.latency;
        let mut kind = None;
        if h.level == HitLevel::Memory {
            let m = self.mc.access(pa, start + h.latency, agent.0)?;
            latency += m.latency;
            kind = Some(m.kind);
        }
        // Dirty victims written back to memory perturb bank state but are
        // off the critical path.
        for _ in 0..h.writebacks {
            let _ = self.mc.access(pa, start + latency, agent.0);
        }
        self.run_prefetchers(va, pa, h.level == HitLevel::Memory, start + latency);
        self.noise.perturb(&mut self.mc, start + latency);
        self.advance(agent, latency);
        Ok(LoadInfo {
            latency,
            level: h.level,
            kind,
        })
    }

    /// Uncached direct memory access (the "direct memory access attack" of
    /// §3.3 and the DMA-engine data path; the DMA software overhead is
    /// charged separately by the attack harness).
    ///
    /// # Errors
    ///
    /// Propagates translation and memory-controller errors.
    pub fn load_direct(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let m = self.mc.access(pa, start, agent.0)?;
        let latency = tlb_lat + m.latency;
        self.noise.perturb(&mut self.mc, start + latency);
        self.advance(agent, latency);
        Ok(LoadInfo {
            latency,
            level: HitLevel::Memory,
            kind: Some(m.kind),
        })
    }

    /// Executes `clflush` for a line: invalidates it everywhere; a dirty
    /// copy pays the write-back to DRAM on the critical path (§3.2).
    ///
    /// # Errors
    ///
    /// Propagates translation and memory-controller errors.
    pub fn clflush(&mut self, agent: AgentId, va: VirtAddr) -> Result<Cycles> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let (probe_lat, dirty) = self.caches.clflush(pa);
        let mut latency = tlb_lat + probe_lat;
        if dirty {
            let wb = self.mc.access(pa, self.now(agent) + latency, agent.0)?;
            latency += wb.latency;
        }
        self.advance(agent, latency);
        Ok(latency)
    }

    /// Executes a PiM-enabled instruction (`pim_add`-style) on `va`,
    /// letting the PMU locality monitor choose the execution site (§4.1).
    ///
    /// # Errors
    ///
    /// Propagates translation and memory-controller errors.
    pub fn pim_op(&mut self, agent: AgentId, va: VirtAddr) -> Result<PimInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        match self.pei.decide(pa) {
            ExecSite::Host => {
                // Host-side PCU: PEI overhead + cache path.
                let h = self.caches.load(pa);
                let mut latency = tlb_lat + Cycles(self.cfg.pim.pei_overhead_cycles) + h.latency;
                let mut kind = None;
                if h.level == HitLevel::Memory {
                    let m = self.mc.access(pa, start + latency, agent.0)?;
                    latency += m.latency;
                    kind = Some(m.kind);
                }
                self.noise.perturb(&mut self.mc, start + latency);
                self.advance(agent, latency);
                Ok(PimInfo {
                    latency,
                    site: ExecSite::Host,
                    kind,
                })
            }
            ExecSite::MemorySide => {
                let out = self
                    .pei
                    .execute_memory_side(&mut self.mc, pa, start, agent.0)?;
                let latency = tlb_lat + out.latency;
                self.noise.perturb(&mut self.mc, start + latency);
                self.advance(agent, latency);
                Ok(PimInfo {
                    latency,
                    site: ExecSite::MemorySide,
                    kind: out.kind,
                })
            }
        }
    }

    /// Executes a PiM-enabled instruction with an explicit memory-side
    /// offload hint, bypassing the PMU locality monitor. This models (i)
    /// fully offloaded PiM applications (e.g. the read-mapping victim,
    /// whose seeding is offloaded wholesale, §4.3) and (ii) attackers that
    /// have already arranged to defeat the monitor.
    ///
    /// # Errors
    ///
    /// Propagates translation and memory-controller errors.
    pub fn pim_op_direct(&mut self, agent: AgentId, va: VirtAddr) -> Result<PimInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let out = self
            .pei
            .execute_memory_side(&mut self.mc, pa, start, agent.0)?;
        let latency = tlb_lat + out.latency;
        self.noise.perturb(&mut self.mc, start + latency);
        self.advance(agent, latency);
        Ok(PimInfo {
            latency,
            site: ExecSite::MemorySide,
            kind: out.kind,
        })
    }

    /// Executes a masked RowClone: copies row chunks from the range at
    /// `src_va` to the range at `dst_va` for every set mask bit (§4.2).
    /// Both ranges must come from [`System::alloc_bank_stripe`] so that
    /// they are physically contiguous.
    ///
    /// # Errors
    ///
    /// Propagates translation, validation and memory-controller errors.
    pub fn rowclone(
        &mut self,
        agent: AgentId,
        src_va: VirtAddr,
        dst_va: VirtAddr,
        mask: u64,
    ) -> Result<RowCloneInfo> {
        let (src, src_lat) = self.translate(agent, src_va)?;
        let (dst, dst_lat) = self.translate(agent, dst_va)?;
        let tlb_lat = src_lat + dst_lat;
        let start = self.now(agent) + tlb_lat;
        let out = self
            .rc
            .execute(&mut self.mc, src, dst, mask, start, agent.0)?;
        let latency = tlb_lat + out.latency;
        self.noise.perturb(&mut self.mc, start + latency);
        self.advance(agent, latency);
        Ok(RowCloneInfo {
            latency,
            per_bank: out.per_bank,
        })
    }

    fn run_prefetchers(&mut self, va: VirtAddr, pa: PhysAddr, missed: bool, now: Cycles) {
        if !self.prefetchers_enabled {
            return;
        }
        let ip = va.page_number(); // stream id proxy
        let mut reqs = self.ip_prefetcher.observe(ip, pa, missed);
        reqs.extend(self.streamer.observe(ip, pa, missed));
        for r in reqs {
            // Prefetches fill caches and touch DRAM rows (noise).
            if self
                .mc
                .access(r.addr, now, crate::noise::NOISE_ACTOR)
                .is_ok()
            {
                let _ = self.caches.load(r.addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    #[test]
    fn load_cold_then_warm() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        let cold = s.load(a, va).unwrap();
        assert_eq!(cold.level, HitLevel::Memory);
        assert_eq!(cold.kind, Some(RowBufferKind::Miss));
        let warm = s.load(a, va).unwrap();
        assert_eq!(warm.level, HitLevel::L1);
        assert!(warm.latency < cold.latency);
    }

    #[test]
    fn load_direct_sees_row_buffer() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 2).unwrap();
        s.warm_tlb(a, va, 2);
        let first = s.load_direct(a, va).unwrap();
        let second = s.load_direct(a, va + 64).unwrap();
        assert_eq!(first.kind, Some(RowBufferKind::Miss));
        assert_eq!(second.kind, Some(RowBufferKind::Hit));
    }

    #[test]
    fn pim_op_bypasses_caches() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, va, 2);
        // Different cache line each op: stays memory-side.
        let o1 = s.pim_op(a, va).unwrap();
        let o2 = s.pim_op(a, va + 64).unwrap();
        assert_eq!(o1.site, ExecSite::MemorySide);
        assert_eq!(o2.site, ExecSite::MemorySide);
        assert_eq!(o2.kind, Some(RowBufferKind::Hit));
        // The conflict signal: another row in the same bank.
        let vb = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, vb, 2);
        let o3 = s.pim_op(a, vb).unwrap();
        assert_eq!(o3.kind, Some(RowBufferKind::Conflict));
        assert_eq!(o3.latency - o2.latency, Cycles(74));
    }

    #[test]
    fn pim_op_hot_line_goes_host_side() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, va, 2);
        s.pim_op(a, va).unwrap();
        s.pim_op(a, va).unwrap();
        let o = s.pim_op(a, va).unwrap();
        assert_eq!(o.site, ExecSite::Host);
        // The first host-side execution fills the caches; the next one is a
        // cache hit and is much faster than any memory-side PEI.
        let o2 = s.pim_op(a, va).unwrap();
        assert_eq!(o2.site, ExecSite::Host);
        assert!(
            o2.latency < Cycles(20),
            "hot host-side latency {}",
            o2.latency
        );
    }

    #[test]
    fn rowclone_roundtrip() {
        let mut s = sys();
        let a = s.spawn_agent();
        let src = s.alloc_bank_stripe(a, 1).unwrap();
        let dst = s.alloc_bank_stripe(a, 1).unwrap();
        s.warm_tlb(a, src, 32);
        s.warm_tlb(a, dst, 32);
        let out = s.rowclone(a, src, dst, 0xFFFF).unwrap();
        assert_eq!(out.per_bank.len(), 16);
    }

    #[test]
    fn clflush_forces_memory() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.load(a, va).unwrap();
        s.clflush(a, va).unwrap();
        let reload = s.load(a, va).unwrap();
        assert_eq!(reload.level, HitLevel::Memory);
    }

    #[test]
    fn clflush_dirty_pays_writeback() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.store(a, va).unwrap();
        let dirty_cost = s.clflush(a, va).unwrap();
        s.load(a, va).unwrap();
        let clean_cost = s.clflush(a, va).unwrap();
        assert!(dirty_cost > clean_cost);
    }

    #[test]
    fn rdtscp_measures_op_latency() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.warm_tlb(a, va, 2);
        s.load_direct(a, va).unwrap(); // open the row
        let t0 = s.rdtscp(a);
        let info = s.load_direct(a, va + 64).unwrap();
        let t1 = s.rdtscp(a);
        assert_eq!(t1 - t0, info.latency.0 + s.params().timer_overhead.0);
    }

    #[test]
    fn agents_have_independent_clocks() {
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        s.advance(a, Cycles(100));
        assert_eq!(s.now(a), Cycles(100));
        assert_eq!(s.now(b), Cycles(0));
        assert_eq!(s.elapsed(), Cycles(100));
    }

    #[test]
    fn unmapped_access_errors() {
        let mut s = sys();
        let a = s.spawn_agent();
        assert!(s.load(a, VirtAddr(0xdead_b000)).is_err());
    }

    #[test]
    fn shared_bank_interference_between_agents() {
        // The covert-channel core: agent B's activation is visible to
        // agent A as a conflict.
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        let va_a = s.alloc_row_in_bank(a, 5).unwrap();
        let va_b = s.alloc_row_in_bank(b, 5).unwrap();
        s.warm_tlb(a, va_a, 2);
        s.warm_tlb(b, va_b, 2);
        // A opens its row; re-access hits.
        s.pim_op(a, va_a).unwrap();
        let hit = s.pim_op(a, va_a + 64).unwrap();
        assert_eq!(hit.kind, Some(RowBufferKind::Hit));
        // B interferes *after* A's activity in wall-clock order — the same
        // ordering the attack enforces with its semaphore.
        s.set_now(b, s.now(a));
        s.pim_op(b, va_b).unwrap();
        // A probes after B is done.
        s.set_now(a, s.now(b));
        let conflict = s.pim_op(a, va_a + 128).unwrap();
        assert_eq!(conflict.kind, Some(RowBufferKind::Conflict));
        assert_eq!(conflict.latency - hit.latency, Cycles(74));
    }

    #[test]
    fn defense_visible_through_system() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.warm_tlb(a, va, 2);
        s.set_defense(Defense::Ctd);
        let first = s.load_direct(a, va).unwrap();
        let second = s.load_direct(a, va + 64).unwrap();
        // Hit and miss pad to identical worst-case latency.
        assert_eq!(first.latency, second.latency);
    }
}
