//! System instantiations of the generic [`Engine`] — the backend matrix.
//!
//! | alias | backend | use it for |
//! |---|---|---|
//! | [`System`] | [`MemoryController`] | the paper's Table 2 machine (default) |
//! | [`ShardedSystem`] | [`ShardedController`] | bank-sharded controller, bit-identical to mono |
//! | [`TracedSystem`] | [`TracingBackend`]`<MemoryController>` | replayable request logs around the default controller |
//! | [`DynSystem`] | `Box<dyn ControllerBackend>` | runtime backend selection ([`BackendKind`]) |
//!
//! Every instantiation shares the defense/blocking/row-policy hooks via
//! the generic `impl<B: ControllerBackend> Engine<B>` block, so attack and
//! experiment code written against those hooks runs unchanged on any
//! backend.

use std::io::Write;

use impact_core::config::SystemConfig;
use impact_core::engine::MemoryBackend;
use impact_core::error::Result;
use impact_core::trace::{TraceEvent, TraceHeader, TraceSummary, TraceWriter, TracingBackend};
use impact_dram::{BankStats, RowPolicy};
use impact_memctrl::{
    ControllerBackend, Defense, MemoryController, PeriodicBlock, ShardedController,
};

use crate::engine::Engine;
// Source compatibility: these types predate the engine split and were
// exported from this module.
pub use crate::engine::{AgentId, LoadInfo, PimInfo, RowCloneInfo, SimParams};

/// The simulated PiM-enabled system (the paper's Table 2 machine): the
/// generic simulation [`Engine`] instantiated with the default
/// [`MemoryController`] backend.
pub type System = Engine<MemoryController>;

/// The engine over a bank-sharded controller ([`ShardedController`]):
/// observably identical to [`System`], with the banks partitioned across
/// sub-controllers.
pub type ShardedSystem = Engine<ShardedController>;

/// The engine over a tracing proxy around the default controller: records
/// a replayable [`TraceEvent`] log of every request that reaches memory.
pub type TracedSystem = Engine<TracingBackend<MemoryController>>;

/// A memory backend chosen at runtime.
pub type DynBackend = Box<dyn ControllerBackend>;

/// The engine over a runtime-chosen backend (see [`BackendKind`]).
pub type DynSystem = Engine<DynBackend>;

impl System {
    /// Builds the system with default harness parameters and the LLC
    /// latency taken from the CACTI model (so LLC sweeps time correctly).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> System {
        System::with_params(cfg, SimParams::default())
    }

    /// Builds the system with explicit harness parameters.
    #[must_use]
    pub fn with_params(cfg: SystemConfig, params: SimParams) -> System {
        let mc = MemoryController::from_config(&cfg);
        Engine::with_backend(cfg, params, mc)
    }

    /// The memory controller (defense control, stats).
    #[must_use]
    pub fn memctrl(&self) -> &MemoryController {
        self.backend()
    }

    /// Mutable memory-controller access.
    pub fn memctrl_mut(&mut self) -> &mut MemoryController {
        self.backend_mut()
    }
}

impl ShardedSystem {
    /// Builds the system over a [`ShardedController`] with `shards`
    /// sub-controllers, serviced sequentially.
    #[must_use]
    pub fn sharded(cfg: SystemConfig, shards: usize) -> ShardedSystem {
        let backend = ShardedController::from_config(&cfg, shards);
        Engine::with_backend(cfg, SimParams::default(), backend)
    }

    /// Builds the system over a [`ShardedController`] with `shards`
    /// sub-controllers and a `workers`-thread pool servicing shard
    /// buckets concurrently — observably identical to
    /// [`ShardedSystem::sharded`] (and to [`System`]) at any worker
    /// count; large request batches just complete in less wall-clock
    /// time.
    #[must_use]
    pub fn sharded_parallel(cfg: SystemConfig, shards: usize, workers: usize) -> ShardedSystem {
        let backend = ShardedController::from_config_parallel(&cfg, shards, workers);
        Engine::with_backend(cfg, SimParams::default(), backend)
    }
}

impl TracedSystem {
    /// Builds the system over a [`TracingBackend`]-wrapped default
    /// controller.
    #[must_use]
    pub fn traced(cfg: SystemConfig) -> TracedSystem {
        let backend = TracingBackend::new(MemoryController::from_config(&cfg));
        Engine::with_backend(cfg, SimParams::default(), backend)
    }

    /// The recorded request log so far.
    #[must_use]
    pub fn trace_log(&self) -> &[TraceEvent] {
        self.backend().log()
    }

    /// Takes the recorded log, leaving an empty one behind.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.backend_mut().take_log()
    }
}

/// Trace persistence, available on any engine whose backend is a tracing
/// proxy (over *any* inner backend — mono, sharded, or boxed): start a
/// recording with [`Engine::record_trace_to`], run any workload, then seal
/// the file with [`Engine::finish_trace`]. This is the capture path behind
/// `fig_all --record-trace` and `trace_replay record`.
impl<B: MemoryBackend> Engine<TracingBackend<B>> {
    /// Streams every subsequent memory event into `sink` as a versioned
    /// on-disk trace. The header carries this engine's configuration
    /// fingerprint plus `label` (a config name replay tools can resolve)
    /// and `seed` (whatever seeds the recorded workload). Events bypass
    /// the in-memory log, so arbitrarily long recordings run in constant
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates header write failures as [`impact_core::Error::TraceIo`];
    /// fails with [`impact_core::Error::TraceFormat`] when the backend has
    /// already serviced traffic (recordings must start from pristine
    /// backend state to be replayable from a fresh backend).
    pub fn record_trace_to(
        &mut self,
        sink: Box<dyn Write + Send>,
        label: &str,
        seed: u64,
    ) -> Result<()> {
        let header = TraceHeader::for_config(self.config(), label, seed);
        let writer = TraceWriter::new(sink, &header)?;
        self.backend_mut().spill_to(writer)
    }

    /// Seals an active recording: writes the verifying footer (event and
    /// response counts, response digest, final backend statistics) and
    /// flushes. Returns `Ok(None)` when no recording is active.
    ///
    /// # Errors
    ///
    /// Surfaces deferred write errors from the recording, then footer
    /// write/flush failures.
    pub fn finish_trace(&mut self) -> Result<Option<TraceSummary>> {
        self.backend_mut().finish_spill()
    }
}

/// Controller-management hooks, available on every instantiation whose
/// backend is a [`ControllerBackend`] (all of the aliases above).
impl<B: ControllerBackend> Engine<B> {
    /// Installs a memory-controller defense.
    pub fn set_defense(&mut self, defense: Defense) {
        self.backend_mut().set_defense(defense);
    }

    /// Enables (or disables, with `None`) periodic per-bank blocking
    /// (REF/RFM/PRAC).
    pub fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        self.backend_mut().set_periodic_block(blocking);
    }

    /// Switches the DRAM row policy (ablations).
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        self.backend_mut().set_row_policy(policy);
    }

    /// DRAM-level statistics aggregated over all banks.
    #[must_use]
    pub fn dram_totals(&self) -> BankStats {
        self.backend().dram_totals()
    }
}

/// Runtime selection of the memory backend under the engine — how the
/// experiment harness and `fig_all --backend ...` run the whole suite on
/// any entry of the backend matrix.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The monolithic [`MemoryController`] (default).
    #[default]
    Mono,
    /// [`ShardedController`] with the given shard count and worker-pool
    /// size (`workers: 1` services shard buckets sequentially; more
    /// workers service them concurrently, bit-identically).
    Sharded {
        /// Sub-controller count (banks are interleaved `bank % shards`).
        shards: usize,
        /// Worker threads servicing shard buckets per batch.
        workers: usize,
    },
    /// [`TracingBackend`] around the monolithic controller. Behind the
    /// type-erased [`DynBackend`] the log itself is not reachable — this
    /// kind exists to prove end-to-end transparency of the proxy (e.g.
    /// the CI `fig_all --backend traced` smoke); use
    /// [`TracedSystem::traced`] when the log is the point. The log grows
    /// with every request and is dropped with its system.
    Traced,
}

impl BackendKind {
    /// Parses `"mono"`, `"sharded"` / `"sharded:N"` / `"sharded:N:T"`
    /// (N shards serviced by T pool workers) or `"traced"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "mono" => Some(BackendKind::Mono),
            "traced" => Some(BackendKind::Traced),
            "sharded" => Some(BackendKind::Sharded {
                shards: 4,
                workers: 1,
            }),
            _ => {
                let rest = s.strip_prefix("sharded:")?;
                let (shards, workers) = match rest.split_once(':') {
                    None => (rest.parse().ok()?, 1),
                    Some((n, t)) => (n.parse().ok()?, t.parse().ok()?),
                };
                Some(BackendKind::Sharded { shards, workers })
            }
        }
    }

    /// Display label (`mono`, `sharded:4`, `sharded:8:4`, `traced`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            BackendKind::Mono => "mono".into(),
            BackendKind::Sharded { shards, workers: 1 } => format!("sharded:{shards}"),
            BackendKind::Sharded { shards, workers } => format!("sharded:{shards}:{workers}"),
            BackendKind::Traced => "traced".into(),
        }
    }

    /// Builds the boxed backend for `cfg`.
    #[must_use]
    pub fn backend(&self, cfg: &SystemConfig) -> DynBackend {
        match *self {
            BackendKind::Mono => Box::new(MemoryController::from_config(cfg)),
            BackendKind::Sharded { shards, workers } => Box::new(
                ShardedController::from_config_parallel(cfg, shards, workers),
            ),
            BackendKind::Traced => {
                Box::new(TracingBackend::new(MemoryController::from_config(cfg)))
            }
        }
    }

    /// Builds a full system over this backend with default parameters.
    #[must_use]
    pub fn system(&self, cfg: SystemConfig) -> DynSystem {
        let backend = self.backend(&cfg);
        Engine::with_backend(cfg, SimParams::default(), backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cache::HitLevel;
    use impact_core::addr::VirtAddr;
    use impact_core::time::Cycles;
    use impact_dram::RowBufferKind;
    use impact_pim::pei::ExecSite;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    #[test]
    fn load_cold_then_warm() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        let cold = s.load(a, va).unwrap();
        assert_eq!(cold.level, HitLevel::Memory);
        assert_eq!(cold.kind, Some(RowBufferKind::Miss));
        let warm = s.load(a, va).unwrap();
        assert_eq!(warm.level, HitLevel::L1);
        assert!(warm.latency < cold.latency);
    }

    #[test]
    fn load_direct_sees_row_buffer() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 2).unwrap();
        s.warm_tlb(a, va, 2);
        let first = s.load_direct(a, va).unwrap();
        let second = s.load_direct(a, va + 64).unwrap();
        assert_eq!(first.kind, Some(RowBufferKind::Miss));
        assert_eq!(second.kind, Some(RowBufferKind::Hit));
    }

    #[test]
    fn load_direct_batch_matches_row_buffer_behaviour() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 4).unwrap();
        s.warm_tlb(a, va, 2);
        let before = s.now(a);
        let infos = s.load_direct_batch(a, &[va, va + 64, va + 128]).unwrap();
        assert_eq!(infos.len(), 3);
        // First access opens the row; the rest of the burst hits it.
        assert_eq!(infos[0].kind, Some(RowBufferKind::Miss));
        assert_eq!(infos[1].kind, Some(RowBufferKind::Hit));
        assert_eq!(infos[2].kind, Some(RowBufferKind::Hit));
        assert!(s.now(a) > before, "burst must advance the clock");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        // Noisy config: an empty burst must not draw from the noise RNG
        // or touch bank state either.
        let mut s = System::new(SystemConfig::paper_table2());
        let a = s.spawn_agent();
        let before = s.now(a);
        assert!(s.load_direct_batch(a, &[]).unwrap().is_empty());
        assert_eq!(s.now(a), before);
        assert_eq!(s.memctrl().dram().total_stats().total_accesses(), 0);
        assert_eq!(s.memctrl().dram().total_stats().activations, 0);
    }

    #[test]
    fn pim_op_bypasses_caches() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, va, 2);
        // Different cache line each op: stays memory-side.
        let o1 = s.pim_op(a, va).unwrap();
        let o2 = s.pim_op(a, va + 64).unwrap();
        assert_eq!(o1.site, ExecSite::MemorySide);
        assert_eq!(o2.site, ExecSite::MemorySide);
        assert_eq!(o2.kind, Some(RowBufferKind::Hit));
        // The conflict signal: another row in the same bank.
        let vb = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, vb, 2);
        let o3 = s.pim_op(a, vb).unwrap();
        assert_eq!(o3.kind, Some(RowBufferKind::Conflict));
        assert_eq!(o3.latency - o2.latency, Cycles(74));
    }

    #[test]
    fn pim_op_hot_line_goes_host_side() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 1).unwrap();
        s.warm_tlb(a, va, 2);
        s.pim_op(a, va).unwrap();
        s.pim_op(a, va).unwrap();
        let o = s.pim_op(a, va).unwrap();
        assert_eq!(o.site, ExecSite::Host);
        // The first host-side execution fills the caches; the next one is a
        // cache hit and is much faster than any memory-side PEI.
        let o2 = s.pim_op(a, va).unwrap();
        assert_eq!(o2.site, ExecSite::Host);
        assert!(
            o2.latency < Cycles(20),
            "hot host-side latency {}",
            o2.latency
        );
    }

    #[test]
    fn rowclone_roundtrip() {
        let mut s = sys();
        let a = s.spawn_agent();
        let src = s.alloc_bank_stripe(a, 1).unwrap();
        let dst = s.alloc_bank_stripe(a, 1).unwrap();
        s.warm_tlb(a, src, 32);
        s.warm_tlb(a, dst, 32);
        let out = s.rowclone(a, src, dst, 0xFFFF).unwrap();
        assert_eq!(out.per_bank.len(), 16);
    }

    #[test]
    fn clflush_forces_memory() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.load(a, va).unwrap();
        s.clflush(a, va).unwrap();
        let reload = s.load(a, va).unwrap();
        assert_eq!(reload.level, HitLevel::Memory);
    }

    #[test]
    fn clflush_dirty_pays_writeback() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.store(a, va).unwrap();
        let dirty_cost = s.clflush(a, va).unwrap();
        s.load(a, va).unwrap();
        let clean_cost = s.clflush(a, va).unwrap();
        assert!(dirty_cost > clean_cost);
    }

    #[test]
    fn rdtscp_measures_op_latency() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.warm_tlb(a, va, 2);
        s.load_direct(a, va).unwrap(); // open the row
        let t0 = s.rdtscp(a);
        let info = s.load_direct(a, va + 64).unwrap();
        let t1 = s.rdtscp(a);
        assert_eq!(t1 - t0, info.latency.0 + s.params().timer_overhead.0);
    }

    #[test]
    fn agents_have_independent_clocks() {
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        s.advance(a, Cycles(100));
        assert_eq!(s.now(a), Cycles(100));
        assert_eq!(s.now(b), Cycles(0));
        assert_eq!(s.elapsed(), Cycles(100));
    }

    #[test]
    fn unmapped_access_errors() {
        let mut s = sys();
        let a = s.spawn_agent();
        assert!(s.load(a, VirtAddr(0xdead_b000)).is_err());
    }

    #[test]
    fn shared_bank_interference_between_agents() {
        // The covert-channel core: agent B's activation is visible to
        // agent A as a conflict.
        let mut s = sys();
        let a = s.spawn_agent();
        let b = s.spawn_agent();
        let va_a = s.alloc_row_in_bank(a, 5).unwrap();
        let va_b = s.alloc_row_in_bank(b, 5).unwrap();
        s.warm_tlb(a, va_a, 2);
        s.warm_tlb(b, va_b, 2);
        // A opens its row; re-access hits.
        s.pim_op(a, va_a).unwrap();
        let hit = s.pim_op(a, va_a + 64).unwrap();
        assert_eq!(hit.kind, Some(RowBufferKind::Hit));
        // B interferes *after* A's activity in wall-clock order — the same
        // ordering the attack enforces with its semaphore.
        s.set_now(b, s.now(a));
        s.pim_op(b, va_b).unwrap();
        // A probes after B is done.
        s.set_now(a, s.now(b));
        let conflict = s.pim_op(a, va_a + 128).unwrap();
        assert_eq!(conflict.kind, Some(RowBufferKind::Conflict));
        assert_eq!(conflict.latency - hit.latency, Cycles(74));
    }

    #[test]
    fn defense_visible_through_system() {
        let mut s = sys();
        let a = s.spawn_agent();
        let va = s.alloc_row_in_bank(a, 0).unwrap();
        s.warm_tlb(a, va, 2);
        s.set_defense(Defense::Ctd);
        let first = s.load_direct(a, va).unwrap();
        let second = s.load_direct(a, va + 64).unwrap();
        // Hit and miss pad to identical worst-case latency.
        assert_eq!(first.latency, second.latency);
    }

    #[test]
    fn debug_formats_via_backend_hooks() {
        let mut s = sys();
        s.set_defense(Defense::Ctd);
        let d = format!("{s:?}");
        assert!(d.contains("CTD"), "debug output: {d}");
        assert!(d.contains("16"), "debug output: {d}");
    }

    // ------------------------------------------------------------------
    // Backend matrix
    // ------------------------------------------------------------------

    /// A short whole-system exercise returning observable timing facts.
    fn exercise<B: ControllerBackend>(s: &mut Engine<B>) -> Vec<u64> {
        let a = s.spawn_agent();
        let mut out = Vec::new();
        for bank in 0..4 {
            let va = s.alloc_row_in_bank(a, bank).unwrap();
            s.warm_tlb(a, va, 2);
            out.push(s.load_direct(a, va).unwrap().latency.0);
            out.push(s.pim_op(a, va + 64).unwrap().latency.0);
        }
        s.set_defense(Defense::Ctd);
        let vb = s.alloc_row_in_bank(a, 7).unwrap();
        s.warm_tlb(a, vb, 2);
        out.push(s.load_direct(a, vb).unwrap().latency.0);
        out.push(s.now(a).0);
        out.push(s.backend().backend_stats().accesses);
        out.push(s.dram_totals().activations);
        out
    }

    #[test]
    fn sharded_and_traced_systems_match_mono() {
        let cfg = SystemConfig::paper_table2_noiseless();
        let mono = exercise(&mut System::new(cfg.clone()));
        for shards in [1usize, 2, 8, 16] {
            let mut s = ShardedSystem::sharded(cfg.clone(), shards);
            assert_eq!(exercise(&mut s), mono, "{shards} shards diverged");
        }
        // Parallel shard servicing is equally invisible.
        for workers in [2usize, 4] {
            let mut s = ShardedSystem::sharded_parallel(cfg.clone(), 8, workers);
            s.backend_mut().set_parallel_threshold(1);
            assert_eq!(exercise(&mut s), mono, "{workers} workers diverged");
        }
        let mut t = TracedSystem::traced(cfg.clone());
        assert_eq!(exercise(&mut t), mono, "traced system diverged");
        assert!(!t.trace_log().is_empty());
        // Runtime-selected backends agree too.
        for kind in [
            BackendKind::Mono,
            BackendKind::Sharded {
                shards: 4,
                workers: 1,
            },
            BackendKind::Sharded {
                shards: 8,
                workers: 4,
            },
            BackendKind::Traced,
        ] {
            let mut s = kind.system(cfg.clone());
            assert_eq!(exercise(&mut s), mono, "{} diverged", kind.label());
        }
    }

    #[test]
    fn traced_system_replays_to_identical_stats() {
        use impact_core::trace::replay;
        let cfg = SystemConfig::paper_table2();
        let mut t = TracedSystem::traced(cfg.clone());
        let a = t.spawn_agent();
        for bank in 0..6 {
            let va = t.alloc_row_in_bank(a, bank).unwrap();
            t.warm_tlb(a, va, 2);
            t.load(a, va).unwrap();
            t.pim_op(a, va + 64).unwrap();
            t.load_direct_batch(a, &[va + 128, va + 192]).unwrap();
        }
        // Replaying the log into a fresh controller of the same initial
        // configuration reproduces the backend state and statistics.
        let mut fresh = MemoryController::from_config(&cfg);
        replay(t.trace_log(), &mut fresh).unwrap();
        assert_eq!(fresh.backend_stats(), t.backend().backend_stats());
        assert_eq!(fresh.dram().total_stats(), t.dram_totals());
    }

    #[test]
    fn engine_records_a_replayable_trace_file() {
        use impact_core::trace::{read_trace, replay};
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let cfg = SystemConfig::paper_table2();
        let buf = SharedBuf::default();
        let mut sys = TracedSystem::traced(cfg.clone());
        sys.record_trace_to(Box::new(buf.clone()), "paper_table2", 0xABC)
            .unwrap();
        let a = sys.spawn_agent();
        for bank in 0..4 {
            let va = sys.alloc_row_in_bank(a, bank).unwrap();
            sys.warm_tlb(a, va, 2);
            sys.load(a, va).unwrap();
            sys.pim_op(a, va + 64).unwrap();
            sys.load_direct_batch(a, &[va + 128, va + 192]).unwrap();
        }
        let summary = sys.finish_trace().unwrap().expect("recording was active");
        assert!(sys.finish_trace().unwrap().is_none(), "already sealed");

        let bytes = buf.0.lock().unwrap().clone();
        let (header, events, decoded) = read_trace(&bytes[..]).unwrap();
        assert_eq!(header.fingerprint, cfg.fingerprint());
        assert_eq!(header.label, "paper_table2");
        assert_eq!(header.seed, 0xABC);
        assert_eq!(decoded, summary);
        let mut fresh = MemoryController::from_config(&cfg);
        replay(&events, &mut fresh).unwrap();
        assert_eq!(fresh.backend_stats(), sys.backend().backend_stats());
        assert_eq!(
            fresh.dram_state_digest(),
            sys.backend().dram_state_digest(),
            "replayed DRAM state diverged"
        );
    }

    #[test]
    fn backend_kind_parses_and_labels() {
        assert_eq!(BackendKind::parse("mono"), Some(BackendKind::Mono));
        assert_eq!(BackendKind::parse("traced"), Some(BackendKind::Traced));
        assert_eq!(
            BackendKind::parse("sharded"),
            Some(BackendKind::Sharded {
                shards: 4,
                workers: 1
            })
        );
        assert_eq!(
            BackendKind::parse("sharded:8"),
            Some(BackendKind::Sharded {
                shards: 8,
                workers: 1
            })
        );
        assert_eq!(
            BackendKind::parse("sharded:8:4"),
            Some(BackendKind::Sharded {
                shards: 8,
                workers: 4
            })
        );
        assert_eq!(BackendKind::parse("nope"), None);
        assert_eq!(BackendKind::parse("sharded:8:"), None);
        assert_eq!(BackendKind::parse("sharded:x:2"), None);
        assert_eq!(
            BackendKind::Sharded {
                shards: 8,
                workers: 1
            }
            .label(),
            "sharded:8"
        );
        assert_eq!(
            BackendKind::Sharded {
                shards: 8,
                workers: 4
            }
            .label(),
            "sharded:8:4"
        );
        assert_eq!(BackendKind::default(), BackendKind::Mono);
    }
}
