//! The generic simulation core: per-agent clocks, TLBs, page tables and
//! caches over a pluggable [`MemoryBackend`].
//!
//! [`Engine`] owns everything *above* main memory; the backend underneath
//! it classifies and times every [`MemRequest`] the engine routes down
//! (demand traffic, memory-side PiM, RowClone, prefetcher and noise
//! accesses). The paper's Table 2 machine is the instantiation with the
//! default controller backend — see [`crate::system::System`].

use impact_cache::{CacheHierarchy, HitLevel, IpStridePrefetcher, Prefetcher, StreamerPrefetcher};
use impact_core::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use impact_core::config::SystemConfig;
use impact_core::engine::{MemRequest, MemoryBackend};
use impact_core::error::Result;
use impact_core::time::Cycles;
use impact_dram::RowBufferKind;
use impact_pim::pei::{ExecSite, PeiEngine};
use impact_pim::rowclone::RowCloneEngine;

use crate::memory::{FrameAllocator, PageTable};
use crate::noise::{NoiseInjector, NOISE_ACTOR};
use crate::tlb::Tlb;

/// Identifier of a co-simulated agent (thread/process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentId(pub u32);

/// Simulation-harness timing parameters that are not part of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Cost of a serialized `cpuid; rdtscp` measurement pair.
    pub timer_overhead: Cycles,
    /// Cost of a `memory_fence` (Listing 1/2 use one per batch).
    pub fence_overhead: Cycles,
    /// Cost of one user-space semaphore operation.
    pub sync_overhead: Cycles,
    /// Software-stack overhead of one DMA-engine transfer (§5.2.2: context
    /// switches and OS instructions make the DMA attack ~10× slower than
    /// IMPACT-PnM).
    pub dma_overhead: Cycles,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            timer_overhead: Cycles(8),
            fence_overhead: Cycles(20),
            sync_overhead: Cycles(45),
            dma_overhead: Cycles(1800),
        }
    }
}

/// Result of a cached load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// End-to-end latency observed by the agent.
    pub latency: Cycles,
    /// Cache level that served the access.
    pub level: HitLevel,
    /// Row-buffer classification if the access reached DRAM.
    pub kind: Option<RowBufferKind>,
}

/// Result of a PiM-enabled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimInfo {
    /// End-to-end latency observed by the agent.
    pub latency: Cycles,
    /// Where the PMU executed the PEI.
    pub site: ExecSite,
    /// Row-buffer classification for memory-side execution.
    pub kind: Option<RowBufferKind>,
}

/// Result of a masked RowClone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowCloneInfo {
    /// End-to-end latency of the masked operation.
    pub latency: Cycles,
    /// Per-bank classifications and latencies.
    pub per_bank: Vec<(usize, RowBufferKind, Cycles)>,
}

/// The simulation core, generic over the memory engine underneath it.
///
/// See the crate-level docs for the co-simulation model. Most users want
/// [`crate::system::System`], the instantiation with the default
/// [`impact_memctrl::MemoryController`] backend.
pub struct Engine<B: MemoryBackend> {
    cfg: SystemConfig,
    params: SimParams,
    caches: CacheHierarchy,
    backend: B,
    pei: PeiEngine,
    rc: RowCloneEngine,
    noise: NoiseInjector,
    ip_prefetcher: IpStridePrefetcher,
    streamer: StreamerPrefetcher,
    prefetchers_enabled: bool,
    clocks: Vec<Cycles>,
    tlbs: Vec<Tlb>,
    page_tables: Vec<PageTable>,
    alloc: FrameAllocator,
}

impl<B: MemoryBackend> core::fmt::Debug for Engine<B> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("agents", &self.clocks.len())
            .field("banks", &self.backend.num_banks())
            .field("defense", &self.backend.defense_label())
            .finish()
    }
}

impl<B: MemoryBackend> Engine<B> {
    /// Builds the engine over an explicit backend.
    #[must_use]
    pub fn with_backend(cfg: SystemConfig, params: SimParams, backend: B) -> Engine<B> {
        Engine {
            caches: CacheHierarchy::from_config_with_cacti_llc(&cfg),
            backend,
            pei: PeiEngine::new(cfg.pim),
            rc: RowCloneEngine::new(cfg.dram_geometry.row_bytes),
            noise: NoiseInjector::new(cfg.noise),
            ip_prefetcher: IpStridePrefetcher::new(64),
            streamer: StreamerPrefetcher::new(16, 2),
            prefetchers_enabled: cfg.noise.prefetcher_rate > 0.0 || cfg.noise.ptw_rate > 0.0,
            clocks: Vec::new(),
            tlbs: Vec::new(),
            page_tables: Vec::new(),
            alloc: FrameAllocator::new(cfg.dram_geometry),
            cfg,
            params,
        }
    }

    /// Creates a new agent (thread/process) with its own clock, TLB and
    /// page table.
    pub fn spawn_agent(&mut self) -> AgentId {
        let id = AgentId(self.clocks.len() as u32);
        self.clocks.push(Cycles::ZERO);
        self.tlbs.push(Tlb::new(self.cfg.tlb));
        self.page_tables.push(PageTable::new());
        id
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Harness parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The memory backend (stats, defense hooks).
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Enables or disables the behavioural prefetchers (noise ablation).
    pub fn set_prefetchers_enabled(&mut self, enabled: bool) {
        self.prefetchers_enabled = enabled;
    }

    /// Current clock of `agent`.
    #[must_use]
    pub fn now(&self, agent: AgentId) -> Cycles {
        self.clocks[agent.0 as usize]
    }

    /// Sets the clock (used by synchronization primitives).
    pub fn set_now(&mut self, agent: AgentId, t: Cycles) {
        self.clocks[agent.0 as usize] = t;
    }

    /// Advances the agent's clock by `d` (compute time).
    pub fn advance(&mut self, agent: AgentId, d: Cycles) {
        self.clocks[agent.0 as usize] += d;
    }

    /// Maximum clock across all agents (total elapsed time).
    #[must_use]
    pub fn elapsed(&self) -> Cycles {
        self.clocks.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// Emulated serialized timestamp read (`cpuid; rdtscp`).
    pub fn rdtscp(&mut self, agent: AgentId) -> u64 {
        self.advance(agent, self.params.timer_overhead);
        self.now(agent).0
    }

    /// Emulated memory fence.
    pub fn fence(&mut self, agent: AgentId) {
        self.advance(agent, self.params.fence_overhead);
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocates one DRAM row in `bank` for `agent` and maps it, returning
    /// the virtual base address of the row.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::MassagingFailed`] when the bank is
    /// exhausted.
    pub fn alloc_row_in_bank(&mut self, agent: AgentId, bank: usize) -> Result<VirtAddr> {
        let pa = self.alloc.alloc_row_in_bank(bank)?;
        let pages = self.alloc.pages_per_row();
        Ok(self.map_region(agent, pa, pages))
    }

    /// Allocates `rotations` physically contiguous bank rotations (each
    /// rotation = one row in every bank, ascending flat-bank order) and
    /// maps them, returning the virtual base. This is the allocation the
    /// IMPACT-PuM sender/receiver use for RowClone ranges.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::MassagingFailed`] when the stripe
    /// region is exhausted.
    pub fn alloc_bank_stripe(&mut self, agent: AgentId, rotations: u64) -> Result<VirtAddr> {
        let pa = self.alloc.alloc_bank_stripe(rotations)?;
        let banks = u64::from(self.cfg.dram_geometry.total_banks());
        let bytes = rotations * banks * self.cfg.dram_geometry.row_bytes;
        let pages = bytes / PAGE_SIZE;
        Ok(self.map_region(agent, pa, pages))
    }

    fn map_region(&mut self, agent: AgentId, pa: PhysAddr, pages: u64) -> VirtAddr {
        let pt = &mut self.page_tables[agent.0 as usize];
        let va = pt.reserve_vspace(pages);
        for p in 0..pages {
            pt.map_page(va.page_number() + p, pa.frame_number() + p);
        }
        va
    }

    /// Translates a virtual address for `agent`, charging TLB latency.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::UnmappedVirtualAddress`] for unmapped
    /// pages.
    pub fn translate(&mut self, agent: AgentId, va: VirtAddr) -> Result<(PhysAddr, Cycles)> {
        let pa = self.page_tables[agent.0 as usize].translate(va)?;
        let look = self.tlbs[agent.0 as usize].translate(va.page_number());
        Ok((pa, look.latency))
    }

    /// Pre-faults and warms the TLB for `pages` pages starting at `va`
    /// (the warm-up the paper performs before attacks, §5.2.1).
    pub fn warm_tlb(&mut self, agent: AgentId, va: VirtAddr, pages: u64) {
        for p in 0..pages {
            self.tlbs[agent.0 as usize].warm(va.page_number() + p);
        }
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Cached load through the full hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors. On a partition-violation
    /// (MPR) the clock has already advanced past the lookup; state is
    /// otherwise untouched.
    pub fn load(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        self.cached_access(agent, va, false)
    }

    /// Cached store (write-allocate).
    ///
    /// # Errors
    ///
    /// As for [`Engine::load`].
    pub fn store(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        self.cached_access(agent, va, true)
    }

    fn cached_access(&mut self, agent: AgentId, va: VirtAddr, write: bool) -> Result<LoadInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let h = if write {
            self.caches.store(pa)
        } else {
            self.caches.load(pa)
        };
        let mut latency = tlb_lat + h.latency;
        let mut kind = None;
        if h.level == HitLevel::Memory {
            let req = if write {
                MemRequest::store(pa, start + h.latency, agent.0)
            } else {
                MemRequest::load(pa, start + h.latency, agent.0)
            };
            let m = self.backend.service(&req)?;
            latency += m.latency;
            kind = Some(m.kind);
        }
        // Dirty victims written back to memory perturb bank state but are
        // off the critical path.
        for _ in 0..h.writebacks {
            let _ = self
                .backend
                .service(&MemRequest::store(pa, start + latency, agent.0));
        }
        self.run_prefetchers(va, pa, h.level == HitLevel::Memory, start + latency);
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(LoadInfo {
            latency,
            level: h.level,
            kind,
        })
    }

    /// Uncached direct memory access (the "direct memory access attack" of
    /// §3.3 and the DMA-engine data path; the DMA software overhead is
    /// charged separately by the attack harness).
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn load_direct(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let m = self
            .backend
            .service(&MemRequest::load(pa, start, agent.0))?;
        let latency = tlb_lat + m.latency;
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(LoadInfo {
            latency,
            level: HitLevel::Memory,
            kind: Some(m.kind),
        })
    }

    /// Issues a burst of uncached loads through the backend's batched
    /// request path (the DMA-engine data path). All requests enter the
    /// backend when the burst starts — bank queueing orders them — and the
    /// agent's clock advances past the last completion. Noise perturbs the
    /// banks once per burst; per-element `latency` excludes the up-front
    /// TLB charge. This is the amortized alternative to calling
    /// [`Engine::load_direct`] in a loop.
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors; the clock is only
    /// advanced when the whole burst succeeds.
    pub fn load_direct_batch(&mut self, agent: AgentId, vas: &[VirtAddr]) -> Result<Vec<LoadInfo>> {
        if vas.is_empty() {
            // No accesses happened, so no noise either — a zero-length
            // burst must leave the simulation state untouched, like a
            // zero-iteration `load_direct` loop.
            return Ok(Vec::new());
        }
        let mut tlb_total = Cycles::ZERO;
        let mut pas = Vec::with_capacity(vas.len());
        for &va in vas {
            let (pa, tlb_lat) = self.translate(agent, va)?;
            tlb_total += tlb_lat;
            pas.push(pa);
        }
        let start = self.now(agent) + tlb_total;
        let reqs: Vec<MemRequest> = pas
            .into_iter()
            .map(|pa| MemRequest::load(pa, start, agent.0))
            .collect();
        let resps = self.backend.service_batch(&reqs)?;
        let mut end = start;
        let infos = resps
            .into_iter()
            .map(|m| {
                end = end.max(m.completed_at);
                LoadInfo {
                    latency: m.latency,
                    level: HitLevel::Memory,
                    kind: Some(m.kind),
                }
            })
            .collect();
        self.noise.perturb(&mut self.backend, end);
        self.set_now(agent, end);
        Ok(infos)
    }

    /// Executes `clflush` for a line: invalidates it everywhere; a dirty
    /// copy pays the write-back to DRAM on the critical path (§3.2).
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn clflush(&mut self, agent: AgentId, va: VirtAddr) -> Result<Cycles> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let (probe_lat, dirty) = self.caches.clflush(pa);
        let mut latency = tlb_lat + probe_lat;
        if dirty {
            let wb =
                self.backend
                    .service(&MemRequest::store(pa, self.now(agent) + latency, agent.0))?;
            latency += wb.latency;
        }
        self.advance(agent, latency);
        Ok(latency)
    }

    /// Executes a PiM-enabled instruction (`pim_add`-style) on `va`,
    /// letting the PMU locality monitor choose the execution site (§4.1).
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn pim_op(&mut self, agent: AgentId, va: VirtAddr) -> Result<PimInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        match self.pei.decide(pa) {
            ExecSite::Host => {
                // Host-side PCU: PEI overhead + cache path.
                let h = self.caches.load(pa);
                let mut latency = tlb_lat + Cycles(self.cfg.pim.pei_overhead_cycles) + h.latency;
                let mut kind = None;
                if h.level == HitLevel::Memory {
                    let m =
                        self.backend
                            .service(&MemRequest::load(pa, start + latency, agent.0))?;
                    latency += m.latency;
                    kind = Some(m.kind);
                }
                self.noise.perturb(&mut self.backend, start + latency);
                self.advance(agent, latency);
                Ok(PimInfo {
                    latency,
                    site: ExecSite::Host,
                    kind,
                })
            }
            ExecSite::MemorySide => {
                let out = self
                    .pei
                    .execute_memory_side(&mut self.backend, pa, start, agent.0)?;
                let latency = tlb_lat + out.latency;
                self.noise.perturb(&mut self.backend, start + latency);
                self.advance(agent, latency);
                Ok(PimInfo {
                    latency,
                    site: ExecSite::MemorySide,
                    kind: out.kind,
                })
            }
        }
    }

    /// Executes a PiM-enabled instruction with an explicit memory-side
    /// offload hint, bypassing the PMU locality monitor. This models (i)
    /// fully offloaded PiM applications (e.g. the read-mapping victim,
    /// whose seeding is offloaded wholesale, §4.3) and (ii) attackers that
    /// have already arranged to defeat the monitor.
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn pim_op_direct(&mut self, agent: AgentId, va: VirtAddr) -> Result<PimInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let out = self
            .pei
            .execute_memory_side(&mut self.backend, pa, start, agent.0)?;
        let latency = tlb_lat + out.latency;
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(PimInfo {
            latency,
            site: ExecSite::MemorySide,
            kind: out.kind,
        })
    }

    /// Executes a masked RowClone: copies row chunks from the range at
    /// `src_va` to the range at `dst_va` for every set mask bit (§4.2).
    /// Both ranges must come from [`Engine::alloc_bank_stripe`] so that
    /// they are physically contiguous.
    ///
    /// # Errors
    ///
    /// Propagates translation, validation and backend errors.
    pub fn rowclone(
        &mut self,
        agent: AgentId,
        src_va: VirtAddr,
        dst_va: VirtAddr,
        mask: u64,
    ) -> Result<RowCloneInfo> {
        let (src, src_lat) = self.translate(agent, src_va)?;
        let (dst, dst_lat) = self.translate(agent, dst_va)?;
        let tlb_lat = src_lat + dst_lat;
        let start = self.now(agent) + tlb_lat;
        let out = self
            .rc
            .execute(&mut self.backend, src, dst, mask, start, agent.0)?;
        let latency = tlb_lat + out.latency;
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(RowCloneInfo {
            latency,
            per_bank: out.per_bank,
        })
    }

    fn run_prefetchers(&mut self, va: VirtAddr, pa: PhysAddr, missed: bool, now: Cycles) {
        if !self.prefetchers_enabled {
            return;
        }
        let ip = va.page_number(); // stream id proxy
        let mut reqs = self.ip_prefetcher.observe(ip, pa, missed);
        reqs.extend(self.streamer.observe(ip, pa, missed));
        for r in reqs {
            // Prefetches fill caches and touch DRAM rows (noise).
            if self
                .backend
                .service(&MemRequest::load(r.addr, now, NOISE_ACTOR))
                .is_ok()
            {
                let _ = self.caches.load(r.addr);
            }
        }
    }
}
