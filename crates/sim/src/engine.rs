//! The generic simulation core: per-agent clocks, TLBs, page tables and
//! caches over a pluggable [`MemoryBackend`].
//!
//! [`Engine`] owns everything *above* main memory; the backend underneath
//! it classifies and times every [`MemRequest`] the engine routes down
//! (demand traffic, memory-side PiM, RowClone, prefetcher and noise
//! accesses). The paper's Table 2 machine is the instantiation with the
//! default controller backend — see [`crate::system::System`].

use impact_cache::{CacheHierarchy, HitLevel, IpStridePrefetcher, Prefetcher, StreamerPrefetcher};
use impact_core::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use impact_core::config::SystemConfig;
use impact_core::engine::{MemRequest, MemoryBackend};
use impact_core::error::Result;
use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;
use impact_dram::RowBufferKind;
use impact_pim::pei::{ExecSite, PeiEngine};
use impact_pim::rowclone::RowCloneEngine;

use crate::memory::{FrameAllocator, PageTable};
use crate::noise::{NoiseInjector, NOISE_ACTOR};
use crate::tlb::Tlb;

/// Identifier of a co-simulated agent (thread/process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentId(pub u32);

/// Simulation-harness timing parameters that are not part of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Cost of a serialized `cpuid; rdtscp` measurement pair.
    pub timer_overhead: Cycles,
    /// Cost of a `memory_fence` (Listing 1/2 use one per batch).
    pub fence_overhead: Cycles,
    /// Cost of one user-space semaphore operation.
    pub sync_overhead: Cycles,
    /// Software-stack overhead of one DMA-engine transfer (§5.2.2: context
    /// switches and OS instructions make the DMA attack ~10× slower than
    /// IMPACT-PnM).
    pub dma_overhead: Cycles,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            timer_overhead: Cycles(8),
            fence_overhead: Cycles(20),
            sync_overhead: Cycles(45),
            dma_overhead: Cycles(1800),
        }
    }
}

/// Result of a cached load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// End-to-end latency observed by the agent.
    pub latency: Cycles,
    /// Cache level that served the access.
    pub level: HitLevel,
    /// Row-buffer classification if the access reached DRAM.
    pub kind: Option<RowBufferKind>,
}

/// Result of a PiM-enabled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimInfo {
    /// End-to-end latency observed by the agent.
    pub latency: Cycles,
    /// Where the PMU executed the PEI.
    pub site: ExecSite,
    /// Row-buffer classification for memory-side execution.
    pub kind: Option<RowBufferKind>,
}

/// Result of a masked RowClone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowCloneInfo {
    /// End-to-end latency of the masked operation.
    pub latency: Cycles,
    /// Per-bank classifications and latencies.
    pub per_bank: Vec<(usize, RowBufferKind, Cycles)>,
}

/// One timed PEI probe out of [`Engine::pim_probe_burst`]: what the
/// probing agent's serialized timestamp pair measured, plus the
/// ground-truth classification for test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// `t1 - t0` of the emulated `rdtscp` pair around the probe.
    pub measured: u64,
    /// Row-buffer classification when the PEI executed memory-side.
    pub kind: Option<RowBufferKind>,
    /// Where the PMU executed the probe.
    pub site: ExecSite,
}

/// The simulation core, generic over the memory engine underneath it.
///
/// See the crate-level docs for the co-simulation model. Most users want
/// [`crate::system::System`], the instantiation with the default
/// [`impact_memctrl::MemoryController`] backend.
pub struct Engine<B: MemoryBackend> {
    cfg: SystemConfig,
    params: SimParams,
    caches: CacheHierarchy,
    backend: B,
    pei: PeiEngine,
    rc: RowCloneEngine,
    noise: NoiseInjector,
    ip_prefetcher: IpStridePrefetcher,
    streamer: StreamerPrefetcher,
    prefetchers_enabled: bool,
    clocks: Vec<Cycles>,
    tlbs: Vec<Tlb>,
    page_tables: Vec<PageTable>,
    alloc: FrameAllocator,
}

impl<B: MemoryBackend> core::fmt::Debug for Engine<B> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("agents", &self.clocks.len())
            .field("banks", &self.backend.num_banks())
            .field("defense", &self.backend.defense_label())
            .finish()
    }
}

impl<B: MemoryBackend> Engine<B> {
    /// Builds the engine over an explicit backend.
    #[must_use]
    pub fn with_backend(cfg: SystemConfig, params: SimParams, backend: B) -> Engine<B> {
        Engine {
            caches: CacheHierarchy::from_config_with_cacti_llc(&cfg),
            backend,
            pei: PeiEngine::new(cfg.pim),
            rc: RowCloneEngine::new(cfg.dram_geometry.row_bytes),
            noise: NoiseInjector::new(cfg.noise),
            ip_prefetcher: IpStridePrefetcher::new(64),
            streamer: StreamerPrefetcher::new(16, 2),
            prefetchers_enabled: cfg.noise.prefetcher_rate > 0.0 || cfg.noise.ptw_rate > 0.0,
            clocks: Vec::new(),
            tlbs: Vec::new(),
            page_tables: Vec::new(),
            alloc: FrameAllocator::new(cfg.dram_geometry),
            cfg,
            params,
        }
    }

    /// Creates a new agent (thread/process) with its own clock, TLB and
    /// page table.
    pub fn spawn_agent(&mut self) -> AgentId {
        let id = AgentId(self.clocks.len() as u32);
        self.clocks.push(Cycles::ZERO);
        self.tlbs.push(Tlb::new(self.cfg.tlb));
        self.page_tables.push(PageTable::new());
        id
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Harness parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The memory backend (stats, defense hooks).
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Enables or disables the behavioural prefetchers (noise ablation).
    pub fn set_prefetchers_enabled(&mut self, enabled: bool) {
        self.prefetchers_enabled = enabled;
    }

    /// Current clock of `agent`.
    #[must_use]
    pub fn now(&self, agent: AgentId) -> Cycles {
        self.clocks[agent.0 as usize]
    }

    /// Sets the clock (used by synchronization primitives).
    pub fn set_now(&mut self, agent: AgentId, t: Cycles) {
        self.clocks[agent.0 as usize] = t;
    }

    /// Advances the agent's clock by `d` (compute time).
    pub fn advance(&mut self, agent: AgentId, d: Cycles) {
        self.clocks[agent.0 as usize] += d;
    }

    /// Maximum clock across all agents (total elapsed time).
    #[must_use]
    pub fn elapsed(&self) -> Cycles {
        self.clocks.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// Emulated serialized timestamp read (`cpuid; rdtscp`).
    pub fn rdtscp(&mut self, agent: AgentId) -> u64 {
        self.advance(agent, self.params.timer_overhead);
        self.now(agent).0
    }

    /// Emulated memory fence.
    pub fn fence(&mut self, agent: AgentId) {
        self.advance(agent, self.params.fence_overhead);
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocates one DRAM row in `bank` for `agent` and maps it, returning
    /// the virtual base address of the row.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::MassagingFailed`] when the bank is
    /// exhausted.
    pub fn alloc_row_in_bank(&mut self, agent: AgentId, bank: usize) -> Result<VirtAddr> {
        let pa = self.alloc.alloc_row_in_bank(bank)?;
        let pages = self.alloc.pages_per_row();
        Ok(self.map_region(agent, pa, pages))
    }

    /// Allocates `rotations` physically contiguous bank rotations (each
    /// rotation = one row in every bank, ascending flat-bank order) and
    /// maps them, returning the virtual base. This is the allocation the
    /// IMPACT-PuM sender/receiver use for RowClone ranges.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::MassagingFailed`] when the stripe
    /// region is exhausted.
    pub fn alloc_bank_stripe(&mut self, agent: AgentId, rotations: u64) -> Result<VirtAddr> {
        let pa = self.alloc.alloc_bank_stripe(rotations)?;
        let banks = u64::from(self.cfg.dram_geometry.total_banks());
        let bytes = rotations * banks * self.cfg.dram_geometry.row_bytes;
        let pages = bytes / PAGE_SIZE;
        Ok(self.map_region(agent, pa, pages))
    }

    fn map_region(&mut self, agent: AgentId, pa: PhysAddr, pages: u64) -> VirtAddr {
        let pt = &mut self.page_tables[agent.0 as usize];
        let va = pt.reserve_vspace(pages);
        for p in 0..pages {
            pt.map_page(va.page_number() + p, pa.frame_number() + p);
        }
        va
    }

    /// Translates a virtual address for `agent`, charging TLB latency.
    ///
    /// # Errors
    ///
    /// Returns [`impact_core::Error::UnmappedVirtualAddress`] for unmapped
    /// pages.
    pub fn translate(&mut self, agent: AgentId, va: VirtAddr) -> Result<(PhysAddr, Cycles)> {
        let pa = self.page_tables[agent.0 as usize].translate(va)?;
        let look = self.tlbs[agent.0 as usize].translate(va.page_number());
        Ok((pa, look.latency))
    }

    /// Pre-faults and warms the TLB for `pages` pages starting at `va`
    /// (the warm-up the paper performs before attacks, §5.2.1).
    pub fn warm_tlb(&mut self, agent: AgentId, va: VirtAddr, pages: u64) {
        for p in 0..pages {
            self.tlbs[agent.0 as usize].warm(va.page_number() + p);
        }
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Cached load through the full hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors. On a partition-violation
    /// (MPR) the clock has already advanced past the lookup; state is
    /// otherwise untouched.
    pub fn load(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        self.cached_access(agent, va, false)
    }

    /// Cached store (write-allocate).
    ///
    /// # Errors
    ///
    /// As for [`Engine::load`].
    pub fn store(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        self.cached_access(agent, va, true)
    }

    fn cached_access(&mut self, agent: AgentId, va: VirtAddr, write: bool) -> Result<LoadInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let h = if write {
            self.caches.store(pa)
        } else {
            self.caches.load(pa)
        };
        let mut latency = tlb_lat + h.latency;
        let mut kind = None;
        if h.level == HitLevel::Memory {
            let req = if write {
                MemRequest::store(pa, start + h.latency, agent.0)
            } else {
                MemRequest::load(pa, start + h.latency, agent.0)
            };
            let m = self.backend.service(&req)?;
            latency += m.latency;
            kind = Some(m.kind);
        }
        // Dirty victims written back to memory perturb bank state but are
        // off the critical path.
        for _ in 0..h.writebacks {
            let _ = self
                .backend
                .service(&MemRequest::store(pa, start + latency, agent.0));
        }
        self.run_prefetchers(va, pa, h.level == HitLevel::Memory, start + latency);
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(LoadInfo {
            latency,
            level: h.level,
            kind,
        })
    }

    /// Uncached direct memory access (the "direct memory access attack" of
    /// §3.3 and the DMA-engine data path; the DMA software overhead is
    /// charged separately by the attack harness).
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn load_direct(&mut self, agent: AgentId, va: VirtAddr) -> Result<LoadInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let m = self
            .backend
            .service(&MemRequest::load(pa, start, agent.0))?;
        let latency = tlb_lat + m.latency;
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(LoadInfo {
            latency,
            level: HitLevel::Memory,
            kind: Some(m.kind),
        })
    }

    /// Issues a burst of uncached loads through the backend's batched
    /// request path (the DMA-engine data path). All requests enter the
    /// backend when the burst starts — bank queueing orders them — and the
    /// agent's clock advances past the last completion. Noise perturbs the
    /// banks once per burst; per-element `latency` excludes the up-front
    /// TLB charge. This is the amortized alternative to calling
    /// [`Engine::load_direct`] in a loop.
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors; the clock is only
    /// advanced when the whole burst succeeds.
    pub fn load_direct_batch(&mut self, agent: AgentId, vas: &[VirtAddr]) -> Result<Vec<LoadInfo>> {
        if vas.is_empty() {
            // No accesses happened, so no noise either — a zero-length
            // burst must leave the simulation state untouched, like a
            // zero-iteration `load_direct` loop.
            return Ok(Vec::new());
        }
        let mut tlb_total = Cycles::ZERO;
        let mut pas = Vec::with_capacity(vas.len());
        for &va in vas {
            let (pa, tlb_lat) = self.translate(agent, va)?;
            tlb_total += tlb_lat;
            pas.push(pa);
        }
        let start = self.now(agent) + tlb_total;
        let reqs: Vec<MemRequest> = pas
            .into_iter()
            .map(|pa| MemRequest::load(pa, start, agent.0))
            .collect();
        let resps = self.backend.service_batch(&reqs)?;
        let mut end = start;
        let infos = resps
            .into_iter()
            .map(|m| {
                end = end.max(m.completed_at);
                LoadInfo {
                    latency: m.latency,
                    level: HitLevel::Memory,
                    kind: Some(m.kind),
                }
            })
            .collect();
        self.noise.perturb(&mut self.backend, end);
        self.set_now(agent, end);
        Ok(infos)
    }

    /// Executes `clflush` for a line: invalidates it everywhere; a dirty
    /// copy pays the write-back to DRAM on the critical path (§3.2).
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn clflush(&mut self, agent: AgentId, va: VirtAddr) -> Result<Cycles> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let (probe_lat, dirty) = self.caches.clflush(pa);
        let mut latency = tlb_lat + probe_lat;
        if dirty {
            let wb =
                self.backend
                    .service(&MemRequest::store(pa, self.now(agent) + latency, agent.0))?;
            latency += wb.latency;
        }
        self.advance(agent, latency);
        Ok(latency)
    }

    /// Executes a PiM-enabled instruction (`pim_add`-style) on `va`,
    /// letting the PMU locality monitor choose the execution site (§4.1).
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn pim_op(&mut self, agent: AgentId, va: VirtAddr) -> Result<PimInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        match self.pei.decide(pa) {
            ExecSite::Host => {
                // Host-side PCU: PEI overhead + cache path.
                let h = self.caches.load(pa);
                let mut latency = tlb_lat + Cycles(self.cfg.pim.pei_overhead_cycles) + h.latency;
                let mut kind = None;
                if h.level == HitLevel::Memory {
                    let m =
                        self.backend
                            .service(&MemRequest::load(pa, start + latency, agent.0))?;
                    latency += m.latency;
                    kind = Some(m.kind);
                }
                self.noise.perturb(&mut self.backend, start + latency);
                self.advance(agent, latency);
                Ok(PimInfo {
                    latency,
                    site: ExecSite::Host,
                    kind,
                })
            }
            ExecSite::MemorySide => {
                let out = self
                    .pei
                    .execute_memory_side(&mut self.backend, pa, start, agent.0)?;
                let latency = tlb_lat + out.latency;
                self.noise.perturb(&mut self.backend, start + latency);
                self.advance(agent, latency);
                Ok(PimInfo {
                    latency,
                    site: ExecSite::MemorySide,
                    kind: out.kind,
                })
            }
        }
    }

    /// Executes a PiM-enabled instruction with an explicit memory-side
    /// offload hint, bypassing the PMU locality monitor. This models (i)
    /// fully offloaded PiM applications (e.g. the read-mapping victim,
    /// whose seeding is offloaded wholesale, §4.3) and (ii) attackers that
    /// have already arranged to defeat the monitor.
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors.
    pub fn pim_op_direct(&mut self, agent: AgentId, va: VirtAddr) -> Result<PimInfo> {
        let (pa, tlb_lat) = self.translate(agent, va)?;
        let start = self.now(agent) + tlb_lat;
        let out = self
            .pei
            .execute_memory_side(&mut self.backend, pa, start, agent.0)?;
        let latency = tlb_lat + out.latency;
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(PimInfo {
            latency,
            site: ExecSite::MemorySide,
            kind: out.kind,
        })
    }

    // ------------------------------------------------------------------
    // Batched probe paths (attack hot loops)
    // ------------------------------------------------------------------
    //
    // The attacks' inner loops reduce to bursts of PEI probes over
    // distinct banks. The burst methods below service such a burst through
    // the backend's amortized `service_batch` path while remaining
    // BIT-IDENTICAL to the equivalent serial loop: same responses, same
    // clock evolution, same TLB/monitor/backend state. The fast path only
    // engages when that equivalence is provable —
    //
    //   * the backend reports `probe_burst_safe()` (scalar servicing is
    //     arrival-time invariant and infallible for in-range addresses),
    //   * noise injection is disabled (its RNG draws interleave with
    //     probes in the serial loop),
    //   * every probe maps to a distinct bank that is idle at burst start
    //     (so no request ever queues, in either formulation), and
    //   * (monitored bursts) the PMU would send every probe memory-side.
    //
    // Otherwise the methods fall back to the serial per-probe remainder,
    // so callers can use them unconditionally. Translations are hoisted
    // out of the per-probe loop in both paths; this is invisible because
    // nothing between the probes of one burst touches the TLB or page
    // table. (The only observable difference from a literal serial loop
    // is on *error*: a burst whose k-th translation fails performs no
    // probe at all, where the serial loop would have completed the first
    // k-1.) Note the fast path leaves each probed bank's busy-until at
    // (burst start + latency), earlier than the serial loop's chained
    // completions; since the issuing agent's clock ends past every serial
    // completion and banks are only re-touched at or after that clock
    // (the attacks' semaphore discipline), the difference is
    // unobservable.

    /// True when a burst over the translated `probes` may take the
    /// batched fast path for `agent` — see the invariants above.
    fn burst_eligible(
        &self,
        agent: AgentId,
        probes: &[(PhysAddr, Cycles)],
        monitored: bool,
    ) -> bool {
        let ncfg = self.noise.config();
        if ncfg.prefetcher_rate > 0.0 || ncfg.ptw_rate > 0.0 {
            return false;
        }
        if !self.backend.probe_burst_safe() {
            return false;
        }
        let now = self.now(agent);
        let num_banks = self.backend.num_banks();
        // Bank-distinctness scratch: a bitmask for ordinary geometries, a
        // heap set only for very wide devices.
        let mut mask = 0u128;
        let mut wide = Vec::new();
        if num_banks > 128 {
            wide = vec![false; num_banks];
        }
        for &(pa, _) in probes {
            let Some(bank) = self.backend.bank_of(pa) else {
                return false;
            };
            if bank >= num_banks {
                return false;
            }
            let dup = if num_banks <= 128 {
                let bit = 1u128 << bank;
                let d = mask & bit != 0;
                mask |= bit;
                d
            } else {
                let d = wide[bank];
                wide[bank] = true;
                d
            };
            if dup || self.backend.bank_ready_at(bank) > now {
                return false;
            }
            if monitored && self.pei.peek_site(pa) == ExecSite::Host {
                return false;
            }
        }
        true
    }

    /// The serial remainder of one probe after translation: exactly
    /// [`Engine::pim_op`] (monitored) or [`Engine::pim_op_direct`]
    /// (not) minus the translate.
    fn pim_op_translated(
        &mut self,
        agent: AgentId,
        pa: PhysAddr,
        tlb_lat: Cycles,
        monitored: bool,
    ) -> Result<PimInfo> {
        let start = self.now(agent) + tlb_lat;
        if monitored && self.pei.decide(pa) == ExecSite::Host {
            // Host-side PCU: PEI overhead + cache path.
            let h = self.caches.load(pa);
            let mut latency = tlb_lat + Cycles(self.cfg.pim.pei_overhead_cycles) + h.latency;
            let mut kind = None;
            if h.level == HitLevel::Memory {
                let m = self
                    .backend
                    .service(&MemRequest::load(pa, start + latency, agent.0))?;
                latency += m.latency;
                kind = Some(m.kind);
            }
            self.noise.perturb(&mut self.backend, start + latency);
            self.advance(agent, latency);
            return Ok(PimInfo {
                latency,
                site: ExecSite::Host,
                kind,
            });
        }
        let out = self
            .pei
            .execute_memory_side(&mut self.backend, pa, start, agent.0)?;
        let latency = tlb_lat + out.latency;
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(PimInfo {
            latency,
            site: ExecSite::MemorySide,
            kind: out.kind,
        })
    }

    /// Burst body shared by every probe flavor: fast path (one
    /// `service_batch`) when provably equivalent, serial remainder loop
    /// otherwise. `timed` charges the serialized-timestamp pair around
    /// each probe, as the receiver measurement loops do.
    fn pim_burst_translated(
        &mut self,
        agent: AgentId,
        probes: &[(PhysAddr, Cycles)],
        monitored: bool,
        timed: bool,
    ) -> Result<Vec<PimInfo>> {
        let timers = if timed {
            self.params.timer_overhead * 2
        } else {
            Cycles::ZERO
        };
        if self.burst_eligible(agent, probes, monitored) {
            if monitored {
                for &(pa, _) in probes {
                    // Eligibility peeked MemorySide for every distinct
                    // line; intermediate observes cannot flip a distinct
                    // line to high-locality, so the committed decisions
                    // agree.
                    let site = self.pei.decide(pa);
                    debug_assert_eq!(site, ExecSite::MemorySide);
                }
            }
            let overhead =
                Cycles(self.cfg.pim.pei_overhead_cycles + self.cfg.pim.pcu_transport_cycles);
            let at = self.now(agent);
            let reqs: Vec<MemRequest> = probes
                .iter()
                .map(|&(pa, _)| MemRequest::pim(pa, at, agent.0))
                .collect();
            let resps = self.backend.service_batch(&reqs)?;
            let mut infos = Vec::with_capacity(probes.len());
            for (&(_, tlb_lat), m) in probes.iter().zip(resps) {
                let latency = tlb_lat + overhead + m.latency;
                self.advance(agent, latency + timers);
                infos.push(PimInfo {
                    latency,
                    site: ExecSite::MemorySide,
                    kind: Some(m.kind),
                });
            }
            Ok(infos)
        } else {
            let mut out = Vec::with_capacity(probes.len());
            for &(pa, tlb_lat) in probes {
                if timed {
                    self.advance(agent, self.params.timer_overhead);
                }
                let info = self.pim_op_translated(agent, pa, tlb_lat, monitored)?;
                if timed {
                    self.advance(agent, self.params.timer_overhead);
                }
                out.push(info);
            }
            Ok(out)
        }
    }

    /// Translates every probe VA in order, charging the TLB exactly as a
    /// per-probe loop would.
    fn translate_burst(
        &mut self,
        agent: AgentId,
        vas: &[VirtAddr],
    ) -> Result<Vec<(PhysAddr, Cycles)>> {
        let mut probes = Vec::with_capacity(vas.len());
        for &va in vas {
            probes.push(self.translate(agent, va)?);
        }
        Ok(probes)
    }

    /// Issues a burst of *timed, monitored* PEI probes — the receiver hot
    /// loop of the IMPACT-PnM covert channel (Listing 1, Step 3). For each
    /// `va` this is bit-identical to
    ///
    /// ```text
    /// t0 = rdtscp(); pim_op(va); t1 = rdtscp(); measured = t1 - t0;
    /// ```
    ///
    /// but when the burst invariants hold (see the module comments) all
    /// probes are serviced through one amortized
    /// [`MemoryBackend::service_batch`] call.
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors. A failed translation
    /// aborts the burst before any probe is issued.
    pub fn pim_probe_burst(
        &mut self,
        agent: AgentId,
        vas: &[VirtAddr],
    ) -> Result<Vec<ProbeSample>> {
        let probes = self.translate_burst(agent, vas)?;
        let timer = self.params.timer_overhead.0;
        let infos = self.pim_burst_translated(agent, &probes, true, true)?;
        Ok(infos
            .into_iter()
            .map(|i| ProbeSample {
                measured: i.latency.0 + timer,
                kind: i.kind,
                site: i.site,
            })
            .collect())
    }

    /// Issues a burst of *untimed, explicitly offloaded* PEIs — the
    /// row-opening initialization sweeps both attacks perform. For each
    /// `va` this is bit-identical to calling [`Engine::pim_op_direct`],
    /// with the same batched fast path as [`Engine::pim_probe_burst`].
    ///
    /// # Errors
    ///
    /// Propagates translation and backend errors. A failed translation
    /// aborts the burst before any probe is issued.
    pub fn pim_open_burst(&mut self, agent: AgentId, vas: &[VirtAddr]) -> Result<Vec<PimInfo>> {
        let probes = self.translate_burst(agent, vas)?;
        self.pim_burst_translated(agent, &probes, false, false)
    }

    /// [`Engine::pim_open_burst`] over probes the caller has already
    /// translated with [`Engine::translate`] (each entry is the physical
    /// address plus the TLB latency that translation charged). Callers
    /// that must interleave translation with allocation — e.g. the
    /// side-channel attacker warming one row per bank — use this to keep
    /// the serial TLB access order while still batching the DRAM probes.
    /// Bit-identical to the remainder of [`Engine::pim_op_direct`] per
    /// probe.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn pim_open_burst_translated(
        &mut self,
        agent: AgentId,
        probes: &[(PhysAddr, Cycles)],
    ) -> Result<Vec<PimInfo>> {
        self.pim_burst_translated(agent, probes, false, false)
    }

    /// Executes a masked RowClone: copies row chunks from the range at
    /// `src_va` to the range at `dst_va` for every set mask bit (§4.2).
    /// Both ranges must come from [`Engine::alloc_bank_stripe`] so that
    /// they are physically contiguous.
    ///
    /// # Errors
    ///
    /// Propagates translation, validation and backend errors.
    pub fn rowclone(
        &mut self,
        agent: AgentId,
        src_va: VirtAddr,
        dst_va: VirtAddr,
        mask: u64,
    ) -> Result<RowCloneInfo> {
        let (src, src_lat) = self.translate(agent, src_va)?;
        let (dst, dst_lat) = self.translate(agent, dst_va)?;
        let tlb_lat = src_lat + dst_lat;
        let start = self.now(agent) + tlb_lat;
        let out = self
            .rc
            .execute(&mut self.backend, src, dst, mask, start, agent.0)?;
        let latency = tlb_lat + out.latency;
        self.noise.perturb(&mut self.backend, start + latency);
        self.advance(agent, latency);
        Ok(RowCloneInfo {
            latency,
            per_bank: out.per_bank,
        })
    }

    #[cfg(test)]
    pub(crate) fn burst_would_commit(
        &self,
        agent: AgentId,
        vas: &[VirtAddr],
        monitored: bool,
    ) -> bool {
        let pt = &self.page_tables[agent.0 as usize];
        let Ok(probes) = vas
            .iter()
            .map(|&va| pt.translate(va).map(|pa| (pa, Cycles::ZERO)))
            .collect::<Result<Vec<_>>>()
        else {
            return false;
        };
        self.burst_eligible(agent, &probes, monitored)
    }

    fn run_prefetchers(&mut self, va: VirtAddr, pa: PhysAddr, missed: bool, now: Cycles) {
        if !self.prefetchers_enabled {
            return;
        }
        let ip = va.page_number(); // stream id proxy
        let mut reqs = self.ip_prefetcher.observe(ip, pa, missed);
        reqs.extend(self.streamer.observe(ip, pa, missed));
        for r in reqs {
            // Prefetches fill caches and touch DRAM rows (noise).
            if self
                .backend
                .service(&MemRequest::load(r.addr, now, NOISE_ACTOR))
                .is_ok()
            {
                let _ = self.caches.load(r.addr);
            }
        }
    }
}

/// A point-in-time image of an entire [`Engine`], generic over the
/// backend's own snapshot type `S` (`B::Snap` for the engine's backend
/// `B`).
///
/// Every field of [`Engine`] is represented here: the bulk state (bank
/// columns, cache tag arrays, page-table radixes, controller ACT/blocking
/// tables) is shared with the live engine through `Arc`s inside the cloned
/// components, so capturing — and holding — a snapshot is O(metadata), not
/// O(state). The CI `impact-analyze` invariant pass checks this struct and
/// [`Engine::snapshot`] stay in sync with the `Engine` field list.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<S> {
    cfg: SystemConfig,
    params: SimParams,
    caches: CacheHierarchy,
    backend: S,
    pei: PeiEngine,
    rc: RowCloneEngine,
    noise: NoiseInjector,
    ip_prefetcher: IpStridePrefetcher,
    streamer: StreamerPrefetcher,
    prefetchers_enabled: bool,
    clocks: Vec<Cycles>,
    tlbs: Vec<Tlb>,
    page_tables: Vec<PageTable>,
    alloc: FrameAllocator,
}

impl<S> EngineSnapshot<S> {
    /// The configuration the snapshotted engine was built with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The backend component of the snapshot.
    #[must_use]
    pub fn backend(&self) -> &S {
        &self.backend
    }
}

/// Whole-system snapshots: every layer above memory (caches, TLBs, page
/// tables, clocks, prefetchers, noise RNG, PMU monitor) plus the backend's
/// own snapshot. `fork` is the sweep-runner primitive: warm one engine
/// through the expensive common prefix, then fork a cheap copy-on-write
/// child per sweep point.
impl<B: MemoryBackend + Snapshot> Snapshot for Engine<B> {
    type Snap = EngineSnapshot<B::Snap>;

    fn snapshot(&self) -> EngineSnapshot<B::Snap> {
        // Telemetry event only — the snapshot itself carries no
        // telemetry state (the obs registry is process-global and never
        // an engine field).
        impact_obs::registry().engine_snapshots.incr();
        EngineSnapshot {
            cfg: self.cfg.clone(),
            params: self.params,
            caches: self.caches.snapshot(),
            backend: self.backend.snapshot(),
            pei: self.pei.clone(),
            rc: self.rc,
            noise: self.noise.clone(),
            ip_prefetcher: self.ip_prefetcher.clone(),
            streamer: self.streamer.clone(),
            prefetchers_enabled: self.prefetchers_enabled,
            clocks: self.clocks.clone(),
            tlbs: self.tlbs.clone(),
            page_tables: self.page_tables.clone(),
            alloc: self.alloc.clone(),
        }
    }

    fn restore(&mut self, snap: &EngineSnapshot<B::Snap>) {
        self.cfg = snap.cfg.clone();
        self.params = snap.params;
        self.caches.restore(&snap.caches);
        self.backend.restore(&snap.backend);
        self.pei = snap.pei.clone();
        self.rc = snap.rc;
        self.noise = snap.noise.clone();
        self.ip_prefetcher = snap.ip_prefetcher.clone();
        self.streamer = snap.streamer.clone();
        self.prefetchers_enabled = snap.prefetchers_enabled;
        self.clocks = snap.clocks.clone();
        self.tlbs = snap.tlbs.clone();
        self.page_tables = snap.page_tables.clone();
        self.alloc = snap.alloc.clone();
    }

    fn fork(&self) -> Engine<B> {
        impact_obs::registry().engine_forks.incr();
        Engine {
            cfg: self.cfg.clone(),
            params: self.params,
            caches: self.caches.fork(),
            backend: self.backend.fork(),
            pei: self.pei.clone(),
            rc: self.rc,
            noise: self.noise.clone(),
            ip_prefetcher: self.ip_prefetcher.clone(),
            streamer: self.streamer.clone(),
            prefetchers_enabled: self.prefetchers_enabled,
            clocks: self.clocks.clone(),
            tlbs: self.tlbs.clone(),
            page_tables: self.page_tables.clone(),
            alloc: self.alloc.clone(),
        }
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;
    use crate::system::{ShardedSystem, System, TracedSystem};
    use impact_core::config::SystemConfig;
    use impact_core::trace::TraceEvent;
    use impact_memctrl::{ActConfig, Defense, PeriodicBlock};

    /// Builds a system, one agent, and one probe line per bank.
    fn probe_setup<B>(mut sys: Engine<B>, banks: usize) -> (Engine<B>, AgentId, Vec<VirtAddr>)
    where
        B: impact_memctrl::ControllerBackend,
    {
        let a = sys.spawn_agent();
        let mut vas = Vec::new();
        for bank in 0..banks {
            let va = sys.alloc_row_in_bank(a, bank).unwrap();
            sys.warm_tlb(a, va, 2);
            vas.push(va);
        }
        (sys, a, vas)
    }

    /// The literal serial loop `pim_probe_burst` must match.
    fn serial_probe_loop<B: impact_core::engine::MemoryBackend>(
        sys: &mut Engine<B>,
        agent: AgentId,
        vas: &[VirtAddr],
    ) -> Vec<ProbeSample> {
        vas.iter()
            .map(|&va| {
                let t0 = sys.rdtscp(agent);
                let info = sys.pim_op(agent, va).unwrap();
                let t1 = sys.rdtscp(agent);
                ProbeSample {
                    measured: t1 - t0,
                    kind: info.kind,
                    site: info.site,
                }
            })
            .collect()
    }

    fn assert_probe_burst_matches_serial(configure: impl Fn(&mut System)) {
        let make = || {
            let mut s = System::new(SystemConfig::paper_table2());
            configure(&mut s);
            s
        };
        let (mut a_sys, a, vas) = probe_setup(make(), 8);
        let (mut b_sys, b, vas_b) = probe_setup(make(), 8);
        assert_eq!(vas, vas_b);
        for _ in 0..3 {
            // Successive bursts probe fresh lines, like the PnM receiver.
            let off: Vec<VirtAddr> = vas.iter().map(|&v| v + 64).collect();
            let burst = a_sys.pim_probe_burst(a, &off).unwrap();
            let serial = serial_probe_loop(&mut b_sys, b, &off);
            assert_eq!(burst, serial);
            assert_eq!(a_sys.now(a), b_sys.now(b), "clock diverged");
            assert_eq!(
                a_sys.backend().backend_stats(),
                b_sys.backend().backend_stats()
            );
        }
        assert_eq!(a_sys.dram_totals(), b_sys.dram_totals());
    }

    #[test]
    fn probe_burst_bit_identical_noiseless() {
        assert_probe_burst_matches_serial(|s| {
            *s = System::new(SystemConfig::paper_table2_noiseless());
        });
    }

    #[test]
    fn probe_burst_bit_identical_under_noise_and_defenses() {
        // Noise, ACT and periodic blocking force the serial fallback; CTD
        // stays on the fast path. All must match the serial loop exactly.
        assert_probe_burst_matches_serial(|_| {});
        assert_probe_burst_matches_serial(|s| s.set_defense(Defense::Ctd));
        assert_probe_burst_matches_serial(|s| s.set_defense(Defense::Act(ActConfig::aggressive())));
        assert_probe_burst_matches_serial(|s| {
            s.set_periodic_block(Some(PeriodicBlock::rfm_paper_default()));
        });
    }

    #[test]
    fn fast_path_engages_exactly_when_provable() {
        let (sys, a, vas) = probe_setup(System::new(SystemConfig::paper_table2_noiseless()), 8);
        assert!(sys.burst_would_commit(a, &vas, true));

        // Duplicate banks: not provable.
        let mut dup = vas.clone();
        dup.push(vas[0]);
        assert!(!sys.burst_would_commit(a, &dup, true));

        // Noise on: not provable.
        let (nsys, na, nvas) = probe_setup(System::new(SystemConfig::paper_table2()), 8);
        assert!(!nsys.burst_would_commit(na, &nvas, true));

        // ACT (epoch-based padding): not provable.
        let (mut dsys, da, dvas) =
            probe_setup(System::new(SystemConfig::paper_table2_noiseless()), 8);
        dsys.set_defense(Defense::Act(ActConfig::mild()));
        assert!(!dsys.burst_would_commit(da, &dvas, true));
        // CTD pads to a constant: provable again.
        dsys.set_defense(Defense::Ctd);
        assert!(dsys.burst_would_commit(da, &dvas, true));

        // Unmapped page: not provable.
        assert!(!sys.burst_would_commit(a, &[VirtAddr(0xdead_b000)], true));
    }

    #[test]
    fn fast_path_uses_one_service_batch() {
        let (mut sys, a, vas) = probe_setup(
            TracedSystem::traced(SystemConfig::paper_table2_noiseless()),
            8,
        );
        let before = sys.trace_log().len();
        sys.pim_probe_burst(a, &vas).unwrap();
        let new: Vec<_> = sys.trace_log()[before..].to_vec();
        assert_eq!(new.len(), 1, "expected exactly one batch event: {new:?}");
        assert!(matches!(&new[0], TraceEvent::Batch(b) if b.len() == 8));
    }

    #[test]
    fn open_burst_matches_pim_op_direct() {
        let make = || System::new(SystemConfig::paper_table2());
        let (mut a_sys, a, vas) = probe_setup(make(), 8);
        let (mut b_sys, b, _) = probe_setup(make(), 8);
        let burst = a_sys.pim_open_burst(a, &vas).unwrap();
        let serial: Vec<PimInfo> = vas
            .iter()
            .map(|&va| b_sys.pim_op_direct(b, va).unwrap())
            .collect();
        assert_eq!(burst, serial);
        assert_eq!(a_sys.now(a), b_sys.now(b));

        // And pretranslated probes match the pim_op_direct remainder.
        let make2 = || System::new(SystemConfig::paper_table2_noiseless());
        let (mut c_sys, c, cvas) = probe_setup(make2(), 8);
        let (mut d_sys, d, dvas) = probe_setup(make2(), 8);
        let probes: Vec<(PhysAddr, Cycles)> = cvas
            .iter()
            .map(|&va| c_sys.translate(c, va).unwrap())
            .collect();
        let burst = c_sys.pim_open_burst_translated(c, &probes).unwrap();
        let serial: Vec<PimInfo> = dvas
            .iter()
            .map(|&va| d_sys.pim_op_direct(d, va).unwrap())
            .collect();
        assert_eq!(burst, serial);
        assert_eq!(c_sys.now(c), d_sys.now(d));
    }

    #[test]
    fn bursts_work_on_every_backend() {
        let cfg = SystemConfig::paper_table2_noiseless;
        let (mut mono, a, vas) = probe_setup(System::new(cfg()), 8);
        let expected = mono.pim_probe_burst(a, &vas).unwrap();
        let (mut sharded, sa, svas) = probe_setup(ShardedSystem::sharded(cfg(), 4), 8);
        assert!(sharded.burst_would_commit(sa, &svas, true));
        assert_eq!(sharded.pim_probe_burst(sa, &svas).unwrap(), expected);
        let (mut traced, ta, tvas) = probe_setup(TracedSystem::traced(cfg()), 8);
        assert_eq!(traced.pim_probe_burst(ta, &tvas).unwrap(), expected);
    }

    #[test]
    fn empty_burst_is_a_noop() {
        let (mut sys, a, _) = probe_setup(System::new(SystemConfig::paper_table2()), 2);
        let before = sys.now(a);
        assert!(sys.pim_probe_burst(a, &[]).unwrap().is_empty());
        assert!(sys.pim_open_burst(a, &[]).unwrap().is_empty());
        assert!(sys.pim_open_burst_translated(a, &[]).unwrap().is_empty());
        assert_eq!(sys.now(a), before);
    }
}
