//! [`MemoryBackend`] implementation for [`MemoryController`] — the default
//! engine behind the whole-system simulator — plus the
//! [`ControllerBackend`] extension trait every controller-flavored backend
//! (monolithic, sharded, tracing-wrapped) implements so the layers above
//! can install defenses and read DRAM statistics without knowing which
//! backend is underneath.

use impact_core::addr::PhysAddr;
use impact_core::engine::{BackendStats, MemRequest, MemResponse, MemoryBackend};
use impact_core::error::Result;
use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;
use impact_core::trace::{TraceSnap, TracingBackend};
use impact_dram::{BankStats, RowPolicy};

use crate::controller::{CtrlSnap, MemoryController, PeriodicBlock};
use crate::defense::Defense;
use crate::sharded::{ShardedController, ShardedSnap};

/// Type-erased backend snapshot: the object-safe currency of
/// [`ControllerBackend::state_snapshot`] /
/// [`ControllerBackend::state_restore`], so `Box<dyn ControllerBackend>`
/// (the runtime-selected backend every experiment runs on) snapshots and
/// forks exactly like a statically-typed backend. The `Traced` variant
/// nests recursively: a tracing proxy wraps its inner backend's snapshot.
#[derive(Debug, Clone)]
pub enum BackendSnap {
    /// Snapshot of a monolithic [`MemoryController`].
    Mono(CtrlSnap),
    /// Snapshot of a [`ShardedController`].
    Sharded(ShardedSnap),
    /// Snapshot of a [`TracingBackend`] around any controller backend.
    Traced(Box<TraceSnap<BackendSnap>>),
}

impl MemoryBackend for MemoryController {
    fn service(&mut self, req: &MemRequest) -> Result<MemResponse> {
        MemoryController::service(self, req)
    }

    fn service_batch(&mut self, reqs: &[MemRequest]) -> Result<Vec<MemResponse>> {
        MemoryController::service_batch(self, reqs)
    }

    fn backend_stats(&self) -> BackendStats {
        self.stats().clone()
    }

    fn defense_label(&self) -> &'static str {
        self.defense().name()
    }

    fn worst_case_latency(&self) -> Cycles {
        MemoryController::worst_case_latency(self)
    }

    fn num_banks(&self) -> usize {
        self.dram().num_banks()
    }

    fn rows_per_bank(&self) -> u64 {
        self.dram().geometry().rows_per_bank
    }

    fn inject_row_activation(&mut self, bank: usize, row: u64, at: Cycles, actor: u32) {
        self.dram_mut().access_as(bank, row, at, actor);
    }

    fn probe_burst_safe(&self) -> bool {
        // Scalar servicing is arrival-invariant and infallible (for
        // in-range addresses) exactly when nothing consults absolute time
        // or rejects requests: no periodic blocking epochs, no epoch-based
        // (ACT) padding, no partition rejections (MPR) and no idle-timeout
        // row policy. CTD pads to a constant, CRP only switches the row
        // policy to closed — both stay invariant.
        self.periodic_block().is_none()
            && matches!(self.defense(), Defense::None | Defense::Crp | Defense::Ctd)
            && !matches!(
                self.dram().policy(),
                RowPolicy::Open {
                    idle_timeout: Some(_)
                }
            )
    }

    fn bank_of(&self, addr: PhysAddr) -> Option<usize> {
        if self.check_capacity(addr).is_err() {
            None
        } else {
            Some(self.mapping().flat_bank(addr))
        }
    }

    fn bank_ready_at(&self, bank: usize) -> Cycles {
        self.dram().bank(bank).busy_until()
    }
}

/// A memory backend with memory-controller management hooks: defense
/// installation, periodic blocking, row-policy ablations and DRAM-level
/// statistics. The simulation engine exposes these hooks generically for
/// any `Engine<B: ControllerBackend>`, which is what lets experiments run
/// unchanged on the monolithic controller, the sharded controller, or a
/// tracing proxy around either (`Box<dyn ControllerBackend>` also
/// implements the trait, for runtime backend selection).
pub trait ControllerBackend: MemoryBackend {
    /// Installs a timing defense on every underlying controller.
    fn set_defense(&mut self, defense: Defense);

    /// Enables (or disables, with `None`) periodic per-bank blocking.
    fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>);

    /// Switches the DRAM row policy (ablations; defenses override this).
    fn set_row_policy(&mut self, policy: RowPolicy);

    /// DRAM-level statistics aggregated over all banks.
    fn dram_totals(&self) -> BankStats;

    /// Statistics of one flat bank.
    fn dram_bank_stats(&self, bank: usize) -> BankStats;

    /// Deterministic digest of the complete per-bank DRAM state (open
    /// rows, busy-until times, last activators, statistics), folded in
    /// flat-bank order. Two backends — of any kind, on any machine — are
    /// in bit-identical DRAM states iff their digests match; this is the
    /// check `trace_replay` runs after re-servicing a recorded trace.
    fn dram_state_digest(&self) -> u64;

    /// Object-safe [`Snapshot::snapshot`]: captures the backend's
    /// observable state as a type-erased [`BackendSnap`].
    fn state_snapshot(&self) -> BackendSnap;

    /// Object-safe [`Snapshot::restore`]: rewinds the backend to `snap`.
    ///
    /// # Panics
    ///
    /// Panics if `snap` came from a different backend kind or topology.
    fn state_restore(&mut self, snap: &BackendSnap);

    /// Object-safe [`Snapshot::fork`]: a copy-on-write duplicate behind a
    /// fresh box, sharing bulk state with `self` until either side writes.
    fn fork_boxed(&self) -> Box<dyn ControllerBackend>;

    /// Scheduling diagnostics `(parallel_batches, sequential_fallbacks)`:
    /// how many batches this backend dispatched to a worker pool vs.
    /// serviced sequentially despite one. `(0, 0)` for backends without a
    /// pool. These are telemetry, not observable state: they never enter
    /// [`BackendStats`], snapshots, or trace footers, and forks start
    /// from zero. (The process-wide equivalents live in the `impact-obs`
    /// registry; this per-controller view exists so tests can assert
    /// exact counts without cross-test interference.)
    fn scheduling_counts(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl ControllerBackend for MemoryController {
    fn set_defense(&mut self, defense: Defense) {
        MemoryController::set_defense(self, defense);
    }

    fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        MemoryController::set_periodic_block(self, blocking);
    }

    fn set_row_policy(&mut self, policy: RowPolicy) {
        self.dram_mut().set_policy(policy);
    }

    fn dram_totals(&self) -> BankStats {
        self.dram().total_stats()
    }

    fn dram_bank_stats(&self, bank: usize) -> BankStats {
        *self.dram().bank(bank).stats()
    }

    fn dram_state_digest(&self) -> u64 {
        let mut hash = impact_core::hash::FNV_OFFSET;
        for bank in 0..self.dram().num_banks() {
            hash = self.dram().fold_bank_state(bank, hash);
        }
        hash
    }

    fn state_snapshot(&self) -> BackendSnap {
        BackendSnap::Mono(self.snapshot())
    }

    fn state_restore(&mut self, snap: &BackendSnap) {
        match snap {
            BackendSnap::Mono(s) => self.restore(s),
            _ => panic!("backend snapshot kind mismatch: expected Mono"),
        }
    }

    fn fork_boxed(&self) -> Box<dyn ControllerBackend> {
        Box::new(Snapshot::fork(self))
    }
}

impl ControllerBackend for ShardedController {
    fn set_defense(&mut self, defense: Defense) {
        ShardedController::set_defense(self, defense);
    }

    fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        ShardedController::set_periodic_block(self, blocking);
    }

    fn set_row_policy(&mut self, policy: RowPolicy) {
        ShardedController::set_row_policy(self, policy);
    }

    fn dram_totals(&self) -> BankStats {
        ShardedController::dram_totals(self)
    }

    fn dram_bank_stats(&self, bank: usize) -> BankStats {
        *self.sub_for_bank(bank).dram().bank(bank).stats()
    }

    fn dram_state_digest(&self) -> u64 {
        // Fold in *flat-bank* order, not per-shard order, so the digest is
        // comparable with the monolithic controller's.
        let mut hash = impact_core::hash::FNV_OFFSET;
        for bank in 0..MemoryBackend::num_banks(self) {
            hash = self.sub_for_bank(bank).dram().fold_bank_state(bank, hash);
        }
        hash
    }

    fn state_snapshot(&self) -> BackendSnap {
        BackendSnap::Sharded(self.snapshot())
    }

    fn state_restore(&mut self, snap: &BackendSnap) {
        match snap {
            BackendSnap::Sharded(s) => self.restore(s),
            _ => panic!("backend snapshot kind mismatch: expected Sharded"),
        }
    }

    fn fork_boxed(&self) -> Box<dyn ControllerBackend> {
        Box::new(Snapshot::fork(self))
    }

    fn scheduling_counts(&self) -> (u64, u64) {
        ShardedController::scheduling_counts(self)
    }
}

impl<B: ControllerBackend> ControllerBackend for TracingBackend<B> {
    fn set_defense(&mut self, defense: Defense) {
        self.inner_mut().set_defense(defense);
    }

    fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        self.inner_mut().set_periodic_block(blocking);
    }

    fn set_row_policy(&mut self, policy: RowPolicy) {
        self.inner_mut().set_row_policy(policy);
    }

    fn dram_totals(&self) -> BankStats {
        self.inner().dram_totals()
    }

    fn dram_bank_stats(&self, bank: usize) -> BankStats {
        self.inner().dram_bank_stats(bank)
    }

    fn dram_state_digest(&self) -> u64 {
        self.inner().dram_state_digest()
    }

    fn state_snapshot(&self) -> BackendSnap {
        BackendSnap::Traced(Box::new(self.snap_with(self.inner().state_snapshot())))
    }

    fn state_restore(&mut self, snap: &BackendSnap) {
        match snap {
            BackendSnap::Traced(t) => {
                let inner_snap = self.rewind_with(t);
                self.inner_mut().state_restore(inner_snap);
            }
            _ => panic!("backend snapshot kind mismatch: expected Traced"),
        }
    }

    fn fork_boxed(&self) -> Box<dyn ControllerBackend> {
        // The fork's inner backend is type-erased, so the forked proxy is
        // a `TracingBackend<Box<dyn ControllerBackend>>` — observationally
        // identical to the original.
        Box::new(self.fork_with(self.inner().fork_boxed()))
    }

    fn scheduling_counts(&self) -> (u64, u64) {
        self.inner().scheduling_counts()
    }
}

impl<B: ControllerBackend + ?Sized> ControllerBackend for Box<B> {
    fn set_defense(&mut self, defense: Defense) {
        (**self).set_defense(defense);
    }

    fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        (**self).set_periodic_block(blocking);
    }

    fn set_row_policy(&mut self, policy: RowPolicy) {
        (**self).set_row_policy(policy);
    }

    fn dram_totals(&self) -> BankStats {
        (**self).dram_totals()
    }

    fn dram_bank_stats(&self, bank: usize) -> BankStats {
        (**self).dram_bank_stats(bank)
    }

    fn dram_state_digest(&self) -> u64 {
        (**self).dram_state_digest()
    }

    fn state_snapshot(&self) -> BackendSnap {
        (**self).state_snapshot()
    }

    fn state_restore(&mut self, snap: &BackendSnap) {
        (**self).state_restore(snap);
    }

    fn fork_boxed(&self) -> Box<dyn ControllerBackend> {
        (**self).fork_boxed()
    }

    fn scheduling_counts(&self) -> (u64, u64) {
        (**self).scheduling_counts()
    }
}

/// `Box<dyn ControllerBackend>` — the runtime-selected backend every
/// experiment runs on — snapshots through the object-safe hooks, so
/// `Engine<Box<dyn ControllerBackend>>` forks like any statically-typed
/// engine.
impl Snapshot for Box<dyn ControllerBackend> {
    type Snap = BackendSnap;

    fn snapshot(&self) -> BackendSnap {
        (**self).state_snapshot()
    }

    fn restore(&mut self, snap: &BackendSnap) {
        (**self).state_restore(snap);
    }

    fn fork(&self) -> Box<dyn ControllerBackend> {
        (**self).fork_boxed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::PeriodicBlock;
    use crate::defense::{ActConfig, Defense, MprPartition};
    use impact_core::addr::PhysAddr;
    use impact_core::config::SystemConfig;
    use impact_core::engine::RowBufferKind;

    fn controller() -> MemoryController {
        MemoryController::from_config(&SystemConfig::paper_table2())
    }

    /// A request stream touching hits, misses and conflicts across banks.
    fn stream(mc: &MemoryController) -> Vec<MemRequest> {
        let mut reqs = Vec::new();
        let mut at = Cycles(0);
        for i in 0..96u64 {
            let bank = (i % 7) as usize;
            let row = (i / 3) % 5;
            let addr = mc.mapping().compose(bank, row, (i % 4) as u32 * 64);
            reqs.push(MemRequest::load(addr, at, (i % 2) as u32));
            at += Cycles(400);
        }
        reqs
    }

    fn serial(mc: &mut MemoryController, reqs: &[MemRequest]) -> Vec<MemResponse> {
        reqs.iter().map(|r| mc.service(r).unwrap()).collect()
    }

    #[test]
    fn batch_matches_serial_without_defense() {
        let mut a = controller();
        let reqs = stream(&a);
        let mut b = controller();
        assert_eq!(a.service_batch(&reqs).unwrap(), serial(&mut b, &reqs));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn batch_matches_serial_under_every_defense() {
        for defense in [
            Defense::Crp,
            Defense::Ctd,
            Defense::Act(ActConfig::aggressive()),
            Defense::Act(ActConfig::mild()),
        ] {
            let mut a = controller();
            a.set_defense(defense.clone());
            let reqs = stream(&a);
            let mut b = controller();
            b.set_defense(defense.clone());
            assert_eq!(
                a.service_batch(&reqs).unwrap(),
                serial(&mut b, &reqs),
                "defense {}",
                defense.name()
            );
        }
    }

    #[test]
    fn batch_matches_serial_under_periodic_block() {
        let mut a = controller();
        a.set_periodic_block(Some(PeriodicBlock::rfm_paper_default()));
        let reqs = stream(&a);
        let mut b = controller();
        b.set_periodic_block(Some(PeriodicBlock::rfm_paper_default()));
        assert_eq!(a.service_batch(&reqs).unwrap(), serial(&mut b, &reqs));
        assert_eq!(a.stats().blocked, b.stats().blocked);
    }

    #[test]
    fn batch_takes_lean_path_with_mpr() {
        // MPR does not pad latency, so the lean path must still enforce
        // the partition per request.
        let mut mc = controller();
        let mut p = MprPartition::new(16);
        p.assign_round_robin(&[0, 1]);
        mc.set_defense(Defense::Mpr(p));
        let owned = mc.mapping().compose(0, 1, 0);
        let foreign = mc.mapping().compose(1, 1, 0);
        let ok = MemRequest::load(owned, Cycles(0), 0);
        let bad = MemRequest::load(foreign, Cycles(0), 0);
        assert!(mc.service_batch(&[ok]).is_ok());
        assert!(mc.service_batch(&[bad]).is_err());
        assert_eq!(mc.stats().partition_rejects, 1);
    }

    #[test]
    fn rowclone_request_roundtrips() {
        let mut mc = controller();
        let row_bytes = mc.dram().geometry().row_bytes;
        let req = MemRequest::rowclone(
            PhysAddr(0),
            PhysAddr(64 * 16 * row_bytes),
            0xFFFF,
            Cycles(0),
            0,
        );
        let resp = MemoryBackend::service(&mut mc, &req).unwrap();
        assert_eq!(resp.per_bank.len(), 16);
        assert_eq!(resp.bank, 0);
        assert_eq!(resp.kind, RowBufferKind::Miss);
        let max_lane = resp.per_bank.iter().map(|(_, _, l)| *l).max().unwrap();
        assert_eq!(resp.latency, max_lane);
        assert_eq!(mc.backend_stats().rowclones, 1);
    }

    #[test]
    fn rowclone_response_reports_first_set_lane() {
        // Mask with bit 0 clear: the headline (bank, row, kind) must all
        // describe the first *set* lane, not the range base.
        let mut mc = controller();
        let row_bytes = mc.dram().geometry().row_bytes;
        let src = PhysAddr(0);
        let dst = PhysAddr(64 * 16 * row_bytes);
        let req = MemRequest::rowclone(src, dst, 0b100, Cycles(0), 0);
        let resp = mc.service(&req).unwrap();
        assert_eq!(resp.per_bank.len(), 1);
        assert_eq!(resp.bank, 2);
        let lane_src = PhysAddr(2 * row_bytes);
        assert_eq!(resp.row, mc.mapping().map(lane_src).row);
    }

    #[test]
    fn trait_surface_reports_topology_and_defense() {
        let mut mc = controller();
        assert_eq!(MemoryBackend::num_banks(&mc), 16);
        assert!(mc.rows_per_bank() > 0);
        assert_eq!(mc.defense_label(), "None");
        mc.set_defense(Defense::Ctd);
        assert_eq!(mc.defense_label(), "CTD");
        assert_eq!(
            MemoryBackend::worst_case_latency(&mc),
            MemoryController::worst_case_latency(&mc)
        );
    }

    #[test]
    fn dram_state_digest_is_backend_invariant() {
        let cfg = SystemConfig::paper_table2();
        let mut mono = MemoryController::from_config(&cfg);
        let mut sharded = crate::ShardedController::from_config(&cfg, 4);
        let mut traced =
            impact_core::trace::TracingBackend::new(MemoryController::from_config(&cfg));
        let fresh = mono.dram_state_digest();
        assert_eq!(fresh, sharded.dram_state_digest());
        assert_eq!(fresh, traced.dram_state_digest());

        let reqs = stream(&mono);
        for r in &reqs {
            mono.service(r).unwrap();
            MemoryBackend::service(&mut sharded, r).unwrap();
            MemoryBackend::service(&mut traced, r).unwrap();
        }
        let after = mono.dram_state_digest();
        assert_ne!(after, fresh, "traffic must move the digest");
        assert_eq!(after, sharded.dram_state_digest());
        assert_eq!(after, traced.dram_state_digest());
        // Boxed backends forward the digest.
        let boxed: Box<dyn ControllerBackend> = Box::new(mono);
        assert_eq!(boxed.dram_state_digest(), after);
    }

    #[test]
    fn injected_activation_touches_bank_state() {
        let mut mc = controller();
        mc.inject_row_activation(3, 9, Cycles(0), 99);
        assert_eq!(mc.dram().bank(3).stats().activations, 1);
        // A demand access to the injected row now hits.
        let addr = mc.mapping().compose(3, 9, 0);
        let out = mc.access(addr, Cycles(1000), 0).unwrap();
        assert_eq!(out.kind, RowBufferKind::Hit);
    }
}
