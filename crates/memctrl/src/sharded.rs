//! A bank-sharded memory backend: N inner [`MemoryController`]s, each
//! serving an interleaved slice of the banks.
//!
//! [`ShardedController`] partitions the flat bank space across `shards`
//! sub-controllers by `bank % shards` — the same address-mapping
//! interleave the device uses — and routes every request to the
//! sub-controller owning its bank. Each sub-controller is a complete
//! controller over the full geometry (global bank indices stay valid
//! everywhere; only the owned banks are ever touched), trading a modest
//! amount of idle per-bank state for exact index compatibility with the
//! monolithic controller. Because all controller state (row
//! buffers, busy times, blocking epochs, ACT counters, statistics) is
//! per-bank, the composite is *observably identical* to one monolithic
//! [`MemoryController`]: identical [`MemResponse`] streams, identical
//! merged [`BackendStats`], identical per-bank DRAM state, for any request
//! sequence. That equivalence is what lets the whole experiment suite run
//! on it unchanged, and it is enforced by the proptests at the bottom of
//! this module and by `tests/determinism.rs`.
//!
//! Masked RowClones span banks and therefore shards: the composite
//! validates all lanes up front (in mask-bit order, exactly like the
//! monolithic path), splits the lanes by owning shard, executes each
//! shard's slice, and reassembles the per-lane outcomes in mask order.
//!
//! # Parallel shard servicing
//!
//! Banks are state-disjoint, so the per-shard request buckets of one
//! [`MemoryBackend::service_batch`] call can execute concurrently. With
//! [`ShardedController::set_workers`] (or
//! [`ShardedController::from_config_parallel`]) the controller keeps a
//! small persistent worker pool and, for batches of at least
//! [`ShardedController::parallel_threshold`] requests touching more than
//! one shard, hands each populated shard's *owned* sub-controller plus its
//! bucket to a pool worker over a channel and collects them back — no
//! shared mutable state, no `unsafe`. Everything observable is
//! bit-identical to the sequential path at any worker count:
//!
//! * responses are scattered back into request order by index,
//! * per-shard [`BackendStats`] and DRAM state live inside the
//!   sub-controllers and are merged in stable shard order (never
//!   completion order) by [`ShardedController::stats`] /
//!   [`ShardedController::dram_totals`] / the state digest,
//! * each bucket's execution depends only on its own shard's state.
//!
//! Batches below the threshold (or non-bucketable ones: RowClones, MPR,
//! out-of-range addresses) take the sequential path, so small-batch
//! workloads never pay dispatch overhead. Which path ran is telemetry,
//! not observable state: each controller keeps plain
//! [`ShardedController::scheduling_counts`] (zeroed on fork, never
//! snapshotted) and mirrors them into the process-wide `impact-obs`
//! registry together with per-shard bucket sizes and worker busy spans —
//! none of which can perturb [`BackendStats`], responses, or digests.
//! The equivalence proof lives in the proptests below, in
//! `tests/parallel_shards.rs`, and in the recorded-trace cross-checks.
//!
//! # Example
//!
//! ```
//! use impact_core::addr::PhysAddr;
//! use impact_core::config::SystemConfig;
//! use impact_core::engine::{MemRequest, MemoryBackend};
//! use impact_core::time::Cycles;
//! use impact_memctrl::{MemoryController, ShardedController};
//!
//! let cfg = SystemConfig::paper_table2();
//! let mut mono = MemoryController::from_config(&cfg);
//! let mut sharded = ShardedController::from_config(&cfg, 4);
//! let req = MemRequest::load(PhysAddr(0x40), Cycles(0), 0);
//! assert_eq!(mono.service(&req)?, MemoryBackend::service(&mut sharded, &req)?);
//! # Ok::<(), impact_core::Error>(())
//! ```

use std::sync::mpsc;
use std::thread;

use impact_core::addr::PhysAddr;
use impact_core::config::SystemConfig;
use impact_core::engine::{BackendStats, MemRequest, MemResponse, MemoryBackend, ReqKind};
use impact_core::error::{Error, Result};
use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;
use impact_dram::{BankStats, RowPolicy};

use crate::controller::{CtrlSnap, MemoryController, PeriodicBlock};
use crate::defense::Defense;

/// Default adaptive threshold: batches with fewer requests than this are
/// serviced sequentially even when a worker pool is configured.
///
/// Dispatch costs real work per batch — bucket index lists, per-shard
/// request/location copies, two channel hops per populated shard — so the
/// pool only pays off once a batch is large enough to amortize it *and*
/// spare cores actually run the buckets concurrently. 4096 keeps the quick
/// experiment suite (bursts of at most a few hundred requests) and
/// mid-size batches sequential, engaging the pool only for the
/// production-scale init sweeps (4096–8192 banks, one request per bank)
/// where per-shard buckets are big enough to amortize the copies.
///
/// **Single-core caveat**: on a 1-vCPU host the workers time-slice one
/// core, so the parallel path loses at *every* batch size — the
/// `BENCH_hotpath.json` record on such a box shows
/// `sharded_parallel_vs_mono_8192` ≈ 416 µs against
/// `sharded_seq_batch_8192` ≈ 171 µs. No threshold can detect core
/// starvation; pin `workers = 1` (or leave the default) on single-core
/// hosts. The threshold only gates *when* the pool engages, never *what*
/// it computes — both paths are bit-identical — so tuning it is always
/// safe ([`ShardedController::set_parallel_threshold`]).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

/// One shard's slice of a batch: positions in the original batch, the
/// requests themselves, and their pre-computed `(flat bank, row)` pairs.
type ShardBucket = (Vec<u32>, Vec<MemRequest>, Vec<(u32, u64)>);

/// One unit of parallel work: a populated shard's *owned* sub-controller
/// plus its request bucket, handed to a pool worker by value.
struct ShardJob {
    shard: usize,
    sub: MemoryController,
    /// Positions of this bucket's requests in the original batch.
    indices: Vec<u32>,
    reqs: Vec<MemRequest>,
    /// `(flat bank, row)` per request, located once by the dispatcher.
    locs: Vec<(u32, u64)>,
}

/// A finished [`ShardJob`]: the sub-controller comes home together with
/// the bucket's responses (or the worker's panic payload).
struct ShardDone {
    shard: usize,
    sub: MemoryController,
    indices: Vec<u32>,
    result: thread::Result<Vec<MemResponse>>,
}

/// A small persistent pool servicing [`ShardJob`]s. Ownership of each
/// sub-controller travels through the channels (there is no shared mutable
/// state and no `unsafe`), and every job is keyed by its shard index, so
/// neither worker assignment nor completion order is observable.
struct WorkerPool {
    job_txs: Vec<mpsc::Sender<ShardJob>>,
    done_rx: mpsc::Receiver<ShardDone>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> WorkerPool {
        let (done_tx, done_rx) = mpsc::channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<ShardJob>();
            let done_tx = done_tx.clone();
            handles.push(thread::spawn(move || {
                while let Ok(mut job) = job_rx.recv() {
                    // Worker busy time is telemetry (inert unless obs
                    // span timing is enabled) and cannot influence the
                    // deterministic result travelling back in `done`.
                    let _busy = impact_obs::registry().worker_busy_ns.span();
                    // Catch panics so a poisoned bucket never deadlocks the
                    // dispatcher waiting on `done_rx`; the payload is
                    // re-thrown on the servicing thread.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        job.sub.service_batch_located(&job.reqs, &job.locs)
                    }));
                    let done = ShardDone {
                        shard: job.shard,
                        sub: job.sub,
                        indices: job.indices,
                        result,
                    };
                    if done_tx.send(done).is_err() {
                        break;
                    }
                }
            }));
            job_txs.push(job_tx);
        }
        impact_obs::registry().pool_workers.set(workers as u64);
        WorkerPool {
            job_txs,
            done_rx,
            handles,
        }
    }

    fn size(&self) -> usize {
        self.job_txs.len()
    }

    /// Joins every worker and keeps the first panic payload that escaped
    /// a worker thread (if any). Leaves the pool empty, so a later batch
    /// respawns it from scratch.
    fn join_workers(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
        // Disconnect the job channels; live workers drain and exit their
        // loops.
        self.job_txs.clear();
        let mut payload = None;
        for h in self.handles.drain(..) {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        payload
    }

    /// A dead worker was observed (disconnected job or done channel):
    /// join the pool and re-throw the panic that actually killed it —
    /// never a generic channel-closed payload — falling back to a
    /// diagnostic naming the context when the workers died silently.
    fn reap(&mut self, context: &str) -> ! {
        match self.join_workers() {
            Some(p) => std::panic::resume_unwind(p),
            None => panic!("sharded worker pool died: {context}"),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // A worker that died unwinding must not die silently: re-throw
        // its payload — unless this drop is itself part of an unwind,
        // where a second panic would abort the process.
        if let Some(p) = self.join_workers() {
            if !std::thread::panicking() {
                std::panic::resume_unwind(p);
            }
        }
    }
}

/// N inner memory controllers, each serving the banks `b` with
/// `b % shards == shard index`. See the module docs for the equivalence
/// contract with the monolithic [`MemoryController`] and for the parallel
/// shard-servicing path.
pub struct ShardedController {
    subs: Vec<MemoryController>,
    /// Top-level counters the sub-controllers cannot attribute: whole
    /// masked RowClone operations (their lanes are split across shards).
    local: BackendStats,
    /// Worker threads servicing shard buckets concurrently; 1 = always
    /// sequential.
    workers: usize,
    /// Minimum batch size for the parallel path.
    parallel_threshold: usize,
    /// Spawned by [`ShardedController::set_workers`], kept across batches
    /// (sized to `workers`; `None` iff `workers == 1`).
    pool: Option<WorkerPool>,
    /// Telemetry, not state: batches dispatched to the worker pool. Never
    /// snapshotted, zeroed on fork (see [`ShardedController::scheduling_counts`]).
    sched_parallel: u64,
    /// Telemetry, not state: batches serviced sequentially despite an
    /// active pool (non-bucketable mix, below threshold, <2 populated
    /// shards).
    sched_fallback: u64,
}

impl core::fmt::Debug for ShardedController {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedController")
            .field("shards", &self.subs.len())
            .field("workers", &self.workers)
            .field("banks", &self.num_banks())
            .field("defense", &self.defense().name())
            .finish()
    }
}

impl ShardedController {
    /// Creates a controller with `shards` sub-controllers over the Table 2
    /// configuration in `cfg` (clamped to at least one shard and at most
    /// one shard per bank), servicing batches sequentially.
    #[must_use]
    pub fn from_config(cfg: &SystemConfig, shards: usize) -> ShardedController {
        let banks = cfg.dram_geometry.total_banks() as usize;
        let shards = shards.clamp(1, banks.max(1));
        ShardedController {
            // Each shard stores only its own banks, packed densely
            // (`from_config_bank_view`), so a request stream interleaved
            // across shards touches the same number of state cache lines
            // as the monolithic controller would.
            subs: (0..shards)
                .map(|s| MemoryController::from_config_bank_view(cfg, shards, s))
                .collect(),
            local: BackendStats::default(),
            workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            pool: None,
            sched_parallel: 0,
            sched_fallback: 0,
        }
    }

    /// [`ShardedController::from_config`] with `workers` pool threads
    /// servicing shard buckets concurrently (see
    /// [`ShardedController::set_workers`]).
    #[must_use]
    pub fn from_config_parallel(
        cfg: &SystemConfig,
        shards: usize,
        workers: usize,
    ) -> ShardedController {
        let mut c = ShardedController::from_config(cfg, shards);
        c.set_workers(workers);
        c
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.subs.len()
    }

    /// Sets the worker-pool size (clamped to at least 1 and at most one
    /// worker per shard). 1 disables the parallel path entirely and tears
    /// the pool down; larger sizes (re)spawn the persistent pool eagerly,
    /// so no batch ever pays thread-spawn latency.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.clamp(1, self.subs.len());
        if workers != self.workers {
            self.workers = workers;
            self.pool = (workers > 1).then(|| WorkerPool::spawn(workers));
        }
    }

    /// Worker threads servicing shard buckets (1 = sequential).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the adaptive threshold: batches with fewer requests stay on
    /// the sequential path (clamped to at least 1).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold.max(1);
    }

    /// The adaptive batch-size threshold for the parallel path.
    #[must_use]
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Scheduling diagnostics `(parallel_batches, sequential_fallbacks)`
    /// since this controller was created (or forked — forks start from
    /// zero). Telemetry only: the counts never enter [`BackendStats`],
    /// snapshots, or trace footers, so a parallel and a sequential run of
    /// the same traffic still compare equal everywhere that matters. The
    /// process-wide totals live in the `impact-obs` registry; this
    /// per-controller view is what tests assert exact counts against.
    #[must_use]
    pub fn scheduling_counts(&self) -> (u64, u64) {
        (self.sched_parallel, self.sched_fallback)
    }

    /// Shard index owning `bank`.
    #[must_use]
    pub fn shard_of(&self, bank: usize) -> usize {
        bank % self.subs.len()
    }

    /// The sub-controller owning `bank`.
    #[must_use]
    pub fn sub_for_bank(&self, bank: usize) -> &MemoryController {
        &self.subs[self.shard_of(bank)]
    }

    fn sub_for_bank_mut(&mut self, bank: usize) -> &mut MemoryController {
        let s = self.shard_of(bank);
        &mut self.subs[s]
    }

    /// The active defense (uniform across shards).
    #[must_use]
    pub fn defense(&self) -> &Defense {
        self.subs[0].defense()
    }

    /// Installs a defense on every shard.
    pub fn set_defense(&mut self, defense: Defense) {
        for sub in &mut self.subs {
            sub.set_defense(defense.clone());
        }
    }

    /// Enables or disables periodic blocking on every shard.
    pub fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        for sub in &mut self.subs {
            sub.set_periodic_block(blocking);
        }
    }

    /// Switches the row policy on every shard.
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        for sub in &mut self.subs {
            sub.dram_mut().set_policy(policy);
        }
    }

    /// Merged controller statistics (bit-identical to the monolithic
    /// controller's counters for the same request sequence).
    #[must_use]
    pub fn stats(&self) -> BackendStats {
        let mut total = self.local.clone();
        for sub in &self.subs {
            total += sub.stats();
        }
        total
    }

    /// DRAM statistics aggregated over all banks of all shards. Each bank
    /// is only ever touched by its owning shard, so the sum equals the
    /// monolithic device total.
    #[must_use]
    pub fn dram_totals(&self) -> BankStats {
        let mut total = BankStats::default();
        for sub in &self.subs {
            total += sub.dram().total_stats();
        }
        total
    }

    fn geometry_row_bytes(&self) -> u64 {
        self.subs[0].dram().geometry().row_bytes
    }

    /// Serves one masked RowClone, replicating the monolithic validation
    /// order and response layout while the lanes execute on their owning
    /// shards.
    fn service_rowclone(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        mask: u64,
        now: Cycles,
        actor: u32,
    ) -> Result<MemResponse> {
        if mask == 0 {
            return Err(Error::InvalidRowClone("empty bank mask".into()));
        }
        let row_bytes = self.geometry_row_bytes();
        // Pre-validate every lane in mask-bit order before touching any
        // bank state, exactly like `MemoryController::rowclone` — and with
        // the same fixed stack scratch (a mask has at most 64 set bits).
        let mut lane_buf = [(0usize, 0u64, 0u64); 64];
        let mut n_lanes = 0usize;
        for i in 0..64u64 {
            if mask & (1 << i) == 0 {
                continue;
            }
            let s = src + i * row_bytes;
            let d = dst + i * row_bytes;
            self.subs[0].check_capacity(s)?;
            self.subs[0].check_capacity(d)?;
            let (sbank, srow) = self.subs[0].mapping().locate(s);
            let (dbank, drow) = self.subs[0].mapping().locate(d);
            if sbank != dbank {
                return Err(Error::InvalidRowClone(format!(
                    "mask bit {i}: src bank {sbank} != dst bank {dbank}"
                )));
            }
            self.sub_for_bank_mut(sbank).check_partition(sbank, actor)?;
            lane_buf[n_lanes] = (sbank, srow, drow);
            n_lanes += 1;
        }
        let lanes = &lane_buf[..n_lanes];
        // One whole masked operation; the lanes' DRAM-side counters land
        // in the owning shards.
        self.local.rowclones += 1;

        // Execute each shard's lane slice and reassemble in mask order.
        let shards = self.subs.len();
        let mut by_shard: Vec<Vec<(usize, usize, u64, u64)>> = vec![Vec::new(); shards];
        for (lane_idx, &(bank, srow, drow)) in lanes.iter().enumerate() {
            by_shard[self.shard_of(bank)].push((lane_idx, bank, srow, drow));
        }
        let mut per_bank = vec![None; lanes.len()];
        for (shard, slice) in by_shard.into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let shard_lanes: Vec<(usize, u64, u64)> =
                slice.iter().map(|&(_, b, s, d)| (b, s, d)).collect();
            let outcomes = self.subs[shard].rowclone_lanes(&shard_lanes, now, actor);
            for (&(lane_idx, ..), outcome) in slice.iter().zip(outcomes) {
                per_bank[lane_idx] = Some(outcome);
            }
        }
        let per_bank: Vec<_> = per_bank.into_iter().map(|o| o.expect("lane run")).collect();

        let mut completed = now;
        for &(_, _, lat) in &per_bank {
            completed = completed.max(now + lat);
        }
        // The response headline reports the first set lane.
        let first_lane = u64::from(mask.trailing_zeros());
        let row = self.subs[0].mapping().map(src + first_lane * row_bytes).row;
        let (bank, kind, _) = per_bank[0];
        Ok(MemResponse {
            bank,
            row,
            kind,
            latency: completed - now,
            completed_at: completed,
            per_bank,
        })
    }

    /// Services pre-bucketed scalar requests on the worker pool.
    /// Observably identical to the sequential bucket loop — responses are
    /// scattered into request order and result handling runs in stable
    /// shard order regardless of completion order.
    ///
    /// The batch is transactional: each worker services a copy-on-write
    /// *fork* of its shard's sub-controller while the original stays
    /// home. Only after every outcome is back — and none panicked — are
    /// the forks committed shard by shard; a mid-batch worker panic
    /// discards every fork instead, so a poisoned batch leaves no
    /// half-merged `BackendStats` or DRAM state behind (the next
    /// successful batch starts from the exact pre-dispatch composite),
    /// and the first failing shard's own panic payload is re-thrown on
    /// this thread. The forks' copy-on-write unshares are the price of
    /// that atomicity, amortized over the ≥`parallel_threshold` requests
    /// this path requires.
    fn service_buckets_parallel(
        &mut self,
        by_shard: Vec<ShardBucket>,
        total: usize,
    ) -> Vec<MemResponse> {
        // `set_workers` keeps the pool in lockstep with `workers`; the
        // guard also respawns a pool that was torn down by `reap`.
        if !matches!(&self.pool, Some(p) if p.size() == self.workers) {
            self.pool = Some(WorkerPool::spawn(self.workers));
        }
        let pool = self.pool.as_mut().expect("pool spawned above");

        // Hand out the populated buckets round-robin in shard order. The
        // assignment is deterministic, but nothing depends on it: jobs are
        // keyed by shard index.
        let mut dispatched = 0usize;
        for (shard, (indices, reqs, locs)) in by_shard.into_iter().enumerate() {
            if reqs.is_empty() {
                continue;
            }
            impact_obs::registry()
                .sharded_bucket_size
                .record(reqs.len() as u64);
            let job = ShardJob {
                shard,
                sub: self.subs[shard].fork(),
                indices,
                reqs,
                locs,
            };
            if pool.job_txs[dispatched % pool.size()].send(job).is_err() {
                // The receiving worker is gone — re-throw what actually
                // killed it, not a channel-closed panic. The dropped job
                // only held a fork; the composite is untouched.
                pool.reap(&format!("dispatching shard {shard}"));
            }
            dispatched += 1;
        }

        // Collect every outcome before touching any result, then handle
        // them in stable shard order — never completion order — for panic
        // propagation, commit and response scatter alike.
        let mut outcomes = Vec::with_capacity(dispatched);
        for _ in 0..dispatched {
            match pool.done_rx.recv() {
                Ok(done) => outcomes.push(done),
                Err(_) => pool.reap("collecting shard results"),
            }
        }
        outcomes.sort_unstable_by_key(|done| done.shard);
        if let Some(first_err) = outcomes.iter().position(|done| done.result.is_err()) {
            let failed = outcomes.swap_remove(first_err);
            // Dropping the outcomes discards every fork; the originals in
            // `self.subs` never left home.
            drop(outcomes);
            match failed.result {
                Err(panic) => std::panic::resume_unwind(panic),
                Ok(_) => unreachable!("position matched is_err"),
            }
        }

        let mut out = vec![None; total];
        for done in outcomes {
            self.subs[done.shard] = done.sub;
            let resps = done.result.expect("panics handled above");
            for (i, resp) in done.indices.into_iter().zip(resps) {
                out[i as usize] = Some(resp);
            }
        }
        out.into_iter()
            .map(|r| r.expect("request served"))
            .collect()
    }
}

/// Snapshot of a [`ShardedController`]: one [`CtrlSnap`] per shard plus
/// the composite-level counters. The worker-pool configuration is carried
/// by forks but the pool itself (live threads) is not — a fork respawns
/// its pool lazily on the first parallel batch.
#[derive(Debug, Clone)]
pub struct ShardedSnap {
    subs: Vec<CtrlSnap>,
    local: BackendStats,
}

impl Snapshot for ShardedController {
    type Snap = ShardedSnap;

    fn snapshot(&self) -> ShardedSnap {
        ShardedSnap {
            subs: self.subs.iter().map(Snapshot::snapshot).collect(),
            local: self.local.clone(),
        }
    }

    fn restore(&mut self, snap: &ShardedSnap) {
        assert_eq!(
            self.subs.len(),
            snap.subs.len(),
            "sharded snapshot topology mismatch"
        );
        for (sub, s) in self.subs.iter_mut().zip(&snap.subs) {
            sub.restore(s);
        }
        self.local = snap.local.clone();
    }

    fn fork(&self) -> ShardedController {
        ShardedController {
            subs: self.subs.iter().map(Snapshot::fork).collect(),
            local: self.local.clone(),
            workers: self.workers,
            parallel_threshold: self.parallel_threshold,
            // Threads are not forkable; `service_buckets_parallel`
            // respawns a pool sized to `workers` on first use.
            pool: None,
            // Telemetry never travels through forks: a forked controller
            // reports only its own scheduling decisions.
            sched_parallel: 0,
            sched_fallback: 0,
        }
    }
}

impl MemoryBackend for ShardedController {
    fn service(&mut self, req: &MemRequest) -> Result<MemResponse> {
        match req.kind {
            ReqKind::Load | ReqKind::Store | ReqKind::Pim => {
                // Out-of-range addresses map to an arbitrary shard; every
                // sub rejects them with the same error the mono would.
                let bank = self.subs[0].mapping().flat_bank(req.addr);
                self.sub_for_bank_mut(bank).service(req)
            }
            ReqKind::RowClone { dst, mask } => {
                self.service_rowclone(req.addr, dst, mask, req.at, req.actor)
            }
        }
    }

    fn service_batch(&mut self, reqs: &[MemRequest]) -> Result<Vec<MemResponse>> {
        // Shards are state-disjoint, so scalar requests can be bucketed
        // per shard and each bucket serviced through the sub-controller's
        // bucketed batch path; responses are reassembled in request
        // order. The bucketed path requires that no request can fail
        // mid-flight (the serial contract applies state up to the first
        // failure): RowClones (cross-shard), partition defenses (can
        // reject) and out-of-range addresses all fall back to the
        // in-order loop. The same infallibility is what makes the bucket
        // order — and therefore the parallel path below — unobservable.
        let capacity = self.subs[0].dram().geometry().capacity_bytes();
        let bucketable = !matches!(self.defense(), Defense::Mpr(_))
            && reqs.iter().all(|r| {
                matches!(r.kind, ReqKind::Load | ReqKind::Store | ReqKind::Pim)
                    && r.addr.0 < capacity
            });
        if !bucketable {
            if self.workers > 1 {
                self.sched_fallback += 1;
                impact_obs::registry().sharded_fallback_batches.incr();
            }
            return reqs.iter().map(|r| self.service(r)).collect();
        }
        // Locate every request once — one virtual dispatch for the whole
        // batch. Both dispatch paths consume the shared location table.
        let addrs: Vec<PhysAddr> = reqs.iter().map(|r| r.addr).collect();
        let mut locs = Vec::new();
        self.subs[0].mapping().locate_batch(&addrs, &mut locs);
        let shards = self.subs.len();
        // Adaptive dispatch: the worker pool only pays off once the batch
        // amortizes channel hand-off, so small batches (and single-shard
        // ones) stay sequential. Index lists are only built when the pool
        // may actually run; the sequential path never buckets.
        if self.workers > 1 && reqs.len() >= self.parallel_threshold {
            let mut idx: Vec<Vec<u32>> = (0..shards)
                .map(|_| Vec::with_capacity(reqs.len() / shards + 1))
                .collect();
            for (i, &(bank, _)) in locs.iter().enumerate() {
                // analyze::allow(lossy-cast): batch length asserted to fit
                // u32 in MemoryController::service_scatter before any index
                // is used
                idx[self.shard_of(bank as usize)].push(i as u32);
            }
            let populated = idx.iter().filter(|v| !v.is_empty()).count();
            if populated > 1 {
                self.sched_parallel += 1;
                impact_obs::registry().sharded_parallel_batches.incr();
                // Jobs cross a thread boundary, so each shard's requests
                // and locations are copied into an owned bucket.
                let by_shard: Vec<ShardBucket> = idx
                    .into_iter()
                    .map(|indices| {
                        let shard_reqs = indices.iter().map(|&i| reqs[i as usize]).collect();
                        let shard_locs = indices.iter().map(|&i| locs[i as usize]).collect();
                        (indices, shard_reqs, shard_locs)
                    })
                    .collect();
                return Ok(self.service_buckets_parallel(by_shard, reqs.len()));
            }
        }
        if self.workers > 1 {
            self.sched_fallback += 1;
            impact_obs::registry().sharded_fallback_batches.incr();
        }
        // Sequential: one in-order pass over the batch, each request
        // served in place by its owning shard — no index lists, no
        // placeholder responses, no scatter, and one sequential sweep over
        // the request and location tables. Per-batch parameters are
        // hoisted and statistics deltas deferred per shard, exactly as in
        // the monolithic bucketed path; each shard's bank state is dense
        // (see `from_config`), so the sweep touches no more state cache
        // lines than the monolithic controller.
        let envs: Vec<_> = self.subs.iter().map(MemoryController::batch_env).collect();
        let mut accesses = vec![0u64; shards];
        let mut blocked = vec![0u64; shards];
        let mut padded = vec![0u64; shards];
        let mut out = Vec::with_capacity(reqs.len());
        for (req, &(bank, row)) in reqs.iter().zip(&locs) {
            let s = self.shard_of(bank as usize);
            accesses[s] += 1;
            out.push(self.subs[s].serve_located(
                req,
                bank as usize,
                row,
                envs[s],
                &mut blocked[s],
                &mut padded[s],
            ));
        }
        for (s, sub) in self.subs.iter_mut().enumerate() {
            sub.apply_batch_stats(accesses[s], blocked[s], padded[s]);
        }
        Ok(out)
    }

    fn backend_stats(&self) -> BackendStats {
        self.stats()
    }

    fn defense_label(&self) -> &'static str {
        self.defense().name()
    }

    fn worst_case_latency(&self) -> Cycles {
        self.subs[0].worst_case_latency()
    }

    fn num_banks(&self) -> usize {
        self.subs[0].dram().num_banks()
    }

    fn rows_per_bank(&self) -> u64 {
        self.subs[0].dram().geometry().rows_per_bank
    }

    fn inject_row_activation(&mut self, bank: usize, row: u64, at: Cycles, actor: u32) {
        self.sub_for_bank_mut(bank)
            .dram_mut()
            .access_as(bank, row, at, actor);
    }

    fn probe_burst_safe(&self) -> bool {
        self.subs.iter().all(MemoryBackend::probe_burst_safe)
    }

    fn bank_of(&self, addr: PhysAddr) -> Option<usize> {
        self.subs[0].bank_of(addr)
    }

    fn bank_ready_at(&self, bank: usize) -> Cycles {
        self.sub_for_bank(bank).bank_ready_at(bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{ActConfig, MprPartition};
    use impact_core::rng::SimRng;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_table2()
    }

    /// A mixed request stream: loads/stores/PIMs over several banks and
    /// rows, plus masked RowClones whose lanes straddle shard boundaries.
    fn stream(mc: &MemoryController, n: u64, seed: u64) -> Vec<MemRequest> {
        let mut rng = SimRng::seed(seed);
        let row_bytes = mc.dram().geometry().row_bytes;
        let mut reqs = Vec::new();
        let mut at = Cycles(0);
        for i in 0..n {
            let bank = rng.below(16) as usize;
            let row = rng.below(8);
            let addr = mc.mapping().compose(bank, row, (rng.below(4) * 64) as u32);
            let actor = rng.below(2) as u32;
            let req = match i % 7 {
                0 => MemRequest::store(addr, at, actor),
                1 => MemRequest::pim(addr, at, actor),
                5 => {
                    let src = PhysAddr(64 * 16 * row_bytes * (1 + rng.below(3)));
                    let dst = PhysAddr(src.0 + 32 * 16 * row_bytes);
                    let mask = rng.below(u64::from(u16::MAX)).max(1);
                    MemRequest::rowclone(src, dst, mask, at, actor)
                }
                _ => MemRequest::load(addr, at, actor),
            };
            reqs.push(req);
            at += Cycles(rng.below(700));
        }
        reqs
    }

    fn assert_equivalent(configure: impl Fn(&mut MemoryController) + Copy, shards: usize) {
        let mut mono = MemoryController::from_config(&cfg());
        configure(&mut mono);
        let mut sharded = ShardedController::from_config(&cfg(), shards);
        for sub in &mut sharded.subs {
            configure(sub);
        }
        let reqs = stream(&mono, 160, 0x5A5A);
        for req in &reqs {
            let a = MemoryBackend::service(&mut mono, req);
            let b = MemoryBackend::service(&mut sharded, req);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("divergent results: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(mono.backend_stats(), sharded.backend_stats());
        assert_eq!(mono.dram().total_stats(), sharded.dram_totals());
        for bank in 0..16 {
            assert_eq!(
                mono.dram().bank(bank).stats(),
                sharded.sub_for_bank(bank).dram().bank(bank).stats(),
                "bank {bank} stats diverged"
            );
            assert_eq!(
                mono.dram().bank(bank).raw_open_row(),
                sharded.sub_for_bank(bank).dram().bank(bank).raw_open_row(),
                "bank {bank} open row diverged"
            );
        }
    }

    #[test]
    fn matches_mono_without_defense() {
        for shards in [1, 2, 3, 8, 16] {
            assert_equivalent(|_| {}, shards);
        }
    }

    #[test]
    fn matches_mono_under_defenses_and_blocking() {
        for shards in [2, 5] {
            assert_equivalent(|mc| mc.set_defense(Defense::Ctd), shards);
            assert_equivalent(|mc| mc.set_defense(Defense::Crp), shards);
            assert_equivalent(
                |mc| mc.set_defense(Defense::Act(ActConfig::aggressive())),
                shards,
            );
            assert_equivalent(
                |mc| mc.set_periodic_block(Some(PeriodicBlock::rfm_paper_default())),
                shards,
            );
        }
    }

    #[test]
    fn matches_mono_under_mpr() {
        let configure = |mc: &mut MemoryController| {
            let mut p = MprPartition::new(16);
            p.assign_round_robin(&[0, 1]);
            mc.set_defense(Defense::Mpr(p));
        };
        assert_equivalent(configure, 4);
    }

    #[test]
    fn batch_matches_mono_batch() {
        let mut mono = MemoryController::from_config(&cfg());
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        let reqs = stream(&mono, 200, 7);
        let scalars: Vec<MemRequest> = reqs
            .into_iter()
            .filter(|r| !matches!(r.kind, ReqKind::RowClone { .. }))
            .collect();
        assert_eq!(
            mono.service_batch(&scalars).unwrap(),
            MemoryBackend::service_batch(&mut sharded, &scalars).unwrap()
        );
        assert_eq!(mono.backend_stats(), sharded.backend_stats());
    }

    #[test]
    fn batch_with_rowclones_takes_loop_path() {
        let mut mono = MemoryController::from_config(&cfg());
        let mut sharded = ShardedController::from_config(&cfg(), 8);
        let reqs = stream(&mono, 120, 11); // includes RowClones
        assert_eq!(
            mono.service_batch(&reqs).unwrap(),
            MemoryBackend::service_batch(&mut sharded, &reqs).unwrap()
        );
        assert_eq!(mono.dram().total_stats(), sharded.dram_totals());
    }

    #[test]
    fn rowclone_counts_one_operation() {
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        let row_bytes = sharded.geometry_row_bytes();
        let req = MemRequest::rowclone(
            PhysAddr(0),
            PhysAddr(64 * 16 * row_bytes),
            0xFFFF,
            Cycles(0),
            0,
        );
        let resp = MemoryBackend::service(&mut sharded, &req).unwrap();
        assert_eq!(resp.per_bank.len(), 16);
        assert_eq!(sharded.backend_stats().rowclones, 1);
        assert_eq!(sharded.dram_totals().rowclones, 16);
    }

    #[test]
    fn shard_count_clamps() {
        assert_eq!(ShardedController::from_config(&cfg(), 0).shards(), 1);
        assert_eq!(ShardedController::from_config(&cfg(), 999).shards(), 16);
    }

    #[test]
    fn worker_count_clamps_to_shards() {
        let mut sc = ShardedController::from_config_parallel(&cfg(), 4, 64);
        assert_eq!(sc.workers(), 4, "workers clamp to the shard count");
        sc.set_workers(0);
        assert_eq!(sc.workers(), 1);
        sc.set_workers(2);
        assert_eq!(sc.workers(), 2);
        sc.set_parallel_threshold(0);
        assert_eq!(sc.parallel_threshold(), 1);
        let d = format!("{sc:?}");
        assert!(d.contains("workers"), "{d}");
    }

    /// The parallel path produces bit-identical responses, stats and DRAM
    /// state to both the sequential sharded path and the monolithic
    /// controller, batch after batch on live (warm) state.
    #[test]
    fn parallel_batches_match_sequential_and_mono() {
        let mut mono = MemoryController::from_config(&cfg());
        let mut seq = ShardedController::from_config(&cfg(), 4);
        let mut par = ShardedController::from_config_parallel(&cfg(), 4, 3);
        par.set_parallel_threshold(1); // force the pool on every batch
        let reqs = stream(&mono, 240, 0xBEEF);
        let scalars: Vec<MemRequest> = reqs
            .into_iter()
            .filter(|r| !matches!(r.kind, ReqKind::RowClone { .. }))
            .collect();
        for chunk in scalars.chunks(48) {
            let a = mono.service_batch(chunk).unwrap();
            let b = MemoryBackend::service_batch(&mut seq, chunk).unwrap();
            let c = MemoryBackend::service_batch(&mut par, chunk).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
        assert_eq!(mono.backend_stats(), seq.backend_stats());
        assert_eq!(mono.backend_stats(), par.backend_stats());
        assert_eq!(mono.dram().total_stats(), par.dram_totals());
        assert!(
            par.scheduling_counts().0 > 0,
            "threshold 1 must engage the pool"
        );
        assert_eq!(seq.scheduling_counts().0, 0);
    }

    /// The scheduling counters prove which path serviced each batch
    /// instead of leaving tests to infer it from timing.
    #[test]
    fn adaptive_threshold_engages_and_is_counted() {
        let mut sc = ShardedController::from_config_parallel(&cfg(), 4, 2);
        sc.set_parallel_threshold(32);
        let probe = MemoryController::from_config(&cfg());
        let reqs = stream(&probe, 200, 3);
        let scalars: Vec<MemRequest> = reqs
            .iter()
            .copied()
            .filter(|r| !matches!(r.kind, ReqKind::RowClone { .. }))
            .collect();

        // Below the threshold: sequential fallback.
        MemoryBackend::service_batch(&mut sc, &scalars[..8]).unwrap();
        assert_eq!(sc.scheduling_counts(), (0, 1));

        // At/above the threshold with multiple populated shards: parallel.
        MemoryBackend::service_batch(&mut sc, &scalars[..64]).unwrap();
        assert_eq!(sc.scheduling_counts(), (1, 1));

        // Non-bucketable batches (RowClones) always fall back.
        let with_rc: Vec<MemRequest> = reqs.iter().copied().take(64).collect();
        assert!(with_rc
            .iter()
            .any(|r| matches!(r.kind, ReqKind::RowClone { .. })));
        MemoryBackend::service_batch(&mut sc, &with_rc).unwrap();
        assert_eq!(sc.scheduling_counts(), (1, 2));

        // A sequential controller records no scheduling at all, and a
        // fork of the busy controller starts over from zero — telemetry
        // never travels through forks.
        let mut seq = ShardedController::from_config(&cfg(), 4);
        MemoryBackend::service_batch(&mut seq, &scalars[..64]).unwrap();
        assert_eq!(seq.scheduling_counts(), (0, 0));
        assert_eq!(Snapshot::fork(&sc).scheduling_counts(), (0, 0));
    }

    /// Reconfiguring the pool size mid-stream neither loses state nor
    /// changes observable behavior.
    #[test]
    fn pool_resize_preserves_equivalence() {
        let mut mono = MemoryController::from_config(&cfg());
        let mut par = ShardedController::from_config_parallel(&cfg(), 8, 2);
        par.set_parallel_threshold(1);
        let probe = MemoryController::from_config(&cfg());
        let scalars: Vec<MemRequest> = stream(&probe, 180, 21)
            .into_iter()
            .filter(|r| !matches!(r.kind, ReqKind::RowClone { .. }))
            .collect();
        for (round, chunk) in scalars.chunks(40).enumerate() {
            par.set_workers(1 + (round % 4)); // 1, 2, 3, 4, 1...
            let a = mono.service_batch(chunk).unwrap();
            let b = MemoryBackend::service_batch(&mut par, chunk).unwrap();
            assert_eq!(a, b, "round {round} diverged");
        }
        assert_eq!(mono.backend_stats(), par.backend_stats());
        assert_eq!(mono.dram().total_stats(), par.dram_totals());
    }

    #[test]
    fn surface_reports_topology() {
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        assert_eq!(MemoryBackend::num_banks(&sharded), 16);
        assert!(sharded.rows_per_bank() > 0);
        assert_eq!(sharded.defense_label(), "None");
        assert!(sharded.probe_burst_safe());
        sharded.set_defense(Defense::Ctd);
        assert_eq!(sharded.defense_label(), "CTD");
        assert!(sharded.probe_burst_safe());
        sharded.set_periodic_block(Some(PeriodicBlock::rfm_paper_default()));
        assert!(!sharded.probe_burst_safe());
        let d = format!("{sharded:?}");
        assert!(d.contains("shards"), "{d}");
    }

    #[test]
    fn injection_routes_to_owner_shard() {
        use crate::backend::ControllerBackend;
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        sharded.inject_row_activation(6, 9, Cycles(0), 42);
        assert_eq!(
            sharded.sub_for_bank(6).dram().bank(6).stats().activations,
            1
        );
        // Shards not owning bank 6 saw nothing.
        assert_eq!(sharded.shard_of(6), 2);
        assert_eq!(sharded.subs[0].dram().total_stats().activations, 0);
        assert_eq!(sharded.dram_totals().activations, 1);
        assert_eq!(
            ControllerBackend::dram_bank_stats(&sharded, 6).activations,
            1
        );
    }

    /// Extracts the panic payload's message, whichever string type the
    /// panic machinery boxed it as.
    fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "<non-string payload>".to_string())
    }

    /// A worker that panicked mid-bucket must re-throw its *own* payload
    /// on the servicing thread — never a generic channel-closed message —
    /// and the failed batch must leave no half-merged state: stats, DRAM
    /// totals and the next successful batch are identical to a controller
    /// that never saw the poisoned batch at all.
    #[test]
    fn worker_panic_payload_survives_and_batch_rolls_back() {
        let mut par = ShardedController::from_config_parallel(&cfg(), 4, 2);
        par.set_parallel_threshold(1);
        let mut twin = ShardedController::from_config_parallel(&cfg(), 4, 2);
        twin.set_parallel_threshold(1);
        let probe = MemoryController::from_config(&cfg());
        let scalars: Vec<MemRequest> = stream(&probe, 120, 0xDEAD)
            .into_iter()
            .filter(|r| !matches!(r.kind, ReqKind::RowClone { .. }))
            .collect();

        // Warm both controllers identically through the pool.
        let warm = MemoryBackend::service_batch(&mut par, &scalars[..64]).unwrap();
        assert_eq!(
            warm,
            MemoryBackend::service_batch(&mut twin, &scalars[..64]).unwrap()
        );
        let stats_before = par.stats();
        let dram_before = par.dram_totals();

        // Poison one shard's bucket with an out-of-range located bank —
        // the worker's `service_batch_located` panics on the bad index
        // (inside its catch_unwind), the other shard services normally.
        let addrs: Vec<PhysAddr> = scalars[..32].iter().map(|r| r.addr).collect();
        let mut locs = Vec::new();
        par.subs[0].mapping().locate_batch(&addrs, &mut locs);
        let mut by_shard: Vec<ShardBucket> = vec![Default::default(); 4];
        for (i, (req, &(bank, row))) in scalars[..32].iter().zip(&locs).enumerate() {
            let shard = bank as usize % 4;
            let (indices, reqs, shard_locs) = &mut by_shard[shard];
            // analyze::allow(lossy-cast): test batch of 32 requests
            indices.push(i as u32);
            reqs.push(*req);
            shard_locs.push((bank, row));
        }
        let poisoned = by_shard
            .iter()
            .position(|(_, reqs, _)| !reqs.is_empty())
            .expect("stream populates shards");
        by_shard[poisoned].2[0].0 = u32::MAX; // out-of-range bank

        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par.service_buckets_parallel(by_shard, 32)
        }))
        .expect_err("poisoned bucket must panic");
        let msg = payload_message(err.as_ref());
        assert!(
            msg.contains("4294967295"),
            "the worker's own payload (naming the bad bank) must survive, got: {msg}"
        );

        // No half-merged state: the composite is exactly pre-dispatch.
        assert_eq!(par.stats(), stats_before);
        assert_eq!(par.dram_totals(), dram_before);

        // And the next successful batch matches the twin that never saw
        // the poisoned batch — responses, stats and DRAM state.
        assert_eq!(
            MemoryBackend::service_batch(&mut par, &scalars[64..]).unwrap(),
            MemoryBackend::service_batch(&mut twin, &scalars[64..]).unwrap()
        );
        assert_eq!(par.stats(), twin.stats());
        assert_eq!(par.dram_totals(), twin.dram_totals());
    }

    /// `WorkerPool::reap` re-throws the payload of a worker thread that
    /// died unwinding, instead of a generic "worker alive" expect.
    #[test]
    fn reap_rethrows_dead_worker_payload() {
        let (_tx, done_rx) = mpsc::channel();
        let mut pool = WorkerPool {
            job_txs: Vec::new(),
            done_rx,
            handles: vec![thread::spawn(|| panic!("shard worker exploded"))],
        };
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.reap("test context")))
                .expect_err("reap must re-throw");
        assert_eq!(payload_message(err.as_ref()), "shard worker exploded");
        // The pool is empty now; dropping it is quiet.
        drop(pool);
    }

    /// Dropping a pool whose worker died unwinding re-throws the payload
    /// rather than swallowing it (unless already unwinding).
    #[test]
    fn drop_propagates_dead_worker_payload() {
        let (_tx, done_rx) = mpsc::channel();
        let pool = WorkerPool {
            job_txs: Vec::new(),
            done_rx,
            handles: vec![thread::spawn(|| panic!("silent death no more"))],
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(pool)))
            .expect_err("drop must re-throw the join panic");
        assert_eq!(payload_message(err.as_ref()), "silent death no more");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use impact_core::rng::SimRng;
    use proptest::prelude::*;

    /// Builds a valid random scalar+RowClone request stream.
    fn build_stream(seed: u64, n: u64) -> Vec<MemRequest> {
        let mc = MemoryController::from_config(&SystemConfig::paper_table2());
        let row_bytes = mc.dram().geometry().row_bytes;
        let mut rng = SimRng::seed(seed);
        let mut at = Cycles(0);
        (0..n)
            .map(|i| {
                let req = if i % 9 == 8 {
                    let base = 16 * row_bytes * (rng.below(48) + 1);
                    let dst = base + 16 * row_bytes * 200;
                    MemRequest::rowclone(
                        PhysAddr(base),
                        PhysAddr(dst),
                        rng.below(u64::from(u16::MAX)).max(1),
                        at,
                        rng.below(3) as u32,
                    )
                } else {
                    let addr = mc.mapping().compose(
                        rng.below(16) as usize,
                        rng.below(32),
                        (rng.below(8) * 64) as u32,
                    );
                    match i % 3 {
                        0 => MemRequest::store(addr, at, rng.below(3) as u32),
                        1 => MemRequest::pim(addr, at, rng.below(3) as u32),
                        _ => MemRequest::load(addr, at, rng.below(3) as u32),
                    }
                };
                at += Cycles(rng.below(900));
                req
            })
            .collect()
    }

    proptest! {
        /// Sharded and monolithic backends produce identical response
        /// streams and statistics for random request sequences, at any
        /// shard count, served request-at-a-time.
        #[test]
        fn sharded_matches_mono_serial(seed in 0u64..5000, shards in 1usize..9) {
            let cfg = SystemConfig::paper_table2();
            let mut mono = MemoryController::from_config(&cfg);
            let mut sharded = ShardedController::from_config(&cfg, shards);
            for req in build_stream(seed, 60) {
                let a = MemoryBackend::service(&mut mono, &req).unwrap();
                let b = MemoryBackend::service(&mut sharded, &req).unwrap();
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(mono.backend_stats(), sharded.backend_stats());
            prop_assert_eq!(mono.dram().total_stats(), sharded.dram_totals());
        }

        /// The same equivalence holds through the amortized batch path.
        #[test]
        fn sharded_matches_mono_batched(seed in 0u64..5000, shards in 1usize..9) {
            let cfg = SystemConfig::paper_table2();
            let mut mono = MemoryController::from_config(&cfg);
            let mut sharded = ShardedController::from_config(&cfg, shards);
            let reqs = build_stream(seed, 60);
            let a = mono.service_batch(&reqs).unwrap();
            let b = MemoryBackend::service_batch(&mut sharded, &reqs).unwrap();
            prop_assert_eq!(a, b);
            prop_assert_eq!(mono.backend_stats(), sharded.backend_stats());
        }

        /// Parallel shard servicing is bit-identical to the sequential
        /// sharded path and to the monolithic controller — responses,
        /// merged stats, DRAM totals and the full DRAM state digest — for
        /// arbitrary request batches (masked RowClones included) across
        /// shards ∈ {1,2,3,8} × workers ∈ {1,2,4} × the defense matrix
        /// (open, CTD, ACT, CRP, RFM blocking).
        #[test]
        fn parallel_matches_sequential_and_mono(
            seed in 0u64..2500,
            shard_sel in 0usize..4,
            worker_sel in 0usize..3,
            defense_sel in 0usize..5,
        ) {
            use crate::backend::ControllerBackend;
            use crate::controller::PeriodicBlock;
            use crate::defense::ActConfig;

            let shards = [1usize, 2, 3, 8][shard_sel];
            let workers = [1usize, 2, 4][worker_sel];
            let cfg = SystemConfig::paper_table2();
            let mut mono = MemoryController::from_config(&cfg);
            let mut seq = ShardedController::from_config(&cfg, shards);
            let mut par = ShardedController::from_config_parallel(&cfg, shards, workers);
            par.set_parallel_threshold(4); // tiny batches still dispatch

            // The swept defense matrix: a latency defense or the RFM
            // periodic-blocking mechanism, applied identically everywhere.
            let defense = match defense_sel {
                0 => None,
                1 => Some(Defense::Ctd),
                2 => Some(Defense::Act(ActConfig::aggressive())),
                3 => Some(Defense::Crp),
                _ => None,
            };
            let blocking = (defense_sel == 4).then(PeriodicBlock::rfm_paper_default);
            if let Some(d) = &defense {
                mono.set_defense(d.clone());
                seq.set_defense(d.clone());
                par.set_defense(d.clone());
            }
            if let Some(b) = blocking {
                mono.set_periodic_block(Some(b));
                seq.set_periodic_block(Some(b));
                par.set_periodic_block(Some(b));
            }

            let reqs = build_stream(seed, 54);
            for chunk in reqs.chunks(18) {
                let a = mono.service_batch(chunk).unwrap();
                let b = MemoryBackend::service_batch(&mut seq, chunk).unwrap();
                let c = MemoryBackend::service_batch(&mut par, chunk).unwrap();
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(&a, &c);
            }
            prop_assert_eq!(mono.backend_stats(), seq.backend_stats());
            prop_assert_eq!(mono.backend_stats(), par.backend_stats());
            prop_assert_eq!(mono.dram().total_stats(), par.dram_totals());
            let digest = ControllerBackend::dram_state_digest(&mono);
            prop_assert_eq!(digest, ControllerBackend::dram_state_digest(&seq));
            prop_assert_eq!(digest, ControllerBackend::dram_state_digest(&par));
        }
    }
}
