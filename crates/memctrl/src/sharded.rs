//! A bank-sharded memory backend: N inner [`MemoryController`]s, each
//! serving an interleaved slice of the banks.
//!
//! [`ShardedController`] partitions the flat bank space across `shards`
//! sub-controllers by `bank % shards` — the same address-mapping
//! interleave the device uses — and routes every request to the
//! sub-controller owning its bank. Each sub-controller is a complete
//! controller over the full geometry (global bank indices stay valid
//! everywhere; only the owned banks are ever touched), trading a modest
//! amount of idle per-bank state for exact index compatibility with the
//! monolithic controller. Because all controller state (row
//! buffers, busy times, blocking epochs, ACT counters, statistics) is
//! per-bank, the composite is *observably identical* to one monolithic
//! [`MemoryController`]: identical [`MemResponse`] streams, identical
//! merged [`BackendStats`], identical per-bank DRAM state, for any request
//! sequence. That equivalence is what lets the whole experiment suite run
//! on it unchanged, and it is enforced by the proptests at the bottom of
//! this module and by `tests/determinism.rs`.
//!
//! Masked RowClones span banks and therefore shards: the composite
//! validates all lanes up front (in mask-bit order, exactly like the
//! monolithic path), splits the lanes by owning shard, executes each
//! shard's slice, and reassembles the per-lane outcomes in mask order.
//!
//! # Example
//!
//! ```
//! use impact_core::addr::PhysAddr;
//! use impact_core::config::SystemConfig;
//! use impact_core::engine::{MemRequest, MemoryBackend};
//! use impact_core::time::Cycles;
//! use impact_memctrl::{MemoryController, ShardedController};
//!
//! let cfg = SystemConfig::paper_table2();
//! let mut mono = MemoryController::from_config(&cfg);
//! let mut sharded = ShardedController::from_config(&cfg, 4);
//! let req = MemRequest::load(PhysAddr(0x40), Cycles(0), 0);
//! assert_eq!(mono.service(&req)?, MemoryBackend::service(&mut sharded, &req)?);
//! # Ok::<(), impact_core::Error>(())
//! ```

use impact_core::addr::PhysAddr;
use impact_core::config::SystemConfig;
use impact_core::engine::{BackendStats, MemRequest, MemResponse, MemoryBackend, ReqKind};
use impact_core::error::{Error, Result};
use impact_core::time::Cycles;
use impact_dram::{BankStats, RowPolicy};

use crate::controller::{MemoryController, PeriodicBlock};
use crate::defense::Defense;

/// N inner memory controllers, each serving the banks `b` with
/// `b % shards == shard index`. See the module docs for the equivalence
/// contract with the monolithic [`MemoryController`].
pub struct ShardedController {
    subs: Vec<MemoryController>,
    /// Top-level counters the sub-controllers cannot attribute: whole
    /// masked RowClone operations (their lanes are split across shards).
    local: BackendStats,
}

impl core::fmt::Debug for ShardedController {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedController")
            .field("shards", &self.subs.len())
            .field("banks", &self.num_banks())
            .field("defense", &self.defense().name())
            .finish()
    }
}

impl ShardedController {
    /// Creates a controller with `shards` sub-controllers over the Table 2
    /// configuration in `cfg` (clamped to at least one shard and at most
    /// one shard per bank).
    #[must_use]
    pub fn from_config(cfg: &SystemConfig, shards: usize) -> ShardedController {
        let banks = cfg.dram_geometry.total_banks() as usize;
        let shards = shards.clamp(1, banks.max(1));
        ShardedController {
            subs: (0..shards)
                .map(|_| MemoryController::from_config(cfg))
                .collect(),
            local: BackendStats::default(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.subs.len()
    }

    /// Shard index owning `bank`.
    #[must_use]
    pub fn shard_of(&self, bank: usize) -> usize {
        bank % self.subs.len()
    }

    /// The sub-controller owning `bank`.
    #[must_use]
    pub fn sub_for_bank(&self, bank: usize) -> &MemoryController {
        &self.subs[self.shard_of(bank)]
    }

    fn sub_for_bank_mut(&mut self, bank: usize) -> &mut MemoryController {
        let s = self.shard_of(bank);
        &mut self.subs[s]
    }

    /// The active defense (uniform across shards).
    #[must_use]
    pub fn defense(&self) -> &Defense {
        self.subs[0].defense()
    }

    /// Installs a defense on every shard.
    pub fn set_defense(&mut self, defense: Defense) {
        for sub in &mut self.subs {
            sub.set_defense(defense.clone());
        }
    }

    /// Enables or disables periodic blocking on every shard.
    pub fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        for sub in &mut self.subs {
            sub.set_periodic_block(blocking);
        }
    }

    /// Switches the row policy on every shard.
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        for sub in &mut self.subs {
            sub.dram_mut().set_policy(policy);
        }
    }

    /// Merged controller statistics (bit-identical to the monolithic
    /// controller's counters for the same request sequence).
    #[must_use]
    pub fn stats(&self) -> BackendStats {
        let mut total = self.local.clone();
        for sub in &self.subs {
            total += sub.stats();
        }
        total
    }

    /// DRAM statistics aggregated over all banks of all shards. Each bank
    /// is only ever touched by its owning shard, so the sum equals the
    /// monolithic device total.
    #[must_use]
    pub fn dram_totals(&self) -> BankStats {
        let mut total = BankStats::default();
        for sub in &self.subs {
            total += sub.dram().total_stats();
        }
        total
    }

    fn geometry_row_bytes(&self) -> u64 {
        self.subs[0].dram().geometry().row_bytes
    }

    /// Serves one masked RowClone, replicating the monolithic validation
    /// order and response layout while the lanes execute on their owning
    /// shards.
    fn service_rowclone(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        mask: u64,
        now: Cycles,
        actor: u32,
    ) -> Result<MemResponse> {
        if mask == 0 {
            return Err(Error::InvalidRowClone("empty bank mask".into()));
        }
        let row_bytes = self.geometry_row_bytes();
        // Pre-validate every lane in mask-bit order before touching any
        // bank state, exactly like `MemoryController::rowclone`.
        let mut lanes = Vec::new();
        for i in 0..64u64 {
            if mask & (1 << i) == 0 {
                continue;
            }
            let s = src + i * row_bytes;
            let d = dst + i * row_bytes;
            self.subs[0].check_capacity(s)?;
            self.subs[0].check_capacity(d)?;
            let (sbank, srow) = self.subs[0].mapping().locate(s);
            let (dbank, drow) = self.subs[0].mapping().locate(d);
            if sbank != dbank {
                return Err(Error::InvalidRowClone(format!(
                    "mask bit {i}: src bank {sbank} != dst bank {dbank}"
                )));
            }
            self.sub_for_bank_mut(sbank).check_partition(sbank, actor)?;
            lanes.push((sbank, srow, drow));
        }
        // One whole masked operation; the lanes' DRAM-side counters land
        // in the owning shards.
        self.local.rowclones += 1;

        // Execute each shard's lane slice and reassemble in mask order.
        let shards = self.subs.len();
        let mut by_shard: Vec<Vec<(usize, usize, u64, u64)>> = vec![Vec::new(); shards];
        for (lane_idx, &(bank, srow, drow)) in lanes.iter().enumerate() {
            by_shard[self.shard_of(bank)].push((lane_idx, bank, srow, drow));
        }
        let mut per_bank = vec![None; lanes.len()];
        for (shard, slice) in by_shard.into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let shard_lanes: Vec<(usize, u64, u64)> =
                slice.iter().map(|&(_, b, s, d)| (b, s, d)).collect();
            let outcomes = self.subs[shard].rowclone_lanes(&shard_lanes, now, actor);
            for (&(lane_idx, ..), outcome) in slice.iter().zip(outcomes) {
                per_bank[lane_idx] = Some(outcome);
            }
        }
        let per_bank: Vec<_> = per_bank.into_iter().map(|o| o.expect("lane run")).collect();

        let mut completed = now;
        for &(_, _, lat) in &per_bank {
            completed = completed.max(now + lat);
        }
        // The response headline reports the first set lane.
        let first_lane = u64::from(mask.trailing_zeros());
        let row = self.subs[0].mapping().map(src + first_lane * row_bytes).row;
        let (bank, kind, _) = per_bank[0];
        Ok(MemResponse {
            bank,
            row,
            kind,
            latency: completed - now,
            completed_at: completed,
            per_bank,
        })
    }
}

impl MemoryBackend for ShardedController {
    fn service(&mut self, req: &MemRequest) -> Result<MemResponse> {
        match req.kind {
            ReqKind::Load | ReqKind::Store | ReqKind::Pim => {
                // Out-of-range addresses map to an arbitrary shard; every
                // sub rejects them with the same error the mono would.
                let bank = self.subs[0].mapping().flat_bank(req.addr);
                self.sub_for_bank_mut(bank).service(req)
            }
            ReqKind::RowClone { dst, mask } => {
                self.service_rowclone(req.addr, dst, mask, req.at, req.actor)
            }
        }
    }

    fn service_batch(&mut self, reqs: &[MemRequest]) -> Result<Vec<MemResponse>> {
        // Shards are state-disjoint, so scalar requests can be bucketed
        // per shard and each bucket serviced through the sub-controller's
        // amortized batch path; responses are reassembled in request
        // order. The bucketed path requires that no request can fail
        // mid-flight (the serial contract applies state up to the first
        // failure): RowClones (cross-shard), partition defenses (can
        // reject) and out-of-range addresses all fall back to the
        // in-order loop.
        let bucketable = !matches!(self.defense(), Defense::Mpr(_))
            && reqs.iter().all(|r| {
                matches!(r.kind, ReqKind::Load | ReqKind::Store | ReqKind::Pim)
                    && self.subs[0].check_capacity(r.addr).is_ok()
            });
        if !bucketable {
            return reqs.iter().map(|r| self.service(r)).collect();
        }
        let shards = self.subs.len();
        let mut by_shard: Vec<(Vec<usize>, Vec<MemRequest>)> =
            vec![(Vec::new(), Vec::new()); shards];
        for (i, req) in reqs.iter().enumerate() {
            let shard = self.shard_of(self.subs[0].mapping().flat_bank(req.addr));
            by_shard[shard].0.push(i);
            by_shard[shard].1.push(*req);
        }
        let mut out = vec![None; reqs.len()];
        for (shard, (indices, shard_reqs)) in by_shard.into_iter().enumerate() {
            if shard_reqs.is_empty() {
                continue;
            }
            let resps = self.subs[shard].service_batch(&shard_reqs)?;
            for (i, resp) in indices.into_iter().zip(resps) {
                out[i] = Some(resp);
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("request served"))
            .collect())
    }

    fn backend_stats(&self) -> BackendStats {
        self.stats()
    }

    fn defense_label(&self) -> &'static str {
        self.defense().name()
    }

    fn worst_case_latency(&self) -> Cycles {
        self.subs[0].worst_case_latency()
    }

    fn num_banks(&self) -> usize {
        self.subs[0].dram().num_banks()
    }

    fn rows_per_bank(&self) -> u64 {
        self.subs[0].dram().geometry().rows_per_bank
    }

    fn inject_row_activation(&mut self, bank: usize, row: u64, at: Cycles, actor: u32) {
        self.sub_for_bank_mut(bank)
            .dram_mut()
            .access_as(bank, row, at, actor);
    }

    fn probe_burst_safe(&self) -> bool {
        self.subs.iter().all(MemoryBackend::probe_burst_safe)
    }

    fn bank_of(&self, addr: PhysAddr) -> Option<usize> {
        self.subs[0].bank_of(addr)
    }

    fn bank_ready_at(&self, bank: usize) -> Cycles {
        self.sub_for_bank(bank).bank_ready_at(bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{ActConfig, MprPartition};
    use impact_core::rng::SimRng;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_table2()
    }

    /// A mixed request stream: loads/stores/PIMs over several banks and
    /// rows, plus masked RowClones whose lanes straddle shard boundaries.
    fn stream(mc: &MemoryController, n: u64, seed: u64) -> Vec<MemRequest> {
        let mut rng = SimRng::seed(seed);
        let row_bytes = mc.dram().geometry().row_bytes;
        let mut reqs = Vec::new();
        let mut at = Cycles(0);
        for i in 0..n {
            let bank = rng.below(16) as usize;
            let row = rng.below(8);
            let addr = mc.mapping().compose(bank, row, (rng.below(4) * 64) as u32);
            let actor = rng.below(2) as u32;
            let req = match i % 7 {
                0 => MemRequest::store(addr, at, actor),
                1 => MemRequest::pim(addr, at, actor),
                5 => {
                    let src = PhysAddr(64 * 16 * row_bytes * (1 + rng.below(3)));
                    let dst = PhysAddr(src.0 + 32 * 16 * row_bytes);
                    let mask = rng.below(u64::from(u16::MAX)).max(1);
                    MemRequest::rowclone(src, dst, mask, at, actor)
                }
                _ => MemRequest::load(addr, at, actor),
            };
            reqs.push(req);
            at += Cycles(rng.below(700));
        }
        reqs
    }

    fn assert_equivalent(configure: impl Fn(&mut MemoryController) + Copy, shards: usize) {
        let mut mono = MemoryController::from_config(&cfg());
        configure(&mut mono);
        let mut sharded = ShardedController::from_config(&cfg(), shards);
        for sub in &mut sharded.subs {
            configure(sub);
        }
        let reqs = stream(&mono, 160, 0x5A5A);
        for req in &reqs {
            let a = MemoryBackend::service(&mut mono, req);
            let b = MemoryBackend::service(&mut sharded, req);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("divergent results: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(mono.backend_stats(), sharded.backend_stats());
        assert_eq!(mono.dram().total_stats(), sharded.dram_totals());
        for bank in 0..16 {
            assert_eq!(
                mono.dram().bank(bank).stats(),
                sharded.sub_for_bank(bank).dram().bank(bank).stats(),
                "bank {bank} stats diverged"
            );
            assert_eq!(
                mono.dram().bank(bank).raw_open_row(),
                sharded.sub_for_bank(bank).dram().bank(bank).raw_open_row(),
                "bank {bank} open row diverged"
            );
        }
    }

    #[test]
    fn matches_mono_without_defense() {
        for shards in [1, 2, 3, 8, 16] {
            assert_equivalent(|_| {}, shards);
        }
    }

    #[test]
    fn matches_mono_under_defenses_and_blocking() {
        for shards in [2, 5] {
            assert_equivalent(|mc| mc.set_defense(Defense::Ctd), shards);
            assert_equivalent(|mc| mc.set_defense(Defense::Crp), shards);
            assert_equivalent(
                |mc| mc.set_defense(Defense::Act(ActConfig::aggressive())),
                shards,
            );
            assert_equivalent(
                |mc| mc.set_periodic_block(Some(PeriodicBlock::rfm_paper_default())),
                shards,
            );
        }
    }

    #[test]
    fn matches_mono_under_mpr() {
        let configure = |mc: &mut MemoryController| {
            let mut p = MprPartition::new(16);
            p.assign_round_robin(&[0, 1]);
            mc.set_defense(Defense::Mpr(p));
        };
        assert_equivalent(configure, 4);
    }

    #[test]
    fn batch_matches_mono_batch() {
        let mut mono = MemoryController::from_config(&cfg());
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        let reqs = stream(&mono, 200, 7);
        let scalars: Vec<MemRequest> = reqs
            .into_iter()
            .filter(|r| !matches!(r.kind, ReqKind::RowClone { .. }))
            .collect();
        assert_eq!(
            mono.service_batch(&scalars).unwrap(),
            MemoryBackend::service_batch(&mut sharded, &scalars).unwrap()
        );
        assert_eq!(mono.backend_stats(), sharded.backend_stats());
    }

    #[test]
    fn batch_with_rowclones_takes_loop_path() {
        let mut mono = MemoryController::from_config(&cfg());
        let mut sharded = ShardedController::from_config(&cfg(), 8);
        let reqs = stream(&mono, 120, 11); // includes RowClones
        assert_eq!(
            mono.service_batch(&reqs).unwrap(),
            MemoryBackend::service_batch(&mut sharded, &reqs).unwrap()
        );
        assert_eq!(mono.dram().total_stats(), sharded.dram_totals());
    }

    #[test]
    fn rowclone_counts_one_operation() {
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        let row_bytes = sharded.geometry_row_bytes();
        let req = MemRequest::rowclone(
            PhysAddr(0),
            PhysAddr(64 * 16 * row_bytes),
            0xFFFF,
            Cycles(0),
            0,
        );
        let resp = MemoryBackend::service(&mut sharded, &req).unwrap();
        assert_eq!(resp.per_bank.len(), 16);
        assert_eq!(sharded.backend_stats().rowclones, 1);
        assert_eq!(sharded.dram_totals().rowclones, 16);
    }

    #[test]
    fn shard_count_clamps() {
        assert_eq!(ShardedController::from_config(&cfg(), 0).shards(), 1);
        assert_eq!(ShardedController::from_config(&cfg(), 999).shards(), 16);
    }

    #[test]
    fn surface_reports_topology() {
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        assert_eq!(MemoryBackend::num_banks(&sharded), 16);
        assert!(sharded.rows_per_bank() > 0);
        assert_eq!(sharded.defense_label(), "None");
        assert!(sharded.probe_burst_safe());
        sharded.set_defense(Defense::Ctd);
        assert_eq!(sharded.defense_label(), "CTD");
        assert!(sharded.probe_burst_safe());
        sharded.set_periodic_block(Some(PeriodicBlock::rfm_paper_default()));
        assert!(!sharded.probe_burst_safe());
        let d = format!("{sharded:?}");
        assert!(d.contains("shards"), "{d}");
    }

    #[test]
    fn injection_routes_to_owner_shard() {
        use crate::backend::ControllerBackend;
        let mut sharded = ShardedController::from_config(&cfg(), 4);
        sharded.inject_row_activation(6, 9, Cycles(0), 42);
        assert_eq!(
            sharded.sub_for_bank(6).dram().bank(6).stats().activations,
            1
        );
        // Shards not owning bank 6 saw nothing.
        assert_eq!(sharded.shard_of(6), 2);
        assert_eq!(sharded.subs[0].dram().total_stats().activations, 0);
        assert_eq!(sharded.dram_totals().activations, 1);
        assert_eq!(
            ControllerBackend::dram_bank_stats(&sharded, 6).activations,
            1
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use impact_core::rng::SimRng;
    use proptest::prelude::*;

    /// Builds a valid random scalar+RowClone request stream.
    fn build_stream(seed: u64, n: u64) -> Vec<MemRequest> {
        let mc = MemoryController::from_config(&SystemConfig::paper_table2());
        let row_bytes = mc.dram().geometry().row_bytes;
        let mut rng = SimRng::seed(seed);
        let mut at = Cycles(0);
        (0..n)
            .map(|i| {
                let req = if i % 9 == 8 {
                    let base = 16 * row_bytes * (rng.below(48) + 1);
                    let dst = base + 16 * row_bytes * 200;
                    MemRequest::rowclone(
                        PhysAddr(base),
                        PhysAddr(dst),
                        rng.below(u64::from(u16::MAX)).max(1),
                        at,
                        rng.below(3) as u32,
                    )
                } else {
                    let addr = mc.mapping().compose(
                        rng.below(16) as usize,
                        rng.below(32),
                        (rng.below(8) * 64) as u32,
                    );
                    match i % 3 {
                        0 => MemRequest::store(addr, at, rng.below(3) as u32),
                        1 => MemRequest::pim(addr, at, rng.below(3) as u32),
                        _ => MemRequest::load(addr, at, rng.below(3) as u32),
                    }
                };
                at += Cycles(rng.below(900));
                req
            })
            .collect()
    }

    proptest! {
        /// Sharded and monolithic backends produce identical response
        /// streams and statistics for random request sequences, at any
        /// shard count, served request-at-a-time.
        #[test]
        fn sharded_matches_mono_serial(seed in 0u64..5000, shards in 1usize..9) {
            let cfg = SystemConfig::paper_table2();
            let mut mono = MemoryController::from_config(&cfg);
            let mut sharded = ShardedController::from_config(&cfg, shards);
            for req in build_stream(seed, 60) {
                let a = MemoryBackend::service(&mut mono, &req).unwrap();
                let b = MemoryBackend::service(&mut sharded, &req).unwrap();
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(mono.backend_stats(), sharded.backend_stats());
            prop_assert_eq!(mono.dram().total_stats(), sharded.dram_totals());
        }

        /// The same equivalence holds through the amortized batch path.
        #[test]
        fn sharded_matches_mono_batched(seed in 0u64..5000, shards in 1usize..9) {
            let cfg = SystemConfig::paper_table2();
            let mut mono = MemoryController::from_config(&cfg);
            let mut sharded = ShardedController::from_config(&cfg, shards);
            let reqs = build_stream(seed, 60);
            let a = mono.service_batch(&reqs).unwrap();
            let b = MemoryBackend::service_batch(&mut sharded, &reqs).unwrap();
            prop_assert_eq!(a, b);
            prop_assert_eq!(mono.backend_stats(), sharded.backend_stats());
        }
    }
}
