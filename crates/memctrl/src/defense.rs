//! Defense mechanisms against IMPACT (§7 of the paper).

use impact_core::time::{Clock, Cycles, Nanos};

/// Bank-ownership table for the MPR defense (§7.1): each DRAM bank is
/// allocated to at most one actor; accesses by anyone else are rejected.
///
/// # Example
///
/// ```
/// use impact_memctrl::MprPartition;
///
/// let mut p = MprPartition::new(16);
/// p.assign(0, 7);
/// assert!(p.allows(0, 7));
/// assert!(!p.allows(0, 8));
/// assert!(p.allows(1, 8)); // unassigned banks are open
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MprPartition {
    owners: Vec<Option<u32>>,
}

impl MprPartition {
    /// Creates a partition table for `banks` banks, all unassigned.
    #[must_use]
    pub fn new(banks: usize) -> MprPartition {
        MprPartition {
            owners: vec![None; banks],
        }
    }

    /// Assigns `bank` to `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn assign(&mut self, bank: usize, actor: u32) {
        self.owners[bank] = Some(actor);
    }

    /// Splits all banks evenly among `actors` in round-robin order.
    pub fn assign_round_robin(&mut self, actors: &[u32]) {
        if actors.is_empty() {
            return;
        }
        for (i, owner) in self.owners.iter_mut().enumerate() {
            *owner = Some(actors[i % actors.len()]);
        }
    }

    /// Whether `actor` may access `bank`.
    #[must_use]
    pub fn allows(&self, bank: usize, actor: u32) -> bool {
        match self.owners.get(bank) {
            Some(Some(owner)) => *owner == actor,
            Some(None) => true,
            None => false,
        }
    }

    /// Owner of a bank, if assigned.
    #[must_use]
    pub fn owner(&self, bank: usize) -> Option<u32> {
        self.owners.get(bank).copied().flatten()
    }

    /// Banks owned by `actor`.
    #[must_use]
    pub fn banks_of(&self, actor: u32) -> Vec<usize> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(actor))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Configuration of the ACT defense (§7.4).
///
/// ACT counts row-buffer conflicts per bank per epoch. When a bank sees at
/// least `trigger_conflicts` conflicts in an epoch it serves all requests
/// at worst-case (constant-time) latency for the next `ct_epochs` epochs,
/// re-extending if conflicts persist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActConfig {
    /// Conflicts per epoch required to trigger the constant-time mode.
    pub trigger_conflicts: u64,
    /// Number of epochs the constant-time mode stays on once triggered.
    pub ct_epochs: u64,
    /// Epoch length in nanoseconds (the paper uses 1000 ns).
    pub epoch_ns: f64,
}

impl ActConfig {
    /// ACT-Aggressive: constant-time for 4000 epochs after the 1st conflict.
    #[must_use]
    pub fn aggressive() -> ActConfig {
        ActConfig {
            trigger_conflicts: 1,
            ct_epochs: 4000,
            epoch_ns: 1000.0,
        }
    }

    /// ACT-Mild: constant-time for 2 epochs after the 1st conflict.
    #[must_use]
    pub fn mild() -> ActConfig {
        ActConfig {
            trigger_conflicts: 1,
            ct_epochs: 2,
            epoch_ns: 1000.0,
        }
    }

    /// ACT-Conservative: constant-time for 2 epochs after 5 conflicts.
    #[must_use]
    pub fn conservative() -> ActConfig {
        ActConfig {
            trigger_conflicts: 5,
            ct_epochs: 2,
            epoch_ns: 1000.0,
        }
    }

    /// Epoch length in cycles under `clock`.
    #[must_use]
    pub fn epoch_cycles(&self, clock: Clock) -> Cycles {
        clock.cycles_ceil(Nanos(self.epoch_ns))
    }
}

/// The defense employed by the memory controller.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Defense {
    /// No defense (baseline).
    #[default]
    None,
    /// Bank-level memory partitioning (§7.1).
    Mpr(MprPartition),
    /// Closed-row policy (§7.2): the controller precharges after every
    /// access, so every access is a row miss.
    Crp,
    /// Constant-time DRAM (§7.3): every access observes worst-case latency.
    Ctd,
    /// Adaptive constant-time DRAM (§7.4).
    Act(ActConfig),
}

impl Defense {
    /// Short display name, matching the paper's figure legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Defense::None => "None",
            Defense::Mpr(_) => "MPR",
            Defense::Crp => "CRP",
            Defense::Ctd => "CTD",
            Defense::Act(c) if *c == ActConfig::aggressive() => "ACT-Aggressive",
            Defense::Act(c) if *c == ActConfig::mild() => "ACT-Mild",
            Defense::Act(c) if *c == ActConfig::conservative() => "ACT-Conservative",
            Defense::Act(_) => "ACT",
        }
    }

    /// Whether this defense may pad access latency (the variants the
    /// controller's `apply_latency_defense` acts on). The batched request
    /// path consults this to decide when per-access padding checks can be
    /// skipped, so a new padding defense only needs updating here.
    #[must_use]
    pub fn pads_latency(&self) -> bool {
        match self {
            Defense::Ctd | Defense::Act(_) => true,
            Defense::None | Defense::Mpr(_) | Defense::Crp => false,
        }
    }
}

/// Per-bank runtime state of the ACT defense.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ActBankState {
    /// Epoch index of the counters below.
    pub epoch: u64,
    /// Conflicts observed in `epoch`.
    pub conflicts: u64,
    /// Constant-time mode is active for epochs `< ct_until`.
    pub ct_until: u64,
}

impl ActBankState {
    /// Rolls the state forward to `epoch`, applying the trigger rule at
    /// each boundary crossed.
    pub(crate) fn roll_to(&mut self, epoch: u64, cfg: &ActConfig) {
        if epoch == self.epoch {
            return;
        }
        // Evaluate the epoch that just ended.
        if self.conflicts >= cfg.trigger_conflicts {
            let until = self.epoch + 1 + cfg.ct_epochs;
            if until > self.ct_until {
                self.ct_until = until;
            }
        }
        self.epoch = epoch;
        self.conflicts = 0;
    }

    /// Whether constant-time mode is active in the current epoch.
    pub(crate) fn constant_time(&self) -> bool {
        self.epoch < self.ct_until
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn mpr_ownership() {
        let mut p = MprPartition::new(4);
        p.assign(0, 1);
        p.assign(1, 2);
        assert!(p.allows(0, 1));
        assert!(!p.allows(0, 2));
        assert!(p.allows(2, 99));
        assert_eq!(p.owner(0), Some(1));
        assert_eq!(p.owner(2), None);
        assert!(!p.allows(100, 1), "out-of-range bank denied");
    }

    #[test]
    fn mpr_round_robin() {
        let mut p = MprPartition::new(6);
        p.assign_round_robin(&[10, 20]);
        assert_eq!(p.banks_of(10), vec![0, 2, 4]);
        assert_eq!(p.banks_of(20), vec![1, 3, 5]);
    }

    #[test]
    fn act_configs_match_paper() {
        let a = ActConfig::aggressive();
        assert_eq!((a.trigger_conflicts, a.ct_epochs), (1, 4000));
        let m = ActConfig::mild();
        assert_eq!((m.trigger_conflicts, m.ct_epochs), (1, 2));
        let c = ActConfig::conservative();
        assert_eq!((c.trigger_conflicts, c.ct_epochs), (5, 2));
        for cfg in [a, m, c] {
            assert_eq!(cfg.epoch_ns, 1000.0);
        }
    }

    #[test]
    fn act_state_triggers_and_expires() {
        let cfg = ActConfig::mild();
        let mut s = ActBankState::default();
        s.conflicts = 1;
        s.roll_to(1, &cfg);
        // Triggered at end of epoch 0: CT for epochs 1 and 2.
        assert!(s.constant_time());
        s.roll_to(2, &cfg);
        assert!(s.constant_time());
        s.roll_to(3, &cfg);
        assert!(!s.constant_time());
    }

    #[test]
    fn act_state_extends_under_persistent_conflicts() {
        let cfg = ActConfig::mild();
        let mut s = ActBankState::default();
        s.conflicts = 1;
        s.roll_to(1, &cfg);
        assert!(s.constant_time());
        // Conflicts continue during CT mode.
        s.conflicts = 2;
        s.roll_to(2, &cfg);
        assert!(s.constant_time());
        s.roll_to(3, &cfg);
        // Extended because epoch 1 also exceeded the threshold.
        assert!(s.constant_time());
    }

    #[test]
    fn act_conservative_needs_five() {
        let cfg = ActConfig::conservative();
        let mut s = ActBankState::default();
        s.conflicts = 4;
        s.roll_to(1, &cfg);
        assert!(!s.constant_time());
        s.conflicts = 5;
        s.roll_to(2, &cfg);
        assert!(s.constant_time());
    }

    #[test]
    fn defense_names() {
        assert_eq!(Defense::None.name(), "None");
        assert_eq!(Defense::Crp.name(), "CRP");
        assert_eq!(Defense::Ctd.name(), "CTD");
        assert_eq!(
            Defense::Act(ActConfig::aggressive()).name(),
            "ACT-Aggressive"
        );
        assert_eq!(Defense::Act(ActConfig::mild()).name(), "ACT-Mild");
        assert_eq!(
            Defense::Act(ActConfig::conservative()).name(),
            "ACT-Conservative"
        );
        assert_eq!(Defense::Mpr(MprPartition::new(2)).name(), "MPR");
    }

    #[test]
    fn epoch_cycles_at_paper_clock() {
        let c = ActConfig::mild().epoch_cycles(Clock::paper_default());
        assert_eq!(c, Cycles(2600));
    }
}
