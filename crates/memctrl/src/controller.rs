//! The memory controller proper.

use std::sync::Arc;

use impact_core::addr::PhysAddr;
use impact_core::config::SystemConfig;
use impact_core::engine::{MemRequest, MemResponse, ReqKind};
use impact_core::error::{Error, Result};
use impact_core::snapshot::Snapshot;
use impact_core::time::{Clock, Cycles};
use impact_dram::{AddressMapping, DramDevice, DramSnap, RowBufferKind, RowInterleaved, RowPolicy};

use crate::defense::{ActBankState, ActConfig, Defense};

/// Controller statistics (the shared backend-stats vocabulary; every
/// counter is maintained by this controller).
pub use impact_core::engine::BackendStats as CtrlStats;

/// Telemetry probe for the controller's copy-on-write write-backs:
/// records a `ctrl.cow.unshares` event when the `Arc::make_mut` the
/// caller is about to perform will actually clone — i.e. a snapshot or
/// fork still aliases the state. Pure observation; the unshare itself
/// stays at the call site with its own aliasing justification.
#[inline]
fn note_unshare<T>(arc: &Arc<T>) {
    if Arc::strong_count(arc) > 1 {
        impact_obs::registry().cow_unshares.incr();
    }
}

/// A periodic per-bank blocking mechanism: refresh (REF) or RowHammer
/// mitigations (RFM / PRAC, §8.4 of the paper). Once per `interval` per
/// bank, the next request to that bank is delayed by `block` — the
/// paper notes these preventive actions cost 350–1400 ns, far above the
/// row-conflict delta, so receivers can filter them out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicBlock {
    /// Interval between blocking events, in cycles.
    pub interval: Cycles,
    /// Duration of one blocking event, in cycles.
    pub block: Cycles,
}

impl PeriodicBlock {
    /// DDR5-style refresh management blocking: one preventive action every
    /// ~4 us costing 350 ns (the paper's lower bound), at the 2.6 GHz
    /// clock.
    #[must_use]
    pub fn rfm_paper_default() -> PeriodicBlock {
        PeriodicBlock {
            interval: Cycles(10_400), // 4 us
            block: Cycles(910),       // 350 ns
        }
    }
}

/// Result of one memory access through the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The accessed physical address.
    pub addr: PhysAddr,
    /// Flat bank index the access mapped to.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Ground-truth row-buffer classification (before any defense masking).
    pub kind: RowBufferKind,
    /// Latency observed by the requester, including the controller front
    /// end and any defense-imposed padding.
    pub latency: Cycles,
    /// Completion time.
    pub completed_at: Cycles,
}

impl From<MemAccess> for MemResponse {
    fn from(a: MemAccess) -> MemResponse {
        MemResponse {
            bank: a.bank,
            row: a.row,
            kind: a.kind,
            latency: a.latency,
            completed_at: a.completed_at,
            per_bank: Vec::new(),
        }
    }
}

/// Result of a masked RowClone operation (one per-bank copy per mask bit).
#[derive(Debug, Clone)]
pub struct RowCloneOutcome {
    /// Per-bank outcomes: (flat bank, classification, observed latency).
    pub per_bank: Vec<(usize, RowBufferKind, Cycles)>,
    /// Latency of the whole masked operation as observed by the issuing
    /// thread: banks operate in parallel, so this is the slowest bank plus
    /// the front-end overhead.
    pub latency: Cycles,
    /// Completion time of the whole operation.
    pub completed_at: Cycles,
}

/// Batches shorter than this are served by the plain serial loop: the
/// counting-sort setup (gather, locate, bucket) only pays for itself once
/// a batch revisits banks.
const BUCKET_MIN: usize = 16;

/// Latency-padding policy of a batch, hoisted out of the per-request loop
/// so the tight per-bank loops match on a register instead of re-reading
/// `self.defense` (and re-deriving the ACT epoch length) per access.
#[derive(Clone, Copy)]
enum Pad {
    /// No padding: raw latency through (None / CRP / MPR).
    Flat,
    /// CTD: every access padded to worst case.
    Ctd,
    /// ACT: per-bank trigger state decides.
    Act { cfg: ActConfig, epoch_len: u64 },
}

/// Per-batch servicing parameters, hoisted once so the batch loops never
/// re-read controller configuration per request.
#[derive(Clone, Copy)]
pub(crate) struct BatchEnv {
    overhead: Cycles,
    blocking: Option<PeriodicBlock>,
    worst: Cycles,
    pad: Pad,
}

/// Reusable counting-sort scratch: bank counts stay allocated (and zeroed)
/// between batches so bucketing never re-allocates on the hot path.
#[derive(Debug, Default)]
struct SortScratch {
    /// Per-bank request count, then bucket write cursor; restored to all
    /// zeros after every batch (only touched banks are dirtied).
    counts: Vec<u32>,
    /// Request indices grouped by bank, original order within each bank.
    order: Vec<u32>,
    /// Banks hit by the current batch, in first-appearance order.
    touched: Vec<u32>,
}

/// Per-controller batch scratch buffers (addresses, locations, sort state).
#[derive(Debug, Default)]
struct BatchScratch {
    addrs: Vec<PhysAddr>,
    locs: Vec<(u32, u64)>,
    /// Identity index list (`0..n`) for whole-batch scatter calls.
    ident: Vec<u32>,
    sort: SortScratch,
}

/// A placeholder [`MemResponse`] used to pre-size scatter output buffers;
/// every slot is overwritten before the buffer is observed.
pub(crate) fn empty_response() -> MemResponse {
    MemResponse {
        bank: 0,
        row: 0,
        kind: RowBufferKind::Hit,
        latency: Cycles::ZERO,
        completed_at: Cycles::ZERO,
        per_bank: Vec::new(),
    }
}

/// The memory controller: address mapping + DRAM device + defenses.
///
/// The per-bank defense arrays (`act_state`, `block_epoch`) live behind
/// [`Arc`]s so [`Snapshot::snapshot`] / [`Snapshot::fork`] are O(metadata)
/// at any bank count: copies share the arrays until the first mutation
/// (`Arc::make_mut`), exactly like the DRAM bank columns underneath.
// analyze::allow(cow-aliasing): snapshot/fork sharing; every mutation goes
// through Arc::make_mut
pub struct MemoryController {
    dram: DramDevice,
    mapping: Box<dyn AddressMapping>,
    overhead: Cycles,
    clock: Clock,
    defense: Defense,
    act_state: Arc<Vec<ActBankState>>,
    blocking: Option<PeriodicBlock>,
    block_epoch: Arc<Vec<u64>>,
    stats: CtrlStats,
    scratch: BatchScratch,
}

impl core::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MemoryController")
            .field("banks", &self.dram.num_banks())
            .field("defense", &self.defense.name())
            .field("overhead", &self.overhead)
            .finish()
    }
}

impl MemoryController {
    /// Creates a controller over `dram` with an explicit mapping.
    #[must_use]
    pub fn new(
        dram: DramDevice,
        mapping: Box<dyn AddressMapping>,
        overhead: Cycles,
        clock: Clock,
    ) -> MemoryController {
        let banks = dram.num_banks();
        MemoryController {
            dram,
            mapping,
            overhead,
            clock,
            defense: Defense::None,
            act_state: Arc::new(vec![ActBankState::default(); banks]),
            blocking: None,
            block_epoch: Arc::new(vec![0; banks]),
            stats: CtrlStats::default(),
            scratch: BatchScratch::default(),
        }
    }

    /// Enables a periodic blocking mechanism (refresh / RFM / PRAC); pass
    /// `None` to disable.
    pub fn set_periodic_block(&mut self, blocking: Option<PeriodicBlock>) {
        self.blocking = blocking;
        self.block_epoch = Arc::new(vec![0; self.dram.num_banks()]);
    }

    /// The active periodic blocking mechanism, if any.
    #[must_use]
    pub fn periodic_block(&self) -> Option<PeriodicBlock> {
        self.blocking
    }

    /// Blocking delay due at `bank` for a request at `now` (consumes the
    /// pending event).
    fn take_block_delay(&mut self, bank: usize, now: Cycles) -> Cycles {
        let Some(b) = self.blocking else {
            return Cycles::ZERO;
        };
        let epoch = now.0 / b.interval.0.max(1);
        if epoch > self.block_epoch[bank] {
            note_unshare(&self.block_epoch);
            // analyze::allow(cow-aliasing): rolls this bank's RFM epoch
            // forward; guarded by the epoch compare so shared state is
            // only copied when the write actually happens
            Arc::make_mut(&mut self.block_epoch)[bank] = epoch;
            self.stats.blocked += 1;
            b.block
        } else {
            Cycles::ZERO
        }
    }

    /// Creates the Table 2 controller: row-interleaved mapping, open-page
    /// policy, no defense.
    #[must_use]
    pub fn from_config(cfg: &SystemConfig) -> MemoryController {
        let dram = DramDevice::from_config(cfg);
        let mapping = Box::new(RowInterleaved::new(cfg.dram_geometry));
        MemoryController::new(
            dram,
            mapping,
            Cycles(cfg.memctrl_overhead_cycles),
            cfg.clock,
        )
    }

    /// [`MemoryController::from_config`] over a strided bank view
    /// ([`DramDevice::from_config_bank_view`]): the controller stores only
    /// the banks `b` with `b % stride == offset`, packed densely, while
    /// every API keeps speaking global flat bank indices. This is how the
    /// sharded backend keeps each shard's bank state as cache-dense as the
    /// monolithic controller's; the caller must route only owned banks
    /// here.
    #[must_use]
    pub fn from_config_bank_view(
        cfg: &SystemConfig,
        stride: usize,
        offset: usize,
    ) -> MemoryController {
        let dram = DramDevice::from_config_bank_view(cfg, stride, offset);
        let mapping = Box::new(RowInterleaved::new(cfg.dram_geometry));
        MemoryController::new(
            dram,
            mapping,
            Cycles(cfg.memctrl_overhead_cycles),
            cfg.clock,
        )
    }

    /// Installs a defense. CRP switches the device row policy; disabling
    /// CRP restores the open-page policy.
    pub fn set_defense(&mut self, defense: Defense) {
        match &defense {
            Defense::Crp => self.dram.set_policy(RowPolicy::closed_page()),
            _ => self.dram.set_policy(RowPolicy::open_page()),
        }
        self.act_state = Arc::new(vec![ActBankState::default(); self.dram.num_banks()]);
        self.defense = defense;
    }

    /// The active defense.
    #[must_use]
    pub fn defense(&self) -> &Defense {
        &self.defense
    }

    /// The DRAM device (ground-truth state inspection).
    #[must_use]
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    /// Mutable device access (for ablations that change the row policy).
    pub fn dram_mut(&mut self) -> &mut DramDevice {
        &mut self.dram
    }

    /// The address mapping.
    #[must_use]
    pub fn mapping(&self) -> &dyn AddressMapping {
        self.mapping.as_ref()
    }

    /// Controller statistics.
    #[must_use]
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Front-end overhead charged on every request.
    #[must_use]
    pub fn overhead(&self) -> Cycles {
        self.overhead
    }

    /// Serves a demand access to `addr` at `now` on behalf of `actor`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PartitionViolation`] if MPR is active and the actor
    /// does not own the target bank, and [`Error::AddressOutOfRange`] if the
    /// address exceeds the device capacity.
    pub fn access(&mut self, addr: PhysAddr, now: Cycles, actor: u32) -> Result<MemAccess> {
        self.check_capacity(addr)?;
        let (bank, row) = self.mapping.locate(addr);
        self.check_partition(bank, actor)?;
        self.stats.accesses += 1;

        let block = self.take_block_delay(bank, now);
        let out = self.dram.access_as(bank, row, now + block, actor);
        let raw_latency = out.completed_at - now + self.overhead;
        let latency = self.apply_latency_defense(bank, out.kind, raw_latency, now);
        Ok(MemAccess {
            addr,
            bank,
            row,
            kind: out.kind,
            latency,
            completed_at: now + latency,
        })
    }

    /// Serves one engine-level [`MemRequest`] (the entry point the
    /// simulator core routes every memory operation through).
    ///
    /// # Errors
    ///
    /// As for [`MemoryController::access`] and
    /// [`MemoryController::rowclone`].
    pub fn service(&mut self, req: &MemRequest) -> Result<MemResponse> {
        match req.kind {
            ReqKind::Load | ReqKind::Store | ReqKind::Pim => {
                Ok(self.access(req.addr, req.at, req.actor)?.into())
            }
            ReqKind::RowClone { dst, mask } => {
                // The response headline reports the first *set* lane, so
                // its source row lives `trailing_zeros` row-chunks past
                // the range base (rowclone rejects empty masks).
                let first_lane = u64::from(mask.trailing_zeros());
                let row = self
                    .mapping
                    .map(req.addr + first_lane * self.dram.geometry().row_bytes)
                    .row;
                let out = self.rowclone(req.addr, dst, mask, req.at, req.actor)?;
                let (bank, kind, _) = out.per_bank[0];
                Ok(MemResponse {
                    bank,
                    row,
                    kind,
                    latency: out.latency,
                    completed_at: out.completed_at,
                    per_bank: out.per_bank,
                })
            }
        }
    }

    /// Serves a batch of requests, returning responses in request order.
    /// Responses are bit-identical to issuing each request through
    /// [`MemoryController::service`] serially — see
    /// [`MemoryController::service_batch_into`] for how.
    ///
    /// # Errors
    ///
    /// Fails on the first failing request; state up to that request has
    /// been applied, matching the serial path.
    pub fn service_batch(&mut self, reqs: &[MemRequest]) -> Result<Vec<MemResponse>> {
        let mut out = Vec::with_capacity(reqs.len());
        self.service_batch_into(reqs, &mut out)?;
        Ok(out)
    }

    /// [`MemoryController::service_batch`] into a caller-owned response
    /// buffer, so replay-heavy loops reuse one allocation across batches.
    /// `out` is cleared first and then filled with one response per
    /// request, in request order.
    ///
    /// Scalar runs of the batch take a counting-sort bucketed path: one
    /// pass locates every address ([`AddressMapping::locate_batch`] — a
    /// single virtual call), request indices are radix-bucketed by flat
    /// bank, and a tight per-bank loop classifies hit/miss/conflict with
    /// the bank's state held in registers ([`impact_dram::BankCursor`]),
    /// scattering responses back to their original positions. Bank
    /// processing order is unobservable: banks are timed independently,
    /// and the stats counters are order-independent sums.
    ///
    /// # Errors
    ///
    /// Fails on the first failing request, exactly as the serial path
    /// would: bucketing pre-validates the run (capacity + MPR partition —
    /// both pure), and a run containing any failure is replayed through
    /// the serial path instead so state and error surface at the same
    /// request. On error, `out` holds the responses completed so far.
    pub fn service_batch_into(
        &mut self,
        reqs: &[MemRequest],
        out: &mut Vec<MemResponse>,
    ) -> Result<()> {
        out.clear();
        impact_obs::registry()
            .ctrl_batch_size
            .record(reqs.len() as u64);
        let mut i = 0;
        while i < reqs.len() {
            if matches!(reqs[i].kind, ReqKind::RowClone { .. }) {
                let resp = self.service(&reqs[i])?;
                out.push(resp);
                i += 1;
            } else {
                let mut j = i + 1;
                while j < reqs.len() && !matches!(reqs[j].kind, ReqKind::RowClone { .. }) {
                    j += 1;
                }
                self.service_scalar_segment(&reqs[i..j], out)?;
                i = j;
            }
        }
        Ok(())
    }

    /// Serves a run of scalar (non-RowClone) requests, appending to `out`.
    fn service_scalar_segment(
        &mut self,
        reqs: &[MemRequest],
        out: &mut Vec<MemResponse>,
    ) -> Result<()> {
        if reqs.len() < BUCKET_MIN {
            impact_obs::registry().ctrl_serial_segments.incr();
            // Hoisted once per run: the lean path is valid exactly when
            // `take_block_delay` would always return zero and
            // `apply_latency_defense` would always return the raw latency.
            let lean = self.blocking.is_none() && !self.defense.pads_latency();
            for req in reqs {
                let resp = if lean {
                    self.access_lean(req.addr, req.at, req.actor)?.into()
                } else {
                    self.service(req)?
                };
                out.push(resp);
            }
            return Ok(());
        }

        let mut scratch = core::mem::take(&mut self.scratch);
        scratch.addrs.clear();
        let mut max_addr = 0u64;
        scratch.addrs.extend(reqs.iter().map(|r| {
            max_addr = max_addr.max(r.addr.0);
            r.addr
        }));
        self.mapping.locate_batch(&scratch.addrs, &mut scratch.locs);

        // Pre-validate the whole run. Both checks are pure functions of
        // the request, so passing here guarantees the bucketed path hits
        // no error; any failure sends the run down the serial path, which
        // reproduces the exact serial mutation/error order. Capacity is a
        // single comparison (the gather above tracked the run's maximum
        // address); the per-request partition pass only runs under MPR.
        let ok = max_addr < self.dram.geometry().capacity_bytes()
            && match &self.defense {
                Defense::Mpr(p) => reqs
                    .iter()
                    .zip(&scratch.locs)
                    .all(|(req, &(bank, _))| p.allows(bank as usize, req.actor)),
                _ => true,
            };
        if !ok {
            impact_obs::registry().ctrl_serial_segments.incr();
            self.scratch = scratch;
            for req in reqs {
                let resp = self.service(req)?;
                out.push(resp);
            }
            return Ok(());
        }

        if reqs.len() <= self.dram.num_banks() {
            // Sparse by construction (cannot average two requests per
            // bank): serve in order, appending directly — no index list,
            // no placeholder resize, no scatter.
            impact_obs::registry().ctrl_sparse_segments.incr();
            self.service_located_append(reqs, &scratch.locs, out);
            self.scratch = scratch;
            return Ok(());
        }

        scratch.ident.clear();
        // analyze::allow(lossy-cast): run length asserted to fit u32 in
        // service_scatter before any index is used
        scratch.ident.extend((0..reqs.len()).map(|i| i as u32));
        let base = out.len();
        out.resize(base + reqs.len(), empty_response());
        self.service_scatter(
            reqs,
            &scratch.locs,
            &scratch.ident,
            &mut scratch.sort,
            &mut out[base..],
        );
        self.scratch = scratch;
        Ok(())
    }

    /// Serves the pre-located, pre-validated scalar requests selected by
    /// `indices`, writing the response for request `i` into `out[i]`.
    /// This is the bucketed hot core shared by the monolithic batch path
    /// and the sharded controller (whose shards each service an index
    /// subset of one batch against a shared `locs` table).
    ///
    /// A counting pass buckets the selected requests by flat bank, then
    /// the batch shape picks the servicing loop:
    ///
    /// * **dense** (banks revisited): tight per-bank loops with the bank's
    ///   state held in registers ([`impact_dram::BankCursor`]), responses
    ///   scattered back to request positions;
    /// * **sparse** (mostly singleton buckets, e.g. one-request-per-bank
    ///   init sweeps): a serial located loop in request order — bucketing
    ///   would add work without ever reusing a cursor.
    ///
    /// Both loops are bit-identical to serial [`MemoryController::service`]
    /// calls: per-bank state only depends on same-bank requests (served in
    /// request order either way) and the stats counters are
    /// order-independent sums.
    ///
    /// Preconditions (debug-asserted): `locs[i]` is `mapping.locate` of
    /// `reqs[i]`, every indexed address is within capacity, no indexed
    /// request is a RowClone, no MPR partition check can fail, and
    /// `out[i]` exists for every index.
    fn service_scatter(
        &mut self,
        reqs: &[MemRequest],
        locs: &[(u32, u64)],
        indices: &[u32],
        sort: &mut SortScratch,
        out: &mut [MemResponse],
    ) {
        debug_assert_eq!(reqs.len(), locs.len());
        debug_assert!(indices.iter().all(|&i| {
            let i = i as usize;
            i < reqs.len()
                && i < out.len()
                && !matches!(reqs[i].kind, ReqKind::RowClone { .. })
                && self.check_capacity(reqs[i].addr).is_ok()
        }));
        let m = indices.len();
        if m == 0 {
            return;
        }
        assert!(
            u32::try_from(reqs.len()).is_ok(),
            "batch of {} requests exceeds u32 bucket indexing",
            reqs.len()
        );

        let env = self.batch_env();
        let mut blocked = 0u64;
        let mut padded = 0u64;

        // A batch that cannot average two requests per bank is sparse by
        // construction — the one-request-per-bank init sweeps land here —
        // and skips the counting machinery outright.
        let num_banks = self.dram.num_banks();
        let mut sparse = m <= num_banks;
        if !sparse {
            // Counting pass. `counts` is zeroed on entry (every exit path
            // re-zeros the touched slots), so only the banks this batch
            // actually hits cost anything.
            if sort.counts.len() < num_banks {
                sort.counts.resize(num_banks, 0);
            }
            sort.touched.clear();
            for &i in indices {
                let bank = locs[i as usize].0;
                let b = bank as usize;
                if sort.counts[b] == 0 {
                    sort.touched.push(bank);
                }
                sort.counts[b] += 1;
            }
            // Mostly-singleton buckets: bucketing would add work without
            // ever reusing a cursor. Fall through to the sparse loop.
            sparse = sort.touched.len() * 2 > m;
            if sparse {
                for &bank in &sort.touched {
                    sort.counts[bank as usize] = 0;
                }
            }
        }

        if sparse {
            impact_obs::registry().ctrl_sparse_segments.incr();
            // Serve serially in request order; per-bank state round-trips
            // through the arrays per request (dirtying only the fields an
            // access changes), with no order/prefix/scatter passes.
            for &oi in indices {
                let i = oi as usize;
                let (bank, row) = locs[i];
                out[i] = self.serve_located(
                    &reqs[i],
                    bank as usize,
                    row,
                    env,
                    &mut blocked,
                    &mut padded,
                );
            }
        } else {
            impact_obs::registry().ctrl_dense_segments.incr();
            // Dense: counts become bucket start cursors (buckets laid out
            // in first-appearance order), then the stable scatter advances
            // them to bucket ends.
            let timing = *self.dram.timing();
            let policy = self.dram.policy();
            let BatchEnv {
                overhead,
                blocking,
                worst,
                pad,
            } = env;
            sort.order.clear();
            sort.order.resize(m, 0);
            let mut cum = 0u32;
            for &bank in &sort.touched {
                let b = bank as usize;
                let c = sort.counts[b];
                sort.counts[b] = cum;
                cum += c;
            }
            for &i in indices {
                let b = locs[i as usize].0 as usize;
                sort.order[sort.counts[b] as usize] = i;
                sort.counts[b] += 1;
            }

            let act = matches!(pad, Pad::Act { .. });
            let mut start = 0usize;
            for &bank_ix in &sort.touched {
                let bank = bank_ix as usize;
                let end = sort.counts[bank] as usize;
                // Bank state lives in registers for the whole bucket.
                let mut cur = self.dram.cursor(bank);
                let mut bepoch = self.block_epoch[bank];
                let mut astate = if act {
                    self.act_state[bank]
                } else {
                    ActBankState::default()
                };
                for &oi in &sort.order[start..end] {
                    let i = oi as usize;
                    let req = &reqs[i];
                    let now = req.at;
                    let row = locs[i].1;
                    let mut at = now;
                    if let Some(bk) = blocking {
                        let epoch = now.0 / bk.interval.0.max(1);
                        if epoch > bepoch {
                            bepoch = epoch;
                            blocked += 1;
                            at = now + bk.block;
                        }
                    }
                    let o = cur.access(row, at, req.actor, &timing, policy);
                    let raw = o.completed_at - now + overhead;
                    let latency = match pad {
                        Pad::Flat => raw,
                        Pad::Ctd => {
                            padded += 1;
                            raw.max(worst)
                        }
                        Pad::Act { cfg, epoch_len } => {
                            let epoch = now.0 / epoch_len;
                            astate.roll_to(epoch, &cfg);
                            if o.kind == RowBufferKind::Conflict {
                                astate.conflicts += 1;
                            }
                            if astate.constant_time() {
                                padded += 1;
                                raw.max(worst)
                            } else {
                                raw
                            }
                        }
                    };
                    out[i] = MemResponse {
                        bank,
                        row,
                        kind: o.kind,
                        latency,
                        completed_at: now + latency,
                        per_bank: Vec::new(),
                    };
                }
                self.dram.store_cursor(bank, cur);
                if blocking.is_some() {
                    note_unshare(&self.block_epoch);
                    // analyze::allow(cow-aliasing): bucketed batch
                    // write-back of the RFM epoch computed in registers
                    Arc::make_mut(&mut self.block_epoch)[bank] = bepoch;
                }
                if act {
                    note_unshare(&self.act_state);
                    // analyze::allow(cow-aliasing): bucketed batch
                    // write-back of the ACT state computed in registers
                    Arc::make_mut(&mut self.act_state)[bank] = astate;
                }
                sort.counts[bank] = 0;
                start = end;
            }
        }
        self.stats.accesses += m as u64;
        self.stats.blocked += blocked;
        self.stats.padded += padded;
    }

    /// Hoists the per-batch servicing parameters ([`BatchEnv`]) once.
    pub(crate) fn batch_env(&self) -> BatchEnv {
        BatchEnv {
            overhead: self.overhead,
            blocking: self.blocking,
            worst: self.worst_case_latency(),
            pad: match &self.defense {
                Defense::Ctd => Pad::Ctd,
                Defense::Act(cfg) => Pad::Act {
                    cfg: *cfg,
                    epoch_len: cfg.epoch_cycles(self.clock).0.max(1),
                },
                _ => Pad::Flat,
            },
        }
    }

    /// Serves one pre-located, pre-validated scalar request against the
    /// live per-bank state — the shared body of the sparse batch loops.
    /// Bit-identical to [`MemoryController::service`] minus the validation
    /// the caller already performed; `blocked`/`padded` accumulate the
    /// stats deltas the caller applies once per batch.
    #[inline(always)]
    pub(crate) fn serve_located(
        &mut self,
        req: &MemRequest,
        bank: usize,
        row: u64,
        env: BatchEnv,
        blocked: &mut u64,
        padded: &mut u64,
    ) -> MemResponse {
        let now = req.at;
        let mut at = now;
        if let Some(bk) = env.blocking {
            let epoch = now.0 / bk.interval.0.max(1);
            if epoch > self.block_epoch[bank] {
                note_unshare(&self.block_epoch);
                // analyze::allow(cow-aliasing): per-request RFM epoch
                // roll, same guarded write as the scalar path
                Arc::make_mut(&mut self.block_epoch)[bank] = epoch;
                *blocked += 1;
                at = now + bk.block;
            }
        }
        let o = self.dram.access_as(bank, row, at, req.actor);
        let raw = o.completed_at - now + env.overhead;
        let latency = match env.pad {
            Pad::Flat => raw,
            Pad::Ctd => {
                *padded += 1;
                raw.max(env.worst)
            }
            Pad::Act { cfg, epoch_len } => {
                let epoch = now.0 / epoch_len;
                note_unshare(&self.act_state);
                // analyze::allow(cow-aliasing): ACT tracks per-access
                // conflict counts, so servicing under ACT always writes
                // this bank's slot
                let state = &mut Arc::make_mut(&mut self.act_state)[bank];
                state.roll_to(epoch, &cfg);
                if o.kind == RowBufferKind::Conflict {
                    state.conflicts += 1;
                }
                if state.constant_time() {
                    *padded += 1;
                    raw.max(env.worst)
                } else {
                    raw
                }
            }
        };
        MemResponse {
            bank,
            row,
            kind: o.kind,
            latency,
            completed_at: now + latency,
            per_bank: Vec::new(),
        }
    }

    /// Sparse whole-run servicing for the monolithic batch path: serves
    /// `reqs` in order, appending one response each — no index list, no
    /// placeholder resize, no scatter. Preconditions as for
    /// [`MemoryController::service_scatter`].
    fn service_located_append(
        &mut self,
        reqs: &[MemRequest],
        locs: &[(u32, u64)],
        out: &mut Vec<MemResponse>,
    ) {
        let env = self.batch_env();
        let mut blocked = 0u64;
        let mut padded = 0u64;
        out.reserve(reqs.len());
        for (req, &(bank, row)) in reqs.iter().zip(locs) {
            let resp = self.serve_located(req, bank as usize, row, env, &mut blocked, &mut padded);
            out.push(resp);
        }
        self.stats.accesses += reqs.len() as u64;
        self.stats.blocked += blocked;
        self.stats.padded += padded;
    }

    /// Folds a batch's deferred statistics deltas in after a run of
    /// [`MemoryController::serve_located`] calls driven by an external
    /// loop (the sequential sharded path).
    pub(crate) fn apply_batch_stats(&mut self, accesses: u64, blocked: u64, padded: u64) {
        self.stats.accesses += accesses;
        self.stats.blocked += blocked;
        self.stats.padded += padded;
    }

    /// Bucketed service of a pre-located, pre-validated scalar batch —
    /// the parallel sharded path's per-worker entry point. The caller has
    /// already run `locate_batch` (locations are shared, not recomputed)
    /// and established the [`MemoryController::service_scatter`]
    /// preconditions, so this path is infallible.
    pub(crate) fn service_batch_located(
        &mut self,
        reqs: &[MemRequest],
        locs: &[(u32, u64)],
    ) -> Vec<MemResponse> {
        let mut out = vec![empty_response(); reqs.len()];
        let mut scratch = core::mem::take(&mut self.scratch);
        scratch.ident.clear();
        // analyze::allow(lossy-cast): batch length asserted to fit u32 in
        // service_scatter before any index is used
        scratch.ident.extend((0..reqs.len()).map(|i| i as u32));
        self.service_scatter(reqs, locs, &scratch.ident, &mut scratch.sort, &mut out);
        self.scratch = scratch;
        out
    }

    /// Demand access with the periodic-block and latency-defense checks
    /// compiled out — only sound when the caller has established neither
    /// can fire (see [`MemoryController::service_batch`]).
    fn access_lean(&mut self, addr: PhysAddr, now: Cycles, actor: u32) -> Result<MemAccess> {
        self.check_capacity(addr)?;
        let (bank, row) = self.mapping.locate(addr);
        self.check_partition(bank, actor)?;
        self.stats.accesses += 1;
        let out = self.dram.access_as(bank, row, now, actor);
        let latency = out.completed_at - now + self.overhead;
        Ok(MemAccess {
            addr,
            bank,
            row,
            kind: out.kind,
            latency,
            completed_at: now + latency,
        })
    }

    /// Serves a masked RowClone request (Listing 2): for each set bit `i`
    /// of `mask`, copies the row containing `src + i*row_bytes` onto the
    /// row containing `dst + i*row_bytes`, all in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRowClone`] if the mask is empty or a source
    /// and destination chunk map to different banks (FPM copies are
    /// intra-bank), [`Error::PartitionViolation`] under MPR, and
    /// [`Error::AddressOutOfRange`] for out-of-device addresses.
    pub fn rowclone(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        mask: u64,
        now: Cycles,
        actor: u32,
    ) -> Result<RowCloneOutcome> {
        if mask == 0 {
            return Err(Error::InvalidRowClone("empty bank mask".into()));
        }
        let row_bytes = self.dram.geometry().row_bytes;
        // Pre-validate every lane before touching any bank state. A mask
        // has at most 64 set bits, so fixed stack scratch replaces the
        // per-request Vec allocation on this path.
        let mut lanes = [(0usize, 0u64, 0u64); 64];
        let mut n_lanes = 0usize;
        for i in 0..64u64 {
            if mask & (1 << i) == 0 {
                continue;
            }
            let s = src + i * row_bytes;
            let d = dst + i * row_bytes;
            self.check_capacity(s)?;
            self.check_capacity(d)?;
            let sc = self.mapping.map(s);
            let dc = self.mapping.map(d);
            let sbank = self.mapping.flat_bank(s);
            let dbank = self.mapping.flat_bank(d);
            if sbank != dbank {
                return Err(Error::InvalidRowClone(format!(
                    "mask bit {i}: src bank {sbank} != dst bank {dbank}"
                )));
            }
            self.check_partition(sbank, actor)?;
            lanes[n_lanes] = (sbank, sc.row, dc.row);
            n_lanes += 1;
        }
        self.stats.rowclones += 1;

        let per_bank = self.rowclone_lanes(&lanes[..n_lanes], now, actor);
        let mut completed = now;
        for &(_, _, lat) in &per_bank {
            completed = completed.max(now + lat);
        }
        Ok(RowCloneOutcome {
            latency: completed - now,
            per_bank,
            completed_at: completed,
        })
    }

    /// Executes pre-validated RowClone lanes `(bank, src_row, dst_row)` at
    /// `now`, returning one `(bank, kind, latency)` outcome per lane in
    /// input order. Shared between [`MemoryController::rowclone`] and the
    /// sharded controller, which splits one masked request's lanes across
    /// sub-controllers; it performs no validation and does not count a
    /// RowClone operation in the stats — callers do both.
    pub(crate) fn rowclone_lanes(
        &mut self,
        lanes: &[(usize, u64, u64)],
        now: Cycles,
        actor: u32,
    ) -> Vec<(usize, RowBufferKind, Cycles)> {
        let mut per_bank = Vec::with_capacity(lanes.len());
        for &(bank, src_row, dst_row) in lanes {
            let block = self.take_block_delay(bank, now);
            let out = self
                .dram
                .rowclone_as(bank, src_row, dst_row, now + block, actor);
            let raw = out.completed_at - now + self.overhead;
            let lat = self.apply_latency_defense(bank, out.kind, raw, now);
            per_bank.push((bank, out.kind, lat));
        }
        per_bank
    }

    /// Worst-case (constant-time) latency served under CTD/ACT padding.
    #[must_use]
    pub fn worst_case_latency(&self) -> Cycles {
        self.dram.timing().worst_case_latency() + self.overhead
    }

    pub(crate) fn check_capacity(&self, addr: PhysAddr) -> Result<()> {
        let capacity = self.dram.geometry().capacity_bytes();
        if addr.0 >= capacity {
            Err(Error::AddressOutOfRange {
                addr: addr.0,
                capacity,
            })
        } else {
            Ok(())
        }
    }

    /// Enforces the MPR partition for `(bank, actor)`, counting a reject
    /// on failure. Crate-visible so the sharded controller can replicate
    /// the monolithic validation order lane by lane.
    pub(crate) fn check_partition(&mut self, bank: usize, actor: u32) -> Result<()> {
        if let Defense::Mpr(p) = &self.defense {
            if !p.allows(bank, actor) {
                self.stats.partition_rejects += 1;
                return Err(Error::PartitionViolation { actor, bank });
            }
        }
        Ok(())
    }

    /// Applies CTD/ACT latency padding and updates ACT bookkeeping.
    fn apply_latency_defense(
        &mut self,
        bank: usize,
        kind: RowBufferKind,
        raw: Cycles,
        now: Cycles,
    ) -> Cycles {
        match &self.defense {
            Defense::Ctd => {
                self.stats.padded += 1;
                raw.max(self.worst_case_latency())
            }
            Defense::Act(cfg) => {
                let cfg = *cfg;
                let epoch_len = cfg.epoch_cycles(self.clock).0.max(1);
                let epoch = now.0 / epoch_len;
                note_unshare(&self.act_state);
                // analyze::allow(cow-aliasing): ACT conflict accounting
                // writes this bank's slot on every serviced access
                let state = &mut Arc::make_mut(&mut self.act_state)[bank];
                state.roll_to(epoch, &cfg);
                if kind == RowBufferKind::Conflict {
                    state.conflicts += 1;
                }
                if state.constant_time() {
                    self.stats.padded += 1;
                    raw.max(self.worst_case_latency())
                } else {
                    raw
                }
            }
            _ => raw,
        }
    }
}

/// Snapshot of a [`MemoryController`]: the DRAM state (copy-on-write),
/// the defense configuration and its per-bank arrays (shared `Arc`s), the
/// periodic-blocking setup and the statistics. The address mapping,
/// front-end overhead and clock are construction constants and are not
/// captured; the batch scratch buffers are non-observable and reset on
/// restore targets as needed.
#[derive(Debug, Clone)]
pub struct CtrlSnap {
    dram: DramSnap,
    defense: Defense,
    act_state: Arc<Vec<ActBankState>>,
    blocking: Option<PeriodicBlock>,
    block_epoch: Arc<Vec<u64>>,
    stats: CtrlStats,
}

impl Snapshot for MemoryController {
    type Snap = CtrlSnap;

    fn snapshot(&self) -> CtrlSnap {
        CtrlSnap {
            dram: self.dram.snapshot(),
            defense: self.defense.clone(),
            act_state: Arc::clone(&self.act_state),
            blocking: self.blocking,
            block_epoch: Arc::clone(&self.block_epoch),
            stats: self.stats.clone(),
        }
    }

    fn restore(&mut self, snap: &CtrlSnap) {
        self.dram.restore(&snap.dram);
        self.defense = snap.defense.clone();
        self.act_state = Arc::clone(&snap.act_state);
        self.blocking = snap.blocking;
        self.block_epoch = Arc::clone(&snap.block_epoch);
        self.stats = snap.stats.clone();
    }

    fn fork(&self) -> MemoryController {
        MemoryController {
            dram: self.dram.fork(),
            mapping: self.mapping.clone_box(),
            overhead: self.overhead,
            clock: self.clock,
            defense: self.defense.clone(),
            act_state: Arc::clone(&self.act_state),
            blocking: self.blocking,
            block_epoch: Arc::clone(&self.block_epoch),
            stats: self.stats.clone(),
            scratch: BatchScratch::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{ActConfig, MprPartition};

    fn controller() -> MemoryController {
        MemoryController::from_config(&SystemConfig::paper_table2())
    }

    /// Address in `bank` at `row` (row-interleaved mapping).
    fn addr_in(mc: &MemoryController, bank: usize, row: u64) -> PhysAddr {
        mc.mapping().compose(bank, row, 0)
    }

    #[test]
    fn access_hits_after_miss() {
        let mut mc = controller();
        let a = addr_in(&mc, 3, 10);
        let first = mc.access(a, Cycles(0), 0).unwrap();
        assert_eq!(first.kind, RowBufferKind::Miss);
        let second = mc.access(a, first.completed_at, 0).unwrap();
        assert_eq!(second.kind, RowBufferKind::Hit);
        // Observed delta includes no extra overhead difference.
        let b = addr_in(&mc, 3, 11);
        let third = mc.access(b, second.completed_at, 0).unwrap();
        assert_eq!(third.kind, RowBufferKind::Conflict);
        assert_eq!(third.latency - second.latency, Cycles(74));
    }

    #[test]
    fn capacity_enforced() {
        let mut mc = controller();
        let cap = mc.dram().geometry().capacity_bytes();
        let e = mc.access(PhysAddr(cap), Cycles(0), 0).unwrap_err();
        assert!(matches!(e, Error::AddressOutOfRange { .. }));
    }

    #[test]
    fn mpr_blocks_foreign_banks() {
        let mut mc = controller();
        let mut p = MprPartition::new(16);
        p.assign_round_robin(&[1, 2]);
        mc.set_defense(Defense::Mpr(p));
        let a0 = addr_in(&mc, 0, 5); // bank 0 owned by actor 1
        assert!(mc.access(a0, Cycles(0), 1).is_ok());
        let e = mc.access(a0, Cycles(0), 2).unwrap_err();
        assert!(matches!(e, Error::PartitionViolation { bank: 0, .. }));
        assert_eq!(mc.stats().partition_rejects, 1);
    }

    #[test]
    fn crp_defense_closes_rows() {
        let mut mc = controller();
        mc.set_defense(Defense::Crp);
        let a = addr_in(&mc, 0, 5);
        let f = mc.access(a, Cycles(0), 0).unwrap();
        let s = mc.access(a, f.completed_at + Cycles(100), 0).unwrap();
        assert_eq!(f.kind, RowBufferKind::Miss);
        assert_eq!(s.kind, RowBufferKind::Miss);
    }

    #[test]
    fn ctd_constant_latency() {
        let mut mc = controller();
        mc.set_defense(Defense::Ctd);
        let a = addr_in(&mc, 0, 5);
        let b = addr_in(&mc, 0, 6);
        let f = mc.access(a, Cycles(0), 0).unwrap();
        let h = mc.access(a, f.completed_at, 0).unwrap();
        let c = mc.access(b, h.completed_at, 0).unwrap();
        // Hit and conflict observe identical latency: channel closed.
        assert_eq!(h.latency, c.latency);
        assert_eq!(h.latency, mc.worst_case_latency());
    }

    #[test]
    fn act_pads_after_conflicts() {
        let mut mc = controller();
        mc.set_defense(Defense::Act(ActConfig::mild()));
        let a = addr_in(&mc, 0, 5);
        let b = addr_in(&mc, 0, 6);
        let epoch = ActConfig::mild().epoch_cycles(Clock::paper_default()).0;
        // Epoch 0: create a conflict.
        mc.access(a, Cycles(0), 0).unwrap();
        mc.access(b, Cycles(200), 0).unwrap(); // conflict
                                               // Epoch 1: bank 0 must now be constant-time.
        let h = mc.access(b, Cycles(epoch + 10), 0).unwrap();
        assert_eq!(h.kind, RowBufferKind::Hit);
        assert_eq!(h.latency, mc.worst_case_latency());
        // Epoch 4 (past ct window, no further conflicts): back to normal.
        let h2 = mc.access(b, Cycles(4 * epoch + 10), 0).unwrap();
        assert!(h2.latency < mc.worst_case_latency());
    }

    #[test]
    fn act_ignores_conflict_free_banks() {
        let mut mc = controller();
        mc.set_defense(Defense::Act(ActConfig::aggressive()));
        let a = addr_in(&mc, 1, 5);
        let f = mc.access(a, Cycles(0), 0).unwrap();
        let h = mc.access(a, f.completed_at, 0).unwrap();
        assert!(h.latency < mc.worst_case_latency());
        assert_eq!(mc.stats().padded, 0);
    }

    #[test]
    fn rowclone_parallel_lanes() {
        let mut mc = controller();
        let row_bytes = mc.dram().geometry().row_bytes;
        // Contiguous ranges spanning banks 0..16 (row-interleaved).
        let src = PhysAddr(0);
        let dst = PhysAddr(64 * 16 * row_bytes); // 64 rows further: same banks
        let out = mc.rowclone(src, dst, 0xFFFF, Cycles(0), 0).unwrap();
        assert_eq!(out.per_bank.len(), 16);
        // Parallel: the whole op costs one lane, not sixteen.
        let max_lane = out.per_bank.iter().map(|(_, _, l)| *l).max().unwrap();
        assert_eq!(out.latency, max_lane);
    }

    #[test]
    fn rowclone_rejects_empty_mask_and_cross_bank() {
        let mut mc = controller();
        let e = mc
            .rowclone(PhysAddr(0), PhysAddr(8192), 0, Cycles(0), 0)
            .unwrap_err();
        assert!(matches!(e, Error::InvalidRowClone(_)));
        // dst shifted by one row -> lanes land in different banks.
        let row_bytes = mc.dram().geometry().row_bytes;
        let e = mc
            .rowclone(PhysAddr(0), PhysAddr(row_bytes), 1, Cycles(0), 0)
            .unwrap_err();
        assert!(matches!(e, Error::InvalidRowClone(_)));
    }

    #[test]
    fn rowclone_interference_is_timed() {
        let mut mc = controller();
        let row_bytes = mc.dram().geometry().row_bytes;
        let src = PhysAddr(0);
        let dst = PhysAddr(64 * 16 * row_bytes);
        // Receiver initializes bank 0 (mask bit 0).
        let init = mc.rowclone(src, dst, 0b1, Cycles(0), 1).unwrap();
        // Sender clones other rows in bank 0.
        let s_src = PhysAddr(128 * 16 * row_bytes);
        let s_dst = PhysAddr(192 * 16 * row_bytes);
        mc.rowclone(s_src, s_dst, 0b1, Cycles(10_000), 2).unwrap();
        // Receiver probes: conflict -> slower than its init-hit path.
        let probe = mc.rowclone(dst, src, 0b1, Cycles(20_000), 1).unwrap();
        assert_eq!(probe.per_bank[0].1, RowBufferKind::Conflict);
        assert!(probe.latency > init.latency);
    }

    #[test]
    fn periodic_block_delays_once_per_interval() {
        let mut mc = controller();
        mc.set_periodic_block(Some(PeriodicBlock {
            interval: Cycles(10_000),
            block: Cycles(910),
        }));
        let a = addr_in(&mc, 0, 1);
        // First access of epoch 1 pays the block.
        let open = mc.access(a, Cycles(10_500), 0).unwrap();
        let hit = mc.access(a, Cycles(11_600), 0).unwrap();
        assert!(
            open.latency > hit.latency + Cycles(800),
            "block not charged"
        );
        assert_eq!(mc.stats().blocked, 1);
        // Next epoch pays again.
        mc.access(a, Cycles(21_000), 0).unwrap();
        assert_eq!(mc.stats().blocked, 2);
    }

    #[test]
    fn periodic_block_is_per_bank() {
        let mut mc = controller();
        mc.set_periodic_block(Some(PeriodicBlock::rfm_paper_default()));
        let a = addr_in(&mc, 0, 1);
        let b = addr_in(&mc, 1, 1);
        mc.access(a, Cycles(50_000), 0).unwrap();
        mc.access(b, Cycles(50_000), 0).unwrap();
        assert_eq!(mc.stats().blocked, 2);
    }

    #[test]
    fn stats_count() {
        let mut mc = controller();
        let a = addr_in(&mc, 0, 1);
        mc.access(a, Cycles(0), 0).unwrap();
        mc.access(a, Cycles(1000), 0).unwrap();
        assert_eq!(mc.stats().accesses, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::defense::MprPartition;
    use proptest::prelude::*;

    proptest! {
        /// CTD: every access observes exactly the worst-case latency, for
        /// any address/time pattern — the constant-time guarantee.
        #[test]
        fn ctd_is_constant_time(
            reqs in prop::collection::vec((0u64..(1u64<<24), 0u64..1_000_000), 1..80)
        ) {
            let mut mc = MemoryController::from_config(&SystemConfig::paper_table2());
            mc.set_defense(Defense::Ctd);
            let worst = mc.worst_case_latency();
            for (addr, at) in reqs {
                let out = mc.access(PhysAddr(addr), Cycles(at), 0).unwrap();
                // Queueing can exceed the floor; the defense never lets an
                // access complete faster than worst case.
                prop_assert!(out.latency >= worst);
            }
        }

        /// MPR: an actor can never touch a bank owned by someone else, and
        /// always reaches its own banks.
        #[test]
        fn mpr_is_airtight(accesses in prop::collection::vec((0usize..16, 0u64..1000), 1..60)) {
            let mut mc = MemoryController::from_config(&SystemConfig::paper_table2());
            let mut p = MprPartition::new(16);
            p.assign_round_robin(&[0, 1]);
            mc.set_defense(Defense::Mpr(p));
            let mut now = 0u64;
            for (bank, row) in accesses {
                now += 1000;
                let addr = mc.mapping().compose(bank, row, 0);
                let owner = (bank % 2) as u32;
                prop_assert!(mc.access(addr, Cycles(now), owner).is_ok());
                prop_assert!(mc.access(addr, Cycles(now), owner ^ 1).is_err());
            }
        }

        /// Observed latency always includes the controller front end and
        /// never underruns the raw DRAM hit latency.
        #[test]
        fn latency_floor(addr in 0u64..(1u64<<24), at in 0u64..1_000_000) {
            let mut mc = MemoryController::from_config(&SystemConfig::paper_table2());
            let floor = mc.dram().timing().hit_latency() + mc.overhead();
            let out = mc.access(PhysAddr(addr), Cycles(at), 0).unwrap();
            prop_assert!(out.latency >= floor);
        }
    }
}
