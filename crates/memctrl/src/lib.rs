//! Memory controller for the IMPACT reproduction.
//!
//! Sits between the processor/PiM units and the [`impact_dram::DramDevice`]:
//! decomposes physical addresses via an address mapping, enforces bank
//! timing, fans masked RowClone requests out to banks (Listing 2 of the
//! paper), and implements the four defense mechanisms of §7:
//!
//! * **MPR** — bank-level memory partitioning (§7.1),
//! * **CRP** — closed-row policy (§7.2),
//! * **CTD** — constant-time DRAM access (§7.3),
//! * **ACT** — adaptive constant-time DRAM (§7.4) with the paper's
//!   Aggressive / Mild / Conservative configurations.
//!
//! # Example
//!
//! ```
//! use impact_core::config::SystemConfig;
//! use impact_core::addr::PhysAddr;
//! use impact_core::time::Cycles;
//! use impact_memctrl::MemoryController;
//!
//! let cfg = SystemConfig::paper_table2();
//! let mut mc = MemoryController::from_config(&cfg);
//! let out = mc.access(PhysAddr(0x1000), Cycles(0), 0)?;
//! assert!(out.latency > Cycles::ZERO);
//! # Ok::<(), impact_core::Error>(())
//! ```

pub mod backend;
pub mod controller;
pub mod defense;
pub mod sharded;

pub use backend::{BackendSnap, ControllerBackend};
pub use controller::{
    CtrlSnap, CtrlStats, MemAccess, MemoryController, PeriodicBlock, RowCloneOutcome,
};
pub use defense::{ActConfig, Defense, MprPartition};
pub use sharded::{ShardedController, ShardedSnap};
