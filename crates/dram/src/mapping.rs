//! Physical-address → DRAM-coordinate mapping schemes.
//!
//! Modern controllers interleave consecutive memory chunks across banks to
//! exploit bank-level parallelism (§4.3 of the paper cites this to justify
//! the hash table spanning banks). Two schemes are provided:
//!
//! * [`RowInterleaved`] — consecutive cache lines fill a row, then move to
//!   the next bank (row:bank:column split).
//! * [`BankInterleavedXor`] — like row-interleaved but the bank index is
//!   XOR-hashed with low row bits to spread conflict patterns, as in many
//!   real controllers (and as exploited by DRAMA-style reverse engineering).

use impact_core::addr::{DramCoord, PhysAddr};
use impact_core::config::DramGeometry;

/// Maps physical addresses to DRAM coordinates.
///
/// Implementations must be pure: the same address always maps to the same
/// coordinate.
pub trait AddressMapping: Send + Sync {
    /// Maps a physical address to device coordinates.
    fn map(&self, addr: PhysAddr) -> DramCoord;

    /// Flat bank index for an address (convenience).
    fn flat_bank(&self, addr: PhysAddr) -> usize;

    /// `(flat bank, row)` of an address in one decomposition — the pair
    /// the memory controller needs on every access. Implementations
    /// should override this when they can split the address once instead
    /// of twice.
    fn locate(&self, addr: PhysAddr) -> (usize, u64) {
        (self.flat_bank(addr), self.map(addr).row)
    }

    /// Batch [`AddressMapping::locate`]: replaces `out` with one
    /// `(flat bank, row)` pair per address, in order. The bank is narrowed
    /// to `u32` — the flat bank space is a `u32` product by construction
    /// (`DramGeometry::total_banks`) — so a batch's location table stays
    /// compact. One virtual call per *batch* instead of per request;
    /// implementations should override to strength-reduce the address
    /// split across the whole monomorphic loop.
    fn locate_batch(&self, addrs: &[PhysAddr], out: &mut Vec<(u32, u64)>) {
        out.clear();
        out.reserve(addrs.len());
        for &addr in addrs {
            let (bank, row) = self.locate(addr);
            // analyze::allow(lossy-cast): flat bank < total_banks, a u32
            // product by construction (DramGeometry::total_banks)
            out.push((bank as u32, row));
        }
    }

    /// Inverse mapping used by memory massaging: returns a physical address
    /// that lands in `bank` (flat index) at `row` with byte `column`.
    fn compose(&self, bank: usize, row: u64, column: u32) -> PhysAddr;

    /// The geometry this mapping was built for.
    fn geometry(&self) -> &DramGeometry;

    /// Clones the mapping behind a fresh box. Mappings are pure, so the
    /// clone is interchangeable with the original; forking a controller
    /// duplicates its mapping through this hook.
    fn clone_box(&self) -> Box<dyn AddressMapping>;
}

/// Precomputed shift/mask split for power-of-two geometries: replaces the
/// two `u64` divisions of the generic `chunk = addr / row_bytes;
/// bank = chunk % banks; row = chunk / banks` decomposition with shifts —
/// the difference between ~40 and ~2 cycles per located request on the
/// batch hot path. Every paper geometry (8 KiB rows, 16–8192 banks) is
/// power-of-two on both axes.
#[derive(Debug, Clone, Copy)]
struct Pow2Split {
    /// `log2(row_bytes)`.
    row_shift: u32,
    /// `row_bytes - 1`.
    column_mask: u64,
    /// `log2(total_banks)`.
    bank_shift: u32,
    /// `total_banks - 1`.
    bank_mask: u64,
}

impl Pow2Split {
    fn for_geometry(geometry: &DramGeometry) -> Option<Pow2Split> {
        let banks = u64::from(geometry.total_banks());
        let row_bytes = geometry.row_bytes;
        (row_bytes.is_power_of_two() && banks.is_power_of_two()).then(|| Pow2Split {
            row_shift: row_bytes.trailing_zeros(),
            column_mask: row_bytes - 1,
            bank_shift: banks.trailing_zeros(),
            bank_mask: banks - 1,
        })
    }

    /// `(row, raw bank, column)` of an address, shifts and masks only.
    #[inline]
    fn split(self, addr: u64) -> (u64, u64, u32) {
        let chunk = addr >> self.row_shift;
        // analyze::allow(lossy-cast): column < row_bytes (8 KiB rows; any
        // plausible geometry keeps row sizes far below 2^32)
        let column = (addr & self.column_mask) as u32;
        (chunk >> self.bank_shift, chunk & self.bank_mask, column)
    }
}

/// Row-interleaved mapping: `addr = ((row * banks + bank) * row_bytes) + col`.
///
/// Consecutive rows-worth of addresses rotate across banks, so a contiguous
/// buffer of `banks * row_bytes` bytes touches every bank once — the layout
/// IMPACT-PuM assumes for its source/destination ranges.
#[derive(Debug, Clone)]
pub struct RowInterleaved {
    geometry: DramGeometry,
    pow2: Option<Pow2Split>,
}

impl RowInterleaved {
    /// Creates the mapping for a geometry.
    #[must_use]
    pub fn new(geometry: DramGeometry) -> RowInterleaved {
        let pow2 = Pow2Split::for_geometry(&geometry);
        RowInterleaved { geometry, pow2 }
    }

    fn split(&self, addr: PhysAddr) -> (u64, usize, u32) {
        if let Some(p) = self.pow2 {
            let (row, bank, column) = p.split(addr.0);
            // analyze::allow(lossy-cast): bank <= bank_mask < total_banks
            return (row, bank as usize, column);
        }
        let row_bytes = self.geometry.row_bytes;
        let banks = u64::from(self.geometry.total_banks());
        let chunk = addr.0 / row_bytes;
        // analyze::allow(lossy-cast): column < row_bytes (8 KiB rows; any
        // plausible geometry keeps row sizes far below 2^32)
        let column = (addr.0 % row_bytes) as u32;
        let bank = (chunk % banks) as usize;
        let row = chunk / banks;
        (row, bank, column)
    }
}

impl AddressMapping for RowInterleaved {
    fn map(&self, addr: PhysAddr) -> DramCoord {
        let (row, bank, column) = self.split(addr);
        coord_from_flat(&self.geometry, bank, row, column)
    }

    fn flat_bank(&self, addr: PhysAddr) -> usize {
        self.split(addr).1
    }

    fn locate(&self, addr: PhysAddr) -> (usize, u64) {
        let (row, bank, _) = self.split(addr);
        (bank, row)
    }

    fn locate_batch(&self, addrs: &[PhysAddr], out: &mut Vec<(u32, u64)>) {
        out.clear();
        out.reserve(addrs.len());
        if let Some(p) = self.pow2 {
            for &addr in addrs {
                let chunk = addr.0 >> p.row_shift;
                // analyze::allow(lossy-cast): bank <= bank_mask < total_banks,
                // a u32 product by construction (DramGeometry::total_banks)
                out.push(((chunk & p.bank_mask) as u32, chunk >> p.bank_shift));
            }
            return;
        }
        let row_bytes = self.geometry.row_bytes;
        let banks = u64::from(self.geometry.total_banks());
        for &addr in addrs {
            let chunk = addr.0 / row_bytes;
            // analyze::allow(lossy-cast): bank < total_banks, a u32 product
            // by construction (DramGeometry::total_banks)
            out.push(((chunk % banks) as u32, chunk / banks));
        }
    }

    fn compose(&self, bank: usize, row: u64, column: u32) -> PhysAddr {
        let banks = u64::from(self.geometry.total_banks());
        debug_assert!((bank as u64) < banks);
        debug_assert!(u64::from(column) < self.geometry.row_bytes);
        PhysAddr((row * banks + bank as u64) * self.geometry.row_bytes + u64::from(column))
    }

    fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    fn clone_box(&self) -> Box<dyn AddressMapping> {
        Box::new(self.clone())
    }
}

/// Row-interleaved mapping with the bank index XOR-hashed against low row
/// bits, emulating controller bank hashing.
#[derive(Debug, Clone)]
pub struct BankInterleavedXor {
    geometry: DramGeometry,
    bank_mask: u64,
    pow2: Option<Pow2Split>,
}

impl BankInterleavedXor {
    /// Creates the mapping; the bank count must be a power of two for the
    /// XOR hash to be a bijection.
    ///
    /// # Panics
    ///
    /// Panics if the total bank count is not a power of two.
    #[must_use]
    pub fn new(geometry: DramGeometry) -> BankInterleavedXor {
        let banks = u64::from(geometry.total_banks());
        assert!(
            banks.is_power_of_two(),
            "XOR bank hashing requires a power-of-two bank count, got {banks}"
        );
        let pow2 = Pow2Split::for_geometry(&geometry);
        BankInterleavedXor {
            geometry,
            bank_mask: banks - 1,
            pow2,
        }
    }

    fn split(&self, addr: PhysAddr) -> (u64, usize, u32) {
        if let Some(p) = self.pow2 {
            let (row, raw_bank, column) = p.split(addr.0);
            let bank = (raw_bank ^ (row & self.bank_mask)) & self.bank_mask;
            // analyze::allow(lossy-cast): bank <= bank_mask < total_banks
            return (row, bank as usize, column);
        }
        let row_bytes = self.geometry.row_bytes;
        let banks = u64::from(self.geometry.total_banks());
        let chunk = addr.0 / row_bytes;
        // analyze::allow(lossy-cast): column < row_bytes (8 KiB rows; any
        // plausible geometry keeps row sizes far below 2^32)
        let column = (addr.0 % row_bytes) as u32;
        let raw_bank = chunk % banks;
        let row = chunk / banks;
        let bank = (raw_bank ^ (row & self.bank_mask)) & self.bank_mask;
        (row, bank as usize, column)
    }
}

impl AddressMapping for BankInterleavedXor {
    fn map(&self, addr: PhysAddr) -> DramCoord {
        let (row, bank, column) = self.split(addr);
        coord_from_flat(&self.geometry, bank, row, column)
    }

    fn flat_bank(&self, addr: PhysAddr) -> usize {
        self.split(addr).1
    }

    fn locate(&self, addr: PhysAddr) -> (usize, u64) {
        let (row, bank, _) = self.split(addr);
        (bank, row)
    }

    fn locate_batch(&self, addrs: &[PhysAddr], out: &mut Vec<(u32, u64)>) {
        out.clear();
        out.reserve(addrs.len());
        let mask = self.bank_mask;
        if let Some(p) = self.pow2 {
            for &addr in addrs {
                let chunk = addr.0 >> p.row_shift;
                let row = chunk >> p.bank_shift;
                let bank = ((chunk & p.bank_mask) ^ (row & mask)) & mask;
                // analyze::allow(lossy-cast): bank <= bank_mask <
                // total_banks, a u32 product by construction
                out.push((bank as u32, row));
            }
            return;
        }
        let row_bytes = self.geometry.row_bytes;
        let banks = u64::from(self.geometry.total_banks());
        for &addr in addrs {
            let chunk = addr.0 / row_bytes;
            let row = chunk / banks;
            let bank = ((chunk % banks) ^ (row & mask)) & mask;
            // analyze::allow(lossy-cast): bank <= bank_mask < total_banks,
            // a u32 product by construction
            out.push((bank as u32, row));
        }
    }

    fn compose(&self, bank: usize, row: u64, column: u32) -> PhysAddr {
        let banks = u64::from(self.geometry.total_banks());
        debug_assert!((bank as u64) < banks);
        // Invert the XOR hash: raw_bank = bank ^ (row & mask).
        let raw_bank = (bank as u64 ^ (row & self.bank_mask)) & self.bank_mask;
        PhysAddr((row * banks + raw_bank) * self.geometry.row_bytes + u64::from(column))
    }

    fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    fn clone_box(&self) -> Box<dyn AddressMapping> {
        Box::new(self.clone())
    }
}

fn coord_from_flat(geometry: &DramGeometry, flat_bank: usize, row: u64, column: u32) -> DramCoord {
    let banks_per_group = geometry.banks_per_group;
    let groups = geometry.bank_groups_per_rank;
    let per_rank = banks_per_group * groups;
    let per_channel = per_rank * geometry.ranks_per_channel;
    // analyze::allow(lossy-cast): flat_bank < total_banks, which is a u32
    // product by construction (DramGeometry::total_banks)
    let fb = flat_bank as u32;
    DramCoord {
        channel: fb / per_channel,
        rank: (fb % per_channel) / per_rank,
        bank_group: (fb % per_rank) / banks_per_group,
        bank: fb % banks_per_group,
        row,
        column,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> DramGeometry {
        DramGeometry::paper_table2()
    }

    #[test]
    fn row_interleaved_rotates_banks() {
        let m = RowInterleaved::new(geo());
        let row_bytes = geo().row_bytes;
        for i in 0..16u64 {
            assert_eq!(m.flat_bank(PhysAddr(i * row_bytes)), i as usize);
        }
        // Wraps to bank 0 on the next row.
        assert_eq!(m.flat_bank(PhysAddr(16 * row_bytes)), 0);
    }

    #[test]
    fn row_interleaved_compose_roundtrip() {
        let m = RowInterleaved::new(geo());
        for bank in 0..16usize {
            for row in [0u64, 1, 77, 65535] {
                let a = m.compose(bank, row, 128);
                let c = m.map(a);
                assert_eq!(m.flat_bank(a), bank);
                assert_eq!(c.row, row);
                assert_eq!(c.column, 128);
            }
        }
    }

    #[test]
    fn xor_mapping_is_bijective_over_banks() {
        let m = BankInterleavedXor::new(geo());
        let row_bytes = geo().row_bytes;
        for row in 0..4u64 {
            let mut seen = [false; 16];
            for b in 0..16u64 {
                let addr = PhysAddr((row * 16 + b) * row_bytes);
                let bank = m.flat_bank(addr);
                assert!(!seen[bank], "bank {bank} mapped twice in row {row}");
                seen[bank] = true;
            }
        }
    }

    #[test]
    fn xor_compose_roundtrip() {
        let m = BankInterleavedXor::new(geo());
        for bank in 0..16usize {
            for row in [0u64, 3, 255] {
                let a = m.compose(bank, row, 0);
                assert_eq!(m.flat_bank(a), bank, "row {row} bank {bank}");
                assert_eq!(m.map(a).row, row);
            }
        }
    }

    #[test]
    fn coords_within_geometry() {
        let m = RowInterleaved::new(geo());
        let c = m.map(PhysAddr(123_456_789));
        assert!(c.channel < geo().channels);
        assert!(c.rank < geo().ranks_per_channel);
        assert!(c.bank_group < geo().bank_groups_per_rank);
        assert!(c.bank < geo().banks_per_group);
        assert!(u64::from(c.column) < geo().row_bytes);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn xor_rejects_non_pow2() {
        let mut g = geo();
        g.bank_groups_per_rank = 3;
        let _ = BankInterleavedXor::new(g);
    }

    #[test]
    fn locate_batch_agrees_with_locate() {
        let addrs: Vec<PhysAddr> = (0..300u64).map(|i| PhysAddr(i * 5077 + 13)).collect();
        let mut non_pow2 = geo();
        non_pow2.bank_groups_per_rank = 3; // 12 banks: generic division path
        let mappings: Vec<Box<dyn AddressMapping>> = vec![
            Box::new(RowInterleaved::new(geo())),
            Box::new(BankInterleavedXor::new(geo())),
            Box::new(RowInterleaved::new(non_pow2)),
        ];
        for m in &mappings {
            let mut out = Vec::new();
            m.locate_batch(&addrs, &mut out);
            assert_eq!(out.len(), addrs.len());
            for (i, &addr) in addrs.iter().enumerate() {
                let (bank, row) = m.locate(addr);
                assert_eq!(out[i], (bank as u32, row), "addr {addr:?}");
            }
        }
    }

    #[test]
    fn pow2_split_matches_division() {
        let g = geo();
        let p = Pow2Split::for_geometry(&g).expect("paper geometry is pow2");
        let banks = u64::from(g.total_banks());
        for addr in (0..500u64).map(|i| i * 9973 + 7) {
            let chunk = addr / g.row_bytes;
            let expect = (chunk / banks, chunk % banks, (addr % g.row_bytes) as u32);
            assert_eq!(p.split(addr), expect, "addr {addr}");
        }
        let mut odd = g;
        odd.bank_groups_per_rank = 3;
        assert!(Pow2Split::for_geometry(&odd).is_none());
    }

    #[test]
    fn flat_bank_agrees_with_coord() {
        let m = RowInterleaved::new(geo());
        let g = geo();
        for i in (0..200u64).map(|i| i * 4096 + 64) {
            let a = PhysAddr(i);
            let c = m.map(a);
            assert_eq!(
                c.flat_bank(
                    g.banks_per_group,
                    g.bank_groups_per_rank,
                    g.ranks_per_channel
                ),
                m.flat_bank(a)
            );
        }
    }
}
