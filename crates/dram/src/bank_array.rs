//! Structure-of-arrays storage for all banks of a device.
//!
//! The device used to hold a `Vec<Bank>` — an array of structs. Every
//! field of every bank now lives in its own parallel flat array instead
//! (each statistics counter included), so the batch hot paths touch
//! exactly the cache lines they need: a bank-bucketed servicing loop
//! loads one [`BankCursor`] into registers, services the whole bucket
//! against it, and stores it back once, while a one-request-per-bank
//! sweep uses [`BankArray::access`], which reads only the fields the
//! access consults and dirties only the arrays the access changes (a
//! warm row-buffer hit writes `busy_until`, `last_use` and the hit
//! counter — nothing else).
//!
//! The [`Bank`]-shaped accessor API survives as by-value views
//! ([`BankArray::bank_state`]), and [`BankCursor::fold_state`] keeps the
//! digest layout bit-identical to the array-of-structs representation, so
//! `dram_state_digest()` and the trace-footer codec are unchanged.
//!
//! The columns live behind one `Arc` so the whole array snapshots and
//! forks in O(1) ([`Snapshot`]): clones share the storage and the first
//! mutation on either side copies it (`Arc::make_mut`), which is what
//! makes warmed-engine forks cheap. Uniquely-owned arrays pay only an
//! atomic refcount check per mutating call.

use std::sync::Arc;

use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;

use crate::bank::{AccessOutcome, Bank, BankCursor, BankStats, RowBufferKind};
use crate::policy::RowPolicy;
use crate::timing::ResolvedTiming;

/// The parallel flat arrays, one per bank field; shared copy-on-write
/// between a [`BankArray`] and its snapshots/forks.
#[derive(Debug, Clone)]
struct BankColumns {
    open_row: Vec<u64>,
    busy_until: Vec<Cycles>,
    last_use: Vec<Cycles>,
    last_activator: Vec<u64>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    conflicts: Vec<u64>,
    activations: Vec<u64>,
    rowclones: Vec<u64>,
}

/// All banks of a device, one parallel flat array per bank field.
///
/// Indexing is by flat bank index; every array has the same length. The
/// `Option` fields use the [`BankCursor`] sentinel encoding.
#[derive(Debug, Clone)]
pub struct BankArray {
    cols: Arc<BankColumns>,
}

impl BankArray {
    /// Creates `banks` precharged, idle banks.
    #[must_use]
    pub fn new(banks: usize) -> BankArray {
        BankArray {
            cols: Arc::new(BankColumns {
                open_row: vec![BankCursor::NO_ROW; banks],
                busy_until: vec![Cycles::ZERO; banks],
                last_use: vec![Cycles::ZERO; banks],
                last_activator: vec![BankCursor::NO_ACTOR; banks],
                hits: vec![0; banks],
                misses: vec![0; banks],
                conflicts: vec![0; banks],
                activations: vec![0; banks],
                rowclones: vec![0; banks],
            }),
        }
    }

    /// The columns for mutation: copies the storage first if a snapshot
    /// or fork still shares it.
    #[inline]
    fn cols_mut(&mut self) -> &mut BankColumns {
        // analyze::allow(cow-aliasing): sole accessor-path unshare point
        // for the SoA columns; writes through it copy shared storage
        // before touching any bank field
        Arc::make_mut(&mut self.cols)
    }

    /// Number of banks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cols.open_row.len()
    }

    /// Whether the device has no banks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cols.open_row.is_empty()
    }

    /// Loads one bank's complete state into a register-friendly cursor.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    #[must_use]
    pub fn load(&self, bank: usize) -> BankCursor {
        BankCursor {
            open_row: self.cols.open_row[bank],
            busy_until: self.cols.busy_until[bank],
            last_use: self.cols.last_use[bank],
            last_activator: self.cols.last_activator[bank],
            stats: self.stats(bank),
        }
    }

    /// Stores a cursor back into the arrays.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn store(&mut self, bank: usize, cur: BankCursor) {
        let c = self.cols_mut();
        c.open_row[bank] = cur.open_row;
        c.busy_until[bank] = cur.busy_until;
        c.last_use[bank] = cur.last_use;
        c.last_activator[bank] = cur.last_activator;
        c.hits[bank] = cur.stats.hits;
        c.misses[bank] = cur.stats.misses;
        c.conflicts[bank] = cur.stats.conflicts;
        c.activations[bank] = cur.stats.activations;
        c.rowclones[bank] = cur.stats.rowclones;
    }

    /// By-value view of one bank in the `Option`-typed accessor shape.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_state(&self, bank: usize) -> Bank {
        Bank::from_cursor(self.load(bank))
    }

    /// One bank's accumulated statistics.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn stats(&self, bank: usize) -> BankStats {
        BankStats {
            hits: self.cols.hits[bank],
            misses: self.cols.misses[bank],
            conflicts: self.cols.conflicts[bank],
            activations: self.cols.activations[bank],
            rowclones: self.cols.rowclones[bank],
        }
    }

    /// When `bank` becomes free.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn busy_until(&self, bank: usize) -> Cycles {
        self.cols.busy_until[bank]
    }

    /// Folds one bank's state into a running FNV-1a accumulator; the
    /// layout is pinned by [`BankCursor::fold_state`].
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn fold_state(&self, bank: usize, hash: u64) -> u64 {
        self.load(bank).fold_state(hash)
    }

    /// Aggregated statistics across all banks.
    #[must_use]
    pub fn total_stats(&self) -> BankStats {
        BankStats {
            hits: self.cols.hits.iter().sum(),
            misses: self.cols.misses.iter().sum(),
            conflicts: self.cols.conflicts.iter().sum(),
            activations: self.cols.activations.iter().sum(),
            rowclones: self.cols.rowclones.iter().sum(),
        }
    }

    /// Resets every bank (state and statistics).
    pub fn reset(&mut self) {
        let banks = self.len();
        *self = BankArray::new(banks);
    }

    /// Serves a read/write access on one bank, mutating the arrays in
    /// place.
    ///
    /// This replays the [`BankCursor::access`] state machine field by
    /// field so that only the arrays the access actually changes are
    /// dirtied: a row-buffer hit under an open-page policy leaves
    /// `open_row` and `last_activator` clean and bumps a single counter
    /// array, instead of writing back the entire bank record. The
    /// `soa_access_equals_cursor_access` test (and the controller-level
    /// equivalence proptests) pin the two implementations together.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn access(
        &mut self,
        bank: usize,
        row: u64,
        now: Cycles,
        actor: u32,
        timing: &ResolvedTiming,
        policy: RowPolicy,
    ) -> AccessOutcome {
        // analyze::allow(cow-aliasing): the access hot path unshares the
        // columns up front — it always writes busy/open state, so the
        // copy is unavoidable and hoisted out of the per-field updates
        let c = Arc::make_mut(&mut self.cols);
        let start = now.max(c.busy_until[bank]);
        let raw_open = c.open_row[bank];
        let open = match policy {
            RowPolicy::Closed => BankCursor::NO_ROW,
            RowPolicy::Open { idle_timeout } => match idle_timeout {
                Some(t)
                    if raw_open != BankCursor::NO_ROW
                        && start.saturating_sub(c.last_use[bank]) > t =>
                {
                    BankCursor::NO_ROW
                }
                _ => raw_open,
            },
        };
        let (kind, latency) = if open == row {
            c.hits[bank] += 1;
            (RowBufferKind::Hit, timing.hit_latency())
        } else if open == BankCursor::NO_ROW {
            c.misses[bank] += 1;
            c.activations[bank] += 1;
            (RowBufferKind::Miss, timing.miss_latency())
        } else {
            c.conflicts[bank] += 1;
            c.activations[bank] += 1;
            (RowBufferKind::Conflict, timing.conflict_latency())
        };
        let completed = start + latency;
        c.last_use[bank] = completed;
        match policy {
            RowPolicy::Closed => {
                if raw_open != BankCursor::NO_ROW {
                    c.open_row[bank] = BankCursor::NO_ROW;
                }
                c.busy_until[bank] = completed + timing.t_rp;
            }
            RowPolicy::Open { .. } => {
                if raw_open != row {
                    c.open_row[bank] = row;
                }
                c.busy_until[bank] = completed;
            }
        }
        if kind != RowBufferKind::Hit {
            c.last_activator[bank] = u64::from(actor);
        }
        AccessOutcome {
            kind,
            latency,
            issued_at: start,
            completed_at: completed,
        }
    }

    /// Serves a RowClone copy on one bank (load / mutate / store).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn rowclone(
        &mut self,
        bank: usize,
        src_row: u64,
        dst_row: u64,
        now: Cycles,
        actor: u32,
        timing: &ResolvedTiming,
        policy: RowPolicy,
        rows_per_subarray: u64,
        psm_lines: u64,
    ) -> AccessOutcome {
        let mut cur = self.load(bank);
        let out = cur.rowclone(
            src_row,
            dst_row,
            now,
            actor,
            timing,
            policy,
            rows_per_subarray,
            psm_lines,
        );
        self.store(bank, cur);
        out
    }
}

impl Snapshot for BankArray {
    /// The array is its own snapshot: clones share the columns `Arc`.
    type Snap = BankArray;

    fn snapshot(&self) -> BankArray {
        self.clone()
    }

    fn restore(&mut self, snap: &BankArray) {
        self.cols = Arc::clone(&snap.cols);
    }

    fn fork(&self) -> BankArray {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::DramTiming;
    use impact_core::hash::FNV_OFFSET;
    use impact_core::time::Clock;

    fn timing() -> ResolvedTiming {
        ResolvedTiming::resolve(&DramTiming::paper_table2(), Clock::paper_default())
    }

    /// The SoA array and a plain `Vec<Bank>` driven with the same request
    /// stream end in identical state — field by field and digest by
    /// digest. This is the AoS↔SoA equivalence the refactor relies on.
    #[test]
    fn soa_equals_vec_of_banks() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut arr = BankArray::new(4);
        let mut vecs: Vec<Bank> = (0..4).map(|_| Bank::new()).collect();
        let ops: [(usize, u64, u64, u32); 7] = [
            (0, 5, 0, 1),
            (1, 6, 100, 2),
            (0, 5, 900, 1),
            (2, 7, 1000, 3),
            (0, 9, 2000, 2),
            (3, 1, 2500, 1),
            (1, 6, 3000, 2),
        ];
        for (bank, row, at, actor) in ops {
            let a = arr.access(bank, row, Cycles(at), actor, &t, p);
            let b = vecs[bank].access(row, Cycles(at), actor, &t, p);
            assert_eq!(a, b);
        }
        let c = arr.rowclone(2, 7, 8, Cycles(5000), 1, &t, p, 512, 128);
        let d = vecs[2].rowclone(7, 8, Cycles(5000), 1, &t, p, 512, 128);
        assert_eq!(c, d);
        for (bank, vec_bank) in vecs.iter().enumerate() {
            assert_eq!(arr.bank_state(bank).cursor(), vec_bank.cursor());
            assert_eq!(
                arr.fold_state(bank, FNV_OFFSET),
                vec_bank.fold_state(FNV_OFFSET),
                "bank {bank} digest diverged"
            );
        }
        let mut total = BankStats::default();
        for b in &vecs {
            total += b.stats();
        }
        assert_eq!(arr.total_stats(), total);
    }

    /// The in-place access and the cursor state machine stay bit-identical
    /// across policies, timeouts, hits, misses and conflicts.
    #[test]
    fn soa_access_equals_cursor_access() {
        let t = timing();
        for policy in [
            RowPolicy::open_page(),
            RowPolicy::closed_page(),
            RowPolicy::open_with_timeout(Cycles(500)),
        ] {
            let mut arr = BankArray::new(1);
            let mut cur = BankCursor::new();
            // Hits, conflicts, idle gaps past the timeout, misses; the
            // actor alternates so last_activator churns.
            let ops: [(u64, u64); 8] = [
                (3, 0),
                (3, 200),
                (9, 400),
                (9, 2000), // after a long gap: timeout-dependent
                (1, 2100),
                (1, 2150),
                (5, 9000),
                (5, 9001),
            ];
            for (i, (row, at)) in ops.into_iter().enumerate() {
                let actor = (i % 3) as u32;
                let a = arr.access(0, row, Cycles(at), actor, &t, policy);
                let b = cur.access(row, Cycles(at), actor, &t, policy);
                assert_eq!(a, b, "op {i} diverged under {policy:?}");
                assert_eq!(arr.load(0), cur, "state {i} diverged under {policy:?}");
            }
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let t = timing();
        let mut arr = BankArray::new(2);
        arr.access(1, 42, Cycles(0), 7, &t, RowPolicy::open_page());
        let cur = arr.load(1);
        let mut other = BankArray::new(2);
        other.store(1, cur);
        assert_eq!(other.load(1), cur);
        assert_eq!(other.bank_state(1).raw_open_row(), Some(42));
        assert_eq!(other.busy_until(1), cur.busy_until);
        // Bank 0 untouched in both.
        assert_eq!(other.load(0), BankCursor::new());
    }

    /// Snapshot/fork share storage until written: a child's writes never
    /// reach the parent, restore rewinds exactly to the captured state.
    #[test]
    fn cow_fork_isolates_and_restore_rewinds() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut parent = BankArray::new(4);
        parent.access(0, 5, Cycles(0), 1, &t, p);
        let snap = Snapshot::snapshot(&parent);
        let parent_digest = parent.fold_state(0, FNV_OFFSET);

        let mut child = parent.fork();
        child.access(0, 9, Cycles(100), 2, &t, p);
        child.access(1, 3, Cycles(100), 2, &t, p);
        assert_eq!(
            parent.fold_state(0, FNV_OFFSET),
            parent_digest,
            "child write leaked into parent"
        );
        assert_ne!(child.fold_state(0, FNV_OFFSET), parent_digest);

        parent.access(0, 7, Cycles(200), 1, &t, p);
        parent.restore(&snap);
        assert_eq!(parent.fold_state(0, FNV_OFFSET), parent_digest);
        assert_eq!(parent.total_stats(), snap.total_stats());
    }

    #[test]
    fn reset_restores_fresh_array() {
        let t = timing();
        let mut arr = BankArray::new(3);
        arr.access(0, 1, Cycles(0), 0, &t, RowPolicy::open_page());
        arr.reset();
        assert_eq!(arr.len(), 3);
        assert!(!arr.is_empty());
        assert_eq!(arr.total_stats().total_accesses(), 0);
        assert_eq!(
            arr.fold_state(0, FNV_OFFSET),
            BankArray::new(3).fold_state(0, FNV_OFFSET)
        );
    }
}
