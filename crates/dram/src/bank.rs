//! Per-bank row-buffer state machine.
//!
//! Two representations share one implementation:
//!
//! * [`BankCursor`] — the bank state as a flat, `Copy`, sentinel-encoded
//!   record. This is what the hot batch paths hold in registers while a
//!   per-bank loop services a bucket of requests, and it carries the only
//!   implementation of the access/RowClone/digest state machine.
//! * [`Bank`] — an `Option`-typed view over a cursor, kept as the public
//!   accessor API (`raw_open_row() -> Option<u64>` etc.) and as the unit
//!   under test for the bank-level properties.
//!
//! Whole-device storage lives in [`BankArray`](crate::bank_array::BankArray),
//! which holds one parallel flat array per cursor field and loads/stores
//! cursors by bank index.

use impact_core::time::Cycles;

use crate::policy::RowPolicy;
use crate::timing::ResolvedTiming;

// The classification enum lives in the backend-agnostic engine vocabulary
// so that backends outside this crate can speak it; re-exported here (and
// from the crate root) for source compatibility.
pub use impact_core::engine::RowBufferKind;

/// Result of serving one DRAM operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Row-buffer classification.
    pub kind: RowBufferKind,
    /// Device-level service latency (excludes controller/bus front end).
    pub latency: Cycles,
    /// When the command actually started (>= request time if the bank was
    /// busy).
    pub issued_at: Cycles,
    /// When the data burst completed.
    pub completed_at: Cycles,
}

impl AccessOutcome {
    /// Total latency observed by the requester: queueing + service.
    #[must_use]
    pub fn observed_latency(&self, requested_at: Cycles) -> Cycles {
        self.completed_at - requested_at
    }
}

/// Per-bank event statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BankStats {
    /// Number of row-buffer hits served.
    pub hits: u64,
    /// Number of closed-bank misses served.
    pub misses: u64,
    /// Number of row conflicts served.
    pub conflicts: u64,
    /// Number of row activations issued (misses + conflicts + rowclone
    /// activations).
    pub activations: u64,
    /// Number of RowClone operations served.
    pub rowclones: u64,
}

impl BankStats {
    /// Total accesses classified.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.hits + self.misses + self.conflicts
    }

    /// Accumulates `other` into `self`, counter by counter.
    pub fn merge(&mut self, other: &BankStats) {
        // Exhaustive destructuring: adding a counter without merging it
        // becomes a compile error instead of silently dropped stats.
        let BankStats {
            hits,
            misses,
            conflicts,
            activations,
            rowclones,
        } = *other;
        self.hits += hits;
        self.misses += misses;
        self.conflicts += conflicts;
        self.activations += activations;
        self.rowclones += rowclones;
    }
}

impl core::ops::AddAssign<&BankStats> for BankStats {
    fn add_assign(&mut self, rhs: &BankStats) {
        self.merge(rhs);
    }
}

impl core::ops::AddAssign for BankStats {
    fn add_assign(&mut self, rhs: BankStats) {
        self.merge(&rhs);
    }
}

/// The complete state of one DRAM bank as a flat `Copy` record: an
/// independent row buffer plus timing bookkeeping.
///
/// The cursor tracks which row is open, until when the bank is busy and
/// when the open row was last touched (for the optional idle timeout). It
/// also records the identity of the last actor to activate a row, which
/// the side-channel analysis uses as ground truth.
///
/// `Option` fields are sentinel-encoded so the whole record is `Copy` and
/// register-friendly:
///
/// * `open_row == `[`BankCursor::NO_ROW`] means "precharged". Row indices
///   derive from in-capacity physical addresses, so a real row can never
///   reach the sentinel.
/// * `last_activator == `[`BankCursor::NO_ACTOR`] means "never activated".
///   Actor ids are `u32` (every value of which is valid, including the
///   anonymous `u32::MAX`), so the sentinel must live above `u32` range —
///   hence the field is a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankCursor {
    /// Open row, or [`BankCursor::NO_ROW`] when precharged.
    pub open_row: u64,
    /// When the bank becomes free.
    pub busy_until: Cycles,
    /// When the open row was last touched.
    pub last_use: Cycles,
    /// Last activating actor (a `u32` value), or [`BankCursor::NO_ACTOR`].
    pub last_activator: u64,
    /// Accumulated statistics.
    pub stats: BankStats,
}

impl BankCursor {
    /// Sentinel in [`BankCursor::open_row`]: no row is open.
    pub const NO_ROW: u64 = u64::MAX;
    /// Sentinel in [`BankCursor::last_activator`]: no activation yet.
    /// Above `u32` range, so every real actor id (a `u32`) is encodable.
    pub const NO_ACTOR: u64 = u64::MAX;

    /// A precharged, idle bank.
    #[must_use]
    pub fn new() -> BankCursor {
        BankCursor {
            open_row: BankCursor::NO_ROW,
            busy_until: Cycles::ZERO,
            last_use: Cycles::ZERO,
            last_activator: BankCursor::NO_ACTOR,
            stats: BankStats::default(),
        }
    }

    /// The currently open row under `policy` as observed at time `now`
    /// (accounts for the idle timeout without mutating state), sentinel
    /// encoded.
    #[inline]
    #[must_use]
    pub fn open_row_at(&self, now: Cycles, policy: RowPolicy) -> u64 {
        match policy {
            RowPolicy::Closed => BankCursor::NO_ROW,
            RowPolicy::Open { idle_timeout } => {
                if let Some(t) = idle_timeout {
                    if self.open_row != BankCursor::NO_ROW && now.saturating_sub(self.last_use) > t
                    {
                        return BankCursor::NO_ROW;
                    }
                }
                self.open_row
            }
        }
    }

    /// Classifies an access to `row` at `now` without serving it.
    #[inline]
    #[must_use]
    pub fn classify(&self, row: u64, now: Cycles, policy: RowPolicy) -> RowBufferKind {
        let open = self.open_row_at(now, policy);
        if open == row {
            RowBufferKind::Hit
        } else if open == BankCursor::NO_ROW {
            RowBufferKind::Miss
        } else {
            RowBufferKind::Conflict
        }
    }

    /// Serves a read/write access to `row` requested at `now` by `actor`.
    ///
    /// Returns the classification, the device latency and the completion
    /// time. The bank is busy until completion.
    #[inline]
    pub fn access(
        &mut self,
        row: u64,
        now: Cycles,
        actor: u32,
        timing: &ResolvedTiming,
        policy: RowPolicy,
    ) -> AccessOutcome {
        let start = now.max(self.busy_until);
        let kind = self.classify(row, start, policy);
        let latency = match kind {
            RowBufferKind::Hit => timing.hit_latency(),
            RowBufferKind::Miss => timing.miss_latency(),
            RowBufferKind::Conflict => timing.conflict_latency(),
        };
        match kind {
            RowBufferKind::Hit => self.stats.hits += 1,
            RowBufferKind::Miss => {
                self.stats.misses += 1;
                self.stats.activations += 1;
            }
            RowBufferKind::Conflict => {
                self.stats.conflicts += 1;
                self.stats.activations += 1;
            }
        }
        let completed = start + latency;
        self.busy_until = completed;
        self.last_use = completed;
        match policy {
            RowPolicy::Closed => {
                // Auto-precharge after the access; precharge overlaps with
                // the requester's completion.
                self.open_row = BankCursor::NO_ROW;
                self.busy_until = completed + timing.t_rp;
            }
            RowPolicy::Open { .. } => {
                self.open_row = row;
            }
        }
        if kind != RowBufferKind::Hit {
            self.last_activator = u64::from(actor);
        }
        AccessOutcome {
            kind,
            latency,
            issued_at: start,
            completed_at: completed,
        }
    }

    /// Serves a RowClone copy from `src_row` to `dst_row` requested at
    /// `now` by `actor`. See [`Bank::rowclone`] for the timing model.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn rowclone(
        &mut self,
        src_row: u64,
        dst_row: u64,
        now: Cycles,
        actor: u32,
        timing: &ResolvedTiming,
        policy: RowPolicy,
        rows_per_subarray: u64,
        psm_lines: u64,
    ) -> AccessOutcome {
        let start = now.max(self.busy_until);
        let kind = self.classify(src_row, start, policy);
        let cross_subarray =
            rows_per_subarray > 0 && src_row / rows_per_subarray != dst_row / rows_per_subarray;
        let latency = if cross_subarray {
            // PSM ignores row-buffer luck: the copy is bus-bound. A
            // precharge is still needed if another row is open.
            let pre = if kind == RowBufferKind::Conflict {
                timing.t_rp
            } else {
                Cycles::ZERO
            };
            pre + timing.rowclone_psm_latency(psm_lines)
        } else {
            match kind {
                RowBufferKind::Hit => timing.rowclone_hit_latency(),
                RowBufferKind::Miss => timing.rowclone_closed_latency(),
                RowBufferKind::Conflict => timing.rowclone_conflict_latency(),
            }
        };
        self.stats.rowclones += 1;
        self.stats.activations += match kind {
            RowBufferKind::Hit => 1,
            RowBufferKind::Miss => 2,
            RowBufferKind::Conflict => 2,
        };
        match kind {
            RowBufferKind::Hit => self.stats.hits += 1,
            RowBufferKind::Miss => self.stats.misses += 1,
            RowBufferKind::Conflict => self.stats.conflicts += 1,
        }
        let completed = start + latency;
        self.busy_until = completed;
        self.last_use = completed;
        match policy {
            RowPolicy::Closed => {
                self.open_row = BankCursor::NO_ROW;
                self.busy_until = completed + timing.t_rp;
            }
            RowPolicy::Open { .. } => {
                self.open_row = dst_row;
            }
        }
        self.last_activator = u64::from(actor);
        AccessOutcome {
            kind,
            latency,
            issued_at: start,
            completed_at: completed,
        }
    }

    /// Folds the complete bank state — open row, timing bookkeeping, last
    /// activator and statistics — into a running FNV-1a accumulator. Two
    /// banks fold identically iff they are in identical states, which is
    /// how trace replays prove "final DRAM state is bit-identical" across
    /// backends and machines without shipping the state itself.
    ///
    /// The digest layout is the historical `Option`-tagged one (a 0 tag
    /// for "absent", a 1 tag followed by the value), so digests recorded
    /// before the sentinel encoding — including on-disk trace footers —
    /// still verify.
    #[must_use]
    pub fn fold_state(&self, mut hash: u64) -> u64 {
        use impact_core::hash::fnv1a_u64;
        let fold_enc = |h: u64, v: u64, sentinel: u64| {
            if v == sentinel {
                fnv1a_u64(h, 0)
            } else {
                fnv1a_u64(fnv1a_u64(h, 1), v)
            }
        };
        hash = fold_enc(hash, self.open_row, BankCursor::NO_ROW);
        hash = fnv1a_u64(hash, self.busy_until.0);
        hash = fnv1a_u64(hash, self.last_use.0);
        hash = fold_enc(hash, self.last_activator, BankCursor::NO_ACTOR);
        let BankStats {
            hits,
            misses,
            conflicts,
            activations,
            rowclones,
        } = self.stats;
        for counter in [hits, misses, conflicts, activations, rowclones] {
            hash = fnv1a_u64(hash, counter);
        }
        hash
    }
}

impl Default for BankCursor {
    fn default() -> BankCursor {
        BankCursor::new()
    }
}

/// One DRAM bank: an independent row buffer plus timing bookkeeping.
///
/// A thin `Option`-typed view over a [`BankCursor`] (which holds the
/// actual state machine); see the module docs for the split.
#[derive(Debug, Clone)]
pub struct Bank {
    cur: BankCursor,
}

impl Bank {
    /// Creates a precharged, idle bank.
    #[must_use]
    pub fn new() -> Bank {
        Bank {
            cur: BankCursor::new(),
        }
    }

    /// Wraps a cursor (used by
    /// [`BankArray`](crate::bank_array::BankArray) to snapshot a bank).
    #[must_use]
    pub fn from_cursor(cur: BankCursor) -> Bank {
        Bank { cur }
    }

    /// The underlying flat state record.
    #[must_use]
    pub fn cursor(&self) -> BankCursor {
        self.cur
    }

    /// The currently open row under `policy` as observed at time `now`
    /// (accounts for the idle timeout without mutating state).
    #[must_use]
    pub fn open_row_at(&self, now: Cycles, policy: RowPolicy) -> Option<u64> {
        decode(self.cur.open_row_at(now, policy), BankCursor::NO_ROW)
    }

    /// Raw open row irrespective of policy/timeouts.
    #[must_use]
    pub fn raw_open_row(&self) -> Option<u64> {
        decode(self.cur.open_row, BankCursor::NO_ROW)
    }

    /// The actor that last activated a row in this bank, if any.
    #[must_use]
    pub fn last_activator(&self) -> Option<u32> {
        decode(self.cur.last_activator, BankCursor::NO_ACTOR)
            .map(|v| u32::try_from(v).expect("actor ids are u32"))
    }

    /// When the bank becomes free.
    #[must_use]
    pub fn busy_until(&self) -> Cycles {
        self.cur.busy_until
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &BankStats {
        &self.cur.stats
    }

    /// Folds the complete bank state into a running FNV-1a accumulator;
    /// see [`BankCursor::fold_state`].
    #[must_use]
    pub fn fold_state(&self, hash: u64) -> u64 {
        self.cur.fold_state(hash)
    }

    /// Resets state and statistics.
    pub fn reset(&mut self) {
        self.cur = BankCursor::new();
    }

    /// Classifies an access to `row` at `now` without serving it.
    #[must_use]
    pub fn classify(&self, row: u64, now: Cycles, policy: RowPolicy) -> RowBufferKind {
        self.cur.classify(row, now, policy)
    }

    /// Serves a read/write access to `row` requested at `now` by `actor`.
    ///
    /// Returns the classification, the device latency and the completion
    /// time. The bank is busy until completion.
    pub fn access(
        &mut self,
        row: u64,
        now: Cycles,
        actor: u32,
        timing: &ResolvedTiming,
        policy: RowPolicy,
    ) -> AccessOutcome {
        self.cur.access(row, now, actor, timing, policy)
    }

    /// Serves a RowClone copy from `src_row` to `dst_row` requested at
    /// `now` by `actor`.
    ///
    /// Same-subarray copies use Fast Parallel Mode, whose latency depends
    /// on the row-buffer state exactly like a normal access (this is the
    /// IMPACT-PuM timing channel):
    /// - source row already open → single extra activation,
    /// - bank precharged → two back-to-back activations,
    /// - other row open → precharge first.
    ///
    /// Copies that cross a subarray boundary (`rows_per_subarray`) fall
    /// back to Pipelined Serial Mode, streaming `psm_lines` cache lines
    /// through the internal bus — an order of magnitude slower
    /// (Seshadri et al., MICRO'13). Pass `rows_per_subarray = 0` to treat
    /// the whole bank as one subarray.
    ///
    /// After the copy the destination row is connected to the bitlines, so
    /// it is left open under open-row policies.
    #[allow(clippy::too_many_arguments)]
    pub fn rowclone(
        &mut self,
        src_row: u64,
        dst_row: u64,
        now: Cycles,
        actor: u32,
        timing: &ResolvedTiming,
        policy: RowPolicy,
        rows_per_subarray: u64,
        psm_lines: u64,
    ) -> AccessOutcome {
        self.cur.rowclone(
            src_row,
            dst_row,
            now,
            actor,
            timing,
            policy,
            rows_per_subarray,
            psm_lines,
        )
    }
}

impl Default for Bank {
    fn default() -> Bank {
        Bank::new()
    }
}

/// Decodes a sentinel-encoded field into an `Option`.
#[inline]
fn decode(v: u64, sentinel: u64) -> Option<u64> {
    (v != sentinel).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::DramTiming;
    use impact_core::time::Clock;

    fn timing() -> ResolvedTiming {
        ResolvedTiming::resolve(&DramTiming::paper_table2(), Clock::paper_default())
    }

    #[test]
    fn miss_then_hit_then_conflict() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        let a1 = b.access(5, Cycles(0), 0, &t, p);
        assert_eq!(a1.kind, RowBufferKind::Miss);
        let a2 = b.access(5, a1.completed_at, 0, &t, p);
        assert_eq!(a2.kind, RowBufferKind::Hit);
        let a3 = b.access(6, a2.completed_at, 0, &t, p);
        assert_eq!(a3.kind, RowBufferKind::Conflict);
        assert_eq!(a3.latency - a2.latency, Cycles(74));
    }

    #[test]
    fn busy_bank_queues() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        let a1 = b.access(5, Cycles(0), 0, &t, p);
        // Request issued while the bank is still busy starts late.
        let a2 = b.access(5, Cycles(1), 0, &t, p);
        assert_eq!(a2.issued_at, a1.completed_at);
        assert!(a2.observed_latency(Cycles(1)) > a2.latency);
    }

    #[test]
    fn closed_policy_never_hits() {
        let t = timing();
        let p = RowPolicy::closed_page();
        let mut b = Bank::new();
        let a1 = b.access(5, Cycles(0), 0, &t, p);
        let a2 = b.access(5, a1.completed_at + t.t_rp, 0, &t, p);
        assert_eq!(a1.kind, RowBufferKind::Miss);
        assert_eq!(a2.kind, RowBufferKind::Miss);
        assert_eq!(b.stats().hits, 0);
    }

    #[test]
    fn idle_timeout_downgrades_hit_to_miss() {
        let t = timing();
        let p = RowPolicy::open_with_timeout(Cycles(260));
        let mut b = Bank::new();
        let a1 = b.access(5, Cycles(0), 0, &t, p);
        // Within the timeout: hit.
        let a2 = b.access(5, a1.completed_at + Cycles(100), 0, &t, p);
        assert_eq!(a2.kind, RowBufferKind::Hit);
        // Past the timeout: miss, not conflict (row was eagerly closed).
        let a3 = b.access(6, a2.completed_at + Cycles(1000), 0, &t, p);
        assert_eq!(a3.kind, RowBufferKind::Miss);
    }

    #[test]
    fn last_activator_tracks_interference() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        b.access(5, Cycles(0), 7, &t, p);
        assert_eq!(b.last_activator(), Some(7));
        // A hit does not change the activator.
        b.access(5, Cycles(10_000), 9, &t, p);
        assert_eq!(b.last_activator(), Some(7));
        b.access(6, Cycles(20_000), 9, &t, p);
        assert_eq!(b.last_activator(), Some(9));
    }

    #[test]
    fn anonymous_actor_id_is_representable() {
        // u32::MAX is a real actor id (the anonymous actor), so it must
        // round-trip through the sentinel encoding unscathed.
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        assert_eq!(b.last_activator(), None);
        b.access(5, Cycles(0), u32::MAX, &t, p);
        assert_eq!(b.last_activator(), Some(u32::MAX));
    }

    #[test]
    fn rowclone_latencies() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        // Precharged bank: two activations.
        let c1 = b.rowclone(10, 20, Cycles(0), 0, &t, p, 0, 128);
        assert_eq!(c1.kind, RowBufferKind::Miss);
        assert_eq!(c1.latency, t.rowclone_closed_latency());
        // dst row (20) left open; cloning from it again is the fast path.
        let c2 = b.rowclone(20, 30, c1.completed_at, 0, &t, p, 0, 128);
        assert_eq!(c2.kind, RowBufferKind::Hit);
        assert_eq!(c2.latency, t.rowclone_hit_latency());
        // A different source while row 30 is open conflicts.
        let c3 = b.rowclone(40, 50, c2.completed_at, 0, &t, p, 0, 128);
        assert_eq!(c3.kind, RowBufferKind::Conflict);
        assert_eq!(c3.latency, t.rowclone_conflict_latency());
        assert_eq!(b.stats().rowclones, 3);
    }

    #[test]
    fn cross_subarray_copy_uses_psm() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        // Rows 10 and 600 are in different 512-row subarrays.
        let psm = b.rowclone(10, 600, Cycles(0), 0, &t, p, 512, 128);
        assert!(
            psm.latency > t.rowclone_conflict_latency() * 3,
            "PSM latency {} too low",
            psm.latency
        );
        // Same-subarray copy stays fast.
        let mut b2 = Bank::new();
        let fpm = b2.rowclone(10, 20, Cycles(0), 0, &t, p, 512, 128);
        assert_eq!(fpm.latency, t.rowclone_closed_latency());
    }

    #[test]
    fn classify_is_pure() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        b.access(5, Cycles(0), 0, &t, p);
        let before = *b.stats();
        let k = b.classify(6, Cycles(1000), p);
        assert_eq!(k, RowBufferKind::Conflict);
        assert_eq!(b.stats(), &before);
    }

    #[test]
    fn stats_accumulate() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        let mut now = Cycles(0);
        for row in [1, 1, 2, 2, 3] {
            let o = b.access(row, now, 0, &t, p);
            now = o.completed_at;
        }
        let s = b.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.conflicts, 2);
        assert_eq!(s.total_accesses(), 5);
        assert_eq!(s.activations, 3);
    }

    #[test]
    fn reset_clears_everything() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        b.access(5, Cycles(0), 3, &t, p);
        b.reset();
        assert_eq!(b.raw_open_row(), None);
        assert_eq!(b.last_activator(), None);
        assert_eq!(b.stats().total_accesses(), 0);
    }

    #[test]
    fn state_fold_separates_states() {
        use impact_core::hash::FNV_OFFSET;
        let t = timing();
        let p = RowPolicy::open_page();
        let fresh = Bank::new().fold_state(FNV_OFFSET);
        assert_eq!(fresh, Bank::new().fold_state(FNV_OFFSET));

        let mut a = Bank::new();
        a.access(5, Cycles(0), 3, &t, p);
        let mut b = Bank::new();
        b.access(5, Cycles(0), 3, &t, p);
        assert_eq!(a.fold_state(FNV_OFFSET), b.fold_state(FNV_OFFSET));
        assert_ne!(a.fold_state(FNV_OFFSET), fresh);

        // A different actor leaves the same timing but a different digest.
        let mut c = Bank::new();
        c.access(5, Cycles(0), 4, &t, p);
        assert_ne!(a.fold_state(FNV_OFFSET), c.fold_state(FNV_OFFSET));

        a.reset();
        assert_eq!(a.fold_state(FNV_OFFSET), fresh);
    }

    #[test]
    fn fold_state_matches_manual_option_layout() {
        // Pin the digest layout to the historical `Option`-tagged fold: a
        // refactor of the sentinel encoding must not change what trace
        // footers recorded before it.
        use impact_core::hash::{fnv1a_u64, FNV_OFFSET};
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        let o = b.access(5, Cycles(0), 3, &t, p);

        let fold_opt = |h: u64, v: Option<u64>| match v {
            None => fnv1a_u64(h, 0),
            Some(v) => fnv1a_u64(fnv1a_u64(h, 1), v),
        };
        let mut expect = FNV_OFFSET;
        expect = fold_opt(expect, Some(5));
        expect = fnv1a_u64(expect, o.completed_at.0);
        expect = fnv1a_u64(expect, o.completed_at.0);
        expect = fold_opt(expect, Some(3));
        for counter in [0u64, 1, 0, 1, 0] {
            expect = fnv1a_u64(expect, counter);
        }
        assert_eq!(b.fold_state(FNV_OFFSET), expect);
    }

    #[test]
    fn cursor_roundtrips_through_bank() {
        let t = timing();
        let p = RowPolicy::open_page();
        let mut b = Bank::new();
        b.access(5, Cycles(0), 3, &t, p);
        b.access(5, Cycles(500), 4, &t, p);
        let snap = Bank::from_cursor(b.cursor());
        assert_eq!(snap.raw_open_row(), b.raw_open_row());
        assert_eq!(snap.last_activator(), b.last_activator());
        assert_eq!(snap.busy_until(), b.busy_until());
        assert_eq!(snap.stats(), b.stats());
        assert_eq!(snap.fold_state(7), b.fold_state(7));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::policy::RowPolicy;
    use impact_core::config::DramTiming;
    use impact_core::time::Clock;
    use proptest::prelude::*;

    fn timing() -> ResolvedTiming {
        ResolvedTiming::resolve(&DramTiming::paper_table2(), Clock::paper_default())
    }

    proptest! {
        /// Under the closed-row policy no access ever hits, whatever the
        /// pattern — the CRP defense guarantee.
        #[test]
        fn closed_policy_never_hits(rows in prop::collection::vec(0u64..64, 1..100)) {
            let t = timing();
            let mut b = Bank::new();
            let mut now = Cycles(0);
            for row in rows {
                let out = b.access(row, now, 0, &t, RowPolicy::closed_page());
                prop_assert_eq!(out.kind, RowBufferKind::Miss);
                now = out.completed_at + t.t_rp;
            }
            prop_assert_eq!(b.stats().hits, 0);
        }

        /// With an eager idle timeout, any access after the timeout is
        /// never a hit and never a conflict (the row was auto-precharged).
        #[test]
        fn timeout_erases_state(row_a in 0u64..64, row_b in 0u64..64, idle in 261u64..10_000) {
            let t = timing();
            let policy = RowPolicy::open_with_timeout(Cycles(260));
            let mut b = Bank::new();
            let first = b.access(row_a, Cycles(0), 0, &t, policy);
            let out = b.access(row_b, first.completed_at + Cycles(idle), 0, &t, policy);
            prop_assert_eq!(out.kind, RowBufferKind::Miss);
        }

        /// RowClone always leaves the destination row open under open-page
        /// policies, regardless of prior state.
        #[test]
        fn rowclone_leaves_dst_open(
            pre_row in prop::option::of(0u64..64),
            src in 0u64..64,
            dst in 64u64..128,
        ) {
            let t = timing();
            let policy = RowPolicy::open_page();
            let mut b = Bank::new();
            let mut now = Cycles(0);
            if let Some(r) = pre_row {
                now = b.access(r, now, 0, &t, policy).completed_at;
            }
            b.rowclone(src, dst, now, 0, &t, policy, 512, 128);
            prop_assert_eq!(b.raw_open_row(), Some(dst));
        }

        /// Bank time never goes backwards: completion times are
        /// monotonically non-decreasing across any request sequence, even
        /// with out-of-order request timestamps.
        #[test]
        fn completions_are_monotone(reqs in prop::collection::vec((0u64..64, 0u64..100_000), 1..60)) {
            let t = timing();
            let policy = RowPolicy::open_page();
            let mut b = Bank::new();
            let mut last = Cycles(0);
            for (row, at) in reqs {
                let out = b.access(row, Cycles(at), 0, &t, policy);
                prop_assert!(out.completed_at >= last);
                prop_assert!(out.issued_at >= Cycles(at));
                last = out.completed_at;
            }
        }

        /// The cursor state machine and the `Bank` wrapper are the same
        /// implementation: driving both with an identical request stream
        /// leaves identical state, statistics, and digests.
        #[test]
        fn cursor_equals_bank(reqs in prop::collection::vec((0u64..64, 0u64..50_000, 0u32..4), 1..60)) {
            let t = timing();
            let policy = RowPolicy::open_page();
            let mut bank = Bank::new();
            let mut cur = BankCursor::new();
            for (row, at, actor) in reqs {
                let a = bank.access(row, Cycles(at), actor, &t, policy);
                let b = cur.access(row, Cycles(at), actor, &t, policy);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(bank.cursor(), cur);
            prop_assert_eq!(bank.fold_state(1), cur.fold_state(1));
        }
    }
}
