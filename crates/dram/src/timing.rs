//! DRAM timing parameters resolved to CPU cycles.

use impact_core::config::DramTiming;
use impact_core::time::{Clock, Cycles, Nanos};

/// DRAM timing parameters converted to CPU cycles for a given clock.
///
/// # Example
///
/// ```
/// use impact_core::config::DramTiming;
/// use impact_core::time::Clock;
/// use impact_dram::ResolvedTiming;
///
/// let t = ResolvedTiming::resolve(&DramTiming::paper_table2(), Clock::paper_default());
/// assert_eq!(t.t_rcd.0, 36);
/// assert_eq!(t.t_rp.0, 36);
/// // Conflict pays tRP + tRCD + command overhead = 74 extra cycles.
/// assert_eq!(t.conflict_penalty().0, 74);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedTiming {
    /// Activate-to-CAS delay.
    pub t_rcd: Cycles,
    /// Precharge latency.
    pub t_rp: Cycles,
    /// Activate-to-activate minimum (same bank).
    pub t_rc: Cycles,
    /// CAS latency.
    pub t_cl: Cycles,
    /// Burst transfer time for one cache line.
    pub t_burst: Cycles,
    /// Idle row timeout (used when the row policy enables eager closing).
    pub row_timeout: Cycles,
    /// Extra command/bus overhead on a conflict.
    pub conflict_overhead: Cycles,
}

impl ResolvedTiming {
    /// Converts nanosecond timing into cycles under `clock`.
    #[must_use]
    pub fn resolve(timing: &DramTiming, clock: Clock) -> ResolvedTiming {
        ResolvedTiming {
            t_rcd: clock.cycles_ceil(Nanos(timing.t_rcd_ns)),
            t_rp: clock.cycles_ceil(Nanos(timing.t_rp_ns)),
            t_rc: clock.cycles_ceil(Nanos(timing.t_rc_ns)),
            t_cl: clock.cycles_ceil(Nanos(timing.t_cl_ns)),
            t_burst: clock.cycles_ceil(Nanos(timing.t_burst_ns)),
            row_timeout: clock.cycles_ceil(Nanos(timing.row_timeout_ns)),
            conflict_overhead: clock.cycles_ceil(Nanos(timing.conflict_overhead_ns)),
        }
    }

    /// Latency of a row-buffer hit: CAS + burst.
    #[must_use]
    pub fn hit_latency(&self) -> Cycles {
        self.t_cl + self.t_burst
    }

    /// Latency of a closed-bank miss: ACT + CAS + burst.
    #[must_use]
    pub fn miss_latency(&self) -> Cycles {
        self.t_rcd + self.hit_latency()
    }

    /// Latency of a row conflict: PRE + ACT + CAS + burst + overhead.
    #[must_use]
    pub fn conflict_latency(&self) -> Cycles {
        self.t_rp + self.t_rcd + self.hit_latency() + self.conflict_overhead
    }

    /// The conflict-vs-hit delta the attacks measure (74 cycles for the
    /// paper's configuration).
    #[must_use]
    pub fn conflict_penalty(&self) -> Cycles {
        self.conflict_latency() - self.hit_latency()
    }

    /// Worst-case access latency (used by the CTD/ACT defenses).
    #[must_use]
    pub fn worst_case_latency(&self) -> Cycles {
        self.conflict_latency()
    }

    /// RowClone FPM latency when the bank is precharged: two back-to-back
    /// activations.
    #[must_use]
    pub fn rowclone_closed_latency(&self) -> Cycles {
        self.t_rcd * 2
    }

    /// RowClone FPM latency when the source row is already open: a single
    /// additional activation connects the destination row.
    #[must_use]
    pub fn rowclone_hit_latency(&self) -> Cycles {
        self.t_rcd
    }

    /// RowClone FPM latency when a different row is open: precharge first.
    #[must_use]
    pub fn rowclone_conflict_latency(&self) -> Cycles {
        self.t_rp + self.t_rcd * 2 + self.conflict_overhead
    }

    /// RowClone Pipelined Serial Mode latency for a cross-subarray copy of
    /// `lines` cache lines: the row is streamed through the shared
    /// internal bus one line at a time (MICRO'13 reports ~10x slower than
    /// FPM for an 8 KiB row).
    #[must_use]
    pub fn rowclone_psm_latency(&self, lines: u64) -> Cycles {
        self.t_rcd * 2 + self.t_burst * lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> ResolvedTiming {
        ResolvedTiming::resolve(&DramTiming::paper_table2(), Clock::paper_default())
    }

    #[test]
    fn paper_values() {
        let t = t();
        assert_eq!(t.t_rcd, Cycles(36));
        assert_eq!(t.t_rp, Cycles(36));
        assert_eq!(t.t_cl, Cycles(37));
        assert_eq!(t.row_timeout, Cycles(260));
    }

    #[test]
    fn latency_ordering() {
        let t = t();
        assert!(t.hit_latency() < t.miss_latency());
        assert!(t.miss_latency() < t.conflict_latency());
        assert_eq!(t.worst_case_latency(), t.conflict_latency());
    }

    #[test]
    fn conflict_penalty_is_74() {
        assert_eq!(t().conflict_penalty(), Cycles(74));
    }

    #[test]
    fn rowclone_latency_ordering() {
        let t = t();
        assert!(t.rowclone_hit_latency() < t.rowclone_closed_latency());
        assert!(t.rowclone_closed_latency() < t.rowclone_conflict_latency());
    }

    #[test]
    fn psm_much_slower_than_fpm() {
        let t = t();
        let psm = t.rowclone_psm_latency(128);
        assert!(psm > t.rowclone_closed_latency() * 8, "PSM {psm} too fast");
    }

    #[test]
    fn custom_clock_scales() {
        let fast = ResolvedTiming::resolve(&DramTiming::paper_table2(), Clock::from_ghz(5.2));
        let slow = t();
        assert!(fast.t_rcd > slow.t_rcd);
    }
}
