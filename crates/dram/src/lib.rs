//! DRAM device simulator for the IMPACT reproduction.
//!
//! Models a DDR4-style device at command granularity: per-bank row-buffer
//! state machines, activate/precharge/CAS timing, open- and closed-row
//! policies with an optional idle row timeout, address mapping schemes, and
//! RowClone Fast-Parallel-Mode in-DRAM copy (Seshadri et al., MICRO'13),
//! which is the PuM primitive exploited by IMPACT-PuM.
//!
//! The shared row buffer is the timing channel (§3.1 of the paper): an
//! access to the open row is a *hit* (CAS only), an access to a closed bank
//! is a *miss* (ACT + CAS) and an access to a bank with a different row open
//! is a *conflict* (PRE + ACT + CAS). At the paper's Table 2 timing and a
//! 2.6 GHz CPU the conflict-vs-hit delta is 74 cycles.
//!
//! # Row timeout interpretation
//!
//! Table 2 lists "Open Row policy, Row Timeout = 100 ns". An *eager* idle
//! timeout (precharging any row left idle for 100 ns) would erase the
//! hit/conflict signal between covert-channel batches, contradicting the
//! paper's working attack; we therefore interpret the timeout as a
//! scheduling-fairness cap that does not engage in request-at-a-time
//! co-simulation, and default to `idle_timeout: None`. The eager variant is
//! implemented ([`RowPolicy::Open`] with a timeout) and evaluated as an
//! ablation — it behaves like a weak defense.
//!
//! # Example
//!
//! ```
//! use impact_core::config::SystemConfig;
//! use impact_core::time::Cycles;
//! use impact_dram::{DramDevice, RowBufferKind};
//!
//! let cfg = SystemConfig::paper_table2();
//! let mut dram = DramDevice::from_config(&cfg);
//! let first = dram.access(0, 10, Cycles(0));
//! assert_eq!(first.kind, RowBufferKind::Miss);
//! let hit = dram.access(0, 10, first.completed_at);
//! assert_eq!(hit.kind, RowBufferKind::Hit);
//! let conflict = dram.access(0, 11, hit.completed_at);
//! assert_eq!(conflict.kind, RowBufferKind::Conflict);
//! // The paper's measured delta (§3.1).
//! assert_eq!(conflict.latency.0 - hit.latency.0, 74);
//! ```

pub mod bank;
pub mod bank_array;
pub mod device;
pub mod mapping;
pub mod policy;
pub mod timing;

pub use bank::{AccessOutcome, Bank, BankCursor, BankStats, RowBufferKind};
pub use bank_array::BankArray;
pub use device::{DramDevice, DramSnap};
pub use mapping::{AddressMapping, BankInterleavedXor, RowInterleaved};
pub use policy::RowPolicy;
pub use timing::ResolvedTiming;
