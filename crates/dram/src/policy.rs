//! Row-buffer management policies.

use impact_core::time::Cycles;

/// Row-buffer management policy of the memory controller.
///
/// The paper evaluates the open-row policy (Table 2) for the attacks and a
/// closed-row policy as the CRP defense (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowPolicy {
    /// Keep the row open after an access.
    ///
    /// If `idle_timeout` is `Some(t)`, a row idle for longer than `t` is
    /// eagerly precharged, so the next access to it is a miss rather than a
    /// hit, and interference from other actors is erased after `t`. See the
    /// crate-level discussion of the Table 2 row timeout.
    Open {
        /// Idle interval after which the open row is auto-precharged.
        idle_timeout: Option<Cycles>,
    },
    /// Precharge the bank after every access (the CRP defense, §7.2): every
    /// access is a miss and the timing channel is closed.
    Closed,
}

impl RowPolicy {
    /// The attack-evaluation default: open rows, no eager idle close.
    #[must_use]
    pub fn open_page() -> RowPolicy {
        RowPolicy::Open { idle_timeout: None }
    }

    /// Open policy with an eager idle timeout (ablation / weak defense).
    #[must_use]
    pub fn open_with_timeout(timeout: Cycles) -> RowPolicy {
        RowPolicy::Open {
            idle_timeout: Some(timeout),
        }
    }

    /// The CRP defense.
    #[must_use]
    pub fn closed_page() -> RowPolicy {
        RowPolicy::Closed
    }

    /// True if this policy keeps rows open between accesses.
    #[must_use]
    pub fn keeps_rows_open(&self) -> bool {
        matches!(self, RowPolicy::Open { .. })
    }
}

impl Default for RowPolicy {
    fn default() -> RowPolicy {
        RowPolicy::open_page()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(
            RowPolicy::open_page(),
            RowPolicy::Open { idle_timeout: None }
        );
        assert_eq!(
            RowPolicy::open_with_timeout(Cycles(260)),
            RowPolicy::Open {
                idle_timeout: Some(Cycles(260))
            }
        );
        assert_eq!(RowPolicy::closed_page(), RowPolicy::Closed);
    }

    #[test]
    fn openness() {
        assert!(RowPolicy::open_page().keeps_rows_open());
        assert!(RowPolicy::open_with_timeout(Cycles(1)).keeps_rows_open());
        assert!(!RowPolicy::closed_page().keeps_rows_open());
    }

    #[test]
    fn default_is_open() {
        assert_eq!(RowPolicy::default(), RowPolicy::open_page());
    }
}
