//! Whole-device DRAM model: a collection of independently timed banks.

use impact_core::config::{DramGeometry, SystemConfig};
use impact_core::time::Cycles;

use crate::bank::{AccessOutcome, Bank, BankStats, RowBufferKind};
use crate::policy::RowPolicy;
use crate::timing::ResolvedTiming;

/// A DRAM device: geometry + timing + one [`Bank`] state machine per bank.
///
/// The device serves operations addressed by *flat bank index* and row;
/// address decomposition is the job of an
/// [`AddressMapping`](crate::mapping::AddressMapping) (owned by the memory
/// controller).
///
/// # Example
///
/// ```
/// use impact_core::config::SystemConfig;
/// use impact_core::time::Cycles;
/// use impact_dram::DramDevice;
///
/// let mut dram = DramDevice::from_config(&SystemConfig::paper_table2());
/// assert_eq!(dram.num_banks(), 16);
/// let out = dram.access(3, 42, Cycles(0));
/// assert!(out.latency > Cycles::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    geometry: DramGeometry,
    timing: ResolvedTiming,
    policy: RowPolicy,
    banks: Vec<Bank>,
}

/// Actor id used when none is supplied.
const ANON_ACTOR: u32 = u32::MAX;

impl DramDevice {
    /// Creates a device with explicit geometry, timing and row policy.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: ResolvedTiming, policy: RowPolicy) -> DramDevice {
        let banks = (0..geometry.total_banks()).map(|_| Bank::new()).collect();
        DramDevice {
            geometry,
            timing,
            policy,
            banks,
        }
    }

    /// Creates a device from a [`SystemConfig`] with the default open-page
    /// policy.
    #[must_use]
    pub fn from_config(cfg: &SystemConfig) -> DramDevice {
        DramDevice::new(
            cfg.dram_geometry,
            ResolvedTiming::resolve(&cfg.dram_timing, cfg.clock),
            RowPolicy::open_page(),
        )
    }

    /// Device geometry.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Resolved timing.
    #[must_use]
    pub fn timing(&self) -> &ResolvedTiming {
        &self.timing
    }

    /// Row policy in effect.
    #[must_use]
    pub fn policy(&self) -> RowPolicy {
        self.policy
    }

    /// Changes the row policy (used by defenses and ablations).
    pub fn set_policy(&mut self, policy: RowPolicy) {
        self.policy = policy;
    }

    /// Number of banks in the device.
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Immutable view of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// Serves a read/write access (anonymous actor).
    pub fn access(&mut self, bank: usize, row: u64, now: Cycles) -> AccessOutcome {
        self.access_as(bank, row, now, ANON_ACTOR)
    }

    /// Serves a read/write access attributed to `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn access_as(&mut self, bank: usize, row: u64, now: Cycles, actor: u32) -> AccessOutcome {
        let policy = self.policy;
        let timing = self.timing;
        self.banks[bank].access(row, now, actor, &timing, policy)
    }

    /// Classifies an access without serving it.
    #[must_use]
    pub fn classify(&self, bank: usize, row: u64, now: Cycles) -> RowBufferKind {
        self.banks[bank].classify(row, now, self.policy)
    }

    /// Serves a RowClone FPM copy inside one bank, attributed to `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn rowclone_as(
        &mut self,
        bank: usize,
        src_row: u64,
        dst_row: u64,
        now: Cycles,
        actor: u32,
    ) -> AccessOutcome {
        let policy = self.policy;
        let timing = self.timing;
        let rows_per_subarray = self.geometry.rows_per_subarray;
        let lines = self.geometry.row_bytes / 64;
        self.banks[bank].rowclone(
            src_row,
            dst_row,
            now,
            actor,
            &timing,
            policy,
            rows_per_subarray,
            lines,
        )
    }

    /// Serves RowClone copies in several banks in parallel (the masked
    /// multi-bank fan-out of IMPACT-PuM). Returns one outcome per set mask
    /// bit, in ascending bank order, plus the completion time of the whole
    /// operation (banks operate concurrently, so this is the max).
    pub fn rowclone_masked_as(
        &mut self,
        banks: impl IntoIterator<Item = usize>,
        src_row: u64,
        dst_row: u64,
        now: Cycles,
        actor: u32,
    ) -> (Vec<(usize, AccessOutcome)>, Cycles) {
        let mut outcomes = Vec::new();
        let mut done = now;
        for bank in banks {
            let o = self.rowclone_as(bank, src_row, dst_row, now, actor);
            done = done.max(o.completed_at);
            outcomes.push((bank, o));
        }
        (outcomes, done)
    }

    /// Aggregated statistics across all banks.
    #[must_use]
    pub fn total_stats(&self) -> BankStats {
        let mut total = BankStats::default();
        for b in &self.banks {
            total += b.stats();
        }
        total
    }

    /// Resets every bank (state and statistics).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DramDevice {
        DramDevice::from_config(&SystemConfig::paper_table2())
    }

    #[test]
    fn banks_are_independent() {
        let mut d = device();
        let a = d.access(0, 1, Cycles(0));
        let b = d.access(1, 2, Cycles(0));
        // Both start immediately: no cross-bank serialization.
        assert_eq!(a.issued_at, Cycles(0));
        assert_eq!(b.issued_at, Cycles(0));
    }

    #[test]
    fn hit_conflict_delta_is_74() {
        let mut d = device();
        let m = d.access(0, 10, Cycles(0));
        let h = d.access(0, 10, m.completed_at);
        let c = d.access(0, 11, h.completed_at);
        assert_eq!(c.latency - h.latency, Cycles(74));
    }

    #[test]
    fn masked_rowclone_parallelism() {
        let mut d = device();
        let (outs, done) = d.rowclone_masked_as([0usize, 1, 2, 3], 5, 6, Cycles(0), 1);
        assert_eq!(outs.len(), 4);
        // All banks precharged -> same latency; total time equals one op.
        let lat = outs[0].1.latency;
        assert!(outs.iter().all(|(_, o)| o.latency == lat));
        assert_eq!(done, Cycles(0) + lat);
    }

    #[test]
    fn masked_rowclone_interference_detectable() {
        let mut d = device();
        // Receiver initializes bank 2 by cloning; row 6 left open.
        d.rowclone_as(2, 5, 6, Cycles(0), 1);
        // Sender clones a different row pair in bank 2 -> conflict.
        let o = d.rowclone_as(2, 100, 101, Cycles(10_000), 2);
        assert_eq!(o.kind, RowBufferKind::Conflict);
        assert_eq!(d.bank(2).last_activator(), Some(2));
    }

    #[test]
    fn total_stats_aggregate() {
        let mut d = device();
        d.access(0, 1, Cycles(0));
        d.access(1, 1, Cycles(0));
        d.access(0, 1, Cycles(1_000));
        let s = d.total_stats();
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn reset_restores_fresh_device() {
        let mut d = device();
        d.access(0, 1, Cycles(0));
        d.reset();
        assert_eq!(d.total_stats().total_accesses(), 0);
        assert_eq!(d.bank(0).raw_open_row(), None);
    }

    #[test]
    fn policy_switch() {
        let mut d = device();
        d.set_policy(RowPolicy::closed_page());
        let a = d.access(0, 1, Cycles(0));
        let b = d.access(0, 1, a.completed_at + Cycles(100));
        assert_eq!(b.kind, RowBufferKind::Miss);
    }

    #[test]
    fn bank_count_follows_geometry() {
        let cfg = SystemConfig::paper_table2().with_total_banks(1024);
        let d = DramDevice::from_config(&cfg);
        assert_eq!(d.num_banks(), 1024);
    }
}
