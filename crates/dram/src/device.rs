//! Whole-device DRAM model: a collection of independently timed banks.

use impact_core::config::{DramGeometry, SystemConfig};
use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;

use crate::bank::{AccessOutcome, Bank, BankCursor, BankStats, RowBufferKind};
use crate::bank_array::BankArray;
use crate::policy::RowPolicy;
use crate::timing::ResolvedTiming;

/// A DRAM device: geometry + timing + one bank state machine per bank,
/// stored structure-of-arrays (see [`BankArray`]).
///
/// The device serves operations addressed by *flat bank index* and row;
/// address decomposition is the job of an
/// [`AddressMapping`](crate::mapping::AddressMapping) (owned by the memory
/// controller).
///
/// # Example
///
/// ```
/// use impact_core::config::SystemConfig;
/// use impact_core::time::Cycles;
/// use impact_dram::DramDevice;
///
/// let mut dram = DramDevice::from_config(&SystemConfig::paper_table2());
/// assert_eq!(dram.num_banks(), 16);
/// let out = dram.access(3, 42, Cycles(0));
/// assert!(out.latency > Cycles::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    geometry: DramGeometry,
    timing: ResolvedTiming,
    policy: RowPolicy,
    banks: BankArray,
    /// Bank-index view `(stride, offset)`: the device stores exactly the
    /// global flat banks `b` with `b % stride == offset`, compactly at
    /// slot `(b - offset) / stride`. `(1, 0)` is the identity view of a
    /// monolithic device. Sharded backends use strided views so each
    /// shard's bank state is dense in memory instead of diluted across
    /// the whole global index range — every public method still speaks
    /// global bank indices.
    view: (usize, usize),
}

/// Actor id used when none is supplied.
const ANON_ACTOR: u32 = u32::MAX;

impl DramDevice {
    /// Creates a device with explicit geometry, timing and row policy.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: ResolvedTiming, policy: RowPolicy) -> DramDevice {
        let banks = BankArray::new(geometry.total_banks() as usize);
        DramDevice {
            geometry,
            timing,
            policy,
            banks,
            view: (1, 0),
        }
    }

    /// Creates a device from a [`SystemConfig`] with the default open-page
    /// policy.
    #[must_use]
    pub fn from_config(cfg: &SystemConfig) -> DramDevice {
        DramDevice::new(
            cfg.dram_geometry,
            ResolvedTiming::resolve(&cfg.dram_timing, cfg.clock),
            RowPolicy::open_page(),
        )
    }

    /// Creates a device that stores only the banks `b` with
    /// `b % stride == offset` (a bank-sharded backend's slice), packed
    /// densely. All methods keep taking *global* flat bank indices; the
    /// caller must only ever address owned banks (debug-asserted).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `offset >= stride`.
    #[must_use]
    pub fn from_config_bank_view(cfg: &SystemConfig, stride: usize, offset: usize) -> DramDevice {
        assert!(stride > 0 && offset < stride, "invalid bank view");
        let total = cfg.dram_geometry.total_banks() as usize;
        let owned = (total + stride - 1 - offset) / stride;
        DramDevice {
            geometry: cfg.dram_geometry,
            timing: ResolvedTiming::resolve(&cfg.dram_timing, cfg.clock),
            policy: RowPolicy::open_page(),
            banks: BankArray::new(owned),
            view: (stride, offset),
        }
    }

    /// Storage slot of global flat bank index `bank` under the view.
    #[inline]
    fn slot(&self, bank: usize) -> usize {
        let (stride, offset) = self.view;
        if stride == 1 {
            bank
        } else {
            debug_assert_eq!(bank % stride, offset, "bank {bank} not owned by this view");
            (bank - offset) / stride
        }
    }

    /// Device geometry.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Resolved timing.
    #[must_use]
    pub fn timing(&self) -> &ResolvedTiming {
        &self.timing
    }

    /// Row policy in effect.
    #[must_use]
    pub fn policy(&self) -> RowPolicy {
        self.policy
    }

    /// Changes the row policy (used by defenses and ablations).
    pub fn set_policy(&mut self, policy: RowPolicy) {
        self.policy = policy;
    }

    /// Number of banks in the device's *global* geometry (a strided view
    /// still reports the full device width; see
    /// [`DramDevice::from_config_bank_view`]).
    #[must_use]
    pub fn num_banks(&self) -> usize {
        if self.view.0 == 1 {
            self.banks.len()
        } else {
            // The view owns only its slice; the global width comes from
            // the geometry.
            self.geometry.total_banks() as usize
        }
    }

    /// By-value snapshot of a bank in the `Option`-typed accessor shape.
    /// The underlying storage is structure-of-arrays; chain accessors off
    /// the snapshot (`dram.bank(3).raw_open_row()` etc.).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> Bank {
        self.banks.bank_state(self.slot(bank))
    }

    /// The structure-of-arrays bank storage (read side).
    #[must_use]
    pub fn banks(&self) -> &BankArray {
        &self.banks
    }

    /// Loads one bank's state into a register-friendly cursor. Pair with
    /// [`DramDevice::store_cursor`] in bank-bucketed servicing loops.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    #[must_use]
    pub fn cursor(&self, bank: usize) -> BankCursor {
        self.banks.load(self.slot(bank))
    }

    /// Stores a cursor back; the inverse of [`DramDevice::cursor`].
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn store_cursor(&mut self, bank: usize, cur: BankCursor) {
        let slot = self.slot(bank);
        self.banks.store(slot, cur);
    }

    /// Folds one bank's state into a running FNV-1a digest accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn fold_bank_state(&self, bank: usize, hash: u64) -> u64 {
        self.banks.fold_state(self.slot(bank), hash)
    }

    /// Serves a read/write access (anonymous actor).
    pub fn access(&mut self, bank: usize, row: u64, now: Cycles) -> AccessOutcome {
        self.access_as(bank, row, now, ANON_ACTOR)
    }

    /// Serves a read/write access attributed to `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn access_as(&mut self, bank: usize, row: u64, now: Cycles, actor: u32) -> AccessOutcome {
        let slot = self.slot(bank);
        self.banks
            .access(slot, row, now, actor, &self.timing, self.policy)
    }

    /// Classifies an access without serving it.
    #[must_use]
    pub fn classify(&self, bank: usize, row: u64, now: Cycles) -> RowBufferKind {
        self.banks
            .load(self.slot(bank))
            .classify(row, now, self.policy)
    }

    /// Serves a RowClone FPM copy inside one bank, attributed to `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn rowclone_as(
        &mut self,
        bank: usize,
        src_row: u64,
        dst_row: u64,
        now: Cycles,
        actor: u32,
    ) -> AccessOutcome {
        let policy = self.policy;
        let timing = self.timing;
        let rows_per_subarray = self.geometry.rows_per_subarray;
        let lines = self.geometry.row_bytes / 64;
        let slot = self.slot(bank);
        self.banks.rowclone(
            slot,
            src_row,
            dst_row,
            now,
            actor,
            &timing,
            policy,
            rows_per_subarray,
            lines,
        )
    }

    /// Serves RowClone copies in several banks in parallel (the masked
    /// multi-bank fan-out of IMPACT-PuM). Returns one outcome per set mask
    /// bit, in ascending bank order, plus the completion time of the whole
    /// operation (banks operate concurrently, so this is the max).
    pub fn rowclone_masked_as(
        &mut self,
        banks: impl IntoIterator<Item = usize>,
        src_row: u64,
        dst_row: u64,
        now: Cycles,
        actor: u32,
    ) -> (Vec<(usize, AccessOutcome)>, Cycles) {
        let mut outcomes = Vec::new();
        let mut done = now;
        for bank in banks {
            let o = self.rowclone_as(bank, src_row, dst_row, now, actor);
            done = done.max(o.completed_at);
            outcomes.push((bank, o));
        }
        (outcomes, done)
    }

    /// Aggregated statistics across all banks.
    #[must_use]
    pub fn total_stats(&self) -> BankStats {
        self.banks.total_stats()
    }

    /// Resets every bank (state and statistics).
    pub fn reset(&mut self) {
        self.banks.reset();
    }
}

/// Captured [`DramDevice`] state: the mutable parts only (bank array
/// shared copy-on-write, plus the row policy defenses may switch).
/// Geometry, timing and the bank view are construction-time constants.
#[derive(Debug, Clone)]
pub struct DramSnap {
    policy: RowPolicy,
    banks: BankArray,
}

impl Snapshot for DramDevice {
    type Snap = DramSnap;

    fn snapshot(&self) -> DramSnap {
        DramSnap {
            policy: self.policy,
            banks: self.banks.snapshot(),
        }
    }

    fn restore(&mut self, snap: &DramSnap) {
        self.policy = snap.policy;
        self.banks.restore(&snap.banks);
    }

    fn fork(&self) -> DramDevice {
        // All fields are either `Copy` config or the CoW bank array.
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DramDevice {
        DramDevice::from_config(&SystemConfig::paper_table2())
    }

    #[test]
    fn banks_are_independent() {
        let mut d = device();
        let a = d.access(0, 1, Cycles(0));
        let b = d.access(1, 2, Cycles(0));
        // Both start immediately: no cross-bank serialization.
        assert_eq!(a.issued_at, Cycles(0));
        assert_eq!(b.issued_at, Cycles(0));
    }

    #[test]
    fn hit_conflict_delta_is_74() {
        let mut d = device();
        let m = d.access(0, 10, Cycles(0));
        let h = d.access(0, 10, m.completed_at);
        let c = d.access(0, 11, h.completed_at);
        assert_eq!(c.latency - h.latency, Cycles(74));
    }

    #[test]
    fn masked_rowclone_parallelism() {
        let mut d = device();
        let (outs, done) = d.rowclone_masked_as([0usize, 1, 2, 3], 5, 6, Cycles(0), 1);
        assert_eq!(outs.len(), 4);
        // All banks precharged -> same latency; total time equals one op.
        let lat = outs[0].1.latency;
        assert!(outs.iter().all(|(_, o)| o.latency == lat));
        assert_eq!(done, Cycles(0) + lat);
    }

    #[test]
    fn masked_rowclone_interference_detectable() {
        let mut d = device();
        // Receiver initializes bank 2 by cloning; row 6 left open.
        d.rowclone_as(2, 5, 6, Cycles(0), 1);
        // Sender clones a different row pair in bank 2 -> conflict.
        let o = d.rowclone_as(2, 100, 101, Cycles(10_000), 2);
        assert_eq!(o.kind, RowBufferKind::Conflict);
        assert_eq!(d.bank(2).last_activator(), Some(2));
    }

    #[test]
    fn total_stats_aggregate() {
        let mut d = device();
        d.access(0, 1, Cycles(0));
        d.access(1, 1, Cycles(0));
        d.access(0, 1, Cycles(1_000));
        let s = d.total_stats();
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn reset_restores_fresh_device() {
        let mut d = device();
        d.access(0, 1, Cycles(0));
        d.reset();
        assert_eq!(d.total_stats().total_accesses(), 0);
        assert_eq!(d.bank(0).raw_open_row(), None);
    }

    #[test]
    fn policy_switch() {
        let mut d = device();
        d.set_policy(RowPolicy::closed_page());
        let a = d.access(0, 1, Cycles(0));
        let b = d.access(0, 1, a.completed_at + Cycles(100));
        assert_eq!(b.kind, RowBufferKind::Miss);
    }

    #[test]
    fn bank_count_follows_geometry() {
        let cfg = SystemConfig::paper_table2().with_total_banks(1024);
        let d = DramDevice::from_config(&cfg);
        assert_eq!(d.num_banks(), 1024);
    }
}
