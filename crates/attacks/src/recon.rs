//! DRAMA-style reverse engineering of the DRAM bank mapping (§2.3 of the
//! paper: "several prior works leak DRAM address mapping functions").
//!
//! The covert channels assume sender and receiver can *co-locate* rows in
//! chosen banks; on a real system the attacker first has to learn which
//! addresses share a bank. The classic primitive: alternate accesses to two
//! row-aligned addresses. If they live in the same bank but different rows,
//! every access is a row conflict (slow); if they live in different banks,
//! each address keeps its own row open and the accesses hit (fast).
//!
//! [`BankRecon`] clusters a set of addresses into congruence classes using
//! only timing, recovering the bank count without knowing the mapping —
//! it works unchanged against both [`impact_dram::RowInterleaved`] and the
//! XOR-hashed [`impact_dram::BankInterleavedXor`].

use impact_core::addr::PhysAddr;
use impact_core::error::Result;
use impact_core::time::Cycles;
use impact_memctrl::MemoryController;

/// Timing-based bank-congruence reconnaissance.
#[derive(Debug, Clone)]
pub struct BankRecon {
    /// Latency threshold separating hit from conflict (including the
    /// controller front end).
    threshold: Cycles,
    /// Alternations per pair measurement.
    rounds: u32,
    /// The attacker's local clock cursor.
    now: Cycles,
}

impl BankRecon {
    /// Creates the recon harness for a controller, deriving the threshold
    /// from the device timing (midpoint of hit and conflict latency).
    #[must_use]
    pub fn new(mc: &MemoryController) -> BankRecon {
        let t = mc.dram().timing();
        let hit = t.hit_latency() + mc.overhead();
        let conflict = t.conflict_latency() + mc.overhead();
        BankRecon {
            threshold: Cycles((hit.0 + conflict.0) / 2),
            rounds: 4,
            now: Cycles(0),
        }
    }

    /// The decode threshold in use.
    #[must_use]
    pub fn threshold(&self) -> Cycles {
        self.threshold
    }

    /// Measures whether `a` and `b` map to the same bank (true on
    /// conflict-dominated alternation).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn same_bank(
        &mut self,
        mc: &mut MemoryController,
        a: PhysAddr,
        b: PhysAddr,
    ) -> Result<bool> {
        // Settle: open both target rows once (uninformative accesses).
        for addr in [a, b] {
            let out = mc.access(addr, self.now, 0)?;
            self.now = out.completed_at;
        }
        let mut slow = 0u32;
        let mut total = 0u32;
        for _ in 0..self.rounds {
            for addr in [a, b] {
                let out = mc.access(addr, self.now, 0)?;
                self.now = out.completed_at;
                total += 1;
                if out.latency > self.threshold {
                    slow += 1;
                }
            }
        }
        Ok(slow * 2 > total)
    }

    /// Clusters `addrs` into bank-congruence classes by timing alone:
    /// each address is compared against one representative per known
    /// class (the DRAMA set-construction strategy).
    ///
    /// Returns the classes in discovery order.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn cluster(
        &mut self,
        mc: &mut MemoryController,
        addrs: &[PhysAddr],
    ) -> Result<Vec<Vec<PhysAddr>>> {
        let mut classes: Vec<Vec<PhysAddr>> = Vec::new();
        'next: for &addr in addrs {
            for class in &mut classes {
                let representative = class[0];
                if self.same_bank(mc, representative, addr)? {
                    class.push(addr);
                    continue 'next;
                }
            }
            classes.push(vec![addr]);
        }
        Ok(classes)
    }

    /// Convenience: the inferred number of banks touched by `addrs`.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn infer_bank_count(
        &mut self,
        mc: &mut MemoryController,
        addrs: &[PhysAddr],
    ) -> Result<usize> {
        Ok(self.cluster(mc, addrs)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::SystemConfig;
    use impact_core::rng::SimRng;
    use impact_core::time::Clock;
    use impact_dram::{
        AddressMapping, BankInterleavedXor, DramDevice, ResolvedTiming, RowInterleaved,
    };

    fn controller_with_xor() -> MemoryController {
        let cfg = SystemConfig::paper_table2();
        let dram = DramDevice::new(
            cfg.dram_geometry,
            ResolvedTiming::resolve(&cfg.dram_timing, cfg.clock),
            impact_dram::RowPolicy::open_page(),
        );
        MemoryController::new(
            dram,
            Box::new(BankInterleavedXor::new(cfg.dram_geometry)),
            Cycles(cfg.memctrl_overhead_cycles),
            Clock::paper_default(),
        )
    }

    /// Row-aligned probe addresses at distinct rows: `per_bank` probes in
    /// every bank, shuffled so the attacker sees them in arbitrary order
    /// (the attacker does not know which is which — the shuffle only
    /// removes accidental ordering structure from the test).
    fn probe_addrs(mc: &MemoryController, per_bank: usize, seed: u64) -> Vec<PhysAddr> {
        let mut rng = SimRng::seed(seed);
        let banks = mc.dram().num_banks();
        let mut addrs: Vec<PhysAddr> = (0..banks * per_bank)
            .map(|i| {
                // Distinct row per probe so same-bank pairs always conflict.
                mc.mapping().compose(i % banks, 100 + i as u64, 0)
            })
            .collect();
        rng.shuffle(&mut addrs);
        addrs
    }

    #[test]
    fn same_bank_pairs_detected() {
        let mut mc = MemoryController::from_config(&SystemConfig::paper_table2());
        let a = mc.mapping().compose(3, 10, 0);
        let b = mc.mapping().compose(3, 11, 0);
        let c = mc.mapping().compose(7, 10, 0);
        let mut recon = BankRecon::new(&mc);
        assert!(recon.same_bank(&mut mc, a, b).unwrap());
        assert!(!recon.same_bank(&mut mc, a, c).unwrap());
    }

    #[test]
    fn clusters_match_ground_truth_row_interleaved() {
        let mut mc = MemoryController::from_config(&SystemConfig::paper_table2());
        let addrs = probe_addrs(&mc, 3, 1);
        let mapping = RowInterleaved::new(SystemConfig::paper_table2().dram_geometry);
        let mut recon = BankRecon::new(&mc);
        let classes = recon.cluster(&mut mc, &addrs).unwrap();
        for class in &classes {
            let bank = mapping.flat_bank(class[0]);
            for &a in class {
                assert_eq!(mapping.flat_bank(a), bank, "mixed class");
            }
        }
        // Three probes per bank: every bank appears as its own class.
        assert_eq!(classes.len(), 16);
    }

    #[test]
    fn clusters_match_ground_truth_xor_mapping() {
        // The attacker does not need to know the mapping function: the
        // timing clusters are correct even under XOR bank hashing.
        let mut mc = controller_with_xor();
        let addrs = probe_addrs(&mc, 3, 2);
        let geometry = SystemConfig::paper_table2().dram_geometry;
        let mapping = BankInterleavedXor::new(geometry);
        let mut recon = BankRecon::new(&mc);
        let classes = recon.cluster(&mut mc, &addrs).unwrap();
        for class in &classes {
            let bank = mapping.flat_bank(class[0]);
            for &a in class {
                assert_eq!(mapping.flat_bank(a), bank, "mixed class under XOR");
            }
        }
        assert_eq!(classes.len(), 16);
    }

    #[test]
    fn bank_count_inferred() {
        let mut mc = MemoryController::from_config(&SystemConfig::paper_table2());
        let addrs = probe_addrs(&mc, 4, 3);
        let mut recon = BankRecon::new(&mc);
        assert_eq!(recon.infer_bank_count(&mut mc, &addrs).unwrap(), 16);
    }

    #[test]
    fn single_address_single_class() {
        let mut mc = MemoryController::from_config(&SystemConfig::paper_table2());
        let addrs = vec![mc.mapping().compose(0, 5, 0)];
        let mut recon = BankRecon::new(&mc);
        let classes = recon.cluster(&mut mc, &addrs).unwrap();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], addrs);
    }
}
