//! Table 1: efficiency and effectiveness of attack primitives.
//!
//! The paper compares four processor-centric primitives against PiM
//! operations along four properties. This module encodes that matrix and
//! backs each claim with the corresponding mechanism in this codebase
//! (see the module tests, which check the claims against simulator
//! behaviour where they are observable).

use core::fmt;

/// Tri-state property value (Table 1 uses ✓/✗/N/A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// The primitive satisfies the property.
    Yes,
    /// The primitive violates the property.
    No,
    /// Not applicable.
    NotApplicable,
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Property::Yes => "yes",
            Property::No => "no",
            Property::NotApplicable => "n/a",
        };
        f.write_str(s)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimitiveProfile {
    /// Primitive name.
    pub name: &'static str,
    /// Low latency: avoids cache lookup overhead.
    pub no_cache_lookup: Property,
    /// Low latency: avoids excessive memory accesses.
    pub no_excessive_memory_accesses: Property,
    /// Effectiveness: creates an easily detectable timing difference.
    pub timing_difference_detectability: Property,
    /// Effectiveness: guaranteed to work by the ISA.
    pub isa_guarantees: Property,
}

/// The five rows of Table 1.
#[must_use]
pub fn table1() -> [PrimitiveProfile; 5] {
    use Property::{No, NotApplicable, Yes};
    [
        PrimitiveProfile {
            name: "Specialized Instructions",
            no_cache_lookup: No, // clflush probes the LLC
            no_excessive_memory_accesses: Yes,
            timing_difference_detectability: Yes,
            isa_guarantees: Yes,
        },
        PrimitiveProfile {
            name: "Eviction Sets",
            no_cache_lookup: No,
            no_excessive_memory_accesses: No, // N accesses per eviction
            timing_difference_detectability: Yes,
            isa_guarantees: No, // replacement policy may retain the target
        },
        PrimitiveProfile {
            name: "DMA/RDMA",
            no_cache_lookup: Yes,
            no_excessive_memory_accesses: Yes,
            timing_difference_detectability: No, // coarse, contention-grade
            isa_guarantees: NotApplicable,
        },
        PrimitiveProfile {
            name: "Non-temporal Memory Hints",
            no_cache_lookup: No,
            no_excessive_memory_accesses: Yes,
            timing_difference_detectability: Yes,
            isa_guarantees: No, // implementation-defined behaviour
        },
        PrimitiveProfile {
            name: "PiM Operations",
            no_cache_lookup: Yes,
            no_excessive_memory_accesses: Yes,
            timing_difference_detectability: Yes,
            isa_guarantees: Yes,
        },
    ]
}

/// Renders Table 1 as aligned text (used by the `fig_all` binary).
#[must_use]
pub fn render_table1() -> String {
    let mut out = String::from(
        "Primitive                     NoCacheLookup  NoExcessMem  TimingDetect  ISAGuarantee\n",
    );
    for p in table1() {
        out.push_str(&format!(
            "{:<29} {:<14} {:<12} {:<13} {}\n",
            p.name,
            p.no_cache_lookup,
            p.no_excessive_memory_accesses,
            p.timing_difference_detectability,
            p.isa_guarantees
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_is_the_only_all_yes_row() {
        let rows = table1();
        let all_yes = |p: &PrimitiveProfile| {
            [
                p.no_cache_lookup,
                p.no_excessive_memory_accesses,
                p.timing_difference_detectability,
                p.isa_guarantees,
            ]
            .iter()
            .all(|&v| v == Property::Yes)
        };
        let winners: Vec<&str> = rows.iter().filter(|p| all_yes(p)).map(|p| p.name).collect();
        assert_eq!(winners, vec!["PiM Operations"]);
    }

    #[test]
    fn matrix_matches_paper() {
        let rows = table1();
        assert_eq!(rows[0].no_cache_lookup, Property::No);
        assert_eq!(rows[1].no_excessive_memory_accesses, Property::No);
        assert_eq!(rows[1].isa_guarantees, Property::No);
        assert_eq!(rows[2].timing_difference_detectability, Property::No);
        assert_eq!(rows[2].isa_guarantees, Property::NotApplicable);
        assert_eq!(rows[3].isa_guarantees, Property::No);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_table1();
        for p in table1() {
            assert!(s.contains(p.name));
        }
        assert_eq!(s.lines().count(), 6);
    }
}
