//! Baseline main-memory covert channels (§5.2.2): DRAMA-clflush,
//! DRAMA-eviction, the DMA-engine attack, and the idealized direct-access
//! attack of §3.3.
//!
//! All baselines share DRAMA's slotted protocol over one DRAM bank: each
//! bit occupies a time slot; in the first half the sender (for a logic-1)
//! bypasses its cache copy and activates its own row, creating a row
//! conflict; in the second half the receiver bypasses its copy and times a
//! load of its row. The cache-bypass step is what differentiates the
//! baselines — and what IMPACT eliminates:
//!
//! * **clflush** — one LLC-latency flush per access (grows with LLC size
//!   via the CACTI model, which is why Fig. 9's DRAMA lines decline);
//! * **eviction sets** — `ways` congruent accesses; timed with the
//!   analytic CACTI eviction model of Figs. 2/3 (see
//!   [`impact_cache::cacti::eviction_latency`]). The cache *state* effect
//!   is applied with a flush; the synthetic stride layout would otherwise
//!   force every eviction-set member into the target's own bank, a
//!   self-interference artifact real attackers avoid by picking congruent
//!   addresses in foreign banks;
//! * **DMA engine** — no cache work, but a fixed software-stack cost
//!   ([`impact_sim::SimParams::dma_overhead`]) per transfer (§6.2: OS
//!   overheads make it ~10× slower than IMPACT-PnM);
//! * **direct access** — one uncached memory request per bit, the §3.3
//!   upper bound.
//!
//! The slotted protocol pays a guard interval per slot
//! ([`BaselineChannel::slot_guard`]), calibrated so DRAMA-clflush matches
//! its published ~2.3 Mb/s at small LLCs.

use impact_cache::cacti;
use impact_core::addr::VirtAddr;
use impact_core::engine::MemoryBackend;
use impact_core::error::Result;
use impact_core::time::Cycles;
use impact_sim::{AgentId, CoBarrier, Engine};

use crate::channel::{BitObservation, ChannelReport};

/// Which cache-bypass primitive the baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePrimitive {
    /// `clflush`-based DRAMA.
    Clflush,
    /// Eviction-set-based DRAMA.
    Eviction,
    /// DMA-engine transfers.
    Dma,
    /// Idealized single-request direct access (§3.3).
    DirectAccess,
}

impl BaselinePrimitive {
    /// Display name matching the paper's legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BaselinePrimitive::Clflush => "DRAMA-clflush",
            BaselinePrimitive::Eviction => "DRAMA-Eviction",
            BaselinePrimitive::Dma => "DMA Engine",
            BaselinePrimitive::DirectAccess => "Direct Memory Access",
        }
    }

    /// Default slot guard interval for this primitive's protocol.
    #[must_use]
    pub fn default_slot_guard(&self) -> Cycles {
        match self {
            BaselinePrimitive::Clflush | BaselinePrimitive::Eviction => Cycles(1075),
            BaselinePrimitive::Dma => Cycles(240),
            BaselinePrimitive::DirectAccess => Cycles(40),
        }
    }
}

/// A slotted single-bank row-buffer covert channel.
#[derive(Debug)]
pub struct BaselineChannel {
    primitive: BaselinePrimitive,
    sender: AgentId,
    receiver: AgentId,
    sender_row: VirtAddr,
    receiver_row: VirtAddr,
    threshold: u64,
    /// Guard interval added to every slot.
    pub slot_guard: Cycles,
    trace: bool,
}

impl BaselineChannel {
    /// Sets up the channel in bank 0: allocates co-located rows, warms
    /// TLBs, opens the receiver's row and calibrates the decode threshold.
    ///
    /// # Errors
    ///
    /// Propagates allocation/access errors.
    pub fn setup<B: MemoryBackend>(
        sys: &mut Engine<B>,
        primitive: BaselinePrimitive,
    ) -> Result<BaselineChannel> {
        let sender = sys.spawn_agent();
        let receiver = sys.spawn_agent();
        let sender_row = sys.alloc_row_in_bank(sender, 0)?;
        let receiver_row = sys.alloc_row_in_bank(receiver, 0)?;
        sys.warm_tlb(sender, sender_row, 2);
        sys.warm_tlb(receiver, receiver_row, 2);
        let mut ch = BaselineChannel {
            primitive,
            sender,
            receiver,
            sender_row,
            receiver_row,
            threshold: 0,
            slot_guard: primitive.default_slot_guard(),
            trace: false,
        };
        ch.calibrate(sys)?;
        Ok(ch)
    }

    /// Enables per-bit tracing.
    pub fn set_trace(&mut self, trace: bool) {
        self.trace = trace;
    }

    /// The primitive in use.
    #[must_use]
    pub fn primitive(&self) -> BaselinePrimitive {
        self.primitive
    }

    /// The calibrated decode threshold.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Bypasses the cached copy of `row` for `agent` and returns the cost.
    fn bypass<B: MemoryBackend>(
        &self,
        sys: &mut Engine<B>,
        agent: AgentId,
        row: VirtAddr,
    ) -> Result<()> {
        match self.primitive {
            BaselinePrimitive::Clflush => {
                sys.clflush(agent, row)?;
            }
            BaselinePrimitive::Eviction => {
                // Timing from the analytic model; state effect via flush.
                let l3 = sys.config().l3;
                let evict = cacti::eviction_latency(l3.size_bytes, l3.ways, Cycles(206));
                let flush_cost = sys.clflush(agent, row)?;
                sys.advance(agent, evict.saturating_sub(flush_cost));
            }
            BaselinePrimitive::Dma => {
                // The DMA path never caches; charge the software stack.
                sys.advance(agent, sys.params().dma_overhead);
            }
            BaselinePrimitive::DirectAccess => {}
        }
        Ok(())
    }

    /// Loads `row` for `agent` through the primitive's data path.
    fn access<B: MemoryBackend>(
        &self,
        sys: &mut Engine<B>,
        agent: AgentId,
        row: VirtAddr,
    ) -> Result<()> {
        match self.primitive {
            BaselinePrimitive::Clflush | BaselinePrimitive::Eviction => {
                sys.load(agent, row)?;
            }
            BaselinePrimitive::Dma | BaselinePrimitive::DirectAccess => {
                sys.load_direct(agent, row)?;
            }
        }
        Ok(())
    }

    /// Measures known-hit and known-conflict latencies and sets the
    /// threshold to their midpoint.
    fn calibrate<B: MemoryBackend>(&mut self, sys: &mut Engine<B>) -> Result<()> {
        let barrier = CoBarrier::new(Cycles(10));
        let mut hits = Vec::new();
        let mut conflicts = Vec::new();
        for _ in 0..3 {
            // Open the receiver's row, then measure a hit.
            self.bypass(sys, self.receiver, self.receiver_row)?;
            self.access(sys, self.receiver, self.receiver_row)?;
            let h = self.timed_probe(sys)?;
            hits.push(h);
            // Sender interferes; measure a conflict.
            barrier.sync(sys, &[self.sender, self.receiver]);
            self.bypass(sys, self.sender, self.sender_row)?;
            self.access(sys, self.sender, self.sender_row)?;
            barrier.sync(sys, &[self.sender, self.receiver]);
            let c = self.timed_probe(sys)?;
            conflicts.push(c);
        }
        self.threshold = crate::channel::calibrate_threshold(&hits, &conflicts);
        Ok(())
    }

    fn timed_probe<B: MemoryBackend>(&self, sys: &mut Engine<B>) -> Result<u64> {
        self.bypass(sys, self.receiver, self.receiver_row)?;
        let t0 = sys.rdtscp(self.receiver);
        self.access(sys, self.receiver, self.receiver_row)?;
        let t1 = sys.rdtscp(self.receiver);
        Ok(t1 - t0)
    }

    /// Transmits `message` bit by bit through the slotted protocol.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn transmit<B: MemoryBackend>(
        &mut self,
        sys: &mut Engine<B>,
        message: &[bool],
    ) -> Result<ChannelReport> {
        let barrier = CoBarrier::new(Cycles(10));
        let both = [self.sender, self.receiver];
        let start_s = sys.now(self.sender);
        let start_r = sys.now(self.receiver);
        let start = start_s.max(start_r);
        let mut errors = 0u64;
        let mut observations = Vec::new();

        for &bit in message.iter() {
            // Slot start.
            barrier.sync(sys, &both);
            sys.advance(self.sender, self.slot_guard / 2);
            sys.advance(self.receiver, self.slot_guard / 2);
            // First half: sender encodes.
            if bit {
                self.bypass(sys, self.sender, self.sender_row)?;
                self.access(sys, self.sender, self.sender_row)?;
            }
            // Half-slot boundary.
            barrier.sync(sys, &both);
            // Second half: receiver decodes.
            let measured = self.timed_probe(sys)?;
            let decoded = measured > self.threshold;
            if decoded != bit {
                errors += 1;
            }
            if self.trace {
                observations.push(BitObservation {
                    bank: 0,
                    measured,
                    sent: bit,
                    decoded,
                });
            }
        }

        let end = sys.now(self.sender).max(sys.now(self.receiver));
        Ok(ChannelReport {
            bits_sent: message.len() as u64,
            bit_errors: errors,
            elapsed: end - start,
            sender_cycles: sys.now(self.sender) - start_s,
            receiver_cycles: sys.now(self.receiver) - start_r,
            threshold: self.threshold,
            observations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::SystemConfig;
    use impact_core::rng::SimRng;
    use impact_sim::System;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    fn run(primitive: BaselinePrimitive, bits: usize) -> (ChannelReport, f64) {
        let mut s = sys();
        let mut ch = BaselineChannel::setup(&mut s, primitive).unwrap();
        let msg = SimRng::seed(31).bits(bits);
        let r = ch.transmit(&mut s, &msg).unwrap();
        let mbps = r.goodput_mbps(s.config().clock);
        (r, mbps)
    }

    #[test]
    fn clflush_channel_correct_and_in_band() {
        let (r, mbps) = run(BaselinePrimitive::Clflush, 1024);
        assert_eq!(r.bit_errors, 0);
        // Paper: up to 2.29 Mb/s for DRAMA-clflush.
        assert!((1.7..=3.0).contains(&mbps), "clflush = {mbps:.2} Mb/s");
    }

    #[test]
    fn eviction_channel_correct_and_slower() {
        let (r, mbps) = run(BaselinePrimitive::Eviction, 512);
        assert_eq!(r.bit_errors, 0);
        let (_, clflush_mbps) = run(BaselinePrimitive::Clflush, 512);
        assert!(
            mbps < clflush_mbps,
            "eviction {mbps:.2} !< clflush {clflush_mbps:.2}"
        );
    }

    #[test]
    fn dma_channel_in_band() {
        let (r, mbps) = run(BaselinePrimitive::Dma, 512);
        assert_eq!(r.bit_errors, 0);
        // Paper: 0.81 Mb/s for the DMA-engine attack.
        assert!((0.6..=1.1).contains(&mbps), "dma = {mbps:.2} Mb/s");
    }

    #[test]
    fn direct_access_fastest_baseline() {
        let (r, mbps) = run(BaselinePrimitive::DirectAccess, 1024);
        assert_eq!(r.bit_errors, 0);
        let (_, clflush_mbps) = run(BaselinePrimitive::Clflush, 1024);
        assert!(mbps > 2.0 * clflush_mbps, "direct = {mbps:.2} Mb/s");
    }

    #[test]
    fn clflush_declines_with_llc_size() {
        let msg = SimRng::seed(33).bits(512);
        let mut small = System::new(SystemConfig::paper_table2_noiseless().with_llc_size(1 << 20));
        let mut ch_s = BaselineChannel::setup(&mut small, BaselinePrimitive::Clflush).unwrap();
        let r_small = ch_s.transmit(&mut small, &msg).unwrap();
        let mut big = System::new(SystemConfig::paper_table2_noiseless().with_llc_size(128 << 20));
        let mut ch_b = BaselineChannel::setup(&mut big, BaselinePrimitive::Clflush).unwrap();
        let r_big = ch_b.transmit(&mut big, &msg).unwrap();
        let clock = small.config().clock;
        assert!(
            r_small.goodput_mbps(clock) > r_big.goodput_mbps(clock) * 1.3,
            "small {:.2} vs big {:.2}",
            r_small.goodput_mbps(clock),
            r_big.goodput_mbps(clock)
        );
    }

    #[test]
    fn dma_flat_in_llc_size() {
        let msg = SimRng::seed(35).bits(256);
        let mbps_at = |size: u64| {
            let mut s = System::new(SystemConfig::paper_table2_noiseless().with_llc_size(size));
            let mut ch = BaselineChannel::setup(&mut s, BaselinePrimitive::Dma).unwrap();
            let r = ch.transmit(&mut s, &msg).unwrap();
            r.goodput_mbps(s.config().clock)
        };
        let small = mbps_at(1 << 20);
        let big = mbps_at(128 << 20);
        assert!(
            (small - big).abs() / small < 0.05,
            "dma varies: {small:.2} vs {big:.2}"
        );
    }

    #[test]
    fn names() {
        assert_eq!(BaselinePrimitive::Clflush.name(), "DRAMA-clflush");
        assert_eq!(BaselinePrimitive::Eviction.name(), "DRAMA-Eviction");
        assert_eq!(BaselinePrimitive::Dma.name(), "DMA Engine");
        assert_eq!(
            BaselinePrimitive::DirectAccess.name(),
            "Direct Memory Access"
        );
    }
}
