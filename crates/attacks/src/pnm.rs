//! IMPACT-PnM: the PiM-enabled-instructions covert channel (§4.1,
//! Listing 1, Fig. 4).
//!
//! Protocol per M-bit batch (M = number of banks):
//!
//! 1. the receiver has one of its rows open in every bank (Step 1
//!    initialization, repeated when rotating rows);
//! 2. the sender encodes logic-1 as interference: it executes a PEI on its
//!    own row in the corresponding bank (row-buffer conflict), and a NOP
//!    for logic-0; then fences and posts the semaphore;
//! 3. the receiver waits on the semaphore and probes each bank with a PEI
//!    on its initialized row, timing it with `rdtscp`: above-threshold
//!    latency ⇒ conflict ⇒ 1, else hit ⇒ 0.
//!
//! Both parties defeat the PMU locality monitor by touching a fresh cache
//! line of the row on every batch, rotating to a fresh row (with an
//! unmeasured re-initialization) when the row's lines are exhausted.

use impact_core::addr::{VirtAddr, LINE_SIZE};
use impact_core::engine::MemoryBackend;
use impact_core::error::Result;
use impact_core::time::Cycles;
use impact_sim::{AgentId, CoSemaphore, Engine};

use crate::channel::{BitObservation, ChannelReport, PAPER_THRESHOLD_CYCLES};

/// Per-bank, per-side row state with line rotation.
#[derive(Debug, Clone)]
struct RowCursor {
    row: VirtAddr,
    line: u64,
    lines_per_row: u64,
}

impl RowCursor {
    fn next_line(&mut self) -> Option<VirtAddr> {
        if self.line >= self.lines_per_row {
            return None;
        }
        let va = self.row + self.line * LINE_SIZE;
        self.line += 1;
        Some(va)
    }
}

/// The IMPACT-PnM covert channel.
#[derive(Debug)]
pub struct PnmCovertChannel {
    sender: AgentId,
    receiver: AgentId,
    banks: usize,
    sender_rows: Vec<RowCursor>,
    receiver_rows: Vec<RowCursor>,
    threshold: u64,
    /// Optional RowHammer-mitigation filter (§8.4): measurements above
    /// `.0` are assumed to include one preventive action and `.1` cycles
    /// are subtracted before decoding.
    rfm_filter: Option<(u64, u64)>,
    trace: bool,
    batched: bool,
}

impl PnmCovertChannel {
    /// Sets up the channel over the first `banks` banks: spawns the two
    /// agents, co-locates one row per side per bank (memory massaging),
    /// warms TLBs and performs the receiver's Step 1 initialization.
    ///
    /// # Errors
    ///
    /// Propagates allocation/access errors (e.g. when a defense such as
    /// MPR denies co-location).
    pub fn setup<B: MemoryBackend>(sys: &mut Engine<B>, banks: usize) -> Result<PnmCovertChannel> {
        let sender = sys.spawn_agent();
        let receiver = sys.spawn_agent();
        let lines_per_row = sys.config().dram_geometry.row_bytes / LINE_SIZE;
        let pages_per_row = (sys.config().dram_geometry.row_bytes / 4096).max(1);
        let mut sender_rows = Vec::with_capacity(banks);
        let mut receiver_rows = Vec::with_capacity(banks);
        for bank in 0..banks {
            let s_row = sys.alloc_row_in_bank(sender, bank)?;
            let r_row = sys.alloc_row_in_bank(receiver, bank)?;
            sys.warm_tlb(sender, s_row, pages_per_row);
            sys.warm_tlb(receiver, r_row, pages_per_row);
            sender_rows.push(RowCursor {
                row: s_row,
                line: 0,
                lines_per_row,
            });
            receiver_rows.push(RowCursor {
                row: r_row,
                line: 0,
                lines_per_row,
            });
        }
        let mut ch = PnmCovertChannel {
            sender,
            receiver,
            banks,
            sender_rows,
            receiver_rows,
            threshold: PAPER_THRESHOLD_CYCLES,
            rfm_filter: None,
            trace: false,
            batched: true,
        };
        ch.initialize_receiver_rows(sys)?;
        Ok(ch)
    }

    /// Enables per-bit observation tracing (Fig. 8).
    pub fn set_trace(&mut self, trace: bool) {
        self.trace = trace;
    }

    /// Selects the receiver probe path: `true` (default) issues each
    /// batch's probes through [`Engine::pim_probe_burst`], which services
    /// them in one amortized backend batch when provably equivalent;
    /// `false` keeps the per-probe reference loop. Both are bit-identical
    /// (asserted by `batched_transmit_is_bit_identical`).
    pub fn set_batched(&mut self, batched: bool) {
        self.batched = batched;
    }

    /// Overrides the decode threshold (default: the paper's 150 cycles).
    pub fn set_threshold(&mut self, threshold: u64) {
        self.threshold = threshold;
    }

    /// Enables §8.4 filtering of RowHammer-mitigation pauses: a
    /// measurement above `trigger` is assumed to include one preventive
    /// action and `subtract` cycles are removed before thresholding. The
    /// paper observes these pauses cost >=350 ns, far above the conflict
    /// delta, so they are trivially separable.
    pub fn set_rfm_filter(&mut self, filter: Option<(u64, u64)>) {
        self.rfm_filter = filter;
    }

    /// The sender agent.
    #[must_use]
    pub fn sender(&self) -> AgentId {
        self.sender
    }

    /// The receiver agent.
    #[must_use]
    pub fn receiver(&self) -> AgentId {
        self.receiver
    }

    /// Step 1: open the receiver's current row in every bank (unmeasured).
    fn initialize_receiver_rows<B: MemoryBackend>(&mut self, sys: &mut Engine<B>) -> Result<()> {
        let rows: Vec<VirtAddr> = (0..self.banks).map(|b| self.receiver_rows[b].row).collect();
        if self.batched {
            sys.pim_open_burst(self.receiver, &rows)?;
        } else {
            for row in rows {
                sys.pim_op_direct(self.receiver, row)?;
            }
        }
        Ok(())
    }

    /// Advances a side's cursor in `bank`, rotating to a fresh row when
    /// the current one is exhausted. Receiver rotations re-initialize.
    fn sender_line<B: MemoryBackend>(
        &mut self,
        sys: &mut Engine<B>,
        bank: usize,
    ) -> Result<VirtAddr> {
        if let Some(va) = self.sender_rows[bank].next_line() {
            return Ok(va);
        }
        let row = sys.alloc_row_in_bank(self.sender, bank)?;
        sys.warm_tlb(self.sender, row, 2);
        self.sender_rows[bank] = RowCursor {
            row,
            line: 0,
            lines_per_row: self.sender_rows[bank].lines_per_row,
        };
        Ok(self.sender_rows[bank].next_line().expect("fresh row"))
    }

    /// End-of-batch maintenance: any receiver row that is out of fresh
    /// lines is replaced by a new row in the same bank and re-initialized
    /// *before* the sender's next batch, so the rotation never masks the
    /// sender's interference.
    fn rotate_exhausted_receiver_rows<B: MemoryBackend>(
        &mut self,
        sys: &mut Engine<B>,
    ) -> Result<()> {
        for bank in 0..self.banks {
            if self.receiver_rows[bank].line >= self.receiver_rows[bank].lines_per_row {
                let row = sys.alloc_row_in_bank(self.receiver, bank)?;
                sys.warm_tlb(self.receiver, row, 2);
                self.receiver_rows[bank] = RowCursor {
                    row,
                    line: 0,
                    lines_per_row: self.receiver_rows[bank].lines_per_row,
                };
                // Unmeasured Step 1 re-initialization of the fresh row.
                sys.pim_op_direct(self.receiver, row)?;
            }
        }
        Ok(())
    }

    /// Transmits `message`, returning the channel report.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn transmit<B: MemoryBackend>(
        &mut self,
        sys: &mut Engine<B>,
        message: &[bool],
    ) -> Result<ChannelReport> {
        let sync = sys.params().sync_overhead;
        let mut data_sem = CoSemaphore::new(sync);
        let mut ready_sem = CoSemaphore::new(sync);
        // The buffer starts free.
        ready_sem.post(sys, self.receiver);

        let start_s = sys.now(self.sender);
        let start_r = sys.now(self.receiver);
        let start = start_s.max(start_r);
        let mut errors = 0u64;
        let mut observations = Vec::new();
        let mut sender_busy = Cycles::ZERO;
        let mut receiver_busy = Cycles::ZERO;

        for batch in message.chunks(self.banks) {
            // --- Sender: Step 2 ---
            ready_sem.wait(sys, self.sender);
            let s_begin = sys.now(self.sender);
            for (bank, &bit) in batch.iter().enumerate() {
                if bit {
                    let va = self.sender_line(sys, bank)?;
                    sys.pim_op(self.sender, va)?;
                } else {
                    // NOP: do not interfere with the receiver.
                    sys.advance(self.sender, Cycles(2));
                }
            }
            sys.fence(self.sender);
            data_sem.post(sys, self.sender);
            sender_busy += sys.now(self.sender) - s_begin;

            // --- Receiver: Step 3 ---
            data_sem.wait(sys, self.receiver);
            let r_begin = sys.now(self.receiver);
            // One fresh probe line per bank; collecting them up front is
            // invisible to the simulation (cursor state only).
            let probe_vas: Vec<VirtAddr> = (0..batch.len())
                .map(|bank| {
                    self.receiver_rows[bank]
                        .next_line()
                        .expect("rotation maintenance keeps lines available")
                })
                .collect();
            // The probe hot loop: a burst through the backend's batched
            // request path (or the per-probe reference loop), bit-identical
            // either way.
            let mut samples = Vec::with_capacity(probe_vas.len());
            if self.batched {
                for probe in sys.pim_probe_burst(self.receiver, &probe_vas)? {
                    samples.push(probe.measured);
                }
            } else {
                for &probe_va in &probe_vas {
                    let t0 = sys.rdtscp(self.receiver);
                    sys.pim_op(self.receiver, probe_va)?;
                    let t1 = sys.rdtscp(self.receiver);
                    samples.push(t1 - t0);
                }
            }
            for (bank, (&bit, &raw)) in batch.iter().zip(&samples).enumerate() {
                let mut measured = raw;
                if let Some((trigger, subtract)) = self.rfm_filter {
                    if measured > trigger {
                        measured = measured.saturating_sub(subtract);
                    }
                }
                let decoded = measured > self.threshold;
                if decoded != bit {
                    errors += 1;
                }
                if self.trace {
                    observations.push(BitObservation {
                        bank,
                        measured,
                        sent: bit,
                        decoded,
                    });
                }
            }
            sys.fence(self.receiver);
            self.rotate_exhausted_receiver_rows(sys)?;
            ready_sem.post(sys, self.receiver);
            receiver_busy += sys.now(self.receiver) - r_begin;
        }

        let end = sys.now(self.sender).max(sys.now(self.receiver));
        Ok(ChannelReport {
            bits_sent: message.len() as u64,
            bit_errors: errors,
            elapsed: end - start,
            sender_cycles: sender_busy,
            receiver_cycles: receiver_busy,
            threshold: self.threshold,
            observations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message_from_str;
    use impact_core::config::SystemConfig;
    use impact_core::rng::SimRng;
    use impact_sim::System;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    #[test]
    fn poc_16_bit_message_exact() {
        // The Fig. 8a message decodes perfectly without noise.
        let mut s = sys();
        let mut ch = PnmCovertChannel::setup(&mut s, 16).unwrap();
        ch.set_trace(true);
        let msg = message_from_str("1110010011100100");
        let r = ch.transmit(&mut s, &msg).unwrap();
        assert_eq!(r.bit_errors, 0);
        assert_eq!(r.observations.len(), 16);
        // Hits comfortably below / conflicts above the 150-cycle threshold.
        for o in &r.observations {
            if o.sent {
                assert!(o.measured > 150, "conflict measured {}", o.measured);
            } else {
                assert!(o.measured < 150, "hit measured {}", o.measured);
            }
        }
    }

    #[test]
    fn long_random_message_noiseless_is_exact() {
        let mut s = sys();
        let mut ch = PnmCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(7).bits(2048);
        let r = ch.transmit(&mut s, &msg).unwrap();
        assert_eq!(r.bit_errors, 0, "error rate {}", r.error_rate());
    }

    #[test]
    fn throughput_in_paper_band() {
        // The paper reports 8.2 Mb/s for IMPACT-PnM (§6.2).
        let mut s = sys();
        let mut ch = PnmCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(11).bits(4096);
        let r = ch.transmit(&mut s, &msg).unwrap();
        let mbps = r.goodput_mbps(s.config().clock);
        assert!(
            (6.5..=12.0).contains(&mbps),
            "PnM throughput = {mbps:.2} Mb/s"
        );
    }

    #[test]
    fn noise_induces_low_error_rate() {
        let mut s = System::new(SystemConfig::paper_table2());
        let mut ch = PnmCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(13).bits(2048);
        let r = ch.transmit(&mut s, &msg).unwrap();
        // Noise should cause some errors but the channel must stay usable.
        assert!(r.error_rate() < 0.10, "error rate {}", r.error_rate());
    }

    #[test]
    fn row_rotation_keeps_channel_alive() {
        // 128 lines per row: a >128-batch message forces rotation.
        let mut s = sys();
        let mut ch = PnmCovertChannel::setup(&mut s, 4).unwrap();
        let msg = SimRng::seed(17).bits(4 * 200);
        let r = ch.transmit(&mut s, &msg).unwrap();
        assert_eq!(r.bit_errors, 0);
    }

    #[test]
    fn ctd_defense_kills_channel() {
        use impact_memctrl::Defense;
        let mut s = sys();
        s.set_defense(Defense::Ctd);
        let mut ch = PnmCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(19).bits(512);
        let r = ch.transmit(&mut s, &msg).unwrap();
        // All latencies pad to worst case: everything decodes as 1 ->
        // ~50% errors on a random message.
        assert!(r.error_rate() > 0.35, "error rate {}", r.error_rate());
    }

    #[test]
    fn mpr_defense_denies_colocation() {
        use impact_memctrl::{Defense, MprPartition};
        let mut s = sys();
        let mut p = MprPartition::new(16);
        // Bank 0 owned by an unrelated actor: massaging succeeds but the
        // channel's accesses are rejected.
        p.assign(0, 99);
        s.set_defense(Defense::Mpr(p));
        let r = PnmCovertChannel::setup(&mut s, 16);
        assert!(r.is_err());
    }

    /// The batched receiver loop is bit-identical to the per-probe
    /// reference loop — the contract of the `Engine` burst port — in
    /// noiseless configs (fast path), noisy configs (serial fallback) and
    /// under defenses and periodic blocking.
    #[test]
    fn batched_transmit_is_bit_identical() {
        use impact_memctrl::{ActConfig, Defense, PeriodicBlock};
        type Configure = Box<dyn Fn(&mut System)>;
        let configs: Vec<(&str, Configure)> = vec![
            ("noiseless", Box::new(|_: &mut System| {})),
            (
                "noisy",
                Box::new(|s: &mut System| {
                    *s = System::new(SystemConfig::paper_table2());
                }),
            ),
            (
                "ctd",
                Box::new(|s: &mut System| s.set_defense(Defense::Ctd)),
            ),
            (
                "act",
                Box::new(|s: &mut System| {
                    s.set_defense(Defense::Act(ActConfig::aggressive()));
                }),
            ),
            (
                "rfm",
                Box::new(|s: &mut System| {
                    s.set_periodic_block(Some(PeriodicBlock::rfm_paper_default()));
                }),
            ),
        ];
        let msg = SimRng::seed(29).bits(512);
        for (name, configure) in configs {
            let run = |batched: bool| {
                let mut s = sys();
                configure(&mut s);
                let mut ch = PnmCovertChannel::setup(&mut s, 16).unwrap();
                ch.set_batched(batched);
                ch.set_trace(true);
                let r = ch.transmit(&mut s, &msg).unwrap();
                (r, s.elapsed(), s.memctrl().stats().clone())
            };
            let (br, belapsed, bstats) = run(true);
            let (sr, selapsed, sstats) = run(false);
            assert_eq!(br, sr, "report diverged under {name}");
            assert_eq!(belapsed, selapsed, "clock diverged under {name}");
            assert_eq!(bstats, sstats, "backend stats diverged under {name}");
        }
    }

    /// On the sharded and traced backends the channel behaves exactly as
    /// on the monolithic controller.
    #[test]
    fn transmit_matches_across_backends() {
        use impact_sim::{ShardedSystem, TracedSystem};
        let msg = SimRng::seed(31).bits(256);
        let cfg = SystemConfig::paper_table2_noiseless;
        let mut mono_sys = sys();
        let mut mono_ch = PnmCovertChannel::setup(&mut mono_sys, 16).unwrap();
        let mono = mono_ch.transmit(&mut mono_sys, &msg).unwrap();

        let mut sh_sys = ShardedSystem::sharded(cfg(), 4);
        let mut sh_ch = PnmCovertChannel::setup(&mut sh_sys, 16).unwrap();
        assert_eq!(sh_ch.transmit(&mut sh_sys, &msg).unwrap(), mono);

        let mut tr_sys = TracedSystem::traced(cfg());
        let mut tr_ch = PnmCovertChannel::setup(&mut tr_sys, 16).unwrap();
        assert_eq!(tr_ch.transmit(&mut tr_sys, &msg).unwrap(), mono);
        // The hot loop really went through the batched path: the log
        // contains one batch event per transmitted chunk plus the
        // initialization burst.
        use impact_core::trace::TraceEvent;
        let batches = tr_sys
            .trace_log()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Batch(_)))
            .count();
        assert!(batches > msg.len() / 16, "only {batches} batch events");
    }

    #[test]
    fn sender_cheaper_than_receiver() {
        // Fig. 10: the PnM sender (only 1-bits act) costs less than the
        // receiver (which probes every bank).
        let mut s = sys();
        let mut ch = PnmCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(23).bits(1024);
        let r = ch.transmit(&mut s, &msg).unwrap();
        assert!(r.sender_cycles < r.receiver_cycles);
    }
}
