//! IMPACT-PuM: the RowClone covert channel (§4.2, Listing 2, Fig. 5).
//!
//! The sender transmits an M-bit batch with a *single* masked RowClone
//! request: the memory controller fans it out to one in-DRAM copy per set
//! mask bit, all banks in parallel — this is the throughput advantage over
//! IMPACT-PnM, whose sender pays one PEI per bit.
//!
//! The receiver initializes by cloning its own `src → dst` ranges in every
//! bank (leaving its destination rows open), then decodes each batch by
//! issuing one single-bank RowClone per bank and timing it: if the sender
//! cloned in that bank, the receiver's row was displaced and the copy pays
//! a precharge (slow ⇒ 1); otherwise the receiver's row is still open and
//! the copy is fast (⇒ 0). Each receiver probe swaps the copy direction so
//! its own source row is always the one left open by its previous probe.

use impact_core::engine::MemoryBackend;
use impact_core::error::Result;
use impact_core::time::Cycles;
use impact_sim::{AgentId, CoSemaphore, Engine};

use crate::channel::{BitObservation, ChannelReport, PAPER_THRESHOLD_CYCLES};
use impact_core::addr::VirtAddr;
use impact_pim::mask_from_bits;

/// The IMPACT-PuM covert channel.
#[derive(Debug)]
pub struct PumCovertChannel {
    sender: AgentId,
    receiver: AgentId,
    banks: usize,
    sender_src: VirtAddr,
    sender_dst: VirtAddr,
    receiver_src: VirtAddr,
    receiver_dst: VirtAddr,
    /// Copy direction toggle per batch (receiver side).
    forward: bool,
    threshold: u64,
    trace: bool,
}

impl PumCovertChannel {
    /// Sets up the channel over the first `banks` banks (at most 64, the
    /// mask width): allocates bank-striped source/destination ranges for
    /// both parties and performs the receiver's initialization RowClone.
    ///
    /// # Errors
    ///
    /// Propagates allocation/validation errors, and
    /// [`impact_core::Error::InvalidConfig`] if `banks` exceeds 64 or the
    /// device bank count.
    pub fn setup<B: MemoryBackend>(sys: &mut Engine<B>, banks: usize) -> Result<PumCovertChannel> {
        let device_banks = sys.config().dram_geometry.total_banks() as usize;
        if banks == 0 || banks > 64 || banks > device_banks {
            return Err(impact_core::Error::InvalidConfig(format!(
                "PuM channel needs 1..=64 banks within the device ({device_banks}), got {banks}"
            )));
        }
        let sender = sys.spawn_agent();
        let receiver = sys.spawn_agent();
        let rotation_pages = u64::from(sys.config().dram_geometry.total_banks())
            * sys.config().dram_geometry.row_bytes
            / 4096;
        let sender_src = sys.alloc_bank_stripe(sender, 1)?;
        let sender_dst = sys.alloc_bank_stripe(sender, 1)?;
        let receiver_src = sys.alloc_bank_stripe(receiver, 1)?;
        let receiver_dst = sys.alloc_bank_stripe(receiver, 1)?;
        for (agent, va) in [
            (sender, sender_src),
            (sender, sender_dst),
            (receiver, receiver_src),
            (receiver, receiver_dst),
        ] {
            sys.warm_tlb(agent, va, rotation_pages);
        }
        let mut ch = PumCovertChannel {
            sender,
            receiver,
            banks,
            sender_src,
            sender_dst,
            receiver_src,
            receiver_dst,
            forward: true,
            threshold: PAPER_THRESHOLD_CYCLES,
            trace: false,
        };
        // Step 1: init_DRAM_rows_with_RowClone().
        let full_mask = mask_from_bits(&vec![true; banks]);
        sys.rowclone(ch.receiver, ch.receiver_src, ch.receiver_dst, full_mask)?;
        ch.forward = false; // receiver's dst rows are now open
        Ok(ch)
    }

    /// Enables per-bit observation tracing (Fig. 8).
    pub fn set_trace(&mut self, trace: bool) {
        self.trace = trace;
    }

    /// Overrides the decode threshold.
    pub fn set_threshold(&mut self, threshold: u64) {
        self.threshold = threshold;
    }

    /// The sender agent.
    #[must_use]
    pub fn sender(&self) -> AgentId {
        self.sender
    }

    /// The receiver agent.
    #[must_use]
    pub fn receiver(&self) -> AgentId {
        self.receiver
    }

    /// Transmits `message`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn transmit<B: MemoryBackend>(
        &mut self,
        sys: &mut Engine<B>,
        message: &[bool],
    ) -> Result<ChannelReport> {
        let sync = sys.params().sync_overhead;
        let mut data_sem = CoSemaphore::new(sync);
        let mut ready_sem = CoSemaphore::new(sync);
        ready_sem.post(sys, self.receiver);

        let start_s = sys.now(self.sender);
        let start_r = sys.now(self.receiver);
        let start = start_s.max(start_r);
        let mut errors = 0u64;
        let mut observations = Vec::new();
        let mut sender_busy = Cycles::ZERO;
        let mut receiver_busy = Cycles::ZERO;

        for batch in message.chunks(self.banks) {
            // --- Sender: one masked RowClone for the whole batch ---
            ready_sem.wait(sys, self.sender);
            let s_begin = sys.now(self.sender);
            let mask = mask_from_bits(batch);
            if mask != 0 {
                sys.rowclone(self.sender, self.sender_src, self.sender_dst, mask)?;
            } else {
                sys.advance(self.sender, Cycles(2));
            }
            sys.fence(self.sender);
            data_sem.post(sys, self.sender);
            sender_busy += sys.now(self.sender) - s_begin;

            // --- Receiver: one timed single-bank RowClone per bank ---
            data_sem.wait(sys, self.receiver);
            let r_begin = sys.now(self.receiver);
            let (from, to) = if self.forward {
                (self.receiver_src, self.receiver_dst)
            } else {
                (self.receiver_dst, self.receiver_src)
            };
            for (bank, &bit) in batch.iter().enumerate() {
                let mask = 1u64 << bank;
                let t0 = sys.rdtscp(self.receiver);
                sys.rowclone(self.receiver, from, to, mask)?;
                let t1 = sys.rdtscp(self.receiver);
                let measured = t1 - t0;
                let decoded = measured > self.threshold;
                if decoded != bit {
                    errors += 1;
                }
                if self.trace {
                    observations.push(BitObservation {
                        bank,
                        measured,
                        sent: bit,
                        decoded,
                    });
                }
            }
            self.forward = !self.forward;
            sys.fence(self.receiver);
            ready_sem.post(sys, self.receiver);
            receiver_busy += sys.now(self.receiver) - r_begin;
        }

        let end = sys.now(self.sender).max(sys.now(self.receiver));
        Ok(ChannelReport {
            bits_sent: message.len() as u64,
            bit_errors: errors,
            elapsed: end - start,
            sender_cycles: sender_busy,
            receiver_cycles: receiver_busy,
            threshold: self.threshold,
            observations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message_from_str;
    use impact_core::config::SystemConfig;
    use impact_core::rng::SimRng;
    use impact_sim::System;

    fn sys() -> System {
        System::new(SystemConfig::paper_table2_noiseless())
    }

    #[test]
    fn poc_16_bit_message_exact() {
        // Fig. 8b message.
        let mut s = sys();
        let mut ch = PumCovertChannel::setup(&mut s, 16).unwrap();
        ch.set_trace(true);
        let msg = message_from_str("0001101100011011");
        let r = ch.transmit(&mut s, &msg).unwrap();
        assert_eq!(r.bit_errors, 0);
        for o in &r.observations {
            if o.sent {
                assert!(o.measured > 150, "conflict measured {}", o.measured);
            } else {
                assert!(o.measured < 150, "hit measured {}", o.measured);
            }
        }
    }

    #[test]
    fn long_random_message_noiseless_is_exact() {
        let mut s = sys();
        let mut ch = PumCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(3).bits(2048);
        let r = ch.transmit(&mut s, &msg).unwrap();
        assert_eq!(r.bit_errors, 0);
    }

    #[test]
    fn throughput_in_paper_band() {
        // The paper reports 14.8 Mb/s for IMPACT-PuM (§6.2).
        let mut s = sys();
        let mut ch = PumCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(5).bits(4096);
        let r = ch.transmit(&mut s, &msg).unwrap();
        let mbps = r.goodput_mbps(s.config().clock);
        assert!(
            (12.0..=18.0).contains(&mbps),
            "PuM throughput = {mbps:.2} Mb/s"
        );
    }

    #[test]
    fn pum_faster_than_pnm() {
        // §6.2: PuM provides substantially higher throughput than PnM.
        let msg = SimRng::seed(7).bits(4096);
        let mut s1 = sys();
        let mut pnm = crate::pnm::PnmCovertChannel::setup(&mut s1, 16).unwrap();
        let pnm_r = pnm.transmit(&mut s1, &msg).unwrap();
        let mut s2 = sys();
        let mut pum = PumCovertChannel::setup(&mut s2, 16).unwrap();
        let pum_r = pum.transmit(&mut s2, &msg).unwrap();
        let clock = s1.config().clock;
        let ratio = pum_r.goodput_mbps(clock) / pnm_r.goodput_mbps(clock);
        assert!(ratio > 1.3, "PuM/PnM throughput ratio = {ratio:.2}");
    }

    #[test]
    fn sender_order_of_magnitude_cheaper_than_pnm_sender() {
        // Fig. 10: the PuM sender transmits a batch with one request.
        let msg = SimRng::seed(9).bits(1024);
        let mut s1 = sys();
        let mut pnm = crate::pnm::PnmCovertChannel::setup(&mut s1, 16).unwrap();
        let pnm_r = pnm.transmit(&mut s1, &msg).unwrap();
        let mut s2 = sys();
        let mut pum = PumCovertChannel::setup(&mut s2, 16).unwrap();
        let pum_r = pum.transmit(&mut s2, &msg).unwrap();
        let ratio = pnm_r.sender_cycles.as_f64() / pum_r.sender_cycles.as_f64();
        assert!(ratio > 4.0, "sender cycle ratio = {ratio:.2}");
    }

    #[test]
    fn setup_rejects_bad_bank_counts() {
        let mut s = sys();
        assert!(PumCovertChannel::setup(&mut s, 0).is_err());
        assert!(PumCovertChannel::setup(&mut s, 65).is_err());
        assert!(PumCovertChannel::setup(&mut s, 32).is_err()); // device has 16
    }

    #[test]
    fn noise_tolerated() {
        let mut s = System::new(SystemConfig::paper_table2());
        let mut ch = PumCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(11).bits(2048);
        let r = ch.transmit(&mut s, &msg).unwrap();
        assert!(r.error_rate() < 0.10, "error rate {}", r.error_rate());
    }

    #[test]
    fn crp_defense_kills_channel() {
        use impact_memctrl::Defense;
        let mut s = sys();
        s.set_defense(Defense::Crp);
        let mut ch = PumCovertChannel::setup(&mut s, 16).unwrap();
        let msg = SimRng::seed(13).bits(512);
        let r = ch.transmit(&mut s, &msg).unwrap();
        // Closed-row policy: every clone is a miss; no hit/conflict signal.
        assert!(r.error_rate() > 0.35, "error rate {}", r.error_rate());
    }
}
