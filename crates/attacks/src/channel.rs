//! Covert-channel framework: messages, thresholds, reports.

use impact_core::time::{Clock, Cycles};

/// The decode threshold the paper's proof-of-concept uses (§6.1): a
/// receiver-measured latency above 150 cycles is decoded as a row-buffer
/// conflict (logic-1).
pub const PAPER_THRESHOLD_CYCLES: u64 = 150;

/// Parses a message from an ASCII bit string.
///
/// # Panics
///
/// Panics on characters other than `0`/`1`.
///
/// # Example
///
/// ```
/// use impact_attacks::channel::message_from_str;
///
/// assert_eq!(message_from_str("101"), vec![true, false, true]);
/// ```
#[must_use]
pub fn message_from_str(s: &str) -> Vec<bool> {
    s.chars()
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("invalid message character {other:?}"),
        })
        .collect()
}

/// Per-bit trace entry captured by the receiver (used for Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitObservation {
    /// The bank the bit was transmitted through.
    pub bank: usize,
    /// Latency measured by the receiver (cycles, including timer cost).
    pub measured: u64,
    /// The bit the sender transmitted.
    pub sent: bool,
    /// The bit the receiver decoded.
    pub decoded: bool,
}

/// Result of one covert-channel transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// Bits transmitted.
    pub bits_sent: u64,
    /// Bits decoded incorrectly.
    pub bit_errors: u64,
    /// End-to-end elapsed time (max of sender/receiver clocks).
    pub elapsed: Cycles,
    /// Cycles the sender spent in its routine.
    pub sender_cycles: Cycles,
    /// Cycles the receiver spent in its routine.
    pub receiver_cycles: Cycles,
    /// Decode threshold used.
    pub threshold: u64,
    /// Per-bit observations (empty when tracing was disabled).
    pub observations: Vec<BitObservation>,
}

impl ChannelReport {
    /// Fraction of bits decoded incorrectly.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.bits_sent == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits_sent as f64
        }
    }

    /// Throughput counted over successfully leaked bits only, as the paper
    /// measures (§5.2.3).
    #[must_use]
    pub fn goodput_mbps(&self, clock: Clock) -> f64 {
        clock.throughput_mbps(self.bits_sent - self.bit_errors, self.elapsed)
    }

    /// Raw channel throughput ignoring errors.
    #[must_use]
    pub fn raw_throughput_mbps(&self, clock: Clock) -> f64 {
        clock.throughput_mbps(self.bits_sent, self.elapsed)
    }
}

/// Derives a decode threshold from calibration samples: the midpoint of
/// the mean hit latency and mean conflict latency.
///
/// Returns [`PAPER_THRESHOLD_CYCLES`] when either sample set is empty.
#[must_use]
pub fn calibrate_threshold(hit_samples: &[u64], conflict_samples: &[u64]) -> u64 {
    if hit_samples.is_empty() || conflict_samples.is_empty() {
        return PAPER_THRESHOLD_CYCLES;
    }
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    ((mean(hit_samples) + mean(conflict_samples)) / 2.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_parsing() {
        assert_eq!(message_from_str(""), Vec::<bool>::new());
        assert_eq!(message_from_str("1100"), vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "invalid message character")]
    fn message_rejects_garbage() {
        let _ = message_from_str("10x");
    }

    #[test]
    fn report_rates() {
        let r = ChannelReport {
            bits_sent: 100,
            bit_errors: 5,
            elapsed: Cycles(26_000),
            sender_cycles: Cycles(10_000),
            receiver_cycles: Cycles(16_000),
            threshold: 150,
            observations: Vec::new(),
        };
        assert!((r.error_rate() - 0.05).abs() < 1e-12);
        // 95 bits in 10 us at 2.6 GHz = 9.5 Mb/s.
        let clock = Clock::paper_default();
        assert!((r.goodput_mbps(clock) - 9.5).abs() < 0.01);
        assert!(r.raw_throughput_mbps(clock) > r.goodput_mbps(clock));
    }

    #[test]
    fn threshold_midpoint() {
        assert_eq!(calibrate_threshold(&[100, 110], &[190, 200]), 150);
        assert_eq!(calibrate_threshold(&[], &[200]), PAPER_THRESHOLD_CYCLES);
    }

    #[test]
    fn zero_bits_report() {
        let r = ChannelReport {
            bits_sent: 0,
            bit_errors: 0,
            elapsed: Cycles::ZERO,
            sender_cycles: Cycles::ZERO,
            receiver_cycles: Cycles::ZERO,
            threshold: 150,
            observations: Vec::new(),
        };
        assert_eq!(r.error_rate(), 0.0);
        assert_eq!(r.goodput_mbps(Clock::paper_default()), 0.0);
    }
}
