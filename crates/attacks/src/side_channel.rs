//! The IMPACT side channel on genomic read mapping (§4.3, Figs. 7 and 11).
//!
//! A victim maps sequencing reads with a minimap2-style pipeline whose
//! seeding step probes a hash table distributed over the DRAM banks of a
//! PiM-enabled device. The attacker co-locates one of its own rows in
//! every table bank, opens them all, and sweeps the banks with PiM probes:
//! a row-buffer conflict in bank *b* means someone activated another row
//! there — with the table interleaved across banks, that someone is the
//! victim probing one of the (few) hash-table entries resident in *b*.
//!
//! # Accounting (following §6.3)
//!
//! * **Throughput** counts successfully leaked information only: each
//!   true-positive detection resolves the victim's probe to the entries of
//!   one bank, worth `log2(total entries) − log2(entries per bank)` bits
//!   ([`impact_genomics::index::BankLayout::bits_per_identified_access`]).
//! * **Error rate** counts incorrect guesses: detections not caused by the
//!   victim (background bank activity) and aliased detections (several
//!   victim probes collapsing into one observation window count as
//!   misses).
//!
//! As the bank count grows, one probe sweep takes proportionally longer,
//! so (i) per-bank background activity has more time to accumulate
//! between probes (error grows) and (ii) repeated probes of hot hash
//! buckets alias within a sweep (detected-event rate drops) — reproducing
//! Fig. 11's trends.

use std::collections::BTreeSet;

use impact_core::addr::{PhysAddr, VirtAddr, LINE_SIZE};
use impact_core::engine::MemoryBackend;
use impact_core::error::Result;
use impact_core::rng::SimRng;
use impact_core::time::Cycles;
use impact_genomics::genome::{Genome, ReadSampler};
use impact_genomics::imputation::{score_rounds, LeakScore};
use impact_genomics::index::{BankLayout, KmerIndex};
use impact_genomics::mapper::{ReadMapper, RecordingObserver};
use impact_sim::{AgentId, Engine};

/// Configuration of the side-channel experiment.
#[derive(Debug, Clone)]
pub struct SideChannelConfig {
    /// Total hash-table buckets (the paper's resolution argument uses
    /// 16384 = 16 entries/bank at 1024 banks).
    pub table_buckets: usize,
    /// Reference genome length in bases.
    pub genome_len: usize,
    /// Number of reads the victim maps.
    pub reads: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base sequencing error rate of the query reads.
    pub read_error_rate: f64,
    /// Fraction of reads sampled from the coverage hotspot (targeted /
    /// amplicon sequencing); concentrates seed lookups on hot buckets.
    pub focus_fraction: f64,
    /// Length of the hotspot locus in bases.
    pub focus_len: usize,
    /// Victim compute cycles between consecutive seeding probes
    /// (chaining/alignment work interleaved with seeding).
    pub victim_gap: Cycles,
    /// Background per-bank row-activation rate (events per cycle per
    /// bank): co-tenant traffic and refresh-like disturbances.
    pub background_rate: f64,
    /// Decode threshold for the attacker's probes.
    pub threshold: u64,
    /// Master seed.
    pub seed: u64,
    /// Issue the attacker's row-opening initialization sweep through the
    /// backend's batched request path (default) instead of one probe at a
    /// time. Bit-identical either way; see
    /// [`Engine::pim_open_burst_translated`].
    pub batched_probes: bool,
}

impl Default for SideChannelConfig {
    fn default() -> SideChannelConfig {
        SideChannelConfig {
            table_buckets: 16384,
            genome_len: 60_000,
            reads: 120,
            read_len: 150,
            read_error_rate: 0.01,
            focus_fraction: 0.85,
            focus_len: 160,
            victim_gap: Cycles(3100),
            background_rate: 2.5e-9,
            threshold: crate::channel::PAPER_THRESHOLD_CYCLES,
            seed: 0xD5A,
            batched_probes: true,
        }
    }
}

/// Result of one side-channel run.
#[derive(Debug, Clone)]
pub struct SideChannelReport {
    /// Detection bookkeeping.
    pub score: LeakScore,
    /// Attacker probes issued.
    pub probes: u64,
    /// Victim seeding accesses performed.
    pub victim_accesses: u64,
    /// Attacker elapsed time.
    pub elapsed: Cycles,
    /// Information bits successfully leaked.
    pub leaked_bits: f64,
    /// Banks in the swept table region.
    pub banks: usize,
}

impl SideChannelReport {
    /// Leakage throughput in Mb/s (Fig. 11 primary axis).
    #[must_use]
    pub fn throughput_mbps(&self, clock: impact_core::time::Clock) -> f64 {
        let secs = clock.seconds(self.elapsed);
        if secs <= 0.0 {
            0.0
        } else {
            self.leaked_bits / secs / 1e6
        }
    }

    /// Error rate (Fig. 11 secondary axis): the fraction of the
    /// attacker's positive guesses that were wrong (background activity
    /// misattributed to the victim). Missed/aliased victim probes are not
    /// wrong guesses — they reduce throughput instead (§5.2.3 measures
    /// throughput over successfully leaked data only).
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        self.score.error_rate()
    }

    /// Fraction of the victim's seeding probes the attacker failed to
    /// capture (aliasing within one sweep + missed detections).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let truth = self.score.true_positives + self.score.false_negatives;
        if truth == 0 {
            0.0
        } else {
            self.score.false_negatives as f64 / truth as f64
        }
    }
}

/// The initialized (but not yet measured) state of a side-channel run:
/// everything [`SideChannelAttack::init`] set up that
/// [`SideChannelAttack::measure`] needs.
///
/// The descriptor itself is engine-independent — it names agents, rows and
/// the victim's bucket stream, while the warmed DRAM/TLB/clock state lives
/// in the engine `init` ran on. That split is what makes the warm prefix
/// forkable: snapshot or fork the engine after `init`, and one
/// `SideChannelInit` drives `measure` on every fork.
#[derive(Debug, Clone)]
pub struct SideChannelInit {
    /// The victim agent.
    pub victim: AgentId,
    /// The attacker agent.
    pub attacker: AgentId,
    /// The attacker's opened row in each bank, indexed by flat bank.
    pub attacker_rows: Vec<VirtAddr>,
    /// The victim's seeding-probe bucket sequence.
    pub bucket_stream: Vec<usize>,
    /// Hash-table-over-banks layout.
    pub layout: BankLayout,
    /// Banks in the swept table region.
    pub banks: usize,
}

/// The side-channel attack harness.
#[derive(Debug)]
pub struct SideChannelAttack {
    cfg: SideChannelConfig,
}

impl SideChannelAttack {
    /// Creates the harness with the given configuration.
    #[must_use]
    pub fn new(cfg: SideChannelConfig) -> SideChannelAttack {
        SideChannelAttack { cfg }
    }

    /// Paper-default configuration.
    #[must_use]
    pub fn paper_default() -> SideChannelAttack {
        SideChannelAttack::new(SideChannelConfig::default())
    }

    /// Runs the attack on `sys`, whose DRAM geometry determines the bank
    /// count being swept. Equivalent to [`SideChannelAttack::init`]
    /// followed by [`SideChannelAttack::measure`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run<B: MemoryBackend>(&self, sys: &mut Engine<B>) -> Result<SideChannelReport> {
        let init = self.init(sys)?;
        self.measure(sys, &init)
    }

    /// Initializes the attack on `sys`: victim-side preparation (genome,
    /// index, read mapping — pure compute), agent spawning, the attacker's
    /// row-opening sweep, and the clock-synchronizing barrier. This is the
    /// sweep-point-independent warm prefix: fork the engine afterwards and
    /// run [`SideChannelAttack::measure`] on each fork.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn init<B: MemoryBackend>(&self, sys: &mut Engine<B>) -> Result<SideChannelInit> {
        let banks = sys.config().dram_geometry.total_banks() as usize;
        let layout = BankLayout::new(banks, self.cfg.table_buckets, 0);

        // --- Victim-side preparation (outside the timed window) ---
        let genome = Genome::synthesize(self.cfg.genome_len, self.cfg.seed);
        let index = KmerIndex::build(&genome, 15, 5, self.cfg.table_buckets);
        let mut sampler = ReadSampler::new(self.cfg.seed ^ 0xBEEF);
        let reads = sampler.sample_focused(
            &genome,
            self.cfg.reads,
            self.cfg.read_len,
            self.cfg.read_error_rate,
            self.cfg.focus_fraction,
            self.cfg.genome_len / 3,
            self.cfg.focus_len,
        );
        let mapper = ReadMapper::new(&genome, &index);
        let mut recorder = RecordingObserver::default();
        mapper.map_reads_observed(&reads, &mut recorder);
        let bucket_stream = recorder.buckets;

        // --- Simulated agents ---
        let victim = sys.spawn_agent();
        let attacker = sys.spawn_agent();
        let mut attacker_rows: Vec<VirtAddr> = Vec::with_capacity(banks);
        // Open the attacker's row everywhere (initialization sweep). The
        // batched path keeps the serial allocate/warm/translate order per
        // bank — only the DRAM row openings are deferred into one burst —
        // so TLB and allocator state evolve exactly as in the serial
        // sweep, and the burst itself is bit-identical by the `Engine`
        // burst contract.
        if self.cfg.batched_probes {
            let mut probes: Vec<(PhysAddr, Cycles)> = Vec::with_capacity(banks);
            for bank in 0..banks {
                let row = sys.alloc_row_in_bank(attacker, bank)?;
                sys.warm_tlb(attacker, row, 2);
                attacker_rows.push(row);
                probes.push(sys.translate(attacker, row)?);
            }
            sys.pim_open_burst_translated(attacker, &probes)?;
        } else {
            for bank in 0..banks {
                let row = sys.alloc_row_in_bank(attacker, bank)?;
                sys.warm_tlb(attacker, row, 2);
                attacker_rows.push(row);
                sys.pim_op_direct(attacker, row)?;
            }
        }

        // The measured phase starts with both threads synchronized (the
        // harness barrier after initialization): the victim's first
        // lookups happen once the attacker's rows are open, so the
        // initialization sweep's transient bank-busy times are not
        // observable — which is also what makes the batched and serial
        // init sweeps indistinguishable from here on.
        let sync_at = sys.now(victim).max(sys.now(attacker));
        sys.set_now(victim, sync_at);
        sys.set_now(attacker, sync_at);

        Ok(SideChannelInit {
            victim,
            attacker,
            attacker_rows,
            bucket_stream,
            layout,
            banks,
        })
    }

    /// Runs the measured phase on an engine prepared by
    /// [`SideChannelAttack::init`] (or a fork of one).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn measure<B: MemoryBackend>(
        &self,
        sys: &mut Engine<B>,
        init: &SideChannelInit,
    ) -> Result<SideChannelReport> {
        let SideChannelInit {
            victim,
            attacker,
            attacker_rows,
            bucket_stream,
            layout,
            banks,
        } = init;
        let (victim, attacker, banks) = (*victim, *attacker, *banks);
        let mut victim_rows: Vec<Option<VirtAddr>> = vec![None; banks];

        // --- Interleaved co-simulation ---
        let mut bg_rng = SimRng::seed(self.cfg.seed ^ 0x6A6E);
        let mut pending: Vec<u64> = vec![0; banks];
        let mut last_probe: Vec<Cycles> = vec![sys.now(attacker); banks];
        let mut truth_rounds: Vec<BTreeSet<usize>> = Vec::new();
        let mut observed_rounds: Vec<BTreeSet<usize>> = Vec::new();
        let mut stream_pos = 0usize;
        let mut victim_accesses = 0u64;
        let mut probes = 0u64;
        let mut aliased_misses = 0u64;
        let start = sys.now(attacker);

        while stream_pos < bucket_stream.len() {
            let mut truth = BTreeSet::new();
            let mut observed = BTreeSet::new();
            for bank in 0..banks {
                // Let the victim catch up to the attacker's clock.
                while stream_pos < bucket_stream.len() && sys.now(victim) <= sys.now(attacker) {
                    let bucket = bucket_stream[stream_pos];
                    stream_pos += 1;
                    let vb = layout.bank_of(bucket);
                    let line = (bucket / banks) as u64 % 128;
                    let row = match victim_rows[vb] {
                        Some(r) => r,
                        None => {
                            let r = sys.alloc_row_in_bank(victim, vb)?;
                            sys.warm_tlb(victim, r, 2);
                            victim_rows[vb] = Some(r);
                            r
                        }
                    };
                    sys.pim_op_direct(victim, row + line * LINE_SIZE)?;
                    sys.advance(victim, self.cfg.victim_gap);
                    pending[vb] += 1;
                    victim_accesses += 1;
                }

                // Background per-bank activity since the last probe.
                let now = sys.now(attacker);
                let dt = (now - last_probe[bank]).as_f64();
                let p_bg = 1.0 - (-self.cfg.background_rate * dt).exp();
                if bg_rng.chance(p_bg) {
                    let noise_row = 1000 + bg_rng.below(1000);
                    sys.backend_mut().inject_row_activation(
                        bank,
                        noise_row,
                        now,
                        impact_sim::noise::NOISE_ACTOR,
                    );
                }

                // Refresh the translation before the timed probe. The
                // attacker backs its probe buffer with 2 MiB hugepages
                // (one page covers 256 rows), so in hardware these
                // translations always hit; the 4 KiB-page simulator models
                // that by re-warming the entry, unmeasured.
                let (_, tlb_cost) = sys.translate(attacker, attacker_rows[bank])?;
                sys.advance(attacker, tlb_cost);
                let t0 = sys.rdtscp(attacker);
                sys.pim_op_direct(attacker, attacker_rows[bank])?;
                let t1 = sys.rdtscp(attacker);
                probes += 1;
                last_probe[bank] = sys.now(attacker);
                let detected = (t1 - t0) > self.cfg.threshold;
                if pending[bank] > 0 {
                    truth.insert(bank);
                    // Accesses beyond the first collapsed into one
                    // row-buffer observation and are unrecoverable.
                    aliased_misses += pending[bank] - 1;
                }
                if detected {
                    observed.insert(bank);
                }
                pending[bank] = 0;
            }
            truth_rounds.push(truth);
            observed_rounds.push(observed);
        }

        let mut score = score_rounds(&truth_rounds, &observed_rounds);
        score.false_negatives += aliased_misses;
        let elapsed = sys.now(attacker) - start;
        let leaked_bits = score.leaked_bits(layout);
        Ok(SideChannelReport {
            score,
            probes,
            victim_accesses,
            elapsed,
            leaked_bits,
            banks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::SystemConfig;
    use impact_sim::System;

    fn run_with_banks(banks: u32) -> (SideChannelReport, f64, f64) {
        let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(banks);
        let mut sys = System::new(cfg);
        let attack = SideChannelAttack::new(SideChannelConfig {
            reads: 40,
            ..SideChannelConfig::default()
        });
        let r = attack.run(&mut sys).unwrap();
        let tput = r.throughput_mbps(sys.config().clock);
        let err = r.error_rate();
        (r, tput, err)
    }

    #[test]
    fn leaks_at_1024_banks_in_paper_band() {
        let (r, tput, err) = run_with_banks(1024);
        assert!(
            r.score.true_positives > 100,
            "TP = {}",
            r.score.true_positives
        );
        // Paper: 7.57 Mb/s, < 5% error at 1024 banks.
        assert!((5.0..=11.0).contains(&tput), "throughput = {tput:.2} Mb/s");
        assert!(err < 0.10, "error = {err:.3}");
    }

    #[test]
    fn throughput_drops_and_error_rises_with_banks() {
        let (_, t1k, e1k) = run_with_banks(1024);
        let (_, t8k, e8k) = run_with_banks(8192);
        assert!(t8k < t1k * 0.75, "no drop: {t1k:.2} -> {t8k:.2} Mb/s");
        assert!(e8k > e1k, "no error growth: {e1k:.3} -> {e8k:.3}");
    }

    #[test]
    fn detection_requires_victim() {
        // With no reads mapped, only background noise fires.
        let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(1024);
        let mut sys = System::new(cfg);
        let attack = SideChannelAttack::new(SideChannelConfig {
            reads: 1,
            ..SideChannelConfig::default()
        });
        let r = attack.run(&mut sys).unwrap();
        // Very few detections relative to a real run.
        assert!(r.victim_accesses < 200);
    }

    /// The batched initialization sweep is bit-identical to the serial
    /// one: same detections, same timing, same backend state.
    #[test]
    fn batched_init_is_bit_identical() {
        let run = |batched: bool| {
            let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(1024);
            let mut sys = System::new(cfg);
            let attack = SideChannelAttack::new(SideChannelConfig {
                reads: 20,
                batched_probes: batched,
                ..SideChannelConfig::default()
            });
            let r = attack.run(&mut sys).unwrap();
            (
                r.score.true_positives,
                r.score.false_positives,
                r.score.false_negatives,
                r.probes,
                r.victim_accesses,
                r.elapsed,
                r.leaked_bits.to_bits(),
                sys.memctrl().stats().clone(),
                sys.dram_totals(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    /// `init` + `measure` on a fork is bit-identical to a straight `run`,
    /// and measuring on the fork leaves the warmed parent untouched.
    #[test]
    fn forked_measure_matches_run() {
        use impact_core::snapshot::Snapshot;
        use impact_memctrl::ControllerBackend;
        let cfg = || SystemConfig::paper_table2_noiseless().with_total_banks(1024);
        let attack = || {
            SideChannelAttack::new(SideChannelConfig {
                reads: 20,
                ..SideChannelConfig::default()
            })
        };
        let mut straight_sys = System::new(cfg());
        let straight = attack().run(&mut straight_sys).unwrap();

        let mut parent = System::new(cfg());
        let init = attack().init(&mut parent).unwrap();
        let warmed_digest = parent.backend().dram_state_digest();
        let mut fork = parent.fork();
        let forked = attack().measure(&mut fork, &init).unwrap();

        assert_eq!(
            parent.backend().dram_state_digest(),
            warmed_digest,
            "measuring on the fork mutated the parent"
        );
        assert_eq!(straight.score.true_positives, forked.score.true_positives);
        assert_eq!(straight.score.false_positives, forked.score.false_positives);
        assert_eq!(straight.score.false_negatives, forked.score.false_negatives);
        assert_eq!(straight.probes, forked.probes);
        assert_eq!(straight.elapsed, forked.elapsed);
        assert_eq!(straight.leaked_bits.to_bits(), forked.leaked_bits.to_bits());
        assert_eq!(straight_sys.dram_totals(), fork.dram_totals());
        assert_eq!(
            straight_sys.backend().dram_state_digest(),
            fork.backend().dram_state_digest()
        );
    }

    /// The attack runs identically on the sharded backend.
    #[test]
    fn runs_identically_on_sharded_backend() {
        use impact_sim::ShardedSystem;
        let cfg = || SystemConfig::paper_table2_noiseless().with_total_banks(1024);
        let attack = || {
            SideChannelAttack::new(SideChannelConfig {
                reads: 20,
                ..SideChannelConfig::default()
            })
        };
        let mut mono_sys = System::new(cfg());
        let mono = attack().run(&mut mono_sys).unwrap();
        let mut sh_sys = ShardedSystem::sharded(cfg(), 8);
        let sharded = attack().run(&mut sh_sys).unwrap();
        assert_eq!(mono.score.true_positives, sharded.score.true_positives);
        assert_eq!(mono.score.false_positives, sharded.score.false_positives);
        assert_eq!(mono.score.false_negatives, sharded.score.false_negatives);
        assert_eq!(mono.elapsed, sharded.elapsed);
        assert_eq!(mono_sys.dram_totals(), sh_sys.dram_totals());
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use impact_core::config::SystemConfig;
    use impact_sim::System;

    #[test]
    #[ignore]
    fn debug_score_breakdown() {
        for banks in [1024u32, 2048, 4096, 8192] {
            let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(banks);
            let mut sys = System::new(cfg);
            let attack = SideChannelAttack::new(SideChannelConfig {
                reads: 40,
                ..SideChannelConfig::default()
            });
            let r = attack.run(&mut sys).unwrap();
            eprintln!(
                "banks {banks}: TP {} FP {} FN {} victim {} tput {:.2} err {:.3} miss {:.3}",
                r.score.true_positives,
                r.score.false_positives,
                r.score.false_negatives,
                r.victim_accesses,
                r.throughput_mbps(sys.config().clock),
                r.error_rate(),
                r.miss_rate()
            );
        }
    }
}
