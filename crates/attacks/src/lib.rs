//! IMPACT: high-throughput main-memory timing attacks exploiting
//! Processing-in-Memory — the paper's primary contribution.
//!
//! Three attack families are implemented, all exploiting the shared DRAM
//! row buffer (§3.1):
//!
//! * **IMPACT-PnM** ([`pnm`]) — a covert channel using PiM-enabled
//!   instructions executed in per-bank compute units (§4.1, Listing 1);
//! * **IMPACT-PuM** ([`pum`]) — a covert channel using masked multi-bank
//!   RowClone operations, transmitting one batch per single request
//!   (§4.2, Listing 2);
//! * the **side channel on genomic read mapping** ([`side_channel`]) —
//!   leaking which hash-table banks a read-mapping victim probes (§4.3).
//!
//! Baselines from the paper's evaluation (§5.2.2) live in [`baseline`]:
//! DRAMA-clflush, DRAMA-eviction, the DMA-engine attack and the idealized
//! direct-memory-access attack of §3.3. The [`primitives`] module encodes
//! Table 1's attack-primitive property matrix.
//!
//! # Example: proof-of-concept IMPACT-PnM transmission
//!
//! ```
//! use impact_attacks::channel::message_from_str;
//! use impact_attacks::pnm::PnmCovertChannel;
//! use impact_core::config::SystemConfig;
//! use impact_sim::System;
//!
//! let mut sys = System::new(SystemConfig::paper_table2_noiseless());
//! let mut ch = PnmCovertChannel::setup(&mut sys, 16)?;
//! let msg = message_from_str("1110010011100100");
//! let report = ch.transmit(&mut sys, &msg)?;
//! assert_eq!(report.bit_errors, 0);
//! # Ok::<(), impact_core::Error>(())
//! ```

pub mod baseline;
pub mod channel;
pub mod pnm;
pub mod primitives;
pub mod pum;
pub mod recon;
pub mod side_channel;

pub use channel::{message_from_str, ChannelReport};
pub use pnm::PnmCovertChannel;
pub use pum::PumCovertChannel;
pub use recon::BankRecon;
pub use side_channel::{SideChannelAttack, SideChannelInit, SideChannelReport};
