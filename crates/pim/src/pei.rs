//! PiM-Enabled Instructions (PEI), the PnM substrate (Ahn et al., ISCA'15).
//!
//! The PEI architecture (§4.1 of the paper) has two key components:
//!
//! * **PCUs** (PEI Computation Units) near each DRAM bank and in the CPU:
//!   we model the memory-side PCU as a fixed transport latency plus a
//!   direct DRAM access, and charge the 3-cycle PEI bookkeeping overhead
//!   the paper takes from the PEI proposal.
//! * **PMU** (PEI Management Unit) with a *locality monitor*: application
//!   regions with high data locality execute host-side to benefit from
//!   caches; low-locality regions execute memory-side. The monitor is a
//!   small direct-mapped table of per-line access counters.

use impact_core::addr::PhysAddr;
use impact_core::config::PimConfig;
use impact_core::engine::{MemRequest, MemoryBackend, RowBufferKind};
use impact_core::error::Result;
use impact_core::time::Cycles;

/// Where the PMU decided to execute a PEI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecSite {
    /// Executed on the host-side PCU, through the cache hierarchy.
    Host,
    /// Executed on the memory-side PCU next to the DRAM bank.
    MemorySide,
}

/// Result of executing one PEI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeiOutcome {
    /// Execution site chosen by the PMU.
    pub site: ExecSite,
    /// Latency observed by the issuing thread.
    pub latency: Cycles,
    /// Row-buffer classification for memory-side execution (None when the
    /// PEI ran host-side; the host path is timed by the caller's cache
    /// model).
    pub kind: Option<RowBufferKind>,
    /// Completion time.
    pub completed_at: Cycles,
}

#[derive(Debug, Clone, Copy, Default)]
struct MonitorEntry {
    line: u64,
    count: u32,
    valid: bool,
}

/// The PMU locality monitor: a direct-mapped table of per-line counters.
///
/// A PEI whose target line has been seen at least `threshold` times in the
/// table is classified high-locality (host execution). Attackers bypass it
/// by touching a fresh cache line per operation (§4.1: "The receiver
/// accesses the next cache line in the initialized row").
#[derive(Debug, Clone)]
pub struct LocalityMonitor {
    entries: Vec<MonitorEntry>,
    threshold: u32,
}

impl LocalityMonitor {
    /// Creates a monitor with `entries` slots and the given threshold.
    #[must_use]
    pub fn new(entries: u32, threshold: u32) -> LocalityMonitor {
        LocalityMonitor {
            entries: vec![MonitorEntry::default(); entries.max(1) as usize],
            threshold: threshold.max(1),
        }
    }

    /// Reports what [`LocalityMonitor::observe`] would return for `line`
    /// without updating any counter. Batched probe paths use this to
    /// predict PMU decisions before committing to a burst.
    #[must_use]
    pub fn peek(&self, line: u64) -> bool {
        let idx = (line as usize) % self.entries.len();
        let e = &self.entries[idx];
        e.valid && e.line == line && e.count >= self.threshold
    }

    /// Observes an access to `line` and reports whether the PMU considers
    /// it high-locality *before* this access.
    pub fn observe(&mut self, line: u64) -> bool {
        let idx = (line as usize) % self.entries.len();
        let e = &mut self.entries[idx];
        if e.valid && e.line == line {
            let high = e.count >= self.threshold;
            e.count = e.count.saturating_add(1);
            high
        } else {
            *e = MonitorEntry {
                line,
                count: 1,
                valid: true,
            };
            false
        }
    }

    /// Clears all learned locality.
    pub fn reset(&mut self) {
        for e in &mut self.entries {
            *e = MonitorEntry::default();
        }
    }
}

/// The PEI engine: PMU + memory-side PCU timing.
#[derive(Debug, Clone)]
pub struct PeiEngine {
    cfg: PimConfig,
    monitor: LocalityMonitor,
}

impl PeiEngine {
    /// Creates a PEI engine from the PiM configuration.
    #[must_use]
    pub fn new(cfg: PimConfig) -> PeiEngine {
        PeiEngine {
            monitor: LocalityMonitor::new(cfg.locality_monitor_entries, cfg.locality_threshold),
            cfg,
        }
    }

    /// The PiM configuration.
    #[must_use]
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// PMU decision for a PEI targeting `addr` (also updates the monitor).
    pub fn decide(&mut self, addr: PhysAddr) -> ExecSite {
        if self.monitor.observe(addr.line_number()) {
            ExecSite::Host
        } else {
            ExecSite::MemorySide
        }
    }

    /// What [`PeiEngine::decide`] would answer for `addr`, without
    /// updating the locality monitor.
    #[must_use]
    pub fn peek_site(&self, addr: PhysAddr) -> ExecSite {
        if self.monitor.peek(addr.line_number()) {
            ExecSite::Host
        } else {
            ExecSite::MemorySide
        }
    }

    /// Executes a PEI (e.g. `pim_add`) targeting `addr` at `now` for
    /// `actor`, letting the PMU pick the site.
    ///
    /// Host-side execution is returned with only the PEI overhead charged;
    /// the caller (the system simulator) adds its cache-path latency. The
    /// memory-side path is fully timed here.
    ///
    /// # Errors
    ///
    /// Propagates backend errors (partition violations, out-of-range
    /// addresses) for memory-side execution.
    pub fn execute<B: MemoryBackend>(
        &mut self,
        mem: &mut B,
        addr: PhysAddr,
        now: Cycles,
        actor: u32,
    ) -> Result<PeiOutcome> {
        match self.decide(addr) {
            ExecSite::Host => {
                let latency = Cycles(self.cfg.pei_overhead_cycles);
                Ok(PeiOutcome {
                    site: ExecSite::Host,
                    latency,
                    kind: None,
                    completed_at: now + latency,
                })
            }
            ExecSite::MemorySide => self.execute_memory_side(mem, addr, now, actor),
        }
    }

    /// Forces memory-side execution (used once the attacker has arranged
    /// to bypass the monitor; also the path for explicitly offloaded
    /// regions).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn execute_memory_side<B: MemoryBackend>(
        &mut self,
        mem: &mut B,
        addr: PhysAddr,
        now: Cycles,
        actor: u32,
    ) -> Result<PeiOutcome> {
        let overhead = Cycles(self.cfg.pei_overhead_cycles + self.cfg.pcu_transport_cycles);
        let access = mem.service(&MemRequest::pim(addr, now + overhead, actor))?;
        let latency = overhead + access.latency;
        Ok(PeiOutcome {
            site: ExecSite::MemorySide,
            latency,
            kind: Some(access.kind),
            completed_at: now + latency,
        })
    }

    /// Resets the PMU locality monitor.
    pub fn reset_monitor(&mut self) {
        self.monitor.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::SystemConfig;
    use impact_memctrl::MemoryController;

    fn setup() -> (MemoryController, PeiEngine) {
        let cfg = SystemConfig::paper_table2();
        (MemoryController::from_config(&cfg), PeiEngine::new(cfg.pim))
    }

    #[test]
    fn cold_lines_go_memory_side() {
        let (mut mc, mut pei) = setup();
        let out = pei.execute(&mut mc, PhysAddr(0x80), Cycles(0), 0).unwrap();
        assert_eq!(out.site, ExecSite::MemorySide);
        assert!(out.kind.is_some());
    }

    #[test]
    fn hot_lines_go_host_side() {
        let (mut mc, mut pei) = setup();
        let addr = PhysAddr(0x40);
        // Warm the monitor past the threshold (2).
        pei.execute(&mut mc, addr, Cycles(0), 0).unwrap();
        pei.execute(&mut mc, addr, Cycles(1000), 0).unwrap();
        let out = pei.execute(&mut mc, addr, Cycles(2000), 0).unwrap();
        assert_eq!(out.site, ExecSite::Host);
        assert_eq!(out.kind, None);
        assert_eq!(out.latency, Cycles(3));
    }

    #[test]
    fn attacker_bypasses_monitor_with_fresh_lines() {
        // Accessing a different cache line in the row each time keeps every
        // PEI memory-side (the IMPACT-PnM strategy).
        let (mut mc, mut pei) = setup();
        for i in 0..64u64 {
            let out = pei
                .execute(&mut mc, PhysAddr(i * 64), Cycles(i * 1000), 0)
                .unwrap();
            assert_eq!(out.site, ExecSite::MemorySide, "iteration {i}");
        }
    }

    #[test]
    fn memory_side_observes_row_buffer_state() {
        let (mut mc, mut pei) = setup();
        let row_bytes = mc.dram().geometry().row_bytes;
        // Two lines in the same row of bank 0 (row-interleaved: first
        // row_bytes bytes are bank 0 row 0).
        let a = PhysAddr(0);
        let b = PhysAddr(64);
        let first = pei.execute_memory_side(&mut mc, a, Cycles(0), 0).unwrap();
        assert_eq!(first.kind, Some(RowBufferKind::Miss));
        let second = pei
            .execute_memory_side(&mut mc, b, first.completed_at, 0)
            .unwrap();
        assert_eq!(second.kind, Some(RowBufferKind::Hit));
        // A line one full rotation later lands in bank 0, next row.
        let c = PhysAddr(16 * row_bytes);
        let third = pei
            .execute_memory_side(&mut mc, c, second.completed_at, 0)
            .unwrap();
        assert_eq!(third.kind, Some(RowBufferKind::Conflict));
        // The 74-cycle signal survives the PEI path.
        assert_eq!(third.latency - second.latency, Cycles(74));
    }

    #[test]
    fn pei_overhead_charged() {
        let (mut mc, mut pei) = setup();
        let out = pei
            .execute_memory_side(&mut mc, PhysAddr(0), Cycles(0), 0)
            .unwrap();
        let bare = {
            let cfg = SystemConfig::paper_table2();
            let mut mc2 = MemoryController::from_config(&cfg);
            mc2.access(PhysAddr(0), Cycles(0), 0).unwrap().latency
        };
        assert_eq!(out.latency, bare + Cycles(3 + 12));
    }

    #[test]
    fn monitor_reset_forgets() {
        let (mut mc, mut pei) = setup();
        let addr = PhysAddr(0x40);
        pei.execute(&mut mc, addr, Cycles(0), 0).unwrap();
        pei.execute(&mut mc, addr, Cycles(1000), 0).unwrap();
        pei.reset_monitor();
        let out = pei.execute(&mut mc, addr, Cycles(2000), 0).unwrap();
        assert_eq!(out.site, ExecSite::MemorySide);
    }

    #[test]
    fn peek_predicts_decide_without_mutation() {
        let (mut mc, mut pei) = setup();
        let addr = PhysAddr(0x40);
        assert_eq!(pei.peek_site(addr), ExecSite::MemorySide);
        pei.execute(&mut mc, addr, Cycles(0), 0).unwrap();
        pei.execute(&mut mc, addr, Cycles(1000), 0).unwrap();
        // Hot line: peek says Host and repeated peeks change nothing.
        assert_eq!(pei.peek_site(addr), ExecSite::Host);
        assert_eq!(pei.peek_site(addr), ExecSite::Host);
        let out = pei.execute(&mut mc, addr, Cycles(2000), 0).unwrap();
        assert_eq!(out.site, ExecSite::Host);
    }

    #[test]
    fn monitor_aliasing_evicts() {
        let mut m = LocalityMonitor::new(1, 2);
        assert!(!m.observe(1));
        assert!(!m.observe(1));
        assert!(m.observe(1));
        // A different line aliases to the single slot and resets it.
        assert!(!m.observe(2));
        assert!(!m.observe(1));
    }
}
