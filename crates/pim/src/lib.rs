//! Processing-in-Memory architectures for the IMPACT reproduction.
//!
//! Two PiM approaches are modelled, matching §4 of the paper:
//!
//! * **PnM — PiM-Enabled Instructions (PEI)** ([`pei`]): per-bank PEI
//!   Computation Units (PCUs) plus a PEI Management Unit (PMU) whose
//!   locality monitor decides whether each PEI executes host-side (through
//!   the cache hierarchy) or memory-side (directly at the bank). The
//!   IMPACT-PnM attack deliberately defeats the monitor by touching a
//!   different cache line on every operation.
//! * **PuM — RowClone** ([`rowclone`]): bulk in-DRAM copy issued by
//!   userspace with a source range, destination range and bank mask; the
//!   memory controller fans the masked request out to banks in parallel
//!   (Listing 2 of the paper).
//!
//! # Example
//!
//! ```
//! use impact_core::config::SystemConfig;
//! use impact_core::addr::PhysAddr;
//! use impact_core::time::Cycles;
//! use impact_memctrl::MemoryController;
//! use impact_pim::pei::{ExecSite, PeiEngine};
//!
//! let cfg = SystemConfig::paper_table2();
//! let mut mc = MemoryController::from_config(&cfg);
//! let mut pei = PeiEngine::new(cfg.pim);
//! // A cold line has no locality: the PMU sends the PEI memory-side.
//! let out = pei.execute(&mut mc, PhysAddr(0x1000), Cycles(0), 0)?;
//! assert_eq!(out.site, ExecSite::MemorySide);
//! # Ok::<(), impact_core::Error>(())
//! ```

pub mod pei;
pub mod rowclone;

pub use pei::{ExecSite, PeiEngine, PeiOutcome};
pub use rowclone::{mask_from_bits, RowCloneEngine};
