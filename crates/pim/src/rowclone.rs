//! RowClone, the PuM substrate (Seshadri et al., MICRO'13).
//!
//! Userspace issues one request carrying a source range, a destination
//! range and a bank mask; the memory backend breaks it into parallel
//! per-bank Fast-Parallel-Mode copies (§4.2 / Listing 2 of the paper). The
//! engine here validates ranges and provides mask helpers; the per-bank
//! timing lives in the backend (`impact_memctrl::MemoryController` by
//! default).

use impact_core::addr::PhysAddr;
use impact_core::engine::{MemRequest, MemResponse, MemoryBackend};
use impact_core::error::{Error, Result};
use impact_core::time::Cycles;

/// Builds a bank mask from per-bank bits (bit `i` of the result = `bits[i]`).
///
/// # Panics
///
/// Panics if more than 64 bits are supplied.
///
/// # Example
///
/// ```
/// use impact_pim::mask_from_bits;
///
/// assert_eq!(mask_from_bits(&[true, false, true, true]), 0b1101);
/// ```
#[must_use]
pub fn mask_from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "mask limited to 64 banks per request");
    bits.iter()
        .enumerate()
        .fold(0u64, |m, (i, &b)| if b { m | (1 << i) } else { m })
}

/// The userspace-facing RowClone interface.
///
/// A request copies rows between two *range bases*: the chunk for mask bit
/// `i` is `base + i * row_bytes`, which under the row-interleaved mapping
/// places consecutive chunks in consecutive banks — the layout the
/// IMPACT-PuM sender allocates.
#[derive(Debug, Clone, Copy)]
pub struct RowCloneEngine {
    row_bytes: u64,
}

impl RowCloneEngine {
    /// Creates an engine for a device with the given row size.
    #[must_use]
    pub fn new(row_bytes: u64) -> RowCloneEngine {
        RowCloneEngine { row_bytes }
    }

    /// Row size the engine assumes.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Validates that `src`/`dst` are row-aligned and the mask is non-empty
    /// and within `max_banks`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRowClone`] describing the violation.
    pub fn validate(&self, src: PhysAddr, dst: PhysAddr, mask: u64, max_banks: u32) -> Result<()> {
        if mask == 0 {
            return Err(Error::InvalidRowClone("empty bank mask".into()));
        }
        let top = 64 - mask.leading_zeros();
        if top > max_banks.min(64) {
            return Err(Error::InvalidRowClone(format!(
                "mask uses bit {} but only {max_banks} banks are addressable",
                top - 1
            )));
        }
        if !src.0.is_multiple_of(self.row_bytes) || !dst.0.is_multiple_of(self.row_bytes) {
            return Err(Error::InvalidRowClone(
                "source/destination ranges must be row-aligned".into(),
            ));
        }
        if src == dst {
            return Err(Error::InvalidRowClone(
                "source and destination ranges must differ".into(),
            ));
        }
        Ok(())
    }

    /// Executes a masked RowClone through the memory backend.
    ///
    /// # Errors
    ///
    /// Returns validation errors from [`RowCloneEngine::validate`] or
    /// backend errors (cross-bank lanes, partition violations,
    /// out-of-range addresses).
    pub fn execute<B: MemoryBackend>(
        &self,
        mem: &mut B,
        src: PhysAddr,
        dst: PhysAddr,
        mask: u64,
        now: Cycles,
        actor: u32,
    ) -> Result<MemResponse> {
        let max_banks = u32::try_from(mem.num_banks()).unwrap_or(u32::MAX);
        self.validate(src, dst, mask, max_banks)?;
        mem.service(&MemRequest::rowclone(src, dst, mask, now, actor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_core::config::SystemConfig;
    use impact_memctrl::MemoryController;

    fn setup() -> (MemoryController, RowCloneEngine) {
        let cfg = SystemConfig::paper_table2();
        let mc = MemoryController::from_config(&cfg);
        let rc = RowCloneEngine::new(cfg.dram_geometry.row_bytes);
        (mc, rc)
    }

    #[test]
    fn mask_builder() {
        assert_eq!(mask_from_bits(&[]), 0);
        assert_eq!(mask_from_bits(&[true; 16]), 0xFFFF);
        assert_eq!(mask_from_bits(&[false, true]), 0b10);
    }

    #[test]
    #[should_panic(expected = "64 banks")]
    fn mask_builder_rejects_over_64() {
        let _ = mask_from_bits(&[false; 65]);
    }

    #[test]
    fn validate_rejects_bad_requests() {
        let (_, rc) = setup();
        let row = rc.row_bytes();
        assert!(rc.validate(PhysAddr(0), PhysAddr(row * 16), 0, 16).is_err());
        assert!(rc.validate(PhysAddr(1), PhysAddr(row * 16), 1, 16).is_err());
        assert!(rc.validate(PhysAddr(0), PhysAddr(0), 1, 16).is_err());
        assert!(rc
            .validate(PhysAddr(0), PhysAddr(row * 16), 1 << 20, 16)
            .is_err());
        assert!(rc
            .validate(PhysAddr(0), PhysAddr(row * 16), 0xFFFF, 16)
            .is_ok());
    }

    #[test]
    fn sixteen_bank_broadcast() {
        let (mut mc, rc) = setup();
        let row = rc.row_bytes();
        let src = PhysAddr(0);
        let dst = PhysAddr(16 * row); // next rotation: same banks, next row
        let out = rc.execute(&mut mc, src, dst, 0xFFFF, Cycles(0), 0).unwrap();
        assert_eq!(out.per_bank.len(), 16);
        let banks: Vec<usize> = out.per_bank.iter().map(|(b, _, _)| *b).collect();
        assert_eq!(banks, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn single_request_is_parallel() {
        // One masked request transmits M bits in the time of one lane —
        // the IMPACT-PuM sender advantage (§4.2).
        let (mut mc, rc) = setup();
        let row = rc.row_bytes();
        let src = PhysAddr(0);
        let dst = PhysAddr(16 * row);
        let full = rc.execute(&mut mc, src, dst, 0xFFFF, Cycles(0), 0).unwrap();
        let (mut mc2, _) = setup();
        let single = rc.execute(&mut mc2, src, dst, 0b1, Cycles(0), 0).unwrap();
        assert_eq!(full.latency, single.latency);
    }
}
