//! Criterion micro-benchmarks of the simulation substrate: how fast the
//! simulator itself executes the primitives every experiment is built on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use impact_cache::{CacheHierarchy, EvictionSet};
use impact_core::addr::PhysAddr;
use impact_core::config::SystemConfig;
use impact_core::engine::MemRequest;
use impact_core::time::Cycles;
use impact_dram::DramDevice;
use impact_genomics::genome::Genome;
use impact_genomics::index::{minimizers, KmerIndex};
use impact_memctrl::MemoryController;
use impact_sim::System;
use impact_workloads::graph::Graph;
use impact_workloads::kernels;

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/access_alternating_rows", |b| {
        let cfg = SystemConfig::paper_table2();
        let mut dram = DramDevice::from_config(&cfg);
        let mut now = Cycles(0);
        let mut row = 0u64;
        b.iter(|| {
            let out = dram.access(0, row % 64, now);
            now = out.completed_at;
            row += 1;
            out.latency
        });
    });
    c.bench_function("dram/masked_rowclone_16_banks", |b| {
        let cfg = SystemConfig::paper_table2();
        let mut mc = MemoryController::from_config(&cfg);
        let row_bytes = cfg.dram_geometry.row_bytes;
        let mut now = Cycles(0);
        b.iter(|| {
            let out = mc
                .rowclone(PhysAddr(0), PhysAddr(16 * row_bytes), 0xFFFF, now, 0)
                .expect("rowclone");
            now = out.completed_at;
            out.latency
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/hierarchy_load_hit", |b| {
        let mut h = CacheHierarchy::from_config(&SystemConfig::paper_table2());
        h.load(PhysAddr(0x4000));
        b.iter(|| h.load(PhysAddr(0x4000)).latency);
    });
    c.bench_function("cache/eviction_set_run", |b| {
        let cfg = SystemConfig::paper_table2();
        b.iter_batched(
            || {
                let mut h = CacheHierarchy::from_config(&cfg);
                let target = PhysAddr(0x40000);
                h.load(target);
                let set = EvictionSet::build(&h, target);
                (h, set)
            },
            |(mut h, set)| set.run_once(&mut h),
            BatchSize::SmallInput,
        );
    });
}

/// The end-to-end init sweep the pool exists for: `pim_open_burst` over
/// one row per bank of a 4096-bank device, through the whole engine
/// (translation, TLB, burst eligibility), on the monolithic system vs
/// `sharded:8` with 4 pool workers.
fn bench_side_channel_init(c: &mut Criterion) {
    use impact_sim::ShardedSystem;
    let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(4096);
    c.bench_function("attacks/side_channel_init_mono", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(cfg.clone());
                let a = sys.spawn_agent();
                let vas: Vec<_> = (0..4096)
                    .map(|bank| {
                        let va = sys.alloc_row_in_bank(a, bank).expect("alloc");
                        sys.warm_tlb(a, va, 2);
                        va
                    })
                    .collect();
                (sys, a, vas)
            },
            |(mut sys, a, vas)| sys.pim_open_burst(a, &vas).expect("burst").len(),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("attacks/side_channel_init_parallel", |b| {
        b.iter_batched(
            || {
                let mut sys = ShardedSystem::sharded_parallel(cfg.clone(), 8, 4);
                let a = sys.spawn_agent();
                let vas: Vec<_> = (0..4096)
                    .map(|bank| {
                        let va = sys.alloc_row_in_bank(a, bank).expect("alloc");
                        sys.warm_tlb(a, va, 2);
                        va
                    })
                    .collect();
                (sys, a, vas)
            },
            |(mut sys, a, vas)| sys.pim_open_burst(a, &vas).expect("burst").len(),
            BatchSize::SmallInput,
        );
    });
}

/// The IMPACT-PnM transmit hot loop, batched (receiver probes through one
/// `service_batch` burst per 16-bit chunk) vs the per-probe reference
/// loop. Bit-identical outputs; the delta is pure simulator speed.
fn bench_pnm_transmit(c: &mut Criterion) {
    use impact_attacks::PnmCovertChannel;
    use impact_core::rng::SimRng;
    let message = SimRng::seed(0xBE9C).bits(512);
    c.bench_function("attacks/pnm_transmit_batched", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(SystemConfig::paper_table2_noiseless());
                let ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
                (sys, ch)
            },
            |(mut sys, mut ch)| ch.transmit(&mut sys, &message).expect("transmit").elapsed,
            BatchSize::SmallInput,
        );
    });
    c.bench_function("attacks/pnm_transmit_serial", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(SystemConfig::paper_table2_noiseless());
                let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
                ch.set_batched(false);
                (sys, ch)
            },
            |(mut sys, mut ch)| ch.transmit(&mut sys, &message).expect("transmit").elapsed,
            BatchSize::SmallInput,
        );
    });
}

/// The on-disk trace codec over a 4096-event mixed stream: encode into a
/// memory sink, decode back. This is the throughput floor for capturing
/// and replaying multi-GB traces.
fn bench_trace_codec(c: &mut Criterion) {
    use impact_core::engine::BackendStats;
    use impact_core::rng::SimRng;
    use impact_core::time::Cycles;
    use impact_core::trace::{read_trace, write_trace, TraceEvent, TraceHeader, TraceSummary};

    let cfg = SystemConfig::paper_table2();
    let header = TraceHeader::for_config(&cfg, "paper_table2", 0xBE5C);
    let mut rng = SimRng::seed(0xBE5C);
    let events: Vec<TraceEvent> = (0..4096u64)
        .map(|i| {
            let addr = PhysAddr(rng.below(1 << 33));
            let at = Cycles(i * 200 + rng.below(100));
            match rng.below(10) {
                0..=5 => TraceEvent::Request(MemRequest::load(addr, at, 0)),
                6 => TraceEvent::Request(MemRequest::pim(addr, at, 1)),
                7 => TraceEvent::Request(MemRequest::rowclone(
                    addr,
                    PhysAddr(addr.0 ^ (1 << 20)),
                    0xFFFF,
                    at,
                    0,
                )),
                8 => TraceEvent::Inject {
                    bank: (i % 16) as usize,
                    row: rng.below(65536),
                    at,
                    actor: 99,
                },
                _ => TraceEvent::Batch(
                    (0..8)
                        .map(|j| MemRequest::load(PhysAddr(addr.0 + j * 64), at, 0))
                        .collect(),
                ),
            }
        })
        .collect();
    let summary = TraceSummary {
        events: 0,
        responses: 4096,
        response_digest: 0xD16E57,
        stats: BackendStats::default(),
    };
    c.bench_function("trace/encode_4k", |b| {
        b.iter(|| {
            write_trace(Vec::with_capacity(64 << 10), &header, &events, &summary)
                .expect("encode")
                .len()
        });
    });
    let bytes = write_trace(Vec::new(), &header, &events, &summary).expect("encode");
    c.bench_function("trace/decode_4k", |b| {
        b.iter(|| {
            let (_, decoded, _) = read_trace(&bytes[..]).expect("decode");
            decoded.len()
        });
    });
}

fn bench_genomics(c: &mut Criterion) {
    let genome = Genome::synthesize(20_000, 7);
    c.bench_function("genomics/minimizers_20kb", |b| {
        b.iter(|| minimizers(genome.bases(), 15, 5).len());
    });
    c.bench_function("genomics/index_build_20kb", |b| {
        b.iter(|| KmerIndex::build(&genome, 15, 5, 16384).occupied_buckets());
    });
}

fn bench_workloads(c: &mut Criterion) {
    let g = Graph::rmat(256, 1024, 3);
    c.bench_function("workloads/bfs_kernel_rmat256", |b| {
        b.iter(|| kernels::bfs(&g, 0).1.len());
    });
    c.bench_function("workloads/tc_kernel_rmat256", |b| {
        b.iter(|| kernels::tc(&g).0);
    });
}

criterion_group!(
    benches,
    bench_dram,
    bench_cache,
    // The memctrl/system hot-path inventory lives in the library so the
    // `bench_record` binary can run (and record) exactly the same benches.
    impact_bench::hotpath::register_memctrl_batch,
    impact_bench::hotpath::register_sharded_parallel,
    bench_side_channel_init,
    bench_pnm_transmit,
    impact_bench::hotpath::register_system,
    impact_bench::hotpath::register_snapshot_fork,
    bench_trace_codec,
    bench_genomics,
    bench_workloads
);
criterion_main!(benches);
