//! Criterion micro-benchmarks of the simulation substrate: how fast the
//! simulator itself executes the primitives every experiment is built on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use impact_cache::{CacheHierarchy, EvictionSet};
use impact_core::addr::PhysAddr;
use impact_core::config::SystemConfig;
use impact_core::engine::MemRequest;
use impact_core::time::Cycles;
use impact_dram::DramDevice;
use impact_genomics::genome::Genome;
use impact_genomics::index::{minimizers, KmerIndex};
use impact_memctrl::MemoryController;
use impact_sim::System;
use impact_workloads::graph::Graph;
use impact_workloads::kernels;

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/access_alternating_rows", |b| {
        let cfg = SystemConfig::paper_table2();
        let mut dram = DramDevice::from_config(&cfg);
        let mut now = Cycles(0);
        let mut row = 0u64;
        b.iter(|| {
            let out = dram.access(0, row % 64, now);
            now = out.completed_at;
            row += 1;
            out.latency
        });
    });
    c.bench_function("dram/masked_rowclone_16_banks", |b| {
        let cfg = SystemConfig::paper_table2();
        let mut mc = MemoryController::from_config(&cfg);
        let row_bytes = cfg.dram_geometry.row_bytes;
        let mut now = Cycles(0);
        b.iter(|| {
            let out = mc
                .rowclone(PhysAddr(0), PhysAddr(16 * row_bytes), 0xFFFF, now, 0)
                .expect("rowclone");
            now = out.completed_at;
            out.latency
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/hierarchy_load_hit", |b| {
        let mut h = CacheHierarchy::from_config(&SystemConfig::paper_table2());
        h.load(PhysAddr(0x4000));
        b.iter(|| h.load(PhysAddr(0x4000)).latency);
    });
    c.bench_function("cache/eviction_set_run", |b| {
        let cfg = SystemConfig::paper_table2();
        b.iter_batched(
            || {
                let mut h = CacheHierarchy::from_config(&cfg);
                let target = PhysAddr(0x40000);
                h.load(target);
                let set = EvictionSet::build(&h, target);
                (h, set)
            },
            |(mut h, set)| set.run_once(&mut h),
            BatchSize::SmallInput,
        );
    });
}

/// The batched request path vs per-request servicing: the baseline future
/// PRs report speedups against. A 64-request stream alternating over rows
/// in a handful of banks, issued either one `service` call at a time or
/// through one amortized `service_batch`.
fn bench_memctrl_batch(c: &mut Criterion) {
    let cfg = SystemConfig::paper_table2();
    let make_reqs = |mc: &impact_memctrl::MemoryController| -> Vec<MemRequest> {
        (0..64u64)
            .map(|i| {
                let addr = mc.mapping().compose((i % 4) as usize, (i / 2) % 8, 0);
                MemRequest::load(addr, Cycles(i * 400), 0)
            })
            .collect()
    };
    c.bench_function("memctrl/service_per_request_64", |b| {
        let mut mc = impact_memctrl::MemoryController::from_config(&cfg);
        let reqs = make_reqs(&mc);
        b.iter(|| {
            reqs.iter()
                .map(|r| mc.service(r).expect("service").latency.0)
                .sum::<u64>()
        });
    });
    c.bench_function("memctrl/service_batch_64", |b| {
        let mut mc = impact_memctrl::MemoryController::from_config(&cfg);
        let reqs = make_reqs(&mc);
        b.iter(|| {
            mc.service_batch(&reqs)
                .expect("batch")
                .iter()
                .map(|r| r.latency.0)
                .sum::<u64>()
        });
    });
    // The sharded controller over the same 64-request batch — compare
    // against `memctrl/service_batch_64` (same stream, monolithic
    // controller) for the sharding overhead/benefit.
    c.bench_function("memctrl/sharded_vs_mono_64", |b| {
        use impact_core::engine::MemoryBackend;
        let mut sc = impact_memctrl::ShardedController::from_config(&cfg, 4);
        let probe = impact_memctrl::MemoryController::from_config(&cfg);
        let reqs = make_reqs(&probe);
        b.iter(|| {
            MemoryBackend::service_batch(&mut sc, &reqs)
                .expect("batch")
                .iter()
                .map(|r| r.latency.0)
                .sum::<u64>()
        });
    });
}

/// Parallel shard servicing vs the sequential sharded path vs the
/// monolithic controller, at init-sweep batch sizes (one request per
/// bank, the side-channel initialization shape). The 64-request point
/// sits below the adaptive threshold, so `sharded:8:4` falls back to the
/// sequential path there by design — routing overhead is the whole cost;
/// the 1024/8192-request points are where the pool is expected to pay.
fn bench_sharded_parallel(c: &mut Criterion) {
    use impact_core::engine::MemoryBackend;
    for (banks, size) in [(16u32, 64usize), (1024, 1024), (8192, 8192)] {
        let cfg = if banks == 16 {
            SystemConfig::paper_table2()
        } else {
            SystemConfig::paper_table2_noiseless().with_total_banks(banks)
        };
        let probe = MemoryController::from_config(&cfg);
        let reqs: Vec<MemRequest> = (0..size)
            .map(|i| {
                let bank = i % banks as usize;
                let row = ((i / banks as usize) % 8) as u64;
                let addr = probe.mapping().compose(bank, row, 0);
                MemRequest::load(addr, Cycles(i as u64 * 400), 0)
            })
            .collect();
        let sum = |resps: Vec<impact_core::engine::MemResponse>| {
            resps.iter().map(|r| r.latency.0).sum::<u64>()
        };
        c.bench_function(&format!("memctrl/mono_batch_{size}"), |b| {
            let mut mc = MemoryController::from_config(&cfg);
            b.iter(|| sum(mc.service_batch(&reqs).expect("batch")));
        });
        c.bench_function(&format!("memctrl/sharded_seq_batch_{size}"), |b| {
            let mut sc = impact_memctrl::ShardedController::from_config(&cfg, 8);
            b.iter(|| sum(MemoryBackend::service_batch(&mut sc, &reqs).expect("batch")));
        });
        c.bench_function(&format!("memctrl/sharded_parallel_vs_mono_{size}"), |b| {
            let mut sc = impact_memctrl::ShardedController::from_config_parallel(&cfg, 8, 4);
            b.iter(|| sum(MemoryBackend::service_batch(&mut sc, &reqs).expect("batch")));
        });
    }
}

/// The end-to-end init sweep the pool exists for: `pim_open_burst` over
/// one row per bank of a 4096-bank device, through the whole engine
/// (translation, TLB, burst eligibility), on the monolithic system vs
/// `sharded:8` with 4 pool workers.
fn bench_side_channel_init(c: &mut Criterion) {
    use impact_sim::ShardedSystem;
    let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(4096);
    c.bench_function("attacks/side_channel_init_mono", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(cfg.clone());
                let a = sys.spawn_agent();
                let vas: Vec<_> = (0..4096)
                    .map(|bank| {
                        let va = sys.alloc_row_in_bank(a, bank).expect("alloc");
                        sys.warm_tlb(a, va, 2);
                        va
                    })
                    .collect();
                (sys, a, vas)
            },
            |(mut sys, a, vas)| sys.pim_open_burst(a, &vas).expect("burst").len(),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("attacks/side_channel_init_parallel", |b| {
        b.iter_batched(
            || {
                let mut sys = ShardedSystem::sharded_parallel(cfg.clone(), 8, 4);
                let a = sys.spawn_agent();
                let vas: Vec<_> = (0..4096)
                    .map(|bank| {
                        let va = sys.alloc_row_in_bank(a, bank).expect("alloc");
                        sys.warm_tlb(a, va, 2);
                        va
                    })
                    .collect();
                (sys, a, vas)
            },
            |(mut sys, a, vas)| sys.pim_open_burst(a, &vas).expect("burst").len(),
            BatchSize::SmallInput,
        );
    });
}

/// The IMPACT-PnM transmit hot loop, batched (receiver probes through one
/// `service_batch` burst per 16-bit chunk) vs the per-probe reference
/// loop. Bit-identical outputs; the delta is pure simulator speed.
fn bench_pnm_transmit(c: &mut Criterion) {
    use impact_attacks::PnmCovertChannel;
    use impact_core::rng::SimRng;
    let message = SimRng::seed(0xBE9C).bits(512);
    c.bench_function("attacks/pnm_transmit_batched", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(SystemConfig::paper_table2_noiseless());
                let ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
                (sys, ch)
            },
            |(mut sys, mut ch)| ch.transmit(&mut sys, &message).expect("transmit").elapsed,
            BatchSize::SmallInput,
        );
    });
    c.bench_function("attacks/pnm_transmit_serial", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(SystemConfig::paper_table2_noiseless());
                let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
                ch.set_batched(false);
                (sys, ch)
            },
            |(mut sys, mut ch)| ch.transmit(&mut sys, &message).expect("transmit").elapsed,
            BatchSize::SmallInput,
        );
    });
}

fn bench_system(c: &mut Criterion) {
    c.bench_function("system/pim_op_direct", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 0).expect("alloc");
        sys.warm_tlb(a, row, 2);
        b.iter(|| sys.pim_op_direct(a, row).expect("pim").latency);
    });
    c.bench_function("system/load_through_caches", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 1).expect("alloc");
        sys.warm_tlb(a, row, 2);
        b.iter(|| sys.load(a, row).expect("load").latency);
    });
    // The tight uncached probe loop every attack hot path reduces to,
    // request-at-a-time vs one batched burst.
    c.bench_function("system/load_direct_loop_64", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 2).expect("alloc");
        sys.warm_tlb(a, row, 2);
        let vas: Vec<_> = (0..64u64).map(|i| row + (i % 128) * 64).collect();
        b.iter(|| {
            vas.iter()
                .map(|&va| sys.load_direct(a, va).expect("load").latency.0)
                .sum::<u64>()
        });
    });
    c.bench_function("system/load_direct_batch_64", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 2).expect("alloc");
        sys.warm_tlb(a, row, 2);
        let vas: Vec<_> = (0..64u64).map(|i| row + (i % 128) * 64).collect();
        b.iter(|| {
            sys.load_direct_batch(a, &vas)
                .expect("batch")
                .iter()
                .map(|i| i.latency.0)
                .sum::<u64>()
        });
    });
}

/// The on-disk trace codec over a 4096-event mixed stream: encode into a
/// memory sink, decode back. This is the throughput floor for capturing
/// and replaying multi-GB traces.
fn bench_trace_codec(c: &mut Criterion) {
    use impact_core::engine::BackendStats;
    use impact_core::rng::SimRng;
    use impact_core::time::Cycles;
    use impact_core::trace::{read_trace, write_trace, TraceEvent, TraceHeader, TraceSummary};

    let cfg = SystemConfig::paper_table2();
    let header = TraceHeader::for_config(&cfg, "paper_table2", 0xBE5C);
    let mut rng = SimRng::seed(0xBE5C);
    let events: Vec<TraceEvent> = (0..4096u64)
        .map(|i| {
            let addr = PhysAddr(rng.below(1 << 33));
            let at = Cycles(i * 200 + rng.below(100));
            match rng.below(10) {
                0..=5 => TraceEvent::Request(MemRequest::load(addr, at, 0)),
                6 => TraceEvent::Request(MemRequest::pim(addr, at, 1)),
                7 => TraceEvent::Request(MemRequest::rowclone(
                    addr,
                    PhysAddr(addr.0 ^ (1 << 20)),
                    0xFFFF,
                    at,
                    0,
                )),
                8 => TraceEvent::Inject {
                    bank: (i % 16) as usize,
                    row: rng.below(65536),
                    at,
                    actor: 99,
                },
                _ => TraceEvent::Batch(
                    (0..8)
                        .map(|j| MemRequest::load(PhysAddr(addr.0 + j * 64), at, 0))
                        .collect(),
                ),
            }
        })
        .collect();
    let summary = TraceSummary {
        events: 0,
        responses: 4096,
        response_digest: 0xD16E57,
        stats: BackendStats::default(),
    };
    c.bench_function("trace/encode_4k", |b| {
        b.iter(|| {
            write_trace(Vec::with_capacity(64 << 10), &header, &events, &summary)
                .expect("encode")
                .len()
        });
    });
    let bytes = write_trace(Vec::new(), &header, &events, &summary).expect("encode");
    c.bench_function("trace/decode_4k", |b| {
        b.iter(|| {
            let (_, decoded, _) = read_trace(&bytes[..]).expect("decode");
            decoded.len()
        });
    });
}

fn bench_genomics(c: &mut Criterion) {
    let genome = Genome::synthesize(20_000, 7);
    c.bench_function("genomics/minimizers_20kb", |b| {
        b.iter(|| minimizers(genome.bases(), 15, 5).len());
    });
    c.bench_function("genomics/index_build_20kb", |b| {
        b.iter(|| KmerIndex::build(&genome, 15, 5, 16384).occupied_buckets());
    });
}

fn bench_workloads(c: &mut Criterion) {
    let g = Graph::rmat(256, 1024, 3);
    c.bench_function("workloads/bfs_kernel_rmat256", |b| {
        b.iter(|| kernels::bfs(&g, 0).1.len());
    });
    c.bench_function("workloads/tc_kernel_rmat256", |b| {
        b.iter(|| kernels::tc(&g).0);
    });
}

criterion_group!(
    benches,
    bench_dram,
    bench_cache,
    bench_memctrl_batch,
    bench_sharded_parallel,
    bench_side_channel_init,
    bench_pnm_transmit,
    bench_system,
    bench_trace_codec,
    bench_genomics,
    bench_workloads
);
criterion_main!(benches);
