//! Criterion harness regenerating every paper table/figure: one benchmark
//! per experiment, measuring the end-to-end reproduction time. (The shape
//! assertions live in the unit/integration tests; here the experiments are
//! exercised as whole pipelines.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use impact_bench::experiments;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(8));

    g.bench_function("delta_sec3_1", |b| b.iter(experiments::delta));
    g.bench_function("table1", |b| b.iter(experiments::table1));
    g.bench_function("table2", |b| b.iter(experiments::table2));
    g.bench_function("fig2_llc_size_sweep", |b| b.iter(experiments::fig2));
    g.bench_function("fig3_llc_ways_sweep", |b| b.iter(experiments::fig3));
    g.bench_function("fig8_poc", |b| b.iter(experiments::fig8));
    g.bench_function("fig9_throughput_comparison", |b| {
        b.iter(|| experiments::fig9(256))
    });
    g.bench_function("fig10_breakdown", |b| b.iter(experiments::fig10));
    g.bench_function("fig11_side_channel", |b| b.iter(|| experiments::fig11(20)));
    g.bench_function("fig12_defenses", |b| b.iter(|| experiments::fig12(true)));
    g.bench_function("ablations", |b| b.iter(|| experiments::ablations(true)));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
