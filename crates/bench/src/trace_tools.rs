//! Recording, replaying, diffing and sweeping persisted backend traces —
//! the library behind the `trace_replay` binary and `fig_all`'s
//! `--record-trace`/`--trace` flags.
//!
//! A trace file makes cross-machine, cross-backend reproducibility a
//! *checkable property*: [`record_capture`] runs a canonical workload on
//! any backend of the matrix with the tracing proxy spilling straight to
//! disk; [`replay_file`] re-services the file on any (possibly different)
//! backend and verifies the responses, [`BackendStats`] and DRAM state
//! digest bit-for-bit against the recorded footer; [`diff_readers`]
//! pinpoints the first divergent event between two captures; and
//! [`TraceScenario`] turns a captured file into a [`Scenario`] that runs
//! under the [`SweepRunner`] alongside the built-in experiment suite.

use std::io::{Read, Write};
use std::sync::Arc;

use impact_attacks::PnmCovertChannel;
use impact_core::config::SystemConfig;
use impact_core::engine::{BackendStats, MemoryBackend};
use impact_core::error::{Error, Result};
use impact_core::rng::SimRng;
use impact_core::trace::{TraceEvent, TraceHeader, TraceReader, TraceSummary, TracingBackend};
use impact_memctrl::ControllerBackend;
use impact_sim::{BackendKind, DynBackend, Engine, SimParams};
use impact_workloads::{kernels, CapturedTrace, Graph, RequestMix};

use crate::runner::Scenario;
use crate::{Figure, Series};

/// The engine [`record_capture`] drives: a tracing proxy around a
/// runtime-chosen backend, so one concrete type records any entry of the
/// backend matrix.
pub type TracingDynSystem = Engine<TracingBackend<Box<dyn ControllerBackend>>>;

/// Resolves a trace header's config label to the [`SystemConfig`] it
/// names. Labels are how a replay on another machine rebuilds the
/// recorded system; the header fingerprint then proves the resolution is
/// exact.
#[must_use]
pub fn config_for_label(label: &str) -> Option<SystemConfig> {
    match label {
        "paper_table2" => Some(SystemConfig::paper_table2()),
        "paper_table2_noiseless" => Some(SystemConfig::paper_table2_noiseless()),
        _ => {
            let banks: u32 = label
                .strip_prefix("paper_table2_noiseless+banks:")?
                .parse()
                .ok()?;
            (banks > 0 && banks.is_multiple_of(4))
                .then(|| SystemConfig::paper_table2_noiseless().with_total_banks(banks))
        }
    }
}

/// The canonical capture workloads `trace_replay record` offers. Each is
/// deterministic in (seed, quick, backend-invariant responses), so the
/// same invocation on two machines produces byte-identical trace files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureKind {
    /// A seeded mixed stream of loads, stores, PiM ops, batched bursts and
    /// RowClones across every bank (the default).
    Mix,
    /// The IMPACT-PnM covert channel transmitting a seeded message.
    Pnm,
    /// A BFS kernel trace replayed through the engine.
    Bfs,
}

impl CaptureKind {
    /// Parses `"mix"`, `"pnm"` or `"bfs"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<CaptureKind> {
        match s {
            "mix" => Some(CaptureKind::Mix),
            "pnm" => Some(CaptureKind::Pnm),
            "bfs" => Some(CaptureKind::Bfs),
            _ => None,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CaptureKind::Mix => "mix",
            CaptureKind::Pnm => "pnm",
            CaptureKind::Bfs => "bfs",
        }
    }
}

/// Result of one [`record_capture`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureOutcome {
    /// Config label written into the header (resolve with
    /// [`config_for_label`]).
    pub label: String,
    /// The sealed footer.
    pub summary: TraceSummary,
    /// DRAM state digest of the recording backend after the run.
    pub state_digest: u64,
}

/// Records `kind` on `backend`, streaming the trace into `sink` (spill
/// mode: the recording never materializes in memory). Any entry of the
/// backend matrix produces byte-identical trace files for the same
/// (kind, quick, seed) — the property the weekly determinism CI diffs.
///
/// # Errors
///
/// Propagates simulator and trace-write errors.
pub fn record_capture(
    kind: CaptureKind,
    backend: BackendKind,
    quick: bool,
    seed: u64,
    sink: Box<dyn Write + Send>,
) -> Result<CaptureOutcome> {
    let cfg = SystemConfig::paper_table2();
    let label = "paper_table2";
    let mut sys: TracingDynSystem = Engine::with_backend(
        cfg.clone(),
        SimParams::default(),
        TracingBackend::new(backend.backend(&cfg)),
    );
    sys.record_trace_to(sink, label, seed)?;
    match kind {
        CaptureKind::Mix => run_mix(&mut sys, quick, seed)?,
        CaptureKind::Pnm => {
            let message = SimRng::seed(seed).bits(if quick { 256 } else { 2048 });
            let mut channel = PnmCovertChannel::setup(&mut sys, 16)?;
            channel.transmit(&mut sys, &message)?;
        }
        CaptureKind::Bfs => {
            let (nodes, edges) = if quick { (64, 256) } else { (512, 4096) };
            let graph = Graph::uniform_random(nodes, edges, seed);
            let (_, trace) = kernels::bfs(&graph, 0);
            let agent = sys.spawn_agent();
            impact_workloads::replay(&mut sys, agent, &trace)?;
        }
    }
    let summary = sys.finish_trace()?.expect("recording was started above");
    Ok(CaptureOutcome {
        label: label.to_string(),
        summary,
        state_digest: sys.backend().dram_state_digest(),
    })
}

/// The seeded mixed workload: demand loads/stores, monitored and
/// offloaded PiM ops, batched direct-load bursts and masked RowClones,
/// touching every bank of the device.
fn run_mix(sys: &mut TracingDynSystem, quick: bool, seed: u64) -> Result<()> {
    let mut rng = SimRng::seed(seed);
    let agent = sys.spawn_agent();
    let banks = sys.backend().num_banks();
    let mut rows = Vec::with_capacity(banks);
    for bank in 0..banks {
        let va = sys.alloc_row_in_bank(agent, bank)?;
        sys.warm_tlb(agent, va, 2);
        rows.push(va);
    }
    let src = sys.alloc_bank_stripe(agent, 1)?;
    let dst = sys.alloc_bank_stripe(agent, 1)?;
    sys.warm_tlb(agent, src, 2 * banks as u64);
    sys.warm_tlb(agent, dst, 2 * banks as u64);

    let ops = if quick { 1_500 } else { 40_000 };
    for _ in 0..ops {
        let row = rows[rng.below(rows.len() as u64) as usize];
        let offset = rng.below(64) * 64;
        match rng.below(20) {
            0..=7 => {
                sys.load(agent, row + offset)?;
            }
            8..=10 => {
                sys.store(agent, row + offset)?;
            }
            11..=14 => {
                sys.pim_op(agent, row + offset)?;
            }
            15..=16 => {
                sys.pim_op_direct(agent, row + offset)?;
            }
            17..=18 => {
                // A burst over eight distinct banks through the batched
                // request path (preserves `Batch` boundaries in the trace).
                let base = rng.below(banks as u64 - 8) as usize;
                let vas: Vec<_> = (0..8).map(|i| rows[base + i] + offset).collect();
                sys.load_direct_batch(agent, &vas)?;
            }
            _ => {
                let mask = rng.below((1 << banks.min(16)) - 1) + 1;
                sys.rowclone(agent, src, dst, mask)?;
            }
        }
    }
    Ok(())
}

/// Outcome of verifying one trace file against one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayVerification {
    /// Header of the replayed file.
    pub header: TraceHeader,
    /// Footer recorded with the file.
    pub recorded: TraceSummary,
    /// Responses produced by the replay.
    pub responses: u64,
    /// Response digest produced by the replay.
    pub response_digest: u64,
    /// Final [`BackendStats`] of the replaying backend.
    pub stats: BackendStats,
    /// Final DRAM state digest of the replaying backend — equal across
    /// any two backends that replayed the same file.
    pub state_digest: u64,
    /// Pool-scheduling telemetry of the replaying backend —
    /// `(parallel_batches, sequential_fallbacks)` from
    /// [`ControllerBackend::scheduling_counts`], `(0, 0)` on non-pooled
    /// backends. Diagnostic only: backend-dependent by design, so it is
    /// not part of [`ReplayVerification::matches`].
    ///
    /// [`ControllerBackend::scheduling_counts`]:
    /// impact_memctrl::ControllerBackend::scheduling_counts
    pub pool_batches: (u64, u64),
}

impl ReplayVerification {
    /// True when the replay reproduced the recorded run bit-for-bit.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.responses == self.recorded.responses
            && self.response_digest == self.recorded.response_digest
            && self.stats == self.recorded.stats
    }
}

/// Streams a trace file into a fresh backend of `kind` and verifies it
/// against the recorded footer. Constant-memory: events are serviced as
/// they decode.
///
/// # Errors
///
/// Decode errors, [`Error::TraceFormat`] for an unknown config label,
/// [`Error::TraceConfigMismatch`] when the label resolves to a different
/// configuration than the recording's, and backend service errors.
pub fn replay_file<R: Read>(reader: R, kind: BackendKind) -> Result<ReplayVerification> {
    let mut reader = TraceReader::new(reader)?;
    let cfg = config_for_label(&reader.header().label).ok_or_else(|| {
        Error::TraceFormat(format!(
            "unknown config label {:?} (known: paper_table2, paper_table2_noiseless, \
             paper_table2_noiseless+banks:N)",
            reader.header().label
        ))
    })?;
    reader.expect_config(&cfg)?;
    let mut backend: DynBackend = kind.backend(&cfg);
    let (responses, digest) = impact_core::trace::replay_digest(
        std::iter::from_fn(|| reader.next_event().transpose()),
        &mut backend,
    )?;
    let recorded = reader
        .summary()
        .expect("stream ended with a footer")
        .clone();
    Ok(ReplayVerification {
        header: reader.header().clone(),
        recorded,
        responses,
        response_digest: digest,
        stats: backend.backend_stats(),
        state_digest: backend.dram_state_digest(),
        pool_batches: backend.scheduling_counts(),
    })
}

/// Where two traces diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Streams are event-identical with matching footers.
    Identical {
        /// Events compared.
        events: u64,
    },
    /// Headers differ (field-by-field description).
    HeaderMismatch(Vec<String>),
    /// First divergent event.
    EventMismatch {
        /// Zero-based index of the first divergent event.
        index: u64,
        /// The event in the left stream (`None`: stream ended early).
        left: Option<TraceEvent>,
        /// The event in the right stream (`None`: stream ended early).
        right: Option<TraceEvent>,
        /// Up to three shared events immediately before the divergence.
        context: Vec<TraceEvent>,
    },
    /// Events identical, footers differ.
    SummaryMismatch {
        /// Left footer.
        left: TraceSummary,
        /// Right footer.
        right: TraceSummary,
    },
}

/// Streaming event-by-event comparison of two trace files; reports the
/// first divergence with surrounding context.
///
/// # Errors
///
/// Propagates decode errors from either stream.
pub fn diff_readers<A: Read, B: Read>(a: A, b: B) -> Result<DiffOutcome> {
    let mut left = TraceReader::new(a)?;
    let mut right = TraceReader::new(b)?;
    let mut header_diffs = Vec::new();
    let (ha, hb) = (left.header().clone(), right.header().clone());
    if ha.version != hb.version {
        header_diffs.push(format!("version: {} vs {}", ha.version, hb.version));
    }
    if ha.fingerprint != hb.fingerprint {
        header_diffs.push(format!(
            "config fingerprint: {:#018x} vs {:#018x}",
            ha.fingerprint, hb.fingerprint
        ));
    }
    if ha.seed != hb.seed {
        header_diffs.push(format!("seed: {} vs {}", ha.seed, hb.seed));
    }
    if ha.label != hb.label {
        header_diffs.push(format!("config label: {:?} vs {:?}", ha.label, hb.label));
    }
    if !header_diffs.is_empty() {
        return Ok(DiffOutcome::HeaderMismatch(header_diffs));
    }

    let mut context: std::collections::VecDeque<TraceEvent> = std::collections::VecDeque::new();
    let mut index = 0u64;
    loop {
        let (ea, eb) = (left.next_event()?, right.next_event()?);
        match (ea, eb) {
            (None, None) => break,
            (ea, eb) if ea == eb => {
                if context.len() == 3 {
                    context.pop_front();
                }
                context.push_back(ea.expect("both Some when equal and not both None"));
                index += 1;
            }
            (ea, eb) => {
                return Ok(DiffOutcome::EventMismatch {
                    index,
                    left: ea,
                    right: eb,
                    context: context.into_iter().collect(),
                });
            }
        }
    }
    let sa = left.summary().expect("footer parsed").clone();
    let sb = right.summary().expect("footer parsed").clone();
    if sa == sb {
        Ok(DiffOutcome::Identical { events: index })
    } else {
        Ok(DiffOutcome::SummaryMismatch {
            left: sa,
            right: sb,
        })
    }
}

/// First divergent index between two in-memory event slices (`None` when
/// equal) — the slice-level core of `trace_replay diff`, used directly by
/// the end-to-end tests.
#[must_use]
pub fn first_divergence(a: &[TraceEvent], b: &[TraceEvent]) -> Option<u64> {
    let shared = a.len().min(b.len());
    for (i, (ea, eb)) in a.iter().zip(b).enumerate() {
        if ea != eb {
            return Some(i as u64);
        }
    }
    (a.len() != b.len()).then_some(shared as u64)
}

/// Summarizes a trace file's request mix (`trace_replay stats`).
///
/// # Errors
///
/// As for [`replay_file`], minus the service step.
pub fn trace_stats<R: Read>(reader: R) -> Result<(TraceHeader, RequestMix, TraceSummary)> {
    let captured = CapturedTrace::read_from(reader)?;
    let cfg = config_for_label(&captured.header.label).ok_or_else(|| {
        Error::TraceFormat(format!("unknown config label {:?}", captured.header.label))
    })?;
    captured.header.expect_config(&cfg)?;
    let probe = BackendKind::Mono.backend(&cfg);
    let mix = captured.mix(&probe);
    Ok((captured.header, mix, captured.summary))
}

/// Outcome of [`slice_capture`] or [`merge_captures`]: the output trace's
/// recomputed footer plus the recomputing backend's final DRAM state
/// digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceOutcome {
    /// The slice's footer, recomputed by replaying the window on a fresh
    /// mono backend (responses are backend-invariant, so the footer
    /// verifies on every backend).
    pub summary: TraceSummary,
    /// DRAM state digest after the slicing replay.
    pub state_digest: u64,
}

/// Extracts the event window `[start, start + count)` of a capture into a
/// standalone, footer-valid trace written to `sink` (`trace_replay
/// slice`).
///
/// The sliced events are copied verbatim (header included); the footer is
/// *recomputed* by replaying the window on a fresh backend of the
/// header's configuration, because a window cut out of a longer run
/// produces different responses when serviced from pristine DRAM state.
/// The output is therefore a first-class trace: `trace_replay replay`
/// verifies it on any backend and `diff`/`stats` read it like any
/// capture — which is what makes slicing useful for shrinking a large
/// diverging capture down to a small standalone repro.
///
/// # Errors
///
/// [`Error::TraceFormat`] for an unknown config label or an out-of-range
/// window; [`Error::TraceConfigMismatch`] when label and fingerprint
/// disagree; trace-write and backend service errors.
pub fn slice_capture<W: Write>(
    captured: &CapturedTrace,
    start: usize,
    count: usize,
    sink: W,
) -> Result<SliceOutcome> {
    let total = captured.events.len();
    let end = start
        .checked_add(count)
        .filter(|&e| e <= total)
        .ok_or_else(|| {
            Error::TraceFormat(format!(
                "slice [{start}, {start}+{count}) out of range for {total} events"
            ))
        })?;
    let cfg = config_for_label(&captured.header.label).ok_or_else(|| {
        Error::TraceFormat(format!("unknown config label {:?}", captured.header.label))
    })?;
    captured.header.expect_config(&cfg)?;
    let window = &captured.events[start..end];
    let mut backend = BackendKind::Mono.backend(&cfg);
    let (responses, response_digest) =
        impact_core::trace::replay_digest(window.iter().cloned().map(Ok), &mut backend)?;
    let summary = TraceSummary {
        events: window.len() as u64,
        responses,
        response_digest,
        stats: backend.backend_stats(),
    };
    impact_core::trace::write_trace(sink, &captured.header, window, &summary)?;
    Ok(SliceOutcome {
        summary,
        state_digest: backend.dram_state_digest(),
    })
}

/// Concatenates captured traces into one standalone, footer-valid trace
/// written to `sink` (`trace_replay merge`).
///
/// Every input must carry the same config label and fingerprint (the
/// merged events replay against one configuration); the output reuses the
/// first input's header, so its seed records the first capture's
/// provenance. Events are copied verbatim in input order and the footer
/// is *recomputed* by replaying the concatenation on a fresh mono
/// backend — later inputs are serviced against the DRAM state the earlier
/// ones left behind, so the merged footer is not the sum of the input
/// footers. As with [`slice_capture`], the result is a first-class trace:
/// `replay` verifies it on any backend, `diff`/`stats`/`slice` read it
/// like any capture.
///
/// # Errors
///
/// [`Error::TraceFormat`] when fewer than two inputs are given, for an
/// unknown config label, or when the inputs disagree on label or
/// fingerprint; [`Error::TraceConfigMismatch`] when label and fingerprint
/// disagree; trace-write and backend service errors.
pub fn merge_captures<W: Write>(inputs: &[CapturedTrace], sink: W) -> Result<SliceOutcome> {
    let [first, rest @ ..] = inputs else {
        return Err(Error::TraceFormat("merge needs at least two traces".into()));
    };
    if rest.is_empty() {
        return Err(Error::TraceFormat("merge needs at least two traces".into()));
    }
    let cfg = config_for_label(&first.header.label).ok_or_else(|| {
        Error::TraceFormat(format!("unknown config label {:?}", first.header.label))
    })?;
    first.header.expect_config(&cfg)?;
    for (i, input) in rest.iter().enumerate() {
        if input.header.label != first.header.label
            || input.header.fingerprint != first.header.fingerprint
        {
            return Err(Error::TraceFormat(format!(
                "input {} was captured on {:?} ({:#018x}), expected {:?} ({:#018x})",
                i + 2,
                input.header.label,
                input.header.fingerprint,
                first.header.label,
                first.header.fingerprint,
            )));
        }
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    for input in inputs {
        events.extend(input.events.iter().cloned());
    }
    let mut backend = BackendKind::Mono.backend(&cfg);
    let (responses, response_digest) =
        impact_core::trace::replay_digest(events.iter().cloned().map(Ok), &mut backend)?;
    let summary = TraceSummary {
        events: events.len() as u64,
        responses,
        response_digest,
        stats: backend.backend_stats(),
    };
    impact_core::trace::write_trace(sink, &first.header, &events, &summary)?;
    Ok(SliceOutcome {
        summary,
        state_digest: backend.dram_state_digest(),
    })
}

/// A captured trace as a sweepable [`Scenario`]: x sweeps the replayed
/// prefix (fraction of events), y reports mean response latency in
/// cycles/op on a fresh backend per point. Because responses are
/// backend-invariant, the produced [`Series`] is bit-identical on every
/// entry of the backend matrix — captured workloads inherit the suite's
/// reproducibility contract for free.
#[derive(Debug, Clone)]
pub struct TraceScenario {
    captured: Arc<CapturedTrace>,
    cfg: SystemConfig,
    backend: BackendKind,
}

impl TraceScenario {
    /// Wraps a loaded capture for replay on `backend`, validating it end
    /// to end: the label must resolve to the fingerprinted configuration
    /// AND a full replay on `backend` must reproduce the recorded footer
    /// (response count and digest). `eval` can then replay any prefix
    /// without a fallible path.
    ///
    /// # Errors
    ///
    /// [`Error::TraceFormat`] for an unknown config label or a capture
    /// whose events fail to service or do not reproduce the footer;
    /// [`Error::TraceConfigMismatch`] when label and fingerprint disagree.
    pub fn new(captured: CapturedTrace, backend: BackendKind) -> Result<TraceScenario> {
        let cfg = config_for_label(&captured.header.label).ok_or_else(|| {
            Error::TraceFormat(format!("unknown config label {:?}", captured.header.label))
        })?;
        captured.header.expect_config(&cfg)?;
        let mut probe = backend.backend(&cfg);
        let replayed = captured.replay_prefix(&mut probe, captured.events.len())?;
        if replayed.responses != captured.summary.responses
            || replayed.response_digest != captured.summary.response_digest
        {
            return Err(Error::TraceFormat(format!(
                "capture does not reproduce its own footer on {} \
                 (recorded {} responses / digest {:#018x}, replayed {} / {:#018x})",
                backend.label(),
                captured.summary.responses,
                captured.summary.response_digest,
                replayed.responses,
                replayed.response_digest,
            )));
        }
        Ok(TraceScenario {
            captured: Arc::new(captured),
            cfg,
            backend,
        })
    }

    /// The wrapped capture.
    #[must_use]
    pub fn captured(&self) -> &CapturedTrace {
        &self.captured
    }
}

impl Scenario for TraceScenario {
    fn name(&self) -> String {
        "captured trace replay (cycles/op)".into()
    }

    fn seed(&self) -> u64 {
        self.captured.header.seed
    }

    fn xs(&self) -> Vec<f64> {
        vec![0.25, 0.5, 0.75, 1.0]
    }

    fn eval(&self, x: f64, _rng: &mut SimRng) -> f64 {
        let events = (self.captured.events.len() as f64 * x).round() as usize;
        let mut backend = self.backend.backend(&self.cfg);
        let replayed = self
            .captured
            .replay_prefix(&mut backend, events)
            .expect("full replay was validated by TraceScenario::new");
        if replayed.responses == 0 {
            0.0
        } else {
            replayed.total_latency as f64 / replayed.responses as f64
        }
    }
}

/// Builds the `fig_all --trace` figure: the [`TraceScenario`] sweep plus
/// a request-mix note line.
#[must_use]
pub fn trace_figure(scenario: &TraceScenario, series: Series) -> Figure {
    let probe = BackendKind::Mono.backend(&scenario.cfg);
    let mix = scenario.captured().mix(&probe);
    let summary = &scenario.captured().summary;
    Figure::new(
        "trace",
        "Captured-trace workload replay",
        "fraction of trace replayed",
        "mean response latency (cycles/op)",
    )
    .with_series(series)
    .with_note(format!(
        "{} events, {} responses; mix: {} loads, {} stores, {} pim, {} rowclone, {} inject \
         ({} batches, max {}); recorded digest {:#018x}",
        summary.events,
        summary.responses,
        mix.loads,
        mix.stores,
        mix.pims,
        mix.rowclones,
        mix.injects,
        mix.batches,
        mix.max_batch,
        summary.response_digest,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_capture(kind: CaptureKind, backend: BackendKind) -> (Vec<u8>, CaptureOutcome) {
        let buf = SharedVec::default();
        let outcome = record_capture(kind, backend, true, 0x7ACE, Box::new(buf.clone())).unwrap();
        (buf.take(), outcome)
    }

    /// Shared growable sink so tests can get bytes back out of the boxed
    /// writer.
    #[derive(Clone, Default)]
    struct SharedVec(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedVec {
        fn take(&self) -> Vec<u8> {
            std::mem::take(&mut self.0.lock().unwrap())
        }
    }

    impl Write for SharedVec {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn config_labels_resolve_and_fingerprint() {
        for label in ["paper_table2", "paper_table2_noiseless"] {
            let cfg = config_for_label(label).unwrap();
            let header = TraceHeader::for_config(&cfg, label, 0);
            assert!(header
                .expect_config(&config_for_label(label).unwrap())
                .is_ok());
        }
        let banks = config_for_label("paper_table2_noiseless+banks:1024").unwrap();
        assert_eq!(banks.dram_geometry.total_banks(), 1024);
        assert!(config_for_label("paper_table2_noiseless+banks:6").is_none());
        assert!(config_for_label("nope").is_none());
    }

    #[test]
    fn capture_kinds_parse() {
        for kind in [CaptureKind::Mix, CaptureKind::Pnm, CaptureKind::Bfs] {
            assert_eq!(CaptureKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CaptureKind::parse("nope"), None);
    }

    #[test]
    fn recorded_capture_replays_on_every_backend() {
        let (bytes, outcome) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        assert!(outcome.summary.responses > 0);
        let mut state_digests = Vec::new();
        for kind in [
            BackendKind::Mono,
            BackendKind::Sharded {
                shards: 4,
                workers: 1,
            },
            BackendKind::Traced,
        ] {
            let v = replay_file(&bytes[..], kind).unwrap();
            assert!(v.matches(), "{} diverged: {v:?}", kind.label());
            state_digests.push(v.state_digest);
        }
        state_digests.dedup();
        assert_eq!(state_digests.len(), 1, "DRAM state digests diverged");
        assert_eq!(state_digests[0], outcome.state_digest);
    }

    #[test]
    fn captures_are_backend_invariant_byte_for_byte() {
        let (mono, _) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        let (sharded, _) = quick_capture(
            CaptureKind::Mix,
            BackendKind::Sharded {
                shards: 4,
                workers: 1,
            },
        );
        assert_eq!(mono, sharded, "recorded bytes differ across backends");
        assert!(matches!(
            diff_readers(&mono[..], &sharded[..]).unwrap(),
            DiffOutcome::Identical { .. }
        ));
    }

    #[test]
    fn pnm_and_bfs_captures_record_and_replay() {
        for kind in [CaptureKind::Pnm, CaptureKind::Bfs] {
            let (bytes, outcome) = quick_capture(kind, BackendKind::Mono);
            assert!(outcome.summary.responses > 0, "{} empty", kind.name());
            let v = replay_file(
                &bytes[..],
                BackendKind::Sharded {
                    shards: 2,
                    workers: 1,
                },
            )
            .unwrap();
            assert!(v.matches(), "{} diverged", kind.name());
        }
    }

    #[test]
    fn merged_halves_reproduce_the_original_capture() {
        let (bytes, outcome) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        let captured = CapturedTrace::read_from(&bytes[..]).unwrap();
        let total = captured.events.len();
        assert!(total > 10, "capture too small to split");

        // Split into standalone halves, then merge them back together.
        let halves: Vec<CapturedTrace> = [(0, total / 2), (total / 2, total - total / 2)]
            .into_iter()
            .map(|(start, count)| {
                let sink = SharedVec::default();
                slice_capture(&captured, start, count, sink.clone()).unwrap();
                CapturedTrace::read_from(&sink.take()[..]).unwrap()
            })
            .collect();
        let sink = SharedVec::default();
        let merged = merge_captures(&halves, sink.clone()).unwrap();

        // The merged footer is recomputed over the full concatenation, so
        // it matches the original capture exactly — and the merged trace
        // is a first-class replay artifact on any backend.
        assert_eq!(merged.summary, outcome.summary);
        assert_eq!(merged.state_digest, outcome.state_digest);
        let v = replay_file(
            &sink.take()[..],
            BackendKind::Sharded {
                shards: 4,
                workers: 1,
            },
        )
        .unwrap();
        assert!(v.matches(), "merged trace diverged: {v:?}");

        // Fewer than two inputs is a usage error, not a silent copy.
        assert!(merge_captures(&halves[..1], Vec::new()).is_err());
    }

    #[test]
    fn sliced_window_is_standalone_and_footer_valid() {
        let (bytes, _) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        let captured = CapturedTrace::read_from(&bytes[..]).unwrap();
        let total = captured.events.len();
        assert!(total > 10, "capture too small to slice");
        let (start, count) = (total / 4, total / 2);
        let sliced = slice_capture(&captured, start, count, Vec::new()).unwrap();
        assert_eq!(sliced.summary.events, count as u64);

        // Round-trip: the slice decodes, carries the original header, and
        // holds exactly the window's events.
        let mut bytes = Vec::new();
        slice_capture(&captured, start, count, &mut bytes).unwrap();
        let reread = CapturedTrace::read_from(&bytes[..]).unwrap();
        assert_eq!(reread.header, captured.header);
        assert_eq!(reread.events[..], captured.events[start..start + count]);
        assert_eq!(reread.summary, sliced.summary);

        // Footer-valid: a fresh replay verifies it on multiple backends.
        for kind in [
            BackendKind::Mono,
            BackendKind::Sharded {
                shards: 4,
                workers: 1,
            },
        ] {
            let v = replay_file(&bytes[..], kind).unwrap();
            assert!(v.matches(), "slice diverged on {}", kind.label());
        }

        // A mid-stream window serviced from pristine state produces
        // different responses than it did in context — exactly why the
        // footer is recomputed rather than copied.
        assert_ne!(
            sliced.summary.response_digest,
            captured.summary.response_digest
        );

        // Degenerate and out-of-range windows.
        let full = slice_capture(&captured, 0, total, Vec::new()).unwrap();
        assert_eq!(full.summary, captured.summary);
        assert!(matches!(
            slice_capture(&captured, total, 1, Vec::new()),
            Err(Error::TraceFormat(_))
        ));
        assert!(matches!(
            slice_capture(&captured, 0, total + 1, Vec::new()),
            Err(Error::TraceFormat(_))
        ));
    }

    #[test]
    fn diff_pinpoints_divergence_and_context() {
        let (bytes, _) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        let captured = CapturedTrace::read_from(&bytes[..]).unwrap();
        let mut mutated = captured.clone();
        let target = mutated.events.len() / 2;
        match &mut mutated.events[target] {
            TraceEvent::Request(req) => req.actor ^= 1,
            TraceEvent::Batch(reqs) => reqs.clear(),
            TraceEvent::Inject { row, .. } => *row ^= 1,
        }
        let mutated_bytes = impact_core::trace::write_trace(
            Vec::new(),
            &mutated.header,
            &mutated.events,
            &mutated.summary,
        )
        .unwrap();
        match diff_readers(&bytes[..], &mutated_bytes[..]).unwrap() {
            DiffOutcome::EventMismatch {
                index,
                left,
                right,
                context,
            } => {
                assert_eq!(index, target as u64);
                assert!(left.is_some() && right.is_some());
                assert!(context.len() <= 3);
                assert_eq!(
                    context.last(),
                    captured.events.get(target - 1),
                    "context must be the events before the divergence"
                );
            }
            other => panic!("expected EventMismatch, got {other:?}"),
        }
        assert_eq!(
            first_divergence(&captured.events, &mutated.events),
            Some(target as u64)
        );
        assert_eq!(first_divergence(&captured.events, &captured.events), None);
        // Length mismatch diverges at the shorter length.
        assert_eq!(
            first_divergence(&captured.events[..4], &captured.events),
            Some(4)
        );
    }

    #[test]
    fn stats_summarize_the_mix() {
        let (bytes, _) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        let (header, mix, summary) = trace_stats(&bytes[..]).unwrap();
        assert_eq!(header.label, "paper_table2");
        assert!(mix.loads > 0 && mix.stores > 0 && mix.pims > 0);
        assert!(mix.rowclones > 0 && mix.batches > 0);
        assert!(mix.injects > 0, "paper_table2 noise must inject");
        assert_eq!(mix.per_bank.len(), 16);
        assert!(summary.responses >= mix.loads + mix.stores);
    }

    #[test]
    fn trace_scenario_series_is_backend_invariant() {
        let (bytes, _) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        let captured = CapturedTrace::read_from(&bytes[..]).unwrap();
        let mono = TraceScenario::new(captured.clone(), BackendKind::Mono)
            .unwrap()
            .run();
        assert_eq!(mono.points.len(), 4);
        assert!(mono.points.iter().all(|&(_, y)| y > 0.0));
        for kind in [
            BackendKind::Sharded {
                shards: 4,
                workers: 1,
            },
            BackendKind::Traced,
        ] {
            let other = TraceScenario::new(captured.clone(), kind).unwrap().run();
            assert!(
                crate::runner::series_bits_eq(&mono, &other),
                "{} diverged",
                kind.label()
            );
        }
        // And the figure wrapper carries the mix note.
        let scenario = TraceScenario::new(captured, BackendKind::Mono).unwrap();
        let fig = trace_figure(&scenario, mono);
        assert_eq!(fig.id, "trace");
        assert!(fig.notes[0].contains("events"));
    }

    #[test]
    fn trace_scenario_rejects_unreplayable_captures() {
        use impact_core::addr::PhysAddr;
        use impact_core::engine::MemRequest;
        use impact_core::time::Cycles;
        let (bytes, _) = quick_capture(CaptureKind::Mix, BackendKind::Mono);

        // An out-of-range request must surface as an error from new(),
        // not a panic inside eval()/the sweep workers.
        let mut bad = CapturedTrace::read_from(&bytes[..]).unwrap();
        bad.events.push(TraceEvent::Request(MemRequest::load(
            PhysAddr(u64::MAX),
            Cycles(0),
            0,
        )));
        bad.summary.events += 1;
        assert!(TraceScenario::new(bad, BackendKind::Mono).is_err());

        // A footer that doesn't match the events (here: a silently dropped
        // tail) is rejected too.
        let mut short = CapturedTrace::read_from(&bytes[..]).unwrap();
        short.events.truncate(short.events.len() / 2);
        short.summary.events = short.events.len() as u64;
        assert!(matches!(
            TraceScenario::new(short, BackendKind::Mono),
            Err(Error::TraceFormat(msg)) if msg.contains("footer")
        ));
    }

    #[test]
    fn replay_rejects_unknown_labels() {
        let (bytes, _) = quick_capture(CaptureKind::Mix, BackendKind::Mono);
        let captured = CapturedTrace::read_from(&bytes[..]).unwrap();
        let mut bad = captured;
        bad.header.label = "mystery".into();
        let bad_bytes =
            impact_core::trace::write_trace(Vec::new(), &bad.header, &bad.events, &bad.summary)
                .unwrap();
        assert!(matches!(
            replay_file(&bad_bytes[..], BackendKind::Mono),
            Err(Error::TraceFormat(_))
        ));
        // A label that resolves to a *different* config is caught by the
        // fingerprint.
        let mut wrong = CapturedTrace::read_from(&bytes[..]).unwrap();
        wrong.header.label = "paper_table2_noiseless".into();
        let wrong_bytes = impact_core::trace::write_trace(
            Vec::new(),
            &wrong.header,
            &wrong.events,
            &wrong.summary,
        )
        .unwrap();
        assert!(matches!(
            replay_file(&wrong_bytes[..], BackendKind::Mono),
            Err(Error::TraceConfigMismatch { .. })
        ));
    }
}
