//! The hot-path benchmark inventory: the memctrl/system micro-benchmarks
//! whose trajectory is recorded in the committed `BENCH_hotpath.json`.
//!
//! These are the benches that measure the simulator's innermost loops —
//! `MemoryController::service_batch`, the sharded dispatch paths, and the
//! `System` front door — i.e. the ones every perf PR moves. They are
//! defined here, in the library, so two harnesses can share them:
//!
//! * `benches/substrate.rs` registers them alongside the wider substrate
//!   suite for interactive `cargo bench` runs;
//! * the `bench_record` binary runs exactly this inventory and writes the
//!   results into `BENCH_hotpath.json` (and, in CI's quick mode, checks
//!   that the recorded key set still matches the code).
//!
//! Keep the bench ids stable: they are the keys of the committed JSON, and
//! the CI bench-smoke step fails when the sets drift apart (renaming a
//! bench without re-recording the file, or recording stale names).

use criterion::{black_box, Criterion};
use impact_attacks::side_channel::{SideChannelAttack, SideChannelConfig};
use impact_core::config::SystemConfig;
use impact_core::engine::{MemRequest, MemoryBackend};
use impact_core::snapshot::Snapshot;
use impact_core::time::Cycles;
use impact_memctrl::{MemoryController, ShardedController};
use impact_sim::System;

/// The batched request path vs per-request servicing: the baseline perf
/// PRs report speedups against. A 64-request stream alternating over rows
/// in a handful of banks, issued either one `service` call at a time or
/// through one amortized `service_batch`.
pub fn register_memctrl_batch(c: &mut Criterion) {
    let cfg = SystemConfig::paper_table2();
    let make_reqs = |mc: &MemoryController| -> Vec<MemRequest> {
        (0..64u64)
            .map(|i| {
                let addr = mc.mapping().compose((i % 4) as usize, (i / 2) % 8, 0);
                MemRequest::load(addr, Cycles(i * 400), 0)
            })
            .collect()
    };
    c.bench_function("memctrl/service_per_request_64", |b| {
        let mut mc = MemoryController::from_config(&cfg);
        let reqs = make_reqs(&mc);
        b.iter(|| {
            reqs.iter()
                .map(|r| mc.service(r).expect("service").latency.0)
                .sum::<u64>()
        });
    });
    c.bench_function("memctrl/service_batch_64", |b| {
        let mut mc = MemoryController::from_config(&cfg);
        let reqs = make_reqs(&mc);
        b.iter(|| {
            mc.service_batch(&reqs)
                .expect("batch")
                .iter()
                .map(|r| r.latency.0)
                .sum::<u64>()
        });
    });
    // The sharded controller over the same 64-request batch — compare
    // against `memctrl/service_batch_64` (same stream, monolithic
    // controller) for the sharding overhead/benefit.
    c.bench_function("memctrl/sharded_vs_mono_64", |b| {
        let mut sc = ShardedController::from_config(&cfg, 4);
        let probe = MemoryController::from_config(&cfg);
        let reqs = make_reqs(&probe);
        b.iter(|| {
            MemoryBackend::service_batch(&mut sc, &reqs)
                .expect("batch")
                .iter()
                .map(|r| r.latency.0)
                .sum::<u64>()
        });
    });
}

/// Parallel shard servicing vs the sequential sharded path vs the
/// monolithic controller, at init-sweep batch sizes (one request per
/// bank, the side-channel initialization shape). The 64-request point
/// sits below the adaptive threshold, so `sharded:8:4` falls back to the
/// sequential path there by design — routing overhead is the whole cost;
/// the 1024/8192-request points are where the pool is expected to pay.
pub fn register_sharded_parallel(c: &mut Criterion) {
    for (banks, size) in [(16u32, 64usize), (1024, 1024), (8192, 8192)] {
        let cfg = if banks == 16 {
            SystemConfig::paper_table2()
        } else {
            SystemConfig::paper_table2_noiseless().with_total_banks(banks)
        };
        let probe = MemoryController::from_config(&cfg);
        let reqs: Vec<MemRequest> = (0..size)
            .map(|i| {
                let bank = i % banks as usize;
                let row = ((i / banks as usize) % 8) as u64;
                let addr = probe.mapping().compose(bank, row, 0);
                MemRequest::load(addr, Cycles(i as u64 * 400), 0)
            })
            .collect();
        let sum = |resps: Vec<impact_core::engine::MemResponse>| {
            resps.iter().map(|r| r.latency.0).sum::<u64>()
        };
        c.bench_function(&format!("memctrl/mono_batch_{size}"), |b| {
            let mut mc = MemoryController::from_config(&cfg);
            b.iter(|| sum(mc.service_batch(&reqs).expect("batch")));
        });
        c.bench_function(&format!("memctrl/sharded_seq_batch_{size}"), |b| {
            let mut sc = ShardedController::from_config(&cfg, 8);
            b.iter(|| sum(MemoryBackend::service_batch(&mut sc, &reqs).expect("batch")));
        });
        c.bench_function(&format!("memctrl/sharded_parallel_vs_mono_{size}"), |b| {
            let mut sc = ShardedController::from_config_parallel(&cfg, 8, 4);
            b.iter(|| sum(MemoryBackend::service_batch(&mut sc, &reqs).expect("batch")));
        });
    }
}

/// The `System` front door: direct PIM ops, cached loads, and the tight
/// uncached probe loop every attack hot path reduces to,
/// request-at-a-time vs one batched burst.
pub fn register_system(c: &mut Criterion) {
    c.bench_function("system/pim_op_direct", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 0).expect("alloc");
        sys.warm_tlb(a, row, 2);
        b.iter(|| sys.pim_op_direct(a, row).expect("pim").latency);
    });
    c.bench_function("system/load_through_caches", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 1).expect("alloc");
        sys.warm_tlb(a, row, 2);
        b.iter(|| sys.load(a, row).expect("load").latency);
    });
    c.bench_function("system/load_direct_loop_64", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 2).expect("alloc");
        sys.warm_tlb(a, row, 2);
        let vas: Vec<_> = (0..64u64).map(|i| row + (i % 128) * 64).collect();
        b.iter(|| {
            vas.iter()
                .map(|&va| sys.load_direct(a, va).expect("load").latency.0)
                .sum::<u64>()
        });
    });
    c.bench_function("system/load_direct_batch_64", |b| {
        let mut sys = System::new(SystemConfig::paper_table2_noiseless());
        let a = sys.spawn_agent();
        let row = sys.alloc_row_in_bank(a, 2).expect("alloc");
        sys.warm_tlb(a, row, 2);
        let vas: Vec<_> = (0..64u64).map(|i| row + (i % 128) * 64).collect();
        b.iter(|| {
            sys.load_direct_batch(a, &vas)
                .expect("batch")
                .iter()
                .map(|i| i.latency.0)
                .sum::<u64>()
        });
    });
}

/// The copy-on-write fork payoff at sweep granularity: obtaining a warmed
/// side-channel engine from scratch (`System::new` + the full
/// `SideChannelAttack::init` prefix — genome/index synthesis, agent
/// spawning, the bank row-opening sweep, clock sync) vs forking a parent
/// that ran the identical prefix once, outside the timed loop. The fork
/// is O(metadata) — Arc clones of the bank SoA, cache arrays and page
/// tables — so `side_channel_init_fork` must stay well under a fifth of
/// `side_channel_init_scratch`.
pub fn register_snapshot_fork(c: &mut Criterion) {
    let cfg = SystemConfig::paper_table2_noiseless();
    let attack = SideChannelAttack::new(SideChannelConfig {
        reads: 20,
        ..SideChannelConfig::default()
    });
    c.bench_function("attacks/side_channel_init_scratch", |b| {
        b.iter(|| {
            let mut sys = System::new(cfg.clone());
            let init = attack.init(&mut sys).expect("init");
            black_box((sys, init))
        });
    });
    c.bench_function("attacks/side_channel_init_fork", |b| {
        let mut parent = System::new(cfg.clone());
        let init = attack.init(&mut parent).expect("init");
        b.iter(|| black_box(parent.fork()));
        black_box(init);
    });
}

/// Registers the complete recorded inventory, in the order the committed
/// `BENCH_hotpath.json` lists it.
pub fn register_all(c: &mut Criterion) {
    register_memctrl_batch(c);
    register_sharded_parallel(c);
    register_system(c);
    register_snapshot_fork(c);
}
