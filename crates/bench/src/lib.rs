//! Experiment harness regenerating every table and figure of the IMPACT
//! paper's evaluation.
//!
//! Each experiment in [`experiments`] is a pure function returning a
//! structured [`series::Figure`]; the `fig_all` binary renders them as
//! text/CSV. Sweep-style experiments are expressed as [`runner::Scenario`]s
//! and executed by the [`runner::SweepRunner`], which fans sweep points out
//! across worker threads with bit-identical results to the serial path.
//! The per-experiment index lives in DESIGN.md; measured-vs-paper numbers
//! are recorded in EXPERIMENTS.md.
//!
//! | Experiment | Paper artifact |
//! |---|---|
//! | [`experiments::delta`] | §3.1 row-buffer hit/conflict microbenchmark |
//! | [`experiments::table1`] | Table 1 attack-primitive matrix |
//! | [`experiments::table2`] | Table 2 simulated system configuration |
//! | [`experiments::fig2`] | Fig. 2 LLC-size sweep |
//! | [`experiments::fig3`] | Fig. 3 LLC-associativity sweep |
//! | [`experiments::fig8`] | Fig. 8 PnM/PuM proof-of-concept latencies |
//! | [`experiments::fig9`] | Fig. 9 covert-channel throughput comparison |
//! | [`experiments::fig10`] | Fig. 10 sender/receiver breakdown |
//! | [`experiments::fig11`] | Fig. 11 side-channel bank sweep |
//! | [`experiments::fig12`] | Fig. 12 defense overheads |
//! | [`experiments::ablations`] | DESIGN.md §4 ablation studies |

pub mod experiments;
pub mod hotpath;
pub mod record;
pub mod runner;
pub mod series;
pub mod trace_tools;

pub use runner::{Scenario, SweepRunner};
pub use series::{Figure, Series};
pub use trace_tools::TraceScenario;
