//! Tables 1 and 2 as experiments.

use impact_attacks::primitives;
use impact_core::config::SystemConfig;

use crate::{Figure, Series};

/// Table 1: the attack-primitive property matrix, encoded as 0/1/NaN
/// series (yes = 1, no = 0, n/a = NaN) plus the rendered text in notes.
#[must_use]
pub fn table1() -> Figure {
    use impact_attacks::primitives::Property;
    let to_y = |p: Property| match p {
        Property::Yes => 1.0,
        Property::No => 0.0,
        Property::NotApplicable => f64::NAN,
    };
    let rows = primitives::table1();
    let mut fig = Figure::new(
        "table1",
        "Efficiency and effectiveness of attack primitives",
        "property (0=NoCacheLookup 1=NoExcessMem 2=TimingDetect 3=ISA)",
        "yes=1 / no=0 / n-a=NaN",
    );
    for row in rows {
        fig = fig.with_series(Series::new(
            row.name,
            vec![
                (0.0, to_y(row.no_cache_lookup)),
                (1.0, to_y(row.no_excessive_memory_accesses)),
                (2.0, to_y(row.timing_difference_detectability)),
                (3.0, to_y(row.isa_guarantees)),
            ],
        ));
    }
    for line in primitives::render_table1().lines() {
        fig = fig.with_note(line.to_string());
    }
    fig
}

/// Table 2: the simulated system configuration, rendered into notes.
#[must_use]
pub fn table2() -> Figure {
    let cfg = SystemConfig::paper_table2();
    let mut fig = Figure::new("table2", "Simulated system configuration", "-", "-");
    fig = fig
        .with_note(format!(
            "CPU: {}-core OoO x86 @ {} GHz",
            cfg.cores,
            cfg.clock.freq_ghz()
        ))
        .with_note(format!(
            "L1D: {} KB {}-way, {} cycles",
            cfg.l1d.size_bytes / 1024,
            cfg.l1d.ways,
            cfg.l1d.latency_cycles
        ))
        .with_note(format!(
            "L2: {} MB {}-way SRRIP, {} cycles",
            cfg.l2.size_bytes >> 20,
            cfg.l2.ways,
            cfg.l2.latency_cycles
        ))
        .with_note(format!(
            "L3: {} MB {}-way SRRIP ({} MB/core), {} cycles",
            cfg.l3.size_bytes >> 20,
            cfg.l3.ways,
            (cfg.l3.size_bytes >> 20) / u64::from(cfg.cores),
            cfg.l3.latency_cycles
        ))
        .with_note(format!(
            "TLB: L1 {}-entry / L2 {}-entry, walk {} cycles",
            cfg.tlb.l1_entries, cfg.tlb.l2_entries, cfg.tlb.walk_latency_cycles
        ))
        .with_note(format!(
            "DRAM: DDR4-2400, {} banks in {} groups, {} B rows, tRCD={} ns tRP={} ns, open-row policy",
            cfg.dram_geometry.total_banks(),
            cfg.dram_geometry.bank_groups_per_rank,
            cfg.dram_geometry.row_bytes,
            cfg.dram_timing.t_rcd_ns,
            cfg.dram_timing.t_rp_ns
        ))
        .with_note(format!(
            "PEI: {}-cycle overhead, {} locality-monitor entries",
            cfg.pim.pei_overhead_cycles, cfg.pim.locality_monitor_entries
        ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pim_row_all_ones() {
        let f = table1();
        let pim = f.series_named("PiM Operations").unwrap();
        for x in 0..4 {
            assert_eq!(pim.y_at(f64::from(x)), Some(1.0));
        }
    }

    #[test]
    fn table2_mentions_key_parameters() {
        let f = table2();
        let all = f.notes.join("\n");
        assert!(all.contains("2.6 GHz"));
        assert!(all.contains("16 banks"));
        assert!(all.contains("DDR4-2400"));
        assert!(all.contains("13.5 ns"));
    }
}
