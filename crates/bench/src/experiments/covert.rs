//! Covert-channel experiments: Fig. 8 (proof of concept), Fig. 9
//! (throughput comparison) and Fig. 10 (sender/receiver breakdown).

use impact_attacks::baseline::{BaselineChannel, BaselinePrimitive};
use impact_attacks::channel::message_from_str;
use impact_attacks::{PnmCovertChannel, PumCovertChannel};
use impact_core::config::SystemConfig;
use impact_core::rng::SimRng;
use impact_sim::BackendKind;

use crate::{Figure, Series};

/// Fig. 8: receiver-measured latency per bank for a 16-bit message on
/// IMPACT-PnM (a) and IMPACT-PuM (b), decoded with the 150-cycle threshold.
#[must_use]
pub fn fig8() -> Figure {
    fig8_on(BackendKind::Mono)
}

/// [`fig8`] on an explicit memory backend.
#[must_use]
pub fn fig8_on(backend: BackendKind) -> Figure {
    let mut fig = Figure::new(
        "fig8",
        "PoC: receiver latency per transmitted bit (16 banks)",
        "bank",
        "cycles measured by receiver",
    )
    .with_note("decode threshold: 150 cycles (paper §6.1)")
    .with_note("paper messages: PnM 1110010011100100, PuM 0001101100011011");

    // (a) IMPACT-PnM.
    let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
    let mut pnm = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
    pnm.set_trace(true);
    let msg = message_from_str("1110010011100100");
    let r = pnm.transmit(&mut sys, &msg).expect("transmit");
    fig = fig.with_series(Series::new(
        "IMPACT-PnM (cycles)",
        r.observations
            .iter()
            .map(|o| (o.bank as f64, o.measured as f64))
            .collect(),
    ));
    fig = fig.with_note(format!("PnM bit errors: {}", r.bit_errors));

    // (b) IMPACT-PuM.
    let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
    let mut pum = PumCovertChannel::setup(&mut sys, 16).expect("setup");
    pum.set_trace(true);
    let msg = message_from_str("0001101100011011");
    let r = pum.transmit(&mut sys, &msg).expect("transmit");
    fig = fig.with_series(Series::new(
        "IMPACT-PuM (cycles)",
        r.observations
            .iter()
            .map(|o| (o.bank as f64, o.measured as f64))
            .collect(),
    ));
    fig.with_note(format!("PuM bit errors: {}", r.bit_errors))
}

/// Fig. 9: leakage throughput of all five attacks across LLC sizes
/// (1–128 MB), with the paper's noise sources enabled.
#[must_use]
pub fn fig9(message_bits: usize) -> Figure {
    fig9_on(BackendKind::Mono, message_bits)
}

/// [`fig9`] on an explicit memory backend.
#[must_use]
pub fn fig9_on(backend: BackendKind, message_bits: usize) -> Figure {
    fig9_with(backend, message_bits, false)
}

/// [`fig9_on`] with an explicit fork-sweep mode: when `fork_sweeps` is
/// set, the IMPACT-PnM/PuM points run channel setup (allocation, bank
/// mapping, warm-up) on a parent engine and transmit on a copy-on-write
/// fork of it — the init-once/transmit-from-fork split, with bit-identical
/// figure output. The DRAMA/DMA baselines are not PiM channels and run
/// unforked.
#[must_use]
pub fn fig9_with(backend: BackendKind, message_bits: usize, fork_sweeps: bool) -> Figure {
    use impact_core::snapshot::Snapshot;
    let sizes_mb = [1u64, 2, 4, 8, 16, 32, 64, 128];
    let message = SimRng::seed(0xF19).bits(message_bits);

    let mut series: Vec<(String, Vec<(f64, f64)>)> = [
        "DRAMA-clflush",
        "DRAMA-Eviction",
        "DMA Engine",
        "IMPACT-PnM",
        "IMPACT-PuM",
    ]
    .iter()
    .map(|n| ((*n).to_string(), Vec::new()))
    .collect();

    for &mb in &sizes_mb {
        let cfg = SystemConfig::paper_table2().with_llc_size(mb << 20);
        let x = mb as f64;

        for (primitive, idx) in [
            (BaselinePrimitive::Clflush, 0usize),
            (BaselinePrimitive::Eviction, 1),
            (BaselinePrimitive::Dma, 2),
        ] {
            let mut sys = backend.system(cfg.clone());
            let mut ch = BaselineChannel::setup(&mut sys, primitive).expect("setup");
            let r = ch.transmit(&mut sys, &message).expect("transmit");
            series[idx].1.push((x, r.goodput_mbps(cfg.clock)));
        }

        let mut sys = backend.system(cfg.clone());
        let mut pnm = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
        let r = if fork_sweeps {
            pnm.transmit(&mut sys.fork(), &message).expect("transmit")
        } else {
            pnm.transmit(&mut sys, &message).expect("transmit")
        };
        series[3].1.push((x, r.goodput_mbps(cfg.clock)));

        let mut sys = backend.system(cfg.clone());
        let mut pum = PumCovertChannel::setup(&mut sys, 16).expect("setup");
        let r = if fork_sweeps {
            pum.transmit(&mut sys.fork(), &message).expect("transmit")
        } else {
            pum.transmit(&mut sys, &message).expect("transmit")
        };
        series[4].1.push((x, r.goodput_mbps(cfg.clock)));
    }

    let mut fig = Figure::new(
        "fig9",
        "Leakage throughput of IMPACT vs state-of-the-art covert channels",
        "LLC size (MB)",
        "leakage throughput (Mb/s)",
    )
    .with_note("paper: PnM 8.2 Mb/s, PuM 14.8 Mb/s, both LLC-independent")
    .with_note("paper: DRAMA-clflush up to 2.29 Mb/s declining; DMA 0.81 Mb/s flat");
    for (name, pts) in series {
        fig = fig.with_series(Series::new(name, pts));
    }
    fig
}

/// Fig. 10: cycles spent in the sender and receiver routines to exchange a
/// 16-bit message (one batch) in IMPACT-PnM vs IMPACT-PuM.
#[must_use]
pub fn fig10() -> Figure {
    fig10_on(BackendKind::Mono)
}

/// [`fig10`] on an explicit memory backend.
#[must_use]
pub fn fig10_on(backend: BackendKind) -> Figure {
    // Use an all-ones message so the sender cost reflects a full batch of
    // transmissions (the paper's worst-case sender work).
    let message = vec![true; 16];

    let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
    let mut pnm = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
    let pnm_r = pnm.transmit(&mut sys, &message).expect("transmit");

    let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
    let mut pum = PumCovertChannel::setup(&mut sys, 16).expect("setup");
    let pum_r = pum.transmit(&mut sys, &message).expect("transmit");

    let ratio = pnm_r.sender_cycles.as_f64() / pum_r.sender_cycles.as_f64().max(1.0);
    Figure::new(
        "fig10",
        "Sender/receiver cycles for a 16-bit message",
        "attack (0 = PnM, 1 = PuM)",
        "cycles",
    )
    .with_series(Series::new(
        "Sender",
        vec![
            (0.0, pnm_r.sender_cycles.as_f64()),
            (1.0, pum_r.sender_cycles.as_f64()),
        ],
    ))
    .with_series(Series::new(
        "Receiver",
        vec![
            (0.0, pnm_r.receiver_cycles.as_f64()),
            (1.0, pum_r.receiver_cycles.as_f64()),
        ],
    ))
    .with_note(format!(
        "PnM sender / PuM sender = {ratio:.1}x (paper: 11.1x)"
    ))
    .with_note("receivers spend similar time: both probe every bank")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_separates_bits() {
        let f = fig8();
        for name in ["IMPACT-PnM (cycles)", "IMPACT-PuM (cycles)"] {
            let s = f.series_named(name).unwrap();
            assert_eq!(s.points.len(), 16);
            let (above, below): (Vec<f64>, Vec<f64>) =
                s.points.iter().map(|(_, y)| *y).partition(|&y| y > 150.0);
            assert!(!above.is_empty() && !below.is_empty(), "{name} degenerate");
        }
        // Error notes report zero errors.
        assert!(f.notes.iter().any(|n| n == "PnM bit errors: 0"));
        assert!(f.notes.iter().any(|n| n == "PuM bit errors: 0"));
    }

    #[test]
    fn fig9_ordering_holds() {
        let f = fig9(512);
        let at = |name: &str, x: f64| f.series_named(name).unwrap().y_at(x).unwrap();
        for &x in &[1.0, 8.0, 128.0] {
            assert!(
                at("IMPACT-PuM", x) > at("IMPACT-PnM", x),
                "PuM !> PnM at {x} MB"
            );
            assert!(
                at("IMPACT-PnM", x) > at("DRAMA-clflush", x) * 2.0,
                "PnM !>> clflush at {x} MB"
            );
            assert!(at("DRAMA-clflush", x) > at("DMA Engine", x) * 0.8);
        }
        // DRAMA declines with LLC size; IMPACT does not.
        assert!(at("DRAMA-clflush", 1.0) > at("DRAMA-clflush", 128.0) * 1.3);
        let pnm_small = at("IMPACT-PnM", 1.0);
        let pnm_big = at("IMPACT-PnM", 128.0);
        assert!((pnm_small - pnm_big).abs() / pnm_small < 0.15);
    }

    #[test]
    fn fig10_sender_asymmetry() {
        let f = fig10();
        let sender = f.series_named("Sender").unwrap();
        let receiver = f.series_named("Receiver").unwrap();
        let pnm_s = sender.y_at(0.0).unwrap();
        let pum_s = sender.y_at(1.0).unwrap();
        assert!(pnm_s > 6.0 * pum_s, "sender ratio {:.1}", pnm_s / pum_s);
        // Receivers comparable (within 40%).
        let pnm_r = receiver.y_at(0.0).unwrap();
        let pum_r = receiver.y_at(1.0).unwrap();
        assert!((pnm_r - pum_r).abs() / pnm_r < 0.4);
    }
}
