//! §8.4 extension: applicability to future DRAM devices.
//!
//! The paper argues that newer DRAM generations with more banks *increase*
//! IMPACT's covert-channel throughput, because the attack gains bank-level
//! parallelism. This experiment verifies the claim by scaling the device's
//! bank count and re-running both IMPACT variants with a matching batch
//! size (PuM capped at the 64-bank RowClone mask width).

use impact_attacks::{PnmCovertChannel, PumCovertChannel};
use impact_core::config::SystemConfig;
use impact_core::rng::SimRng;
use impact_memctrl::PeriodicBlock;
use impact_sim::BackendKind;

use crate::{Figure, Series};

/// Covert-channel throughput on devices with 16–256 banks.
#[must_use]
pub fn future_banks(message_bits: usize) -> Figure {
    future_banks_on(BackendKind::Mono, message_bits)
}

/// [`future_banks`] on an explicit memory backend.
#[must_use]
pub fn future_banks_on(backend: BackendKind, message_bits: usize) -> Figure {
    let message = SimRng::seed(0x84).bits(message_bits);
    let clock = SystemConfig::paper_table2().clock;
    let mut pnm_pts = Vec::new();
    let mut pum_pts = Vec::new();
    for banks in [16u32, 32, 64, 128, 256] {
        let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(banks);
        let mut sys = backend.system(cfg.clone());
        let mut pnm = PnmCovertChannel::setup(&mut sys, banks as usize).expect("setup");
        let r = pnm.transmit(&mut sys, &message).expect("transmit");
        pnm_pts.push((f64::from(banks), r.goodput_mbps(clock)));

        let pum_banks = banks.min(64) as usize; // mask width limit
        let mut sys = backend.system(cfg);
        let mut pum = PumCovertChannel::setup(&mut sys, pum_banks).expect("setup");
        let r = pum.transmit(&mut sys, &message).expect("transmit");
        pum_pts.push((f64::from(banks), r.goodput_mbps(clock)));
    }
    Figure::new(
        "future_banks",
        "§8.4 extension: covert throughput on future many-bank devices",
        "DRAM banks",
        "goodput (Mb/s)",
    )
    .with_series(Series::new("IMPACT-PnM", pnm_pts))
    .with_series(Series::new("IMPACT-PuM (<=64-bank mask)", pum_pts))
    .with_note("paper §8.4: more banks -> more parallelism -> higher IMPACT throughput")
    .with_note("PuM gains directly (one masked request covers the batch) until the 64-bit mask saturates")
    .with_note("PnM gains only from per-batch sync amortization: its sender issues blocking PEIs bit by bit")
}

/// §8.4 extension: RowHammer-mitigation pauses (RFM/PRAC) as a noise
/// source, and the paper's claim that the receiver can filter them out
/// because one preventive action costs >=350 ns — far above the 74-cycle
/// conflict delta.
///
/// Three configurations: no mitigation, mitigation without filtering, and
/// mitigation with the receiver subtracting the known pause cost.
#[must_use]
pub fn rfm_filtering(message_bits: usize) -> Figure {
    rfm_filtering_on(BackendKind::Mono, message_bits)
}

/// [`rfm_filtering`] on an explicit memory backend.
#[must_use]
pub fn rfm_filtering_on(backend: BackendKind, message_bits: usize) -> Figure {
    let message = SimRng::seed(0x8F4).bits(message_bits);
    let clock = SystemConfig::paper_table2().clock;
    let block = PeriodicBlock::rfm_paper_default();
    let mut goodput = Vec::new();
    let mut errors = Vec::new();
    for (x, rfm_on, filter) in [(0.0, false, false), (1.0, true, false), (2.0, true, true)] {
        let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
        if rfm_on {
            sys.set_periodic_block(Some(block));
        }
        let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
        if filter {
            // One preventive action adds `block` cycles: anything above
            // conflict + half a block must contain one.
            ch.set_rfm_filter(Some((400, block.block.0)));
        }
        let r = ch.transmit(&mut sys, &message).expect("transmit");
        goodput.push((x, r.goodput_mbps(clock)));
        errors.push((x, r.error_rate() * 100.0));
    }
    Figure::new(
        "rfm",
        "§8.4 extension: RFM/PRAC pauses and receiver-side filtering",
        "config (0=no RFM, 1=RFM unfiltered, 2=RFM filtered)",
        "Mb/s / %",
    )
    .with_series(Series::new("PnM goodput (Mb/s)", goodput))
    .with_series(Series::new("PnM error rate (%)", errors))
    .with_note(
        "paper §8.4: preventive actions cost >=350 ns and 'can be filtered out by the receiver'",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfm_filtering_restores_the_channel() {
        let f = rfm_filtering(1024);
        let err = f.series_named("PnM error rate (%)").unwrap();
        let clean = err.y_at(0.0).unwrap();
        let unfiltered = err.y_at(1.0).unwrap();
        let filtered = err.y_at(2.0).unwrap();
        assert_eq!(clean, 0.0);
        assert!(unfiltered > 1.0, "RFM caused no errors: {unfiltered:.2}%");
        assert!(
            filtered < unfiltered / 2.0,
            "filtering ineffective: {unfiltered:.2}% -> {filtered:.2}%"
        );
    }

    #[test]
    fn more_banks_increase_throughput() {
        let f = future_banks(1024);
        // PuM scales with bank parallelism up to the mask width (§8.4).
        let pum = f.series_named("IMPACT-PuM (<=64-bank mask)").unwrap();
        assert!(pum.y_at(64.0).unwrap() > pum.y_at(16.0).unwrap() * 1.1);
        // Mask-width saturation: 128/256 banks no better than 64.
        let at64 = pum.y_at(64.0).unwrap();
        let at256 = pum.y_at(256.0).unwrap();
        assert!(
            (at256 - at64).abs() / at64 < 0.1,
            "PuM kept scaling past mask"
        );
        // PnM's serial sender bounds its gain to sync amortization; it
        // must still improve slightly up to 64 banks and stay stable.
        let pnm = f.series_named("IMPACT-PnM").unwrap();
        assert!(pnm.y_at(64.0).unwrap() > pnm.y_at(16.0).unwrap());
        assert!(pnm.y_at(256.0).unwrap() > pnm.y_at(16.0).unwrap() * 0.9);
    }
}
