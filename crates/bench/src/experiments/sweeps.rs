//! §3 motivation experiments: the row-buffer timing delta (§3.1) and the
//! LLC size/associativity sweeps (Figs. 2 and 3).

use impact_cache::cacti;
use impact_core::config::SystemConfig;
use impact_core::time::Cycles;
use impact_dram::RowBufferKind;
use impact_sim::System;

use crate::{Figure, Series};

/// Average DRAM access latency (controller + conflict-dominated probe)
/// used by the analytic Fig. 2/3 model, in cycles.
const MEM_PROBE: f64 = 227.0;
/// Fixed per-bit protocol overhead of the baseline attack (encode, decode,
/// loop) in the analytic model.
const BASELINE_OVERHEAD: f64 = 190.0;
/// Per-bit cost of the idealized direct-memory-access attack: one probe
/// plus loop overhead, chosen so the §3.3 11.27 Mb/s figure reproduces.
const DIRECT_BIT: f64 = 231.0;

/// CPU frequency in cycles/second for Mb/s conversion.
const FREQ: f64 = 2.6e9;

fn mbps(bit_cycles: f64) -> f64 {
    FREQ / bit_cycles / 1e6
}

/// §3.1: measures the row-buffer hit vs conflict delta with a
/// microbenchmark on the simulated system. The paper reports 74 cycles at
/// 2.6 GHz.
#[must_use]
pub fn delta() -> Figure {
    let mut sys = System::new(SystemConfig::paper_table2_noiseless());
    let agent = sys.spawn_agent();
    let row_a = sys.alloc_row_in_bank(agent, 0).expect("allocation");
    let row_b = sys.alloc_row_in_bank(agent, 0).expect("allocation");
    sys.warm_tlb(agent, row_a, 2);
    sys.warm_tlb(agent, row_b, 2);

    // Open row A, measure a hit, then measure the conflict on row B.
    sys.load_direct(agent, row_a).expect("open");
    let hit = sys.load_direct(agent, row_a + 64).expect("hit");
    assert_eq!(hit.kind, Some(RowBufferKind::Hit));
    let conflict = sys.load_direct(agent, row_b).expect("conflict");
    assert_eq!(conflict.kind, Some(RowBufferKind::Conflict));
    let delta = conflict.latency - hit.latency;

    Figure::new(
        "delta",
        "Row-buffer conflict vs hit latency delta (§3.1)",
        "measurement",
        "cycles",
    )
    .with_series(Series::new(
        "latency",
        vec![
            (0.0, hit.latency.as_f64()),
            (1.0, conflict.latency.as_f64()),
            (2.0, delta.as_f64()),
        ],
    ))
    .with_note("x=0: hit latency, x=1: conflict latency, x=2: delta")
    .with_note(format!(
        "measured delta = {} cycles; paper reports 74 cycles at 2.6 GHz",
        delta.0
    ))
}

/// Fig. 2: impact of LLC size (4–128 MB, 16 ways) on the baseline
/// (eviction-set) and direct-memory-access covert channels, plus the
/// eviction latency (right axis).
#[must_use]
pub fn fig2() -> Figure {
    let sizes_mb = [4u64, 8, 16, 32, 64, 128];
    let mut baseline = Vec::new();
    let mut direct = Vec::new();
    let mut evict = Vec::new();
    for &mb in &sizes_mb {
        let e = cacti::eviction_latency(mb << 20, 16, Cycles(206)).as_f64();
        let bit = e + MEM_PROBE + BASELINE_OVERHEAD;
        baseline.push((mb as f64, mbps(bit)));
        direct.push((mb as f64, mbps(DIRECT_BIT)));
        evict.push((mb as f64, e));
    }
    Figure::new(
        "fig2",
        "Covert-channel throughput and eviction latency vs LLC size",
        "LLC size (MB)",
        "Mb/s (throughput) / cycles (eviction latency)",
    )
    .with_series(Series::new("Baseline Attack (Mb/s)", baseline))
    .with_series(Series::new("Direct Memory Access Attack (Mb/s)", direct))
    .with_series(Series::new("Eviction Latency (cycles)", evict))
    .with_note("paper: direct access 11.27 Mb/s flat; baseline up to 2.29 Mb/s, declining")
    .with_note("real-CPU markers: i9-9900K 16MB, Ryzen 9 5900 64MB, EPYC 7513 128MB")
}

/// Fig. 3: impact of LLC associativity (2–128 ways, 16 MB) on the same
/// quantities.
#[must_use]
pub fn fig3() -> Figure {
    let ways = [2u32, 4, 8, 16, 32, 64, 128];
    let mut baseline = Vec::new();
    let mut direct = Vec::new();
    let mut evict = Vec::new();
    for &w in &ways {
        let e = cacti::eviction_latency(16 << 20, w, Cycles(206)).as_f64();
        let bit = e + MEM_PROBE + BASELINE_OVERHEAD;
        baseline.push((f64::from(w), mbps(bit)));
        direct.push((f64::from(w), mbps(DIRECT_BIT)));
        evict.push((f64::from(w), e));
    }
    Figure::new(
        "fig3",
        "Covert-channel throughput and eviction latency vs LLC ways",
        "LLC ways",
        "Mb/s (throughput) / cycles (eviction latency)",
    )
    .with_series(Series::new("Baseline Attack (Mb/s)", baseline))
    .with_series(Series::new("Direct Memory Access Attack (Mb/s)", direct))
    .with_series(Series::new("Eviction Latency (cycles)", evict))
    .with_note("paper: eviction latency reaches ~23K cycles at 128 ways")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_paper_value() {
        let f = delta();
        let s = f.series_named("latency").unwrap();
        assert_eq!(s.y_at(2.0), Some(74.0));
    }

    #[test]
    fn fig2_shapes() {
        let f = fig2();
        let base = f.series_named("Baseline Attack (Mb/s)").unwrap();
        let direct = f
            .series_named("Direct Memory Access Attack (Mb/s)")
            .unwrap();
        // Baseline at 4 MB near the paper's 2.29 Mb/s peak.
        let peak = base.y_at(4.0).unwrap();
        assert!((2.0..=2.6).contains(&peak), "baseline peak {peak:.2}");
        // Declines with size.
        assert!(base.y_at(128.0).unwrap() < peak / 3.0);
        // Direct access ~11.27 Mb/s, flat.
        let d = direct.y_at(4.0).unwrap();
        assert!((11.0..=11.6).contains(&d), "direct {d:.2}");
        assert_eq!(direct.y_at(4.0), direct.y_at(128.0));
    }

    #[test]
    fn fig3_shapes() {
        let f = fig3();
        let evict = f.series_named("Eviction Latency (cycles)").unwrap();
        let hi = evict.y_at(128.0).unwrap();
        assert!((18_000.0..=26_000.0).contains(&hi), "128-way eviction {hi}");
        let base = f.series_named("Baseline Attack (Mb/s)").unwrap();
        assert!(base.y_at(2.0).unwrap() > base.y_at(128.0).unwrap() * 5.0);
    }
}
