//! §3 motivation experiments: the row-buffer timing delta (§3.1) and the
//! LLC size/associativity sweeps (Figs. 2 and 3), the latter expressed as
//! [`Scenario`]s and executed by the parallel [`SweepRunner`].

use impact_cache::cacti;
use impact_core::config::SystemConfig;
use impact_core::rng::SimRng;
use impact_core::time::Cycles;
use impact_dram::RowBufferKind;
use impact_sim::BackendKind;

use crate::runner::{Scenario, SweepRunner};
use crate::{Figure, Series};

/// Average DRAM access latency (controller + conflict-dominated probe)
/// used by the analytic Fig. 2/3 model, in cycles.
const MEM_PROBE: f64 = 227.0;
/// Fixed per-bit protocol overhead of the baseline attack (encode, decode,
/// loop) in the analytic model.
const BASELINE_OVERHEAD: f64 = 190.0;
/// Per-bit cost of the idealized direct-memory-access attack: one probe
/// plus loop overhead, chosen so the §3.3 11.27 Mb/s figure reproduces.
const DIRECT_BIT: f64 = 231.0;

/// CPU frequency in cycles/second for Mb/s conversion.
const FREQ: f64 = 2.6e9;

fn mbps(bit_cycles: f64) -> f64 {
    FREQ / bit_cycles / 1e6
}

/// §3.1: measures the row-buffer hit vs conflict delta with a
/// microbenchmark on the simulated system. The paper reports 74 cycles at
/// 2.6 GHz.
#[must_use]
pub fn delta() -> Figure {
    delta_on(BackendKind::Mono)
}

/// [`delta`] on an explicit memory backend.
#[must_use]
pub fn delta_on(backend: BackendKind) -> Figure {
    let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
    let agent = sys.spawn_agent();
    let row_a = sys.alloc_row_in_bank(agent, 0).expect("allocation");
    let row_b = sys.alloc_row_in_bank(agent, 0).expect("allocation");
    sys.warm_tlb(agent, row_a, 2);
    sys.warm_tlb(agent, row_b, 2);

    // Open row A, measure a hit, then measure the conflict on row B.
    sys.load_direct(agent, row_a).expect("open");
    let hit = sys.load_direct(agent, row_a + 64).expect("hit");
    assert_eq!(hit.kind, Some(RowBufferKind::Hit));
    let conflict = sys.load_direct(agent, row_b).expect("conflict");
    assert_eq!(conflict.kind, Some(RowBufferKind::Conflict));
    let delta = conflict.latency - hit.latency;

    Figure::new(
        "delta",
        "Row-buffer conflict vs hit latency delta (§3.1)",
        "measurement",
        "cycles",
    )
    .with_series(Series::new(
        "latency",
        vec![
            (0.0, hit.latency.as_f64()),
            (1.0, conflict.latency.as_f64()),
            (2.0, delta.as_f64()),
        ],
    ))
    .with_note("x=0: hit latency, x=1: conflict latency, x=2: delta")
    .with_note(format!(
        "measured delta = {} cycles; paper reports 74 cycles at 2.6 GHz",
        delta.0
    ))
}

/// The LLC parameter a sweep varies (Fig. 2 sweeps size, Fig. 3 ways).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcAxis {
    /// LLC capacity in megabytes, at 16 ways.
    SizeMb,
    /// LLC associativity, at 16 MB.
    Ways,
}

/// Which Fig. 2/3 curve an [`LlcSweep`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcCurve {
    /// Eviction-set covert channel throughput (Mb/s).
    Baseline,
    /// Direct-memory-access covert channel throughput (Mb/s).
    Direct,
    /// Eviction latency (cycles, right axis).
    Eviction,
}

/// One curve of the Fig. 2/3 LLC sweeps as a parallelizable [`Scenario`].
#[derive(Debug, Clone, Copy)]
pub struct LlcSweep {
    /// The swept LLC parameter.
    pub axis: LlcAxis,
    /// The reported quantity.
    pub curve: LlcCurve,
}

impl Scenario for LlcSweep {
    fn name(&self) -> String {
        match self.curve {
            LlcCurve::Baseline => "Baseline Attack (Mb/s)".into(),
            LlcCurve::Direct => "Direct Memory Access Attack (Mb/s)".into(),
            LlcCurve::Eviction => "Eviction Latency (cycles)".into(),
        }
    }

    fn seed(&self) -> u64 {
        0xF123
    }

    fn xs(&self) -> Vec<f64> {
        match self.axis {
            LlcAxis::SizeMb => [4u64, 8, 16, 32, 64, 128]
                .iter()
                .map(|&mb| mb as f64)
                .collect(),
            LlcAxis::Ways => [2u32, 4, 8, 16, 32, 64, 128]
                .iter()
                .map(|&w| f64::from(w))
                .collect(),
        }
    }

    fn eval(&self, x: f64, _rng: &mut SimRng) -> f64 {
        let eviction = match self.axis {
            LlcAxis::SizeMb => cacti::eviction_latency((x as u64) << 20, 16, Cycles(206)),
            LlcAxis::Ways => cacti::eviction_latency(16 << 20, x as u32, Cycles(206)),
        }
        .as_f64();
        match self.curve {
            LlcCurve::Baseline => mbps(eviction + MEM_PROBE + BASELINE_OVERHEAD),
            LlcCurve::Direct => mbps(DIRECT_BIT),
            LlcCurve::Eviction => eviction,
        }
    }
}

fn llc_figure(fig: Figure, axis: LlcAxis) -> Figure {
    let runner = SweepRunner::auto();
    [LlcCurve::Baseline, LlcCurve::Direct, LlcCurve::Eviction]
        .into_iter()
        .fold(fig, |f, curve| {
            f.with_series(runner.run(&LlcSweep { axis, curve }))
        })
}

/// Fig. 2: impact of LLC size (4–128 MB, 16 ways) on the baseline
/// (eviction-set) and direct-memory-access covert channels, plus the
/// eviction latency (right axis).
#[must_use]
pub fn fig2() -> Figure {
    llc_figure(
        Figure::new(
            "fig2",
            "Covert-channel throughput and eviction latency vs LLC size",
            "LLC size (MB)",
            "Mb/s (throughput) / cycles (eviction latency)",
        ),
        LlcAxis::SizeMb,
    )
    .with_note("paper: direct access 11.27 Mb/s flat; baseline up to 2.29 Mb/s, declining")
    .with_note("real-CPU markers: i9-9900K 16MB, Ryzen 9 5900 64MB, EPYC 7513 128MB")
}

/// Fig. 3: impact of LLC associativity (2–128 ways, 16 MB) on the same
/// quantities.
#[must_use]
pub fn fig3() -> Figure {
    llc_figure(
        Figure::new(
            "fig3",
            "Covert-channel throughput and eviction latency vs LLC ways",
            "LLC ways",
            "Mb/s (throughput) / cycles (eviction latency)",
        ),
        LlcAxis::Ways,
    )
    .with_note("paper: eviction latency reaches ~23K cycles at 128 ways")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_paper_value() {
        let f = delta();
        let s = f.series_named("latency").unwrap();
        assert_eq!(s.y_at(2.0), Some(74.0));
    }

    #[test]
    fn fig2_shapes() {
        let f = fig2();
        let base = f.series_named("Baseline Attack (Mb/s)").unwrap();
        let direct = f
            .series_named("Direct Memory Access Attack (Mb/s)")
            .unwrap();
        // Baseline at 4 MB near the paper's 2.29 Mb/s peak.
        let peak = base.y_at(4.0).unwrap();
        assert!((2.0..=2.6).contains(&peak), "baseline peak {peak:.2}");
        // Declines with size.
        assert!(base.y_at(128.0).unwrap() < peak / 3.0);
        // Direct access ~11.27 Mb/s, flat.
        let d = direct.y_at(4.0).unwrap();
        assert!((11.0..=11.6).contains(&d), "direct {d:.2}");
        assert_eq!(direct.y_at(4.0), direct.y_at(128.0));
    }

    #[test]
    fn llc_sweep_parallel_matches_serial() {
        use crate::runner::series_bits_eq;
        for axis in [LlcAxis::SizeMb, LlcAxis::Ways] {
            for curve in [LlcCurve::Baseline, LlcCurve::Direct, LlcCurve::Eviction] {
                let s = LlcSweep { axis, curve };
                assert!(
                    series_bits_eq(&SweepRunner::serial().run(&s), &SweepRunner::new(4).run(&s)),
                    "{axis:?}/{curve:?} diverged"
                );
            }
        }
    }

    #[test]
    fn fig3_shapes() {
        let f = fig3();
        let evict = f.series_named("Eviction Latency (cycles)").unwrap();
        let hi = evict.y_at(128.0).unwrap();
        assert!((18_000.0..=26_000.0).contains(&hi), "128-way eviction {hi}");
        let base = f.series_named("Baseline Attack (Mb/s)").unwrap();
        assert!(base.y_at(2.0).unwrap() > base.y_at(128.0).unwrap() * 5.0);
    }
}
