//! Ablation studies for the design choices called out in DESIGN.md §4:
//! row policy, batch size (bank parallelism), decode threshold and noise
//! sensitivity.

use impact_attacks::PnmCovertChannel;
use impact_attacks::PumCovertChannel;
use impact_core::config::{NoiseConfig, SystemConfig};
use impact_core::rng::SimRng;
use impact_core::time::Cycles;
use impact_dram::RowPolicy;
use impact_sim::BackendKind;

use crate::{Figure, Series};

/// Runs the four ablations and reports them as one multi-series figure:
///
/// * goodput under row policies (open / open+100ns idle timeout / closed);
/// * goodput vs covert-channel batch size (bank parallelism);
/// * error rate vs decode threshold;
/// * error rate vs prefetcher noise rate.
#[must_use]
pub fn ablations(quick: bool) -> Figure {
    ablations_on(BackendKind::Mono, quick)
}

/// [`ablations`] on an explicit memory backend.
#[must_use]
pub fn ablations_on(backend: BackendKind, quick: bool) -> Figure {
    let bits = if quick { 512 } else { 2048 };
    let message = SimRng::seed(0xAB1A).bits(bits);
    let clock = SystemConfig::paper_table2().clock;

    // (a) Row policy: the eager idle timeout already breaks the channel.
    let mut policy_pts = Vec::new();
    for (i, policy) in [
        RowPolicy::open_page(),
        RowPolicy::open_with_timeout(Cycles(260)),
        RowPolicy::closed_page(),
    ]
    .into_iter()
    .enumerate()
    {
        let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
        sys.set_row_policy(policy);
        let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
        let r = ch.transmit(&mut sys, &message).expect("transmit");
        policy_pts.push((i as f64, r.goodput_mbps(clock)));
    }

    // (b) Batch size (bank parallelism) for both IMPACT variants.
    let mut pnm_batch = Vec::new();
    let mut pum_batch = Vec::new();
    for banks in [2usize, 4, 8, 16] {
        let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
        let mut ch = PnmCovertChannel::setup(&mut sys, banks).expect("setup");
        let r = ch.transmit(&mut sys, &message).expect("transmit");
        pnm_batch.push((banks as f64, r.goodput_mbps(clock)));

        let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
        let mut ch = PumCovertChannel::setup(&mut sys, banks).expect("setup");
        let r = ch.transmit(&mut sys, &message).expect("transmit");
        pum_batch.push((banks as f64, r.goodput_mbps(clock)));
    }

    // (c) Decode threshold sweep (with noise, so mistuning shows up).
    let mut threshold_pts = Vec::new();
    for threshold in [110u64, 130, 150, 170, 190, 220] {
        let mut sys = backend.system(SystemConfig::paper_table2());
        let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
        ch.set_threshold(threshold);
        let r = ch.transmit(&mut sys, &message).expect("transmit");
        threshold_pts.push((threshold as f64, r.error_rate() * 100.0));
    }

    // (d) Noise sensitivity: prefetcher rate sweep.
    let mut noise_pts = Vec::new();
    for (i, rate) in [0.0, 0.005, 0.01, 0.02, 0.05].into_iter().enumerate() {
        let cfg = SystemConfig {
            noise: NoiseConfig {
                prefetcher_rate: rate,
                ptw_rate: 0.0,
                seed: 7,
            },
            ..SystemConfig::paper_table2()
        };
        let mut sys = backend.system(cfg);
        let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
        let r = ch.transmit(&mut sys, &message).expect("transmit");
        let _ = i;
        noise_pts.push((rate * 100.0, r.error_rate() * 100.0));
    }

    Figure::new(
        "ablations",
        "Design-choice ablations (DESIGN.md §4)",
        "see per-series x meaning",
        "Mb/s or % (per series)",
    )
    .with_series(Series::new("PnM goodput by row policy (Mb/s)", policy_pts))
    .with_series(Series::new("PnM goodput by batch size (Mb/s)", pnm_batch))
    .with_series(Series::new("PuM goodput by batch size (Mb/s)", pum_batch))
    .with_series(Series::new("PnM error by threshold (%)", threshold_pts))
    .with_series(Series::new("PnM error by prefetcher rate (%)", noise_pts))
    .with_note("row policy x: 0=open-page, 1=open+100ns idle timeout, 2=closed-page")
    .with_note("an eager idle row timeout acts as a (costly) defense: the hit signal dies")
    .with_note("threshold x: decode threshold in cycles; noise x: prefetcher rate in %")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_policy_ablation_kills_channel() {
        let f = ablations(true);
        let s = f.series_named("PnM goodput by row policy (Mb/s)").unwrap();
        let open = s.y_at(0.0).unwrap();
        let timeout = s.y_at(1.0).unwrap();
        let closed = s.y_at(2.0).unwrap();
        assert!(open > 5.0, "open-page goodput {open:.2}");
        // Goodput counts only correct bits: with the signal gone, ~half the
        // bits error out and goodput collapses.
        assert!(
            timeout < open * 0.7,
            "timeout {timeout:.2} vs open {open:.2}"
        );
        assert!(closed < open * 0.7, "closed {closed:.2} vs open {open:.2}");
    }

    #[test]
    fn parallelism_scales_throughput() {
        let f = ablations(true);
        // PuM's single masked request per batch makes parallelism its
        // core advantage; PnM's serial sender gains less.
        let pum = f.series_named("PuM goodput by batch size (Mb/s)").unwrap();
        assert!(
            pum.y_at(16.0).unwrap() > pum.y_at(2.0).unwrap() * 1.5,
            "PuM does not scale"
        );
        let pnm = f.series_named("PnM goodput by batch size (Mb/s)").unwrap();
        assert!(
            pnm.y_at(16.0).unwrap() > pnm.y_at(2.0).unwrap() * 1.2,
            "PnM does not scale"
        );
    }

    #[test]
    fn paper_threshold_is_near_optimal() {
        let f = ablations(true);
        let s = f.series_named("PnM error by threshold (%)").unwrap();
        let at_150 = s.y_at(150.0).unwrap();
        let at_110 = s.y_at(110.0).unwrap();
        let at_220 = s.y_at(220.0).unwrap();
        assert!(at_150 <= at_110 + 1e-9, "150 worse than 110");
        assert!(at_150 <= at_220 + 1e-9, "150 worse than 220");
    }

    #[test]
    fn noise_increases_errors() {
        let f = ablations(true);
        let s = f.series_named("PnM error by prefetcher rate (%)").unwrap();
        let clean = s.y_at(0.0).unwrap();
        let noisy = s.points.last().unwrap().1;
        assert_eq!(clean, 0.0);
        assert!(noisy > 0.0, "noise produced no errors");
    }
}
