//! Fig. 11: the genomic read-mapping side channel across bank counts.

use impact_attacks::side_channel::{SideChannelAttack, SideChannelConfig};
use impact_core::config::SystemConfig;
use impact_sim::BackendKind;

use crate::{Figure, Series};

/// Fig. 11: leakage throughput (Mb/s) and error rate (%) of the
/// read-mapping side channel for 1024–8192 DRAM banks.
#[must_use]
pub fn fig11(reads: usize) -> Figure {
    fig11_on(BackendKind::Mono, reads)
}

/// [`fig11`] on an explicit memory backend.
#[must_use]
pub fn fig11_on(backend: BackendKind, reads: usize) -> Figure {
    fig11_with(backend, reads, false)
}

/// [`fig11_on`] with an explicit fork-sweep mode. Each bank count uses a
/// different system configuration, so there is no cross-point prefix to
/// share; instead, fork mode runs the attack's initialization sweep on a
/// parent engine and measures on a copy-on-write fork — exercising the
/// same init-once/fork-cheap split the paper's sweeps amortize, with
/// bit-identical figure output.
#[must_use]
pub fn fig11_with(backend: BackendKind, reads: usize, fork_sweeps: bool) -> Figure {
    let banks = [1024u32, 2048, 4096, 8192];
    let mut tput = Vec::new();
    let mut err = Vec::new();
    let mut miss = Vec::new();
    for &b in &banks {
        let cfg = SystemConfig::paper_table2_noiseless().with_total_banks(b);
        let mut sys = backend.system(cfg);
        let attack = SideChannelAttack::new(SideChannelConfig {
            reads,
            ..SideChannelConfig::default()
        });
        let (r, clock) = if fork_sweeps {
            use impact_core::snapshot::Snapshot;
            let init = attack.init(&mut sys).expect("side channel init");
            let mut fork = sys.fork();
            let r = attack
                .measure(&mut fork, &init)
                .expect("side channel measure");
            (r, fork.config().clock)
        } else {
            let r = attack.run(&mut sys).expect("side channel run");
            (r, sys.config().clock)
        };
        tput.push((f64::from(b), r.throughput_mbps(clock)));
        err.push((f64::from(b), r.error_rate() * 100.0));
        miss.push((f64::from(b), r.miss_rate() * 100.0));
    }
    Figure::new(
        "fig11",
        "Read-mapping side channel: throughput and error vs bank count",
        "DRAM banks",
        "Mb/s / %",
    )
    .with_series(Series::new("Leakage Throughput (Mb/s)", tput))
    .with_series(Series::new("Error Rate (%)", err))
    .with_series(Series::new("Missed-event Rate (%)", miss))
    .with_note("paper: 7.57 Mb/s @1024 banks (<5% error) -> 2.56 Mb/s @8192 (<15% error)")
    .with_note("bits per detection grow with banks (log2(B)); see §6.3 resolution argument")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_trends() {
        let f = fig11(40);
        let tput = f.series_named("Leakage Throughput (Mb/s)").unwrap();
        let err = f.series_named("Error Rate (%)").unwrap();
        let t1k = tput.y_at(1024.0).unwrap();
        let t8k = tput.y_at(8192.0).unwrap();
        assert!((5.0..=11.0).contains(&t1k), "t@1024 = {t1k:.2}");
        assert!(t8k < t1k * 0.75, "no throughput drop: {t1k:.2} -> {t8k:.2}");
        let e1k = err.y_at(1024.0).unwrap();
        let e8k = err.y_at(8192.0).unwrap();
        assert!(e1k < 5.0, "error@1024 = {e1k:.2}%");
        assert!(e8k > e1k, "error does not grow");
        assert!(e8k < 25.0, "error@8192 = {e8k:.2}%");
    }
}
