//! The experiments, one per paper table/figure plus ablations.

mod ablation;
mod covert;
mod defense;
mod future;
mod side;
mod sweeps;
mod tables;

pub use ablation::{ablations, ablations_on};
pub use covert::{fig10, fig10_on, fig8, fig8_on, fig9, fig9_on, fig9_with};
pub use defense::{fig12, fig12_on, fig12_with, fig12_workloads, DefenseOverheadSweep};
pub use future::{future_banks, future_banks_on, rfm_filtering, rfm_filtering_on};
pub use side::{fig11, fig11_on, fig11_with};
pub use sweeps::{delta, delta_on, fig2, fig3, LlcAxis, LlcCurve, LlcSweep};
pub use tables::{table1, table2};

use impact_sim::BackendKind;

use crate::runner::ExperimentJob;
use crate::Figure;

/// The full paper suite as schedulable jobs, every system-backed
/// experiment built on `backend`. This is the unit
/// [`crate::SweepRunner::run_all`] shards across worker threads.
///
/// `quick` shrinks message/workload sizes for CI-speed runs.
#[must_use]
pub fn suite(quick: bool, backend: BackendKind) -> Vec<ExperimentJob> {
    suite_with(quick, backend, false)
}

/// [`suite`] with an explicit fork-sweep mode (`fig_all --fork-sweeps`):
/// the experiments with a warmable init phase — fig9's PnM/PuM channels,
/// fig11's side-channel init sweep, fig12's defense sweeps — run their
/// measured phases on copy-on-write forks of a warmed engine. Figure
/// output is bit-identical to the unforked suite.
#[must_use]
pub fn suite_with(quick: bool, backend: BackendKind, fork_sweeps: bool) -> Vec<ExperimentJob> {
    let bits = if quick { 512 } else { 2048 };
    let reads = if quick { 40 } else { 120 };
    vec![
        ExperimentJob::new("delta", move || delta_on(backend)),
        ExperimentJob::new("table1", table1),
        ExperimentJob::new("table2", table2),
        ExperimentJob::new("fig2", fig2),
        ExperimentJob::new("fig3", fig3),
        ExperimentJob::new("fig8", move || fig8_on(backend)),
        ExperimentJob::new("fig9", move || fig9_with(backend, bits, fork_sweeps)),
        ExperimentJob::new("fig10", move || fig10_on(backend)),
        ExperimentJob::new("fig11", move || fig11_with(backend, reads, fork_sweeps)),
        ExperimentJob::new("fig12", move || fig12_with(backend, quick, fork_sweeps)),
        ExperimentJob::new("ablations", move || ablations_on(backend, quick)),
        ExperimentJob::new("future_banks", move || future_banks_on(backend, bits)),
        ExperimentJob::new("rfm", move || rfm_filtering_on(backend, bits)),
    ]
}

/// Runs every experiment (in paper order) with default parameters on the
/// default backend, serially.
///
/// `quick` shrinks message/workload sizes for CI-speed runs.
#[must_use]
pub fn run_all(quick: bool) -> Vec<Figure> {
    suite(quick, BackendKind::Mono)
        .iter()
        .map(ExperimentJob::run)
        .collect()
}
