//! The experiments, one per paper table/figure plus ablations.

mod ablation;
mod covert;
mod defense;
mod future;
mod side;
mod sweeps;
mod tables;

pub use ablation::ablations;
pub use covert::{fig10, fig8, fig9};
pub use defense::{fig12, fig12_workloads, DefenseOverheadSweep};
pub use future::{future_banks, rfm_filtering};
pub use side::fig11;
pub use sweeps::{delta, fig2, fig3, LlcAxis, LlcCurve, LlcSweep};
pub use tables::{table1, table2};

use crate::Figure;

/// Runs every experiment (in paper order) with default parameters.
///
/// `quick` shrinks message/workload sizes for CI-speed runs.
#[must_use]
pub fn run_all(quick: bool) -> Vec<Figure> {
    vec![
        delta(),
        table1(),
        table2(),
        fig2(),
        fig3(),
        fig8(),
        fig9(if quick { 512 } else { 2048 }),
        fig10(),
        fig11(if quick { 40 } else { 120 }),
        fig12(quick),
        ablations(quick),
        future_banks(if quick { 512 } else { 2048 }),
        rfm_filtering(if quick { 512 } else { 2048 }),
    ]
}
