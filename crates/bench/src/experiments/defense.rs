//! Fig. 12: defense overheads on BC/BFS/CC/TC/XS, plus the attack-
//! throughput reduction of ACT-Aggressive.

use impact_attacks::PnmCovertChannel;
use impact_core::config::SystemConfig;
use impact_core::rng::SimRng;
use impact_core::stats::geometric_mean;
use impact_memctrl::{ActConfig, Defense};
use impact_sim::{AgentId, BackendKind, DynSystem};
use impact_workloads::graph::Graph;
use impact_workloads::{kernels, replay, Trace};

use crate::runner::{Scenario, SweepRunner};
use crate::Figure;

/// The Fig. 12 system: Table 2 with the cache hierarchy scaled down in
/// proportion to the scaled-down workloads (the kernels' footprints are
/// ~1000x smaller than GraphBIG's, so the caches shrink too — otherwise
/// every workload would fit in the LLC and no defense would cost
/// anything). Noise stands in for co-running cores and arms ACT.
fn fig12_system() -> SystemConfig {
    let mut cfg = SystemConfig::paper_table2();
    cfg.l1d.size_bytes = 4 * 1024;
    cfg.l2.size_bytes = 16 * 1024;
    cfg.l3.size_bytes = 64 * 1024;
    cfg
}

/// The Fig. 12 workload set: (name, trace) pairs replayed under every
/// defense. Public so determinism tests can drive the same sweep the
/// figure uses.
#[must_use]
pub fn fig12_workloads(quick: bool) -> Vec<(&'static str, Trace)> {
    let scale = if quick { 1 } else { 2 };
    let g = Graph::rmat(256 * scale, 1024 * scale, 42);
    let g_small = Graph::rmat(128 * scale, 512 * scale, 43);
    let sources: Vec<usize> = (0..4).collect();
    let (_, bc_t) = kernels::bc(&g_small, &sources);
    let (_, bfs_t) = kernels::bfs(&g, 0);
    let (_, cc_t) = kernels::cc(&g_small);
    let (_, tc_t) = kernels::tc(&g_small);
    let (_, xs_t) = kernels::xsbench(400 * scale, 8192, 64, 44);
    vec![
        ("BC", bc_t),
        ("BFS", bfs_t),
        ("CC", cc_t),
        ("TC", tc_t),
        ("XS", xs_t),
    ]
}

fn defenses() -> Vec<Defense> {
    vec![
        Defense::Ctd,
        Defense::Act(ActConfig::aggressive()),
        Defense::Act(ActConfig::mild()),
        Defense::Act(ActConfig::conservative()),
    ]
}

/// One Fig. 12 curve as a parallelizable [`Scenario`]: replays every
/// workload on a fresh per-point [`System`] under `defense` and reports
/// cycles, normalized against `baseline` when one is supplied.
///
/// The noisy Table 2 configuration stands in for co-running cores: the
/// prefetcher/PTW activity creates the row conflicts that arm ACT, as in
/// the paper's multi-core evaluation.
pub struct DefenseOverheadSweep<'a> {
    /// The workloads, from [`fig12_workloads`].
    pub workloads: &'a [(&'static str, Trace)],
    /// Defense under test; `None` measures the baseline.
    pub defense: Option<Defense>,
    /// Per-workload baseline cycles; empty to report raw cycles.
    pub baseline: &'a [f64],
    /// Memory backend each per-point system is built on.
    pub backend: BackendKind,
}

impl DefenseOverheadSweep<'_> {
    /// The sweep's point-independent prefix: system construction, defense
    /// installation and agent spawning. Always spawns exactly one agent,
    /// so the replay agent is `AgentId(0)` on any fork.
    fn warm(&self) -> DynSystem {
        let mut sys = self.backend.system(fig12_system());
        if let Some(d) = &self.defense {
            sys.set_defense(d.clone());
        }
        sys.spawn_agent();
        sys
    }

    /// Replays workload `i` on a warmed engine and normalizes the cycles.
    fn replay_point(&self, sys: &mut DynSystem, i: usize) -> f64 {
        let r = replay(sys, AgentId(0), &self.workloads[i].1).expect("replay");
        let cycles = r.cycles.as_f64();
        if self.baseline.is_empty() {
            cycles
        } else {
            cycles / self.baseline[i]
        }
    }
}

impl Scenario for DefenseOverheadSweep<'_> {
    fn name(&self) -> String {
        self.defense
            .as_ref()
            .map_or("No defense".into(), |d| d.name().into())
    }

    fn seed(&self) -> u64 {
        0xF12
    }

    fn xs(&self) -> Vec<f64> {
        (0..self.workloads.len()).map(|i| i as f64).collect()
    }

    fn eval(&self, x: f64, _rng: &mut SimRng) -> f64 {
        let mut sys = self.warm();
        self.replay_point(&mut sys, x as usize)
    }

    fn warm_prefix(&self) -> Option<DynSystem> {
        Some(self.warm())
    }

    fn eval_forked(&self, mut sys: DynSystem, x: f64, _rng: &mut SimRng) -> f64 {
        self.replay_point(&mut sys, x as usize)
    }
}

/// Fig. 12: normalized execution time of CTD and the three ACT variants
/// over a no-defense baseline, per workload plus GMEAN; the notes report
/// ACT-Aggressive's reduction of IMPACT-PnM throughput (~72% in the
/// paper).
#[must_use]
pub fn fig12(quick: bool) -> Figure {
    fig12_on(BackendKind::Mono, quick)
}

/// [`fig12`] on an explicit memory backend.
#[must_use]
pub fn fig12_on(backend: BackendKind, quick: bool) -> Figure {
    fig12_with(backend, quick, false)
}

/// [`fig12_on`] with an explicit fork-sweep mode: when `fork_sweeps` is
/// set, each sweep worker warms one prefix engine (system + defense +
/// agent) and serves every workload point from a copy-on-write fork of
/// it. Bit-identical to the unforked run by the [`Scenario`] contract.
#[must_use]
pub fn fig12_with(backend: BackendKind, quick: bool, fork_sweeps: bool) -> Figure {
    let workloads = fig12_workloads(quick);
    let runner = SweepRunner::auto().with_forked(fork_sweeps);

    // Baseline execution times, swept in parallel like every other curve.
    let baseline: Vec<f64> = runner
        .run(&DefenseOverheadSweep {
            workloads: &workloads,
            defense: None,
            baseline: &[],
            backend,
        })
        .points
        .into_iter()
        .map(|(_, y)| y)
        .collect();

    let mut fig = Figure::new(
        "fig12",
        "Defense performance overhead (normalized execution time)",
        "workload (0=BC 1=BFS 2=CC 3=TC 4=XS 5=GMEAN)",
        "normalized execution time",
    );

    // Series legends come from `Defense::name()` via the scenario, so the
    // figure always matches the paper's labels.
    for defense in defenses() {
        let mut series = runner.run(&DefenseOverheadSweep {
            workloads: &workloads,
            defense: Some(defense),
            baseline: &baseline,
            backend,
        });
        let normalized: Vec<f64> = series.points.iter().map(|&(_, y)| y).collect();
        series
            .points
            .push((workloads.len() as f64, geometric_mean(&normalized)));
        fig = fig.with_series(series);
    }

    // ACT-Aggressive's effect on the IMPACT-PnM covert channel.
    let bits = if quick { 512 } else { 2048 };
    let message = SimRng::seed(0xF12).bits(bits);
    let clock = SystemConfig::paper_table2().clock;
    let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
    let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
    let open = ch.transmit(&mut sys, &message).expect("transmit");
    let mut sys = backend.system(SystemConfig::paper_table2_noiseless());
    sys.set_defense(Defense::Act(ActConfig::aggressive()));
    let mut ch = PnmCovertChannel::setup(&mut sys, 16).expect("setup");
    let defended = ch.transmit(&mut sys, &message).expect("transmit");
    let reduction = 1.0 - defended.goodput_mbps(clock) / open.goodput_mbps(clock).max(1e-9);
    fig.with_note(format!(
        "ACT-Aggressive reduces IMPACT-PnM goodput by {:.0}% (paper: ~72%)",
        reduction * 100.0
    ))
    .with_note("paper: ACT-Aggressive ~ CTD overhead; Mild/Conservative ~10% overhead")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::series_bits_eq;

    #[test]
    fn defense_sweep_parallel_matches_serial() {
        let workloads = fig12_workloads(true);
        let sweep = DefenseOverheadSweep {
            workloads: &workloads,
            defense: Some(Defense::Act(ActConfig::mild())),
            baseline: &[],
            backend: BackendKind::Mono,
        };
        let serial = SweepRunner::serial().run(&sweep);
        let parallel = SweepRunner::new(4).run(&sweep);
        assert!(series_bits_eq(&serial, &parallel));
    }

    #[test]
    fn defense_sweep_forked_matches_scratch() {
        let workloads = fig12_workloads(true);
        let sweep = DefenseOverheadSweep {
            workloads: &workloads,
            defense: Some(Defense::Ctd),
            baseline: &[],
            backend: BackendKind::Mono,
        };
        let scratch = SweepRunner::serial().run(&sweep);
        for threads in [1, 4] {
            let forked = SweepRunner::new(threads).with_forked(true).run(&sweep);
            assert!(
                series_bits_eq(&scratch, &forked),
                "forked fig12 sweep diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn fig12_overhead_ordering() {
        let f = fig12(true);
        let gmean_x = 5.0;
        let ctd = f.series_named("CTD").unwrap().y_at(gmean_x).unwrap();
        let aggressive = f
            .series_named("ACT-Aggressive")
            .unwrap()
            .y_at(gmean_x)
            .unwrap();
        let mild = f.series_named("ACT-Mild").unwrap().y_at(gmean_x).unwrap();
        let conservative = f
            .series_named("ACT-Conservative")
            .unwrap()
            .y_at(gmean_x)
            .unwrap();
        // CTD slows workloads noticeably; mild variants are cheaper.
        assert!(ctd > 1.02, "CTD gmean = {ctd:.3}");
        assert!(
            aggressive > mild,
            "aggressive {aggressive:.3} !> mild {mild:.3}"
        );
        assert!(
            mild >= conservative * 0.95,
            "mild {mild:.3} vs cons {conservative:.3}"
        );
        assert!(conservative < ctd, "conservative !< ctd");
        // All are slowdowns (>= 1.0 within tolerance).
        for s in &f.series {
            for (_, y) in &s.points {
                assert!(*y > 0.97, "{} speedup? {y:.3}", s.name);
            }
        }
    }

    #[test]
    fn fig12_reports_attack_reduction() {
        let f = fig12(true);
        let note = f
            .notes
            .iter()
            .find(|n| n.contains("reduces IMPACT-PnM"))
            .expect("reduction note");
        // Extract the percentage and require a substantial reduction.
        let pct: f64 = note
            .split("by ")
            .nth(1)
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("parse pct");
        assert!(pct > 40.0, "reduction only {pct}%");
    }
}
