//! Structured experiment output: named series over a swept parameter.

use std::fmt::Write as _;

/// One line/series of a figure: (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The points, in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The y value at the given x, if present.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// A reproduced table/figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier, e.g. `"fig9"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the swept x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (expected paper values, interpretation).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, s: Series) -> Figure {
        self.series.push(s);
        self
    }

    /// Adds a note (builder style).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Figure {
        self.notes.push(note.into());
        self
    }

    /// Finds a series by name.
    #[must_use]
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders an aligned text table: one row per x value, one column per
    /// series.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        if self.series.is_empty() {
            for n in &self.notes {
                let _ = writeln!(out, "note: {n}");
            }
            return out;
        }
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .fold(Vec::new(), |mut acc, x| {
                if !acc.iter().any(|&a: &f64| (a - x).abs() < 1e-9) {
                    acc.push(x);
                }
                acc
            });
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "  {:>22}", truncate(&s.name, 22));
        }
        out.push('\n');
        for &x in &xs {
            let _ = write!(out, "{x:>14.2}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, "  {y:>22.4}");
                    }
                    None => {
                        let _ = write!(out, "  {:>22}", "-");
                    }
                }
            }
            out.push('\n');
        }
        let _ = writeln!(out, "(y axis: {})", self.y_label);
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Renders the figure as CSV (`x,series1,series2,...`).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(',', ";"));
        for s in &self.series {
            let _ = write!(out, ",{}", s.name.replace(',', ";"));
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure::new("figX", "Demo", "x", "Mb/s")
            .with_series(Series::new("a", vec![(1.0, 2.0), (2.0, 3.0)]))
            .with_series(Series::new("b", vec![(1.0, 5.0)]))
            .with_note("hello")
    }

    #[test]
    fn y_lookup() {
        let f = fig();
        assert_eq!(f.series_named("a").unwrap().y_at(2.0), Some(3.0));
        assert_eq!(f.series_named("b").unwrap().y_at(2.0), None);
        assert!(f.series_named("c").is_none());
    }

    #[test]
    fn text_rendering() {
        let t = fig().render_text();
        assert!(t.contains("figX"));
        assert!(t.contains("hello"));
        assert!(t.contains('-'), "missing-point marker");
    }

    #[test]
    fn csv_rendering() {
        let c = fig().render_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("x,a,b"));
        assert_eq!(lines.next(), Some("1,2,5"));
    }
}
