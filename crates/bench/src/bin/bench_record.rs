//! Records the hot-path bench inventory into `BENCH_hotpath.json` — the
//! committed perf trajectory every perf PR extends.
//!
//! The file format and merge semantics live in `impact_bench::record`:
//! one run per line under `"runs"`, oldest first, re-recording a label
//! replaces that run in place.
//!
//! ```text
//! bench_record [--quick] [--label NAME] [--note TEXT] [--out PATH]
//! bench_record --quick --check PATH
//! ```
//!
//! * default: run the inventory at full measurement budget and merge the
//!   results into `--out` (default `BENCH_hotpath.json`) under `--label`.
//! * `--check PATH`: run in quick mode and compare the produced bench key
//!   set against the latest run recorded in `PATH`, exiting nonzero on
//!   drift — the CI bench-smoke step, catching renamed/added/removed
//!   benches that were not re-recorded.

use std::collections::BTreeSet;
use std::process::ExitCode;

use criterion::Criterion;
use impact_bench::hotpath;
use impact_bench::record::{
    bench_keys, existing_note, existing_runs, format_run, render_file, run_label,
};

const DEFAULT_OUT: &str = "BENCH_hotpath.json";
const UNIT: &str = "ns per iteration (criterion-shim mean)";
const DEFAULT_NOTE: &str =
    "1-vCPU shared container; absolute numbers are indicative, cross-run ratios are the signal";

fn main() -> ExitCode {
    let mut quick = false;
    let mut label = String::from("current");
    let mut note: Option<String> = None;
    let mut out_path = String::from(DEFAULT_OUT);
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--label" => label = args.next().expect("--label needs a value"),
            "--note" => note = Some(args.next().expect("--note needs a value")),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--check" => check_path = Some(args.next().expect("--check needs a value")),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut c = if quick {
        Criterion::quick()
    } else {
        Criterion::default()
    };
    hotpath::register_all(&mut c);
    let measured: Vec<(String, u128)> = c
        .records()
        .iter()
        .map(|r| (r.id.clone(), r.mean_ns))
        .collect();
    let measured_keys: BTreeSet<String> = measured.iter().map(|(id, _)| id.clone()).collect();

    if let Some(path) = check_path {
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bench_record: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(latest) = existing_runs(&contents).into_iter().next_back() else {
            eprintln!("bench_record: no recorded runs in {path}");
            return ExitCode::FAILURE;
        };
        let recorded = bench_keys(&latest);
        if recorded == measured_keys {
            println!(
                "bench_record: {} keys in sync with {path}",
                measured_keys.len()
            );
            return ExitCode::SUCCESS;
        }
        for missing in recorded.difference(&measured_keys) {
            eprintln!("bench_record: recorded but no longer benched: {missing}");
        }
        for unrecorded in measured_keys.difference(&recorded) {
            eprintln!("bench_record: benched but not recorded: {unrecorded}");
        }
        eprintln!("bench_record: re-run `bench_record` and commit {path}");
        return ExitCode::FAILURE;
    }

    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let note = note
        .or_else(|| existing_note(&previous))
        .unwrap_or_else(|| DEFAULT_NOTE.to_string());
    let mut runs: Vec<String> = existing_runs(&previous)
        .into_iter()
        .filter(|r| run_label(r) != Some(label.as_str()))
        .collect();
    runs.push(format_run(&label, &measured));
    if let Err(e) = std::fs::write(&out_path, render_file(UNIT, &note, &runs)) {
        eprintln!("bench_record: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_record: wrote {} benches as \"{label}\" to {out_path}",
        measured.len()
    );
    ExitCode::SUCCESS
}
