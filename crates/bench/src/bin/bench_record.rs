//! Records the hot-path bench inventory into `BENCH_hotpath.json` — the
//! committed perf trajectory every perf PR extends.
//!
//! The file keeps one run per line under `"runs"`, oldest first; each run
//! maps bench id to mean nanoseconds per iteration. Re-recording a label
//! replaces that run in place, so iterating on a PR does not grow the
//! history.
//!
//! ```text
//! bench_record [--quick] [--label NAME] [--note TEXT] [--out PATH]
//! bench_record --quick --check PATH
//! ```
//!
//! * default: run the inventory at full measurement budget and merge the
//!   results into `--out` (default `BENCH_hotpath.json`) under `--label`.
//! * `--check PATH`: run in quick mode and compare the produced bench key
//!   set against the latest run recorded in `PATH`, exiting nonzero on
//!   drift — the CI bench-smoke step, catching renamed/added/removed
//!   benches that were not re-recorded.

use std::collections::BTreeSet;
use std::process::ExitCode;

use criterion::Criterion;
use impact_bench::hotpath;

const DEFAULT_OUT: &str = "BENCH_hotpath.json";
const UNIT: &str = "ns per iteration (criterion-shim mean)";
const DEFAULT_NOTE: &str =
    "1-vCPU shared container; absolute numbers are indicative, cross-run ratios are the signal";

/// Extracts the bench ids of one `{"label": ..., "benches": {...}}` run
/// line. Values are unquoted integers and ids contain no escapes, so the
/// quoted strings after `"benches"` are exactly the keys.
fn bench_keys(run_line: &str) -> BTreeSet<String> {
    let Some(pos) = run_line.find("\"benches\"") else {
        return BTreeSet::new();
    };
    run_line[pos + "\"benches\"".len()..]
        .split('"')
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, s)| s.to_string())
        .collect()
}

/// The `"label"` value of a run line.
fn run_label(run_line: &str) -> Option<&str> {
    let tail = run_line.trim_start().strip_prefix("{\"label\": \"")?;
    tail.split('"').next()
}

/// Formats one run as a single JSON line (no trailing comma).
fn format_run(label: &str, benches: &[(String, u128)]) -> String {
    let body: Vec<String> = benches
        .iter()
        .map(|(id, ns)| format!("\"{id}\": {ns}"))
        .collect();
    format!(
        "{{\"label\": \"{label}\", \"benches\": {{{}}}}}",
        body.join(", ")
    )
}

/// The run lines of an existing record file, oldest first.
fn existing_runs(contents: &str) -> Vec<String> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("{\"label\""))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// The `"machine_note"` of an existing record file, if any.
fn existing_note(contents: &str) -> Option<String> {
    let line = contents
        .lines()
        .find(|l| l.trim_start().starts_with("\"machine_note\""))?;
    line.split('"').nth(3).map(str::to_string)
}

fn render_file(note: &str, runs: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"unit\": \"{UNIT}\",\n"));
    out.push_str(&format!("  \"machine_note\": \"{note}\",\n"));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!("    {run}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut label = String::from("current");
    let mut note: Option<String> = None;
    let mut out_path = String::from(DEFAULT_OUT);
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--label" => label = args.next().expect("--label needs a value"),
            "--note" => note = Some(args.next().expect("--note needs a value")),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--check" => check_path = Some(args.next().expect("--check needs a value")),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut c = if quick {
        Criterion::quick()
    } else {
        Criterion::default()
    };
    hotpath::register_all(&mut c);
    let measured: Vec<(String, u128)> = c
        .records()
        .iter()
        .map(|r| (r.id.clone(), r.mean_ns))
        .collect();
    let measured_keys: BTreeSet<String> = measured.iter().map(|(id, _)| id.clone()).collect();

    if let Some(path) = check_path {
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bench_record: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(latest) = existing_runs(&contents).into_iter().next_back() else {
            eprintln!("bench_record: no recorded runs in {path}");
            return ExitCode::FAILURE;
        };
        let recorded = bench_keys(&latest);
        if recorded == measured_keys {
            println!(
                "bench_record: {} keys in sync with {path}",
                measured_keys.len()
            );
            return ExitCode::SUCCESS;
        }
        for missing in recorded.difference(&measured_keys) {
            eprintln!("bench_record: recorded but no longer benched: {missing}");
        }
        for unrecorded in measured_keys.difference(&recorded) {
            eprintln!("bench_record: benched but not recorded: {unrecorded}");
        }
        eprintln!("bench_record: re-run `bench_record` and commit {path}");
        return ExitCode::FAILURE;
    }

    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let note = note
        .or_else(|| existing_note(&previous))
        .unwrap_or_else(|| DEFAULT_NOTE.to_string());
    let mut runs: Vec<String> = existing_runs(&previous)
        .into_iter()
        .filter(|r| run_label(r) != Some(label.as_str()))
        .collect();
    runs.push(format_run(&label, &measured));
    if let Err(e) = std::fs::write(&out_path, render_file(&note, &runs)) {
        eprintln!("bench_record: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_record: wrote {} benches as \"{label}\" to {out_path}",
        measured.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_line_roundtrip() {
        let line = format_run(
            "pr-test",
            &[("memctrl/a_1".to_string(), 42), ("system/b".to_string(), 7)],
        );
        assert_eq!(run_label(&line), Some("pr-test"));
        let keys = bench_keys(&line);
        assert_eq!(keys.iter().collect::<Vec<_>>(), ["memctrl/a_1", "system/b"]);
    }

    #[test]
    fn file_merge_replaces_matching_label() {
        let v1 = render_file("note", &[format_run("a", &[("x".into(), 1)])]);
        assert_eq!(existing_note(&v1).as_deref(), Some("note"));
        let runs = existing_runs(&v1);
        assert_eq!(runs.len(), 1);
        let mut runs: Vec<String> = runs
            .into_iter()
            .filter(|r| run_label(r) != Some("a"))
            .collect();
        runs.push(format_run("a", &[("x".into(), 2)]));
        let v2 = render_file("note", &runs);
        let runs2 = existing_runs(&v2);
        assert_eq!(runs2.len(), 1, "same label replaces, not appends");
        assert!(runs2[0].contains("\"x\": 2"));
    }

    #[test]
    fn key_drift_is_detected() {
        let old = format_run("a", &[("x".into(), 1), ("y".into(), 2)]);
        let new_keys: BTreeSet<String> = ["x".to_string(), "z".to_string()].into();
        let recorded = bench_keys(&old);
        assert_ne!(recorded, new_keys);
        assert!(recorded.difference(&new_keys).eq(["y".to_string()].iter()));
        assert!(new_keys.difference(&recorded).eq(["z".to_string()].iter()));
    }
}
