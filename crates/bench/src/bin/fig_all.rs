//! Regenerates the paper's tables and figures on the command line.
//!
//! ```text
//! fig_all                 # run everything (full sizes)
//! fig_all --quick         # run everything (reduced sizes)
//! fig_all fig9 fig11      # run selected experiments
//! fig_all --csv fig2      # CSV output instead of text
//! ```

use std::env;

use impact_bench::experiments;
use impact_bench::Figure;

fn run_one(id: &str, quick: bool) -> Option<Figure> {
    let fig = match id {
        "delta" => experiments::delta(),
        "table1" => experiments::table1(),
        "table2" => experiments::table2(),
        "fig2" => experiments::fig2(),
        "fig3" => experiments::fig3(),
        "fig8" => experiments::fig8(),
        "fig9" => experiments::fig9(if quick { 512 } else { 2048 }),
        "fig10" => experiments::fig10(),
        "fig11" => experiments::fig11(if quick { 40 } else { 120 }),
        "fig12" => experiments::fig12(quick),
        "ablations" => experiments::ablations(quick),
        "future_banks" => experiments::future_banks(if quick { 512 } else { 2048 }),
        "rfm" => experiments::rfm_filtering(if quick { 512 } else { 2048 }),
        _ => return None,
    };
    Some(fig)
}

const ALL: [&str; 12] = [
    "delta",
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "future_banks",
];

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        ALL.to_vec()
    } else {
        selected
    };

    for id in ids {
        match run_one(id, quick) {
            Some(fig) => {
                if csv {
                    println!("# {}", fig.id);
                    print!("{}", fig.render_csv());
                } else {
                    print!("{}", fig.render_text());
                }
                println!();
            }
            None => {
                eprintln!("unknown experiment {id:?}; available: {}", ALL.join(", "));
                std::process::exit(2);
            }
        }
    }
}
