//! Regenerates the paper's tables and figures on the command line.
//!
//! ```text
//! fig_all                       # run everything (full sizes)
//! fig_all --quick               # run everything (reduced sizes)
//! fig_all fig9 fig11            # run selected experiments
//! fig_all --csv fig2            # CSV output instead of text
//! fig_all --jobs 4              # shard experiments over 4 worker threads
//! fig_all --backend sharded:4   # run on a sharded memory backend
//! fig_all --backend sharded:8:4 # ... with 4 pool workers servicing shards
//! fig_all --backend traced      # ... or behind a tracing proxy
//! fig_all --record-trace f.trace  # capture a replayable trace file
//! fig_all --trace f.trace       # run a captured trace as an experiment
//! fig_all --fork-sweeps         # serve sweep points from engine forks
//! fig_all --metrics m.json      # dump the obs telemetry snapshot
//! ```
//!
//! With `--jobs N` (or `--jobs auto`) the suite is sharded across worker
//! threads by [`SweepRunner::run_all`]; progress and partial results
//! stream to stderr as experiments complete, and the rendered output is
//! printed in suite order at the end — bit-identical to a serial run.
//!
//! `--record-trace PATH` records the canonical capture workload on the
//! selected `--backend` (spill-to-disk, replayable with `trace_replay`);
//! when no experiments are selected, fig_all exits after recording.
//! `--trace PATH` loads a previously captured trace and appends it to the
//! suite as the `trace` experiment (a prefix-replay sweep whose series is
//! bit-identical on every backend).
//!
//! `--fork-sweeps` warms each forkable experiment's init phase once and
//! serves the sweep points from copy-on-write forks of the warmed engine
//! (see the README's "Snapshots and forking" section). Output is
//! bit-identical to a run without the flag — CI diffs the two byte for
//! byte.
//!
//! `--metrics PATH` enables the wall-clock span timers and writes the
//! process-wide [`impact_obs`] telemetry snapshot (canonical JSON) to
//! `PATH` after the suite renders. Telemetry lives entirely outside the
//! deterministic state machine, so the rendered figures and any recorded
//! traces are byte-identical with or without the flag — CI diffs the two
//! byte for byte.

use std::env;
use std::fs::File;
use std::io::BufWriter;

use impact_bench::experiments;
use impact_bench::runner::{ExperimentJob, RunAllEvent};
use impact_bench::trace_tools::{record_capture, trace_figure, CaptureKind, TraceScenario};
use impact_bench::{Figure, Scenario, SweepRunner};
use impact_sim::BackendKind;
use impact_workloads::CapturedTrace;

const ALL: [&str; 13] = [
    "delta",
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "future_banks",
    "rfm",
];

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: fig_all [--quick] [--csv] [--fork-sweeps] [--jobs N|auto] \
         [--backend mono|sharded[:N[:T]]|traced] \
         [--record-trace PATH] [--trace PATH] [--metrics PATH] [EXPERIMENT...]"
    );
    eprintln!("experiments: {}", ALL.join(", "));
    std::process::exit(2);
}

fn render(fig: &Figure, csv: bool) {
    if csv {
        println!("# {}", fig.id);
        print!("{}", fig.render_csv());
    } else {
        print!("{}", fig.render_text());
    }
    println!();
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let fork_sweeps = args.iter().any(|a| a == "--fork-sweeps");

    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .map(|i| match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => usage_exit(&format!("{flag} needs a value")),
            })
    };
    let backend = match flag_value("--backend") {
        None => BackendKind::Mono,
        Some(v) => {
            BackendKind::parse(&v).unwrap_or_else(|| usage_exit(&format!("unknown backend {v:?}")))
        }
    };
    let runner = match flag_value("--jobs").as_deref() {
        None => SweepRunner::serial(),
        Some("auto") => SweepRunner::auto(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) => SweepRunner::new(n),
            Err(_) => usage_exit(&format!("bad --jobs value {v:?}")),
        },
    };
    let record_trace = flag_value("--record-trace");
    let trace_path = flag_value("--trace");
    let metrics_path = flag_value("--metrics");
    if metrics_path.is_some() {
        impact_obs::set_enabled(true);
    }

    // Positional args select experiments; flag values are skipped.
    let mut selected: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--jobs"
            || a == "--backend"
            || a == "--record-trace"
            || a == "--trace"
            || a == "--metrics"
        {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            if a != "--quick" && a != "--csv" && a != "--fork-sweeps" {
                usage_exit(&format!("unknown flag {a:?}"));
            }
            continue;
        }
        if !ALL.contains(&a.as_str()) {
            usage_exit(&format!("unknown experiment {a:?}"));
        }
        selected.push(&args[i]);
    }

    // --record-trace: capture the canonical mixed workload on the selected
    // backend before (or instead of) running experiments.
    if let Some(path) = &record_trace {
        let sink = File::create(path)
            .unwrap_or_else(|e| usage_exit(&format!("cannot create {path}: {e}")));
        let outcome = record_capture(
            CaptureKind::Mix,
            backend,
            quick,
            0x7ACE,
            Box::new(BufWriter::new(sink)),
        )
        .unwrap_or_else(|e| {
            eprintln!("fig_all: trace recording failed: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "fig_all: recorded {} events ({} responses, digest {:#018x}) on `{}` to {path}",
            outcome.summary.events,
            outcome.summary.responses,
            outcome.summary.response_digest,
            backend.label(),
        );
        if selected.is_empty() && trace_path.is_none() {
            return;
        }
    }

    // No selection runs the whole suite in paper order; an explicit
    // selection preserves the user's order and duplicates.
    let mut jobs: Vec<ExperimentJob> = if selected.is_empty() && trace_path.is_some() {
        // A lone --trace runs just the captured-trace experiment.
        Vec::new()
    } else if selected.is_empty() {
        experiments::suite_with(quick, backend, fork_sweeps)
    } else {
        let mut pool: Vec<Option<ExperimentJob>> =
            experiments::suite_with(quick, backend, fork_sweeps)
                .into_iter()
                .map(Some)
                .collect();
        selected
            .iter()
            .map(|id| {
                pool.iter_mut()
                    .find(|j| j.as_ref().is_some_and(|j| j.id() == *id))
                    .and_then(Option::take)
                    .unwrap_or_else(|| {
                        // Duplicate selection: build a fresh instance.
                        experiments::suite_with(quick, backend, fork_sweeps)
                            .into_iter()
                            .find(|j| j.id() == *id)
                            .expect("validated against ALL")
                    })
            })
            .collect()
    };

    // --trace: append the captured trace as one more experiment.
    if let Some(path) = &trace_path {
        let captured = CapturedTrace::load(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("fig_all: cannot load trace {path}: {e}");
            std::process::exit(1);
        });
        let scenario = TraceScenario::new(captured, backend).unwrap_or_else(|e| {
            eprintln!("fig_all: trace {path} is not replayable: {e}");
            std::process::exit(1);
        });
        jobs.push(ExperimentJob::new("trace", move || {
            trace_figure(&scenario, scenario.run())
        }));
    }

    let verbose = runner.threads() > 1;
    if verbose {
        eprintln!(
            "fig_all: {} experiments on backend `{}` across {} workers",
            jobs.len(),
            backend.label(),
            runner.threads().min(jobs.len()),
        );
    }
    let figures = runner.run_all(&jobs, |ev| {
        if !verbose {
            return;
        }
        match ev {
            RunAllEvent::Started { id } => eprintln!("fig_all: {id} started"),
            RunAllEvent::SeriesReady { id, series } => {
                eprintln!("fig_all:   {id} series `{}` ready", series.name);
            }
            RunAllEvent::Finished {
                id,
                completed,
                total,
                ..
            } => eprintln!("fig_all: {id} done ({completed}/{total})"),
        }
    });
    for fig in &figures {
        render(fig, csv);
    }

    if let Some(path) = &metrics_path {
        let json = impact_obs::snapshot().to_json();
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("fig_all: cannot write metrics to {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("fig_all: wrote telemetry snapshot to {path}");
    }
}
