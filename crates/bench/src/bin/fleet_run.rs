//! Drives a fleet of deterministic engine sessions to completion and
//! writes the population report (canonical JSON: capacity, error-rate
//! and slowdown histograms plus the population digest).
//!
//! ```text
//! fleet_run [--population N] [--workers N] [--seed N] [--quick]
//!           [--trace FILE [--trace-sessions N]]
//!           [--out PATH] [--metrics PATH]
//! fleet_run --check PATH [same run flags]
//! ```
//!
//! The report's bytes are a function of the population alone — never of
//! `--workers`, `--metrics` or wall-clock — which is what CI exploits:
//! it runs `--quick` at workers 1, 2 and 4 (and once with `--metrics`)
//! and byte-compares the outputs. `--check PATH` performs that
//! comparison in-process: run the fleet, byte-compare the JSON against
//! `PATH`, exit nonzero on drift.
//!
//! `--trace FILE` additionally admits `--trace-sessions` (default 64)
//! sessions replaying growing prefixes of a recorded trace; the header
//! label is resolved to its `SystemConfig` and the fingerprint
//! cross-checked, exactly like `trace_replay`.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use impact_bench::trace_tools::config_for_label;
use impact_fleet::{FleetConfig, FleetEvent, FleetService};
use impact_workloads::CapturedTrace;

const DEFAULT_POPULATION: usize = 1000;
const DEFAULT_TRACE_SESSIONS: usize = 64;

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: fleet_run [--population N] [--workers N] [--seed N] [--quick]\n\
         \x20      [--trace FILE [--trace-sessions N]] [--out PATH] [--metrics PATH]\n\
         \x20      [--check PATH]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse()
        .unwrap_or_else(|_| usage_exit(&format!("bad {flag} value {v:?}")))
}

fn main() -> ExitCode {
    let mut population = DEFAULT_POPULATION;
    let mut workers = 4usize;
    let mut seed = 0xF1EE7u64;
    let mut quick = false;
    let mut trace_path: Option<String> = None;
    let mut trace_sessions = DEFAULT_TRACE_SESSIONS;
    let mut out_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--population" => population = parse(&arg, &value("--population")),
            "--workers" => workers = parse(&arg, &value("--workers")),
            "--seed" => seed = parse(&arg, &value("--seed")),
            "--quick" => quick = true,
            "--trace" => trace_path = Some(value("--trace")),
            "--trace-sessions" => trace_sessions = parse(&arg, &value("--trace-sessions")),
            "--out" => out_path = Some(value("--out")),
            "--metrics" => metrics_path = Some(value("--metrics")),
            "--check" => check_path = Some(value("--check")),
            other => usage_exit(&format!("unknown argument: {other}")),
        }
    }
    if workers == 0 {
        usage_exit("--workers must be at least 1");
    }
    if metrics_path.is_some() {
        impact_obs::set_enabled(true);
    }
    impact_obs::reset();

    let fleet_cfg = if quick {
        FleetConfig::quick(seed)
    } else {
        FleetConfig::new(seed)
    }
    .with_workers(workers);
    let mut fleet = FleetService::new(fleet_cfg);
    fleet.admit_synthetic(population);

    if let Some(path) = &trace_path {
        let trace = match CapturedTrace::load(Path::new(path)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fleet_run: cannot load trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(sys) = config_for_label(&trace.header.label) else {
            eprintln!(
                "fleet_run: unknown trace config label {:?} in {path}",
                trace.header.label
            );
            return ExitCode::FAILURE;
        };
        if sys.fingerprint() != trace.header.fingerprint {
            eprintln!("fleet_run: config fingerprint mismatch for {path}");
            return ExitCode::FAILURE;
        }
        fleet.admit_trace(&Arc::new(trace), &sys, trace_sessions);
    }

    let admitted = fleet.admitted();
    eprintln!("fleet_run: driving {admitted} sessions on {workers} workers (seed {seed:#x})");
    let report = fleet.run(&mut |ev| {
        if let FleetEvent::EpochComplete {
            epoch,
            active,
            finished,
        } = ev
        {
            eprintln!("fleet_run: epoch {epoch}: {finished} finished, {active} active");
        }
    });
    let json = report.to_json();
    println!(
        "fleet_run: {} sessions ({} synthetic, {} trace) over {} epochs, digest {:#018x}",
        report.finished(),
        report.synthetic,
        report.traced,
        report.epochs,
        report.digest
    );

    if let Some(path) = &metrics_path {
        if let Err(e) = std::fs::write(path, impact_obs::snapshot().to_json()) {
            eprintln!("fleet_run: cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("fleet_run: wrote telemetry snapshot to {path}");
    }
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("fleet_run: cannot write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("fleet_run: wrote population report to {path}");
    }
    if let Some(path) = &check_path {
        let recorded = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fleet_run: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if recorded != json {
            eprintln!(
                "fleet_run: population report drifted from {path} \
                 (byte-compare failed); re-run with --out and inspect the diff"
            );
            return ExitCode::FAILURE;
        }
        println!("fleet_run: report matches {path} byte-for-byte");
    }
    ExitCode::SUCCESS
}
