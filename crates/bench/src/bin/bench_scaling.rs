//! Sweeps the sharded backend's scaling grid — shards × pool workers ×
//! batch size — and records per-point throughput and pool-utilization
//! curves into `BENCH_scaling.json`, the committed scaling trajectory.
//!
//! The grid is fixed (shards {1, 4, 8} × workers {1, 2, 4} × batch
//! {1024, 8192}); `--quick` shrinks the per-point workload, not the grid,
//! so quick and full runs produce the same key set. Each point records
//! three keys under the label `s{S}w{W}b{B}`:
//!
//! * `.../rps` — serviced requests per wall-clock second;
//! * `.../pool_share_bp` — share of batches the worker pool serviced in
//!   parallel, in basis points (from the backend's scheduling counts);
//! * `.../busy_p50_ns` — median worker busy span, from the
//!   `sharded.worker.busy_ns` obs histogram (power-of-two bucket lower
//!   bound, 0 when the pool never engaged).
//!
//! The file format and replace-by-label merge semantics are shared with
//! `bench_record` (see `impact_bench::record`); `--check PATH` compares
//! the quick run's key set against the latest recorded run, exiting
//! nonzero on drift — the CI scaling-smoke step.
//!
//! ```text
//! bench_scaling [--quick] [--label NAME] [--note TEXT] [--out PATH]
//! bench_scaling --quick --check PATH
//! ```
//!
//! Telemetry note: this binary enables the obs span clocks for its own
//! measurements. The simulated responses it produces are discarded — the
//! recorded values are wall-clock performance of this machine, never
//! simulation output, so the determinism contract is untouched.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

use impact_bench::record::{
    bench_keys, existing_note, existing_runs, format_run, render_file, run_label,
};
use impact_core::config::SystemConfig;
use impact_core::engine::{MemRequest, MemoryBackend, ReqKind};
use impact_core::rng::SimRng;
use impact_core::time::Cycles;
use impact_memctrl::ControllerBackend;
use impact_sim::BackendKind;

const DEFAULT_OUT: &str = "BENCH_scaling.json";
const UNIT: &str = "rps = requests/s; pool_share_bp = basis points; busy_p50_ns = ns";
const DEFAULT_NOTE: &str =
    "1-vCPU shared container; absolute numbers are indicative, cross-run ratios are the signal";

const SHARDS: [usize; 3] = [1, 4, 8];
const WORKERS: [usize; 3] = [1, 2, 4];
const BATCH_SIZES: [usize; 2] = [1024, 8192];

/// One grid point's measurements, keyed `s{S}w{W}b{B}/...`.
fn run_point(shards: usize, workers: usize, batch: usize, quick: bool) -> Vec<(String, u128)> {
    let cfg = SystemConfig::paper_table2();
    let capacity = cfg.dram_geometry.capacity_bytes();
    let kind = BackendKind::Sharded { shards, workers };
    let mut backend = kind.backend(&cfg);

    // A deterministic scalar-only workload spread over the whole device,
    // so every shard's bucket fills and the pool threshold engages.
    let iters = if quick { 4 } else { 32 };
    let mut rng = SimRng::seed(0x5CA1E ^ ((shards as u64) << 16) ^ ((workers as u64) << 8));
    let reqs: Vec<MemRequest> = (0..batch)
        .map(|i| MemRequest {
            addr: impact_core::addr::PhysAddr(rng.below(capacity)),
            kind: ReqKind::Load,
            at: Cycles(i as u64),
            actor: 0,
        })
        .collect();

    impact_obs::reset();
    let started = Instant::now();
    for _ in 0..iters {
        backend
            .service_batch(&reqs)
            .expect("in-capacity loads cannot fail");
    }
    let elapsed = started.elapsed();

    let serviced = (batch * iters) as u128;
    let rps = (serviced * 1_000_000_000)
        .checked_div(elapsed.as_nanos())
        .unwrap_or(0);
    let (parallel, fallback) = backend.scheduling_counts();
    let pool_share_bp = (parallel * 10_000)
        .checked_div(parallel + fallback)
        .unwrap_or(0);
    let busy_p50_ns = impact_obs::registry()
        .worker_busy_ns
        .snapshot()
        .quantile(0.5);

    let key = format!("s{shards}w{workers}b{batch}");
    vec![
        (format!("{key}/rps"), rps),
        (format!("{key}/pool_share_bp"), u128::from(pool_share_bp)),
        (format!("{key}/busy_p50_ns"), u128::from(busy_p50_ns)),
    ]
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut label = String::from("current");
    let mut note: Option<String> = None;
    let mut out_path = String::from(DEFAULT_OUT);
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--label" => label = args.next().expect("--label needs a value"),
            "--note" => note = Some(args.next().expect("--note needs a value")),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--check" => check_path = Some(args.next().expect("--check needs a value")),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Span clocks on: busy_p50_ns comes from the worker busy histogram.
    impact_obs::set_enabled(true);
    let mut measured: Vec<(String, u128)> = Vec::new();
    for shards in SHARDS {
        for workers in WORKERS {
            for batch in BATCH_SIZES {
                eprintln!("bench_scaling: s{shards}w{workers}b{batch} ...");
                measured.extend(run_point(shards, workers, batch, quick));
            }
        }
    }
    let measured_keys: BTreeSet<String> = measured.iter().map(|(id, _)| id.clone()).collect();

    if let Some(path) = check_path {
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bench_scaling: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(latest) = existing_runs(&contents).into_iter().next_back() else {
            eprintln!("bench_scaling: no recorded runs in {path}");
            return ExitCode::FAILURE;
        };
        let recorded = bench_keys(&latest);
        if recorded == measured_keys {
            println!(
                "bench_scaling: {} keys in sync with {path}",
                measured_keys.len()
            );
            return ExitCode::SUCCESS;
        }
        for missing in recorded.difference(&measured_keys) {
            eprintln!("bench_scaling: recorded but no longer measured: {missing}");
        }
        for unrecorded in measured_keys.difference(&recorded) {
            eprintln!("bench_scaling: measured but not recorded: {unrecorded}");
        }
        eprintln!("bench_scaling: re-run `bench_scaling` and commit {path}");
        return ExitCode::FAILURE;
    }

    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let note = note
        .or_else(|| existing_note(&previous))
        .unwrap_or_else(|| DEFAULT_NOTE.to_string());
    let mut runs: Vec<String> = existing_runs(&previous)
        .into_iter()
        .filter(|r| run_label(r) != Some(label.as_str()))
        .collect();
    runs.push(format_run(&label, &measured));
    if let Err(e) = std::fs::write(&out_path, render_file(UNIT, &note, &runs)) {
        eprintln!("bench_scaling: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_scaling: wrote {} keys as \"{label}\" to {out_path}",
        measured.len()
    );
    ExitCode::SUCCESS
}
