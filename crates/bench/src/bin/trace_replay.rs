//! Capture, replay, diff and summarize persisted backend traces.
//!
//! ```text
//! trace_replay record --out run.trace [--scenario mix|pnm|bfs]
//!                     [--backend mono|sharded[:N[:T]]|traced] [--quick] [--seed N]
//! trace_replay replay run.trace [--backend mono|sharded[:N[:T]]|traced]
//!                     [--metrics m.json]
//! trace_replay diff   a.trace b.trace
//! trace_replay stats  run.trace
//! trace_replay slice  run.trace --out window.trace --start N --count N
//! trace_replay merge  merged.trace a.trace b.trace [MORE...]
//! ```
//!
//! `record` runs a canonical capture workload with the tracing proxy
//! spilling straight to disk. `replay` re-services the file on any
//! backend and verifies responses, `BackendStats` and the DRAM state
//! digest bit-for-bit against the recorded footer (exit code 1 on any
//! mismatch); `--metrics PATH` additionally writes the `impact_obs`
//! telemetry snapshot of the replay (canonical JSON) — telemetry never
//! feeds the verification, so the verdict is identical with or without
//! it. `diff` reports the first divergent event between two files with
//! context (exit code 1 on divergence). `stats` prints the per-kind and
//! per-bank request mix. `slice` extracts an event window into a
//! standalone trace whose footer is recomputed by replaying the window
//! from pristine state — the result passes `replay` verification like any
//! first-class capture (see `impact_bench::trace_tools::slice_capture`).
//! `merge` concatenates captures recorded on the same configuration into
//! one standalone trace whose footer is likewise recomputed from pristine
//! state (see `impact_bench::trace_tools::merge_captures`).

use std::env;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use impact_bench::trace_tools::{
    diff_readers, merge_captures, record_capture, replay_file, slice_capture, trace_stats,
    CaptureKind, DiffOutcome,
};
use impact_sim::BackendKind;
use impact_workloads::CapturedTrace;

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: trace_replay record --out FILE [--scenario mix|pnm|bfs] \
         [--backend mono|sharded[:N[:T]]|traced] [--quick] [--seed N]\n\
         \x20      trace_replay replay FILE [--backend mono|sharded[:N[:T]]|traced] \
         [--metrics FILE]\n\
         \x20      trace_replay diff A B\n\
         \x20      trace_replay stats FILE\n\
         \x20      trace_replay slice FILE --out FILE --start N --count N\n\
         \x20      trace_replay merge OUT IN IN [IN...]"
    );
    std::process::exit(2);
}

struct Args {
    positional: Vec<String>,
    quick: bool,
    backend: BackendKind,
    scenario: CaptureKind,
    seed: u64,
    out: Option<String>,
    start: Option<usize>,
    count: Option<usize>,
    metrics: Option<String>,
}

fn parse_args(raw: &[String]) -> Args {
    let mut args = Args {
        positional: Vec::new(),
        quick: false,
        backend: BackendKind::Mono,
        scenario: CaptureKind::Mix,
        seed: 0x7ACE,
        out: None,
        start: None,
        count: None,
        metrics: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--quick" => args.quick = true,
            "--backend" => {
                let v = value("--backend");
                args.backend = BackendKind::parse(&v)
                    .unwrap_or_else(|| usage_exit(&format!("unknown backend {v:?}")));
            }
            "--scenario" => {
                let v = value("--scenario");
                args.scenario = CaptureKind::parse(&v)
                    .unwrap_or_else(|| usage_exit(&format!("unknown scenario {v:?}")));
            }
            "--seed" => {
                let v = value("--seed");
                args.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage_exit(&format!("bad --seed value {v:?}")));
            }
            "--out" => args.out = Some(value("--out")),
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--start" => {
                let v = value("--start");
                args.start = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage_exit(&format!("bad --start value {v:?}"))),
                );
            }
            "--count" => {
                let v = value("--count");
                args.count = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage_exit(&format!("bad --count value {v:?}"))),
                );
            }
            flag if flag.starts_with("--") => usage_exit(&format!("unknown flag {flag:?}")),
            _ => args.positional.push(a.clone()),
        }
    }
    args
}

fn open(path: &str) -> BufReader<File> {
    BufReader::new(
        File::open(path).unwrap_or_else(|e| usage_exit(&format!("cannot open {path}: {e}"))),
    )
}

fn main() -> ExitCode {
    let raw: Vec<String> = env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage_exit("missing subcommand");
    };
    let args = parse_args(rest);
    match cmd.as_str() {
        "record" => {
            let Some(out) = args.out.as_deref() else {
                usage_exit("record needs --out FILE");
            };
            if !args.positional.is_empty() {
                usage_exit("record takes no positional arguments");
            }
            let sink = File::create(out)
                .unwrap_or_else(|e| usage_exit(&format!("cannot create {out}: {e}")));
            let outcome = record_capture(
                args.scenario,
                args.backend,
                args.quick,
                args.seed,
                Box::new(std::io::BufWriter::new(sink)),
            )
            .unwrap_or_else(|e| {
                eprintln!("trace_replay: record failed: {e}");
                std::process::exit(1);
            });
            println!(
                "recorded scenario={} backend={} quick={} seed={}",
                args.scenario.name(),
                args.backend.label(),
                args.quick,
                args.seed,
            );
            println!(
                "  config={} events={} responses={}",
                outcome.label, outcome.summary.events, outcome.summary.responses,
            );
            println!(
                "  response-digest={:#018x}",
                outcome.summary.response_digest
            );
            println!("  state-digest={:#018x}", outcome.state_digest);
            ExitCode::SUCCESS
        }
        "replay" => {
            let [file] = &args.positional[..] else {
                usage_exit("replay takes exactly one trace file");
            };
            if args.metrics.is_some() {
                impact_obs::set_enabled(true);
            }
            let v = replay_file(open(file), args.backend).unwrap_or_else(|e| {
                eprintln!("trace_replay: replay failed: {e}");
                std::process::exit(1);
            });
            println!(
                "replayed {} events / {} responses on backend={}",
                v.recorded.events,
                v.responses,
                args.backend.label(),
            );
            println!("  response-digest={:#018x}", v.response_digest);
            println!("  state-digest={:#018x}", v.state_digest);
            if let Some(path) = &args.metrics {
                let json = impact_obs::snapshot().to_json();
                std::fs::write(path, json)
                    .unwrap_or_else(|e| usage_exit(&format!("cannot write {path}: {e}")));
                let (par, seq) = v.pool_batches;
                println!("  metrics: wrote telemetry snapshot to {path}");
                println!("  metrics: pool batches parallel={par} fallback={seq}");
            }
            if v.matches() {
                println!("  verdict: bit-identical to the recorded run");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "  MISMATCH: recorded responses={} digest={:#018x} stats={:?}",
                    v.recorded.responses, v.recorded.response_digest, v.recorded.stats
                );
                eprintln!(
                    "            replayed responses={} digest={:#018x} stats={:?}",
                    v.responses, v.response_digest, v.stats
                );
                ExitCode::FAILURE
            }
        }
        "diff" => {
            let [a, b] = &args.positional[..] else {
                usage_exit("diff takes exactly two trace files");
            };
            let outcome = diff_readers(open(a), open(b)).unwrap_or_else(|e| {
                eprintln!("trace_replay: diff failed: {e}");
                std::process::exit(1);
            });
            match outcome {
                DiffOutcome::Identical { events } => {
                    println!("identical: {events} events, matching footers");
                    ExitCode::SUCCESS
                }
                DiffOutcome::HeaderMismatch(fields) => {
                    eprintln!("headers differ:");
                    for f in fields {
                        eprintln!("  {f}");
                    }
                    ExitCode::FAILURE
                }
                DiffOutcome::EventMismatch {
                    index,
                    left,
                    right,
                    context,
                } => {
                    eprintln!("first divergent event at index {index}:");
                    for (i, ev) in context.iter().enumerate() {
                        let at = index - (context.len() - i) as u64;
                        eprintln!("  [{at}] (shared) {ev:?}");
                    }
                    match left {
                        Some(ev) => eprintln!("  [{index}] left:  {ev:?}"),
                        None => eprintln!("  [{index}] left:  <stream ends>"),
                    }
                    match right {
                        Some(ev) => eprintln!("  [{index}] right: {ev:?}"),
                        None => eprintln!("  [{index}] right: <stream ends>"),
                    }
                    ExitCode::FAILURE
                }
                DiffOutcome::SummaryMismatch { left, right } => {
                    eprintln!("events identical but footers differ:");
                    eprintln!("  left:  {left:?}");
                    eprintln!("  right: {right:?}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let [file] = &args.positional[..] else {
                usage_exit("stats takes exactly one trace file");
            };
            let (header, mix, summary) = trace_stats(open(file)).unwrap_or_else(|e| {
                eprintln!("trace_replay: stats failed: {e}");
                std::process::exit(1);
            });
            println!(
                "trace config={} (fingerprint {:#018x}) seed={}",
                header.label, header.fingerprint, header.seed
            );
            println!(
                "  {} events, {} responses, recorded digest {:#018x}",
                summary.events, summary.responses, summary.response_digest
            );
            println!(
                "  kinds: {} load, {} store, {} pim, {} rowclone, {} inject",
                mix.loads, mix.stores, mix.pims, mix.rowclones, mix.injects
            );
            println!(
                "  batches: {} (largest {}), unmapped requests: {}",
                mix.batches, mix.max_batch, mix.unmapped
            );
            let total: u64 = mix.per_bank.iter().sum();
            println!(
                "  per-bank requests ({} banks, {total} total):",
                mix.per_bank.len()
            );
            for (bank, count) in mix.per_bank.iter().enumerate() {
                if *count > 0 {
                    println!("    bank {bank:>4}: {count}");
                }
            }
            ExitCode::SUCCESS
        }
        "slice" => {
            let [file] = &args.positional[..] else {
                usage_exit("slice takes exactly one trace file");
            };
            let Some(out) = args.out.as_deref() else {
                usage_exit("slice needs --out FILE");
            };
            let Some(count) = args.count else {
                usage_exit("slice needs --count N");
            };
            let start = args.start.unwrap_or(0);
            let captured = CapturedTrace::read_from(open(file)).unwrap_or_else(|e| {
                eprintln!("trace_replay: cannot read {file}: {e}");
                std::process::exit(1);
            });
            let sink = File::create(out)
                .unwrap_or_else(|e| usage_exit(&format!("cannot create {out}: {e}")));
            let outcome = slice_capture(&captured, start, count, std::io::BufWriter::new(sink))
                .unwrap_or_else(|e| {
                    eprintln!("trace_replay: slice failed: {e}");
                    std::process::exit(1);
                });
            println!(
                "sliced events [{start}, {}) of {} into {out}",
                start + count,
                captured.events.len(),
            );
            println!(
                "  {} events, {} responses, recomputed digest {:#018x}",
                outcome.summary.events, outcome.summary.responses, outcome.summary.response_digest
            );
            println!("  state-digest={:#018x}", outcome.state_digest);
            ExitCode::SUCCESS
        }
        "merge" => {
            let [out, inputs @ ..] = &args.positional[..] else {
                usage_exit("merge takes an output file then at least two inputs");
            };
            if inputs.len() < 2 {
                usage_exit("merge takes an output file then at least two inputs");
            }
            let captures: Vec<CapturedTrace> = inputs
                .iter()
                .map(|file| {
                    CapturedTrace::read_from(open(file)).unwrap_or_else(|e| {
                        eprintln!("trace_replay: cannot read {file}: {e}");
                        std::process::exit(1);
                    })
                })
                .collect();
            let sink = File::create(out)
                .unwrap_or_else(|e| usage_exit(&format!("cannot create {out}: {e}")));
            let outcome =
                merge_captures(&captures, std::io::BufWriter::new(sink)).unwrap_or_else(|e| {
                    eprintln!("trace_replay: merge failed: {e}");
                    std::process::exit(1);
                });
            println!("merged {} traces into {out}", inputs.len());
            println!(
                "  {} events, {} responses, recomputed digest {:#018x}",
                outcome.summary.events, outcome.summary.responses, outcome.summary.response_digest
            );
            println!("  state-digest={:#018x}", outcome.state_digest);
            ExitCode::SUCCESS
        }
        other => usage_exit(&format!("unknown subcommand {other:?}")),
    }
}
